//! `fleet-repro` — top-level façade crate for the Fleet reproduction.
//!
//! This crate exists to host the workspace's runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). It re-exports
//! the member crates under one roof so those artifacts can write
//! `fleet_repro::fleet::...` style paths.

pub use fleet;
pub use fleet_apps as apps;
pub use fleet_gc as gc;
pub use fleet_heap as heap;
pub use fleet_kernel as kernel;
pub use fleet_metrics as metrics;
pub use fleet_sim as sim;
