//! Quickstart: a simulated Pixel 3 running Fleet.
//!
//! Cold-launches Twitter, caches it behind another app, lets Fleet's
//! grouping + runtime-guided swap do their thing, then hot-launches it and
//! prints where the time went.
//!
//! Run with: `cargo run --example quickstart`

use fleet::{Device, DeviceConfig, FleetError, SchemeKind};
use fleet_apps::profile_by_name;

fn main() -> Result<(), FleetError> {
    // A Pixel 3 (4 GB DRAM, 2 GB swap) running the Fleet scheme.
    let mut device = Device::try_new(DeviceConfig::pixel3(SchemeKind::Fleet))?;

    let twitter = profile_by_name("Twitter").expect("catalog app");
    let telegram = profile_by_name("Telegram").expect("catalog app");

    // Cold-launch Twitter and use it in the foreground for a while.
    let (twitter_pid, cold) = device.launch_cold(&twitter);
    device.run(10);
    println!("cold launch: {cold:?}");

    // Switch to Telegram; Twitter is now cached in the background. After
    // Ts = 10 s Fleet runs its grouping GC, classifies NRO/FYO/WS/cold,
    // swaps the cold pages out (COLD_RUNTIME) and pins the launch pages
    // (HOT_RUNTIME).
    device.launch_cold(&telegram);
    device.run(20);

    let proc = device.try_process(twitter_pid)?;
    if let Some(grouped) = &proc.fleet.grouped {
        println!(
            "grouping: {} launch objects ({} KiB), {} ws objects, {} cold objects ({} KiB)",
            grouped.launch_objects,
            grouped.launch_bytes / 1024,
            grouped.ws_objects,
            grouped.cold_objects,
            grouped.cold_bytes / 1024,
        );
    }
    let mem = device.mm().process_mem(twitter_pid);
    println!("twitter residency: {} pages resident, {} pages swapped", mem.resident, mem.swapped);

    // Hot-launch Twitter: the launch working set was kept resident, so the
    // launch sits near the render floor despite the swapped-out cold bulk.
    let hot = device.try_switch_to(twitter_pid)?;
    println!(
        "hot launch: {} total ({} faulted pages, {} stall, {} gc pause)",
        hot.total, hot.faulted_pages, hot.fault_stall, hot.gc_stw
    );
    assert!(hot.total < cold.total, "hot must beat cold");
    println!(
        "speedup over cold launch: {:.1}x",
        cold.total.as_millis_f64() / hot.total.as_millis_f64()
    );
    Ok(())
}
