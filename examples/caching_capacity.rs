//! How many apps can each scheme keep cached? (Figure 11 in miniature.)
//!
//! Launches Marvin-style synthetic apps (§6: fixed object size, 180 MB
//! footprint) one after another under all four schemes and prints the
//! number of live apps after each launch.
//!
//! Run with: `cargo run --release --example caching_capacity [small|large]`

use fleet::{Device, DeviceConfig, FleetError, SchemeKind};
use fleet_apps::synthetic_app;

fn main() -> Result<(), FleetError> {
    let object_size = match std::env::args().nth(1).as_deref() {
        Some("small") => 512,
        _ => 2048,
    };
    println!("synthetic apps: {object_size} B objects, 180 MB footprint\n");
    println!("{:<18} {:>10} {:>12}  curve", "scheme", "max cached", "first kill");

    for scheme in SchemeKind::ALL {
        let mut device = Device::try_new(DeviceConfig::pixel3(scheme))?;
        let app = synthetic_app(object_size, 180);
        let mut curve = Vec::new();
        let mut first_kill = None;
        for i in 0..24 {
            device.launch_cold(&app);
            device.run(10);
            curve.push(device.cached_apps());
            if first_kill.is_none() && !device.kills().is_empty() {
                first_kill = Some(i + 1);
            }
        }
        let max = curve.iter().copied().max().unwrap_or(0);
        let curve_str: Vec<String> = curve.iter().map(|n| n.to_string()).collect();
        println!(
            "{:<18} {:>10} {:>12}  {}",
            scheme.to_string(),
            max,
            first_kill.map(|n| n.to_string()).unwrap_or_else(|| "-".into()),
            curve_str.join(",")
        );
    }
    println!("\npaper (Figure 11): Android kills from 11 cached apps (max 14); Marvin and Fleet");
    println!("reach ~18 for large objects, but Marvin collapses to ~9 for small objects while");
    println!("Fleet is insensitive to object size — its grouping packs small objects into pages.");
    Ok(())
}
