//! How many objects does a background GC touch? (Figure 12 in miniature.)
//!
//! Runs one background collection for a cached app under default Android
//! (full tracing GC) and under Fleet (background-object GC) and prints the
//! GC working set — the §3.2 conflict in one number.
//!
//! Run with: `cargo run --release --example gc_working_set [app]`

use fleet::{Device, DeviceConfig, FleetError, SchemeKind};
use fleet_apps::profile_by_name;
use fleet_sim::SimDuration;

fn measure(
    scheme: SchemeKind,
    disable_bgc: bool,
    app: &str,
) -> Result<(u64, SimDuration), FleetError> {
    let mut config = DeviceConfig::pixel3(scheme);
    config.fleet_disable_bgc = disable_bgc;
    config.bg_gc_interval = SimDuration::from_secs(100_000); // only the explicit GC
    let mut device = Device::try_new(config)?;
    let profile = profile_by_name(app).expect("catalog app");
    let (pid, _) = device.launch_cold(&profile);
    device.run(10);
    device.launch_cold(&profile_by_name("Telegram").expect("catalog app"));
    device.run(20);
    let stats = device.try_run_gc(pid)?;
    Ok((stats.objects_traced * device.config().scale as u64, stats.duration()))
}

fn main() -> Result<(), FleetError> {
    let app = std::env::args().nth(1).unwrap_or_else(|| "Twitch".to_string());
    println!("one background GC of {app} (objects at real scale):\n");
    let (android, t_android) = measure(SchemeKind::Android, false, &app)?;
    let (no_bgc, t_no_bgc) = measure(SchemeKind::Fleet, true, &app)?;
    let (bgc, t_bgc) = measure(SchemeKind::Fleet, false, &app)?;
    println!("{:<22} {:>12} objects   {:>12}", "Android (full GC)", android, t_android.to_string());
    println!("{:<22} {:>12} objects   {:>12}", "Fleet w/o BGC", no_bgc, t_no_bgc.to_string());
    println!("{:<22} {:>12} objects   {:>12}", "Fleet w/ BGC", bgc, t_bgc.to_string());
    println!(
        "\nreduction: {:.1}x   (paper Figure 12a: ~7x, from ~7e5 to ~1e5 objects)",
        android as f64 / bgc.max(1) as f64
    );
    println!("BGC traces only background objects; the foreground heap — most of the app — is");
    println!("never touched, so its swapped-out pages stay swapped out and the app stays cached.");
    Ok(())
}
