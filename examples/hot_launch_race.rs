//! Hot-launch race: the same app, the same pressure, four schemes.
//!
//! Builds the §7.2 scenario (a pool of commercial apps under memory
//! pressure), then repeatedly hot-launches one target app under each scheme
//! and prints the latency distribution.
//!
//! Run with: `cargo run --release --example hot_launch_race [app] [launches]`

use fleet::experiment::scenario::AppPool;
use fleet::{FleetError, SchemeKind};
use fleet_metrics::Summary;

fn main() -> Result<(), FleetError> {
    let target = std::env::args().nth(1).unwrap_or_else(|| "Twitter".to_string());
    let launches: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let pool_apps: Vec<String> = [
        "Twitter",
        "Facebook",
        "Instagram",
        "Youtube",
        "Tiktok",
        "Spotify",
        "Chrome",
        "GoogleMaps",
        "AmazonShop",
        "LinkedIn",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert!(pool_apps.contains(&target), "target must be one of {pool_apps:?}");

    println!("{launches} hot launches of {target} with ~10 cached apps\n");
    println!(
        "{:<18} {:>6} {:>9} {:>9} {:>9} {:>12}",
        "scheme", "n", "p10 (ms)", "p50 (ms)", "p90 (ms)", "mean stall"
    );
    for scheme in SchemeKind::ALL {
        let mut pool = AppPool::under_pressure(scheme, &pool_apps, 2024)?;
        let reports = pool.measure_hot_launches(&target, launches)?;
        let times = Summary::from_values(reports.iter().map(|r| r.total.as_millis_f64()));
        let stall = Summary::from_values(reports.iter().map(|r| r.fault_stall.as_millis_f64()));
        println!(
            "{:<18} {:>6} {:>9.0} {:>9.0} {:>9.0} {:>9.0} ms",
            scheme.to_string(),
            times.len(),
            times.p10(),
            times.median(),
            times.p90(),
            stall.mean(),
        );
    }
    println!("\npaper (Figure 13/15): Fleet wins the median by ~1.6x over Android and ~2.6x over");
    println!("Marvin, and the 90th-percentile tail by ~2.6x / ~4.5x — the launch pages were kept");
    println!("resident by the runtime-guided swap while everything else was free to leave.");
    Ok(())
}
