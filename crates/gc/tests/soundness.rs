//! Cross-collector soundness: arbitrary interleavings of every collector
//! with mutation in between must never create dangling references or free
//! reachable objects.
//!
//! This is exactly the bug class the card-table remembered sets guard
//! against (BGC, incremental re-grouping and the minor GC all consume and
//! must selectively preserve card information), so it gets its own
//! adversarial property test.

use fleet_gc::{
    BackgroundObjectGc, Collector, FullCopyingGc, GcCostModel, GroupingGc, MarvinGc, MinorGc,
    NoTouch,
};
use fleet_heap::{reachable_set, AllocContext, Heap, HeapConfig, ObjectId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate an object of the given size; attach it under an existing
    /// live object when the flag is set (else it is instant garbage).
    Alloc { size: u32, attach: bool, anchor: u8 },
    /// Add a reference between two existing live objects.
    Link { from: u8, to: u8 },
    /// Remove the first outgoing reference of an object.
    Unlink { from: u8 },
    /// Flip the allocation context (foreground ↔ background).
    FlipContext,
    /// Run a collector: 0=full, 1=minor, 2=bgc, 3=grouping(full),
    /// 4=grouping(incremental), 5=marvin.
    Collect { which: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (16u32..2048, any::<bool>(), any::<u8>()).prop_map(|(size, attach, anchor)| Op::Alloc {
            size,
            attach,
            anchor
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(from, to)| Op::Link { from, to }),
        any::<u8>().prop_map(|from| Op::Unlink { from }),
        Just(Op::FlipContext),
        (0u8..6).prop_map(|which| Op::Collect { which }),
    ]
}

/// Picks a live object deterministically from an index byte.
fn pick(heap: &Heap, index: u8) -> Option<ObjectId> {
    let ids: Vec<ObjectId> = heap.object_ids().collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids[index as usize % ids.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_collector_interleaving_is_sound(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut heap = Heap::new(HeapConfig::default());
        let root = heap.alloc(64);
        heap.add_root(root);
        let mut marvin = MarvinGc::new(GcCostModel::default(), 1024);
        let mut groupings = 0u32;

        for op in ops {
            match op {
                Op::Alloc { size, attach, anchor } => {
                    let obj = heap.alloc(size);
                    if attach {
                        if let Some(target) = pick(&heap, anchor) {
                            if target != obj {
                                heap.add_ref(target, obj);
                            }
                        }
                    }
                }
                Op::Link { from, to } => {
                    if let (Some(f), Some(t)) = (pick(&heap, from), pick(&heap, to)) {
                        heap.add_ref(f, t);
                    }
                }
                Op::Unlink { from } => {
                    if let Some(f) = pick(&heap, from) {
                        if let Some(&victim) = heap.object(f).refs().first() {
                            heap.remove_ref(f, victim);
                        }
                    }
                }
                Op::FlipContext => {
                    let next = match heap.context() {
                        AllocContext::Foreground => AllocContext::Background,
                        AllocContext::Background => AllocContext::Foreground,
                    };
                    heap.set_context(next);
                }
                Op::Collect { which } => {
                    let live_before = reachable_set(&heap);
                    match which {
                        0 => {
                            FullCopyingGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
                        }
                        1 => {
                            MinorGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
                        }
                        2 => {
                            BackgroundObjectGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
                        }
                        3 | 4 => {
                            let incremental = which == 4 && groupings > 0;
                            groupings += 1;
                            GroupingGc::new(GcCostModel::default(), 2, HashSet::new())
                                .with_incremental(incremental)
                                .collect_grouping(&mut heap, &mut NoTouch);
                        }
                        _ => {
                            marvin.collect(&mut heap, &mut NoTouch);
                        }
                    }
                    // Every reachable object survived the collection.
                    for &id in &live_before {
                        prop_assert!(heap.contains(id), "collector {which} freed reachable {id}");
                    }
                    // No dangling references anywhere in the heap.
                    prop_assert!(heap.validate_refs().is_ok(), "{:?}", heap.validate_refs());
                }
            }
            // The root never dies; accounting stays coherent.
            prop_assert!(heap.contains(root));
            prop_assert!(heap.live_bytes() <= heap.used_bytes());
        }
    }
}
