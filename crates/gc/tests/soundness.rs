//! Cross-collector soundness: arbitrary interleavings of every collector
//! with mutation in between must never create dangling references or free
//! reachable objects.
//!
//! This is exactly the bug class the card-table remembered sets guard
//! against (BGC, incremental re-grouping and the minor GC all consume and
//! must selectively preserve card information), so it gets its own
//! adversarial property test.

use fleet_gc::{
    BackgroundObjectGc, Collector, FullCopyingGc, GcCostModel, GroupingGc, MarvinGc, MinorGc,
    NoTouch,
};
use fleet_heap::{reachable_set, AllocContext, Heap, HeapConfig, ObjectId};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Allocate an object of the given size; attach it under an existing
    /// live object when the flag is set (else it is instant garbage).
    Alloc { size: u32, attach: bool, anchor: u8 },
    /// Add a reference between two existing live objects.
    Link { from: u8, to: u8 },
    /// Remove the first outgoing reference of an object.
    Unlink { from: u8 },
    /// Flip the allocation context (foreground ↔ background).
    FlipContext,
    /// Run a collector: 0=full, 1=minor, 2=bgc, 3=grouping(full),
    /// 4=grouping(incremental), 5=marvin.
    Collect { which: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (16u32..2048, any::<bool>(), any::<u8>()).prop_map(|(size, attach, anchor)| Op::Alloc {
            size,
            attach,
            anchor
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(from, to)| Op::Link { from, to }),
        any::<u8>().prop_map(|from| Op::Unlink { from }),
        Just(Op::FlipContext),
        (0u8..6).prop_map(|which| Op::Collect { which }),
    ]
}

/// Picks a live object deterministically from an index byte.
fn pick(heap: &Heap, index: u8) -> Option<ObjectId> {
    let ids: Vec<ObjectId> = heap.object_ids().collect();
    if ids.is_empty() {
        None
    } else {
        Some(ids[index as usize % ids.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_collector_interleaving_is_sound(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut heap = Heap::new(HeapConfig::default());
        let root = heap.alloc(64);
        heap.add_root(root);
        let mut marvin = MarvinGc::new(GcCostModel::default(), 1024);
        let mut groupings = 0u32;

        for op in ops {
            match op {
                Op::Alloc { size, attach, anchor } => {
                    let obj = heap.alloc(size);
                    if attach {
                        if let Some(target) = pick(&heap, anchor) {
                            if target != obj {
                                heap.add_ref(target, obj);
                            }
                        }
                    }
                }
                Op::Link { from, to } => {
                    if let (Some(f), Some(t)) = (pick(&heap, from), pick(&heap, to)) {
                        heap.add_ref(f, t);
                    }
                }
                Op::Unlink { from } => {
                    if let Some(f) = pick(&heap, from) {
                        if let Some(&victim) = heap.object(f).refs().first() {
                            heap.remove_ref(f, victim);
                        }
                    }
                }
                Op::FlipContext => {
                    let next = match heap.context() {
                        AllocContext::Foreground => AllocContext::Background,
                        AllocContext::Background => AllocContext::Foreground,
                    };
                    heap.set_context(next);
                }
                Op::Collect { which } => {
                    let live_before = reachable_set(&heap);
                    match which {
                        0 => {
                            FullCopyingGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
                        }
                        1 => {
                            MinorGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
                        }
                        2 => {
                            BackgroundObjectGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
                        }
                        3 | 4 => {
                            let incremental = which == 4 && groupings > 0;
                            groupings += 1;
                            GroupingGc::new(GcCostModel::default(), 2, HashSet::new())
                                .with_incremental(incremental)
                                .collect_grouping(&mut heap, &mut NoTouch);
                        }
                        _ => {
                            marvin.collect(&mut heap, &mut NoTouch);
                        }
                    }
                    // Every reachable object survived the collection.
                    for &id in &live_before {
                        prop_assert!(heap.contains(id), "collector {which} freed reachable {id}");
                    }
                    // No dangling references anywhere in the heap.
                    prop_assert!(heap.validate_refs().is_ok(), "{:?}", heap.validate_refs());
                }
            }
            // The root never dies; accounting stays coherent.
            prop_assert!(heap.contains(root));
            prop_assert!(heap.live_bytes() <= heap.used_bytes());
        }
    }

    /// Differential tracing: ART's full GC walks the graph depth-first,
    /// Fleet's grouping GC breadth-first with a FIFO mark queue (§5.3.1).
    /// Traversal order must never change *what* is live — on any random
    /// object graph both collectors keep exactly the reachable set and
    /// identical survivor byte counts.
    #[test]
    fn dfs_and_bfs_tracing_agree_on_liveness(
        sizes in proptest::collection::vec(16u32..512, 1..40),
        edges in proptest::collection::vec((any::<u8>(), any::<u8>()), 0..120),
        extra_roots in proptest::collection::vec(any::<u8>(), 0..4),
    ) {
        let mut heap = Heap::new(HeapConfig::default());
        let ids: Vec<ObjectId> = sizes.iter().map(|&s| heap.alloc(s)).collect();
        heap.add_root(ids[0]);
        for &r in &extra_roots {
            heap.add_root(ids[r as usize % ids.len()]);
        }
        for &(from, to) in &edges {
            let f = ids[from as usize % ids.len()];
            let t = ids[to as usize % ids.len()];
            if f != t {
                heap.add_ref(f, t);
            }
        }
        let expected = reachable_set(&heap);
        let expected_bytes: u64 =
            expected.iter().map(|&id| heap.object(id).size() as u64).sum();

        let mut dfs_heap = heap.clone();
        let dfs = FullCopyingGc::new(GcCostModel::default()).collect(&mut dfs_heap, &mut NoTouch);
        let mut bfs_heap = heap;
        let (bfs, _) = GroupingGc::new(GcCostModel::default(), 2, HashSet::new())
            .collect_grouping(&mut bfs_heap, &mut NoTouch);

        let dfs_live: HashSet<ObjectId> = dfs_heap.object_ids().collect();
        let bfs_live: HashSet<ObjectId> = bfs_heap.object_ids().collect();
        prop_assert_eq!(&dfs_live, &expected, "DFS live set diverges from reachability");
        prop_assert_eq!(&bfs_live, &expected, "BFS live set diverges from reachability");
        prop_assert_eq!(dfs_heap.live_bytes(), expected_bytes);
        prop_assert_eq!(bfs_heap.live_bytes(), expected_bytes);
        // Both copy every survivor exactly once and trace the same count.
        prop_assert_eq!(dfs.bytes_copied, expected_bytes);
        prop_assert_eq!(bfs.bytes_copied, expected_bytes);
        prop_assert_eq!(dfs.objects_traced, expected.len() as u64);
        prop_assert_eq!(bfs.objects_traced, expected.len() as u64);
    }
}

/// Regression: a *young* FGO holding the only edge to a BGO. The write
/// barrier dirties the young object's card; the minor GC's card aging must
/// preserve it for the surviving object (BGC's remembered set), or the next
/// BGC frees a reachable BGO and leaves a dangling reference — found by the
/// 10k-device population sweep, where the following grouping GC panicked on
/// the dangle.
#[test]
fn minor_gc_preserves_young_fgo_to_bgo_cards() {
    let mut heap = Heap::new(HeapConfig::default());
    let root = heap.alloc(64);
    heap.add_root(root);

    // A background object, reachable only through a young FGO.
    heap.set_context(AllocContext::Background);
    let bgo = heap.alloc(64);
    heap.set_context(AllocContext::Foreground);

    // Flush newly-allocated state so the next alloc opens a fresh young
    // region, then create the young FGO with the only edge to the BGO.
    heap.clear_newly_allocated_flags();
    let young = heap.alloc(64);
    heap.add_ref(root, young);
    heap.add_ref(young, bgo);

    MinorGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
    assert!(heap.contains(young));
    assert!(heap.contains(bgo), "minor GC must not free the BGO");

    BackgroundObjectGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
    assert!(heap.contains(bgo), "BGC freed a BGO still referenced by a live young FGO");
    assert!(heap.validate_refs().is_ok(), "{:?}", heap.validate_refs());
}
