//! Garbage collectors for the Fleet reproduction.
//!
//! Four collectors, matching Table 1 of the paper plus ART's minor GC:
//!
//! | Collector | Paper role |
//! |---|---|
//! | [`FullCopyingGc`] | ART's concurrent-copying *major* GC — full DFS trace, copies survivors; the default-Android baseline whose tracing touches swapped pages (§3.2) |
//! | [`MinorGc`] | ART's minor GC over newly-allocated regions, driven by the card table |
//! | [`MarvinGc`] | Marvin's bookmarking GC — traces through resident *stubs* instead of swapped-out large objects, at the price of long stop-the-world reconciliation (§3.1, §6) |
//! | [`BackgroundObjectGc`] | Fleet's BGC (§5.2) — traces background objects only; modified foreground objects enter the root set via the card table |
//! | [`GroupingGc`] | Fleet's RGS object-grouping full GC (§5.3.1) — BFS with a depth delimiter, classifies NRO/FYO/WS/cold and copies each class into its own region kind |
//!
//! Collectors operate on a [`fleet_heap::Heap`] and report every object they
//! touch through a [`MemoryTouch`] observer; the embedding layer forwards
//! those touches to the kernel model, where they hit the page LRU and may
//! fault — which is exactly the GC/swap conflict the paper is about.
//!
//! # Examples
//!
//! ```
//! use fleet_gc::{Collector, FullCopyingGc, GcCostModel, NoTouch};
//! use fleet_heap::{Heap, HeapConfig};
//!
//! let mut heap = Heap::new(HeapConfig::default());
//! let root = heap.alloc(64);
//! heap.add_root(root);
//! let garbage = heap.alloc(64);
//! let _ = garbage;
//! let stats = FullCopyingGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
//! assert_eq!(stats.objects_freed, 1);
//! assert!(heap.contains(root));
//! ```

#![warn(missing_docs)]

pub mod bgc;
pub mod collector;
pub mod full;
pub mod grouping;
pub mod marvin;
pub mod minor;

pub use bgc::BackgroundObjectGc;
pub use collector::{Collector, GcCostModel, GcKind, GcStats, MemoryTouch, NoTouch};
pub use full::FullCopyingGc;
pub use grouping::{GroupingGc, GroupingOutcome};
pub use marvin::{swappable_pages, MarvinGc, MarvinState};
pub use minor::MinorGc;
