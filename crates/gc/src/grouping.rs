//! Fleet's RGS object-grouping GC (§5.3.1).
//!
//! This full GC runs once, Ts seconds after an app is backgrounded. Unlike
//! ART's DFS collector it traverses the graph **breadth-first with a FIFO
//! mark queue and a depth delimiter**, which yields every object's shortest
//! distance from the roots. During the traversal objects are classified:
//!
//! * **NRO** — depth ≤ D (Table 2: D = 2),
//! * **FYO** — allocated since the last GC (the region's newly-allocated
//!   flag),
//! * **WS** — marked by a mutator read barrier while the GC ran (supplied
//!   here as the working-set hint),
//! * **cold** — everything else.
//!
//! The copy phase then groups classes into dedicated region kinds — Launch
//! (NRO ∪ FYO), WS and Cold — so that bump-pointer allocation compacts each
//! class onto its own pages. The returned [`GroupingOutcome`] carries the
//! address ranges of each group for the `madvise` calls of §5.3.2.

use crate::collector::{
    audit_evac_abort, audit_gc_end, audit_gc_start, obs_gc_phase, GcCostModel, GcKind, GcStats,
    MemoryTouch,
};
use fleet_heap::{AllocContext, Heap, ObjectClass, ObjectId, RegionId, RegionKind};
use fleet_sim::SimDuration;
use std::collections::{HashMap, HashSet, VecDeque};

/// Byte ranges of the grouped pages plus per-class tallies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupingOutcome {
    /// `[base, len)` ranges of launch regions (NRO ∪ FYO).
    pub launch_ranges: Vec<(u64, u64)>,
    /// `[base, len)` ranges of working-set regions.
    pub ws_ranges: Vec<(u64, u64)>,
    /// `[base, len)` ranges of cold regions.
    pub cold_ranges: Vec<(u64, u64)>,
    /// Objects classified NRO (before overlap with FYO).
    pub nro_objects: u64,
    /// Objects classified FYO (before overlap with NRO).
    pub fyo_objects: u64,
    /// Objects placed in launch regions (NRO ∪ FYO).
    pub launch_objects: u64,
    /// Bytes placed in launch regions.
    pub launch_bytes: u64,
    /// Objects placed in WS regions.
    pub ws_objects: u64,
    /// Bytes placed in WS regions.
    pub ws_bytes: u64,
    /// Objects placed in cold regions.
    pub cold_objects: u64,
    /// Bytes placed in cold regions.
    pub cold_bytes: u64,
}

/// The grouping collector. `depth` is the paper's D parameter; `ws` is the
/// set of objects the mutator read barriers marked while the GC ran.
#[derive(Debug, Clone)]
pub struct GroupingGc {
    cost: GcCostModel,
    depth: u32,
    ws: HashSet<ObjectId>,
    incremental: bool,
}

impl GroupingGc {
    /// Creates a grouping collector with NRO depth `depth` and the given
    /// working-set hint.
    pub fn new(cost: GcCostModel, depth: u32, ws: HashSet<ObjectId>) -> Self {
        GroupingGc { cost, depth, ws, incremental: false }
    }

    /// Enables *incremental* re-grouping: regions that are already
    /// [`RegionKind::Cold`] keep their placement and are treated as a live
    /// boundary — they are neither traced into nor copied, so a re-grouping
    /// never faults the (swapped-out) cold bulk back in. References from
    /// modified cold objects are found through the card table, exactly as
    /// BGC finds modified FGO. Garbage inside cold regions is not collected
    /// until the next full grouping.
    pub fn with_incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Whether incremental mode is enabled.
    pub fn is_incremental(&self) -> bool {
        self.incremental
    }

    /// The configured NRO depth parameter D.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Runs the grouping collection.
    ///
    /// Returns both the GC statistics and the [`GroupingOutcome`] describing
    /// where each class landed. (This richer return is why `GroupingGc` has
    /// its own entry point; the plain [`crate::Collector`] impl discards the
    /// outcome.)
    pub fn collect_grouping(
        &mut self,
        heap: &mut Heap,
        touch: &mut dyn MemoryTouch,
    ) -> (GcStats, GroupingOutcome) {
        let mut stats = GcStats::new(GcKind::Grouping);
        let mut outcome = GroupingOutcome::default();
        stats.stw += self.cost.stw_base;
        audit_gc_start(heap, GcKind::Grouping, !self.incremental);

        // Incremental mode: existing cold regions stay in place untouched.
        let kept_cold: HashSet<RegionId> = if self.incremental {
            heap.regions().filter(|r| r.kind() == RegionKind::Cold).map(|r| r.id()).collect()
        } else {
            HashSet::new()
        };
        let from_regions: Vec<RegionId> =
            heap.region_ids().into_iter().filter(|id| !kept_cold.contains(id)).collect();

        // FYO: foreground objects in regions allocated since the last GC
        // (§5.3.1 uses ART's per-region newly-allocated flag).
        let fyo_regions: HashSet<RegionId> =
            heap.regions().filter(|r| r.newly_allocated()).map(|r| r.id()).collect();

        heap.retire_alloc_targets();

        // Dirty cards over kept cold regions: modified cold objects may
        // reference new objects; scan them (they are resident — recently
        // written) without tracing the rest of the cold space.
        let mut cold_sources: Vec<ObjectId> = Vec::new();
        if self.incremental {
            let dirty: Vec<usize> = heap.cards().dirty_cards().collect();
            for card in dirty {
                stats.cards_scanned += 1;
                stats.cpu += self.cost.per_card_scan;
                for obj in heap.objects_in_card(card) {
                    if kept_cold.contains(&heap.object(obj).region()) {
                        cold_sources.push(obj);
                    }
                }
            }
            cold_sources.sort_unstable();
            cold_sources.dedup();
        }

        // BFS with a FIFO mark queue; depth comes for free from the
        // traversal order (the paper's "depth delimiter" in the mark queue).
        let mut depth_of: HashMap<ObjectId, u32> = HashMap::new();
        let mut order: Vec<ObjectId> = Vec::new();
        let mut queue: VecDeque<ObjectId> = VecDeque::new();
        let mut cold_boundary: HashSet<ObjectId> = HashSet::new();
        for &root in heap.roots() {
            if let std::collections::hash_map::Entry::Vacant(e) = depth_of.entry(root) {
                e.insert(0);
                queue.push_back(root);
            }
        }
        // Modified cold objects seed the queue's frontier as depth-boundary
        // sources: their references are scanned but they stay in place.
        for &src in &cold_sources {
            stats.fault_stall += touch.touch(heap.address(src), heap.object(src).size());
            stats.cpu += self.cost.per_object_trace;
            stats.objects_traced += 1;
            for &next in heap.object(src).refs() {
                if !kept_cold.contains(&heap.object(next).region()) && !depth_of.contains_key(&next)
                {
                    // Conservative depth: beyond the NRO horizon.
                    depth_of.insert(next, self.depth + 1);
                    queue.push_back(next);
                }
            }
        }
        while let Some(obj) = queue.pop_front() {
            let d = depth_of[&obj];
            stats.fault_stall += touch.touch(heap.address(obj), heap.object(obj).size());
            stats.cpu += self.cost.per_object_trace;
            stats.objects_traced += 1;
            order.push(obj);
            for &next in heap.object(obj).refs() {
                if kept_cold.contains(&heap.object(next).region()) {
                    // Live boundary: kept in place, never accessed.
                    cold_boundary.insert(next);
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = depth_of.entry(next) {
                    e.insert(d + 1);
                    queue.push_back(next);
                }
            }
        }
        let _ = cold_boundary;

        let mark_end = stats.cpu + stats.fault_stall;
        let traced = stats.objects_traced;
        obs_gc_phase(heap, "gc_mark", 1, SimDuration::ZERO, mark_end, || {
            vec![("objects", traced), ("cards", stats.cards_scanned)]
        });

        // Classify and copy. BGO stay in background regions; FGO are grouped.
        // A copy-budget denial aborts the grouping mid-way: objects not yet
        // copied keep their old placement and class (no grouping benefit,
        // but nothing moves without a backing frame) and the tallies below
        // honestly reflect only what was actually grouped.
        let mut abort_obs: Option<(SimDuration, u32, u64)> = None;
        for (i, &obj) in order.iter().enumerate() {
            let size = heap.object(obj).size() as u64;
            if !touch.copy_budget(size) {
                audit_evac_abort(heap, heap.object(obj).region().0, (order.len() - i) as u64);
                stats.evac_aborted = true;
                abort_obs = Some((
                    (stats.cpu + stats.fault_stall).saturating_sub(mark_end),
                    heap.object(obj).region().0,
                    (order.len() - i) as u64,
                ));
                break;
            }
            let context = heap.object(obj).context();
            let (dest, class) = if context == AllocContext::Background {
                (RegionKind::Bg, None)
            } else {
                let is_nro = depth_of[&obj] <= self.depth;
                let is_fyo = fyo_regions.contains(&heap.object(obj).region());
                if is_nro {
                    outcome.nro_objects += 1;
                }
                if is_fyo {
                    outcome.fyo_objects += 1;
                }
                if is_nro || is_fyo {
                    let class = if is_nro { ObjectClass::Nro } else { ObjectClass::Fyo };
                    outcome.launch_objects += 1;
                    outcome.launch_bytes += size;
                    (RegionKind::Launch, Some(class))
                } else if self.ws.contains(&obj) {
                    outcome.ws_objects += 1;
                    outcome.ws_bytes += size;
                    (RegionKind::Ws, Some(ObjectClass::Ws))
                } else {
                    outcome.cold_objects += 1;
                    outcome.cold_bytes += size;
                    (RegionKind::Cold, Some(ObjectClass::Cold))
                }
            };
            heap.copy_object(obj, dest);
            heap.set_class(obj, class);
            stats.bytes_copied += size;
            stats.cpu += self.cost.copy_cost(size);
        }
        let copy_dur = (stats.cpu + stats.fault_stall).saturating_sub(mark_end);
        let copied = stats.bytes_copied;
        obs_gc_phase(heap, "gc_copy", 1, mark_end, copy_dur, || vec![("bytes", copied)]);
        if let Some((rel, region, left)) = abort_obs {
            obs_gc_phase(heap, "gc_evac_abort", 2, rel, SimDuration::ZERO, || {
                vec![("region", u64::from(region)), ("objects_left", left)]
            });
        }

        // Sweep the from-space: unmarked objects are garbage; regions are
        // released only once empty (always, unless the evacuation aborted).
        for &rid in &from_regions {
            let dead: Vec<ObjectId> = heap
                .region(rid)
                .objects()
                .iter()
                .copied()
                .filter(|&o| !depth_of.contains_key(&o))
                .collect();
            for obj in dead {
                stats.bytes_freed += heap.object(obj).size() as u64;
                stats.objects_freed += 1;
                heap.free_object(obj);
            }
            if heap.region(rid).objects().is_empty() {
                heap.free_region(rid);
                stats.regions_freed += 1;
            }
        }

        // Record the grouped ranges for madvise (§5.3.2). Whole regions are
        // reported: their pages are mapped and cohesive by construction.
        for region in heap.regions() {
            let range = (region.base(), region.size() as u64);
            match region.kind() {
                RegionKind::Launch => outcome.launch_ranges.push(range),
                RegionKind::Ws => outcome.ws_ranges.push(range),
                RegionKind::Cold => outcome.cold_ranges.push(range),
                _ => {}
            }
        }

        // Cards moved with the objects: clear, then rebuild the remembered
        // sets the incremental collectors rely on:
        //
        //  * any FGO referencing a *background* object (a following BGC must
        //    find the edge without tracing the foreground heap),
        //  * any object placed in a **cold** region that references a
        //    non-cold object (a following *incremental* re-grouping treats
        //    cold regions as an untraced boundary, so such an edge may be
        //    the only path keeping the target alive),
        //  * the cold sources scanned this round (their edges stay relevant
        //    until a full grouping re-examines the cold space).
        let cold_source_spans: Vec<(u64, u64)> =
            cold_sources.iter().map(|&o| (heap.address(o), heap.object(o).size() as u64)).collect();
        heap.cards_mut().clear();
        for (addr, size) in cold_source_spans {
            heap.cards_mut().dirty_range(addr, size);
        }
        let bg_regions: HashSet<RegionId> =
            heap.regions().filter(|r| r.kind() == RegionKind::Bg).map(|r| r.id()).collect();
        let needs_card: Vec<ObjectId> = order
            .iter()
            .copied()
            .filter(|&o| {
                let obj = heap.object(o);
                let refs_bgo = obj.context() == AllocContext::Foreground
                    && obj.refs().iter().any(|&r| bg_regions.contains(&heap.object(r).region()));
                if refs_bgo {
                    return true;
                }
                let in_cold = heap.region(obj.region()).kind() == RegionKind::Cold;
                in_cold
                    && obj
                        .refs()
                        .iter()
                        .any(|&r| heap.region(heap.object(r).region()).kind() != RegionKind::Cold)
            })
            .collect();
        for obj in needs_card {
            let addr = heap.address(obj);
            let size = heap.object(obj).size() as u64;
            heap.cards_mut().dirty_range(addr, size);
        }

        // Post-GC allocations must open fresh (flagged) regions, not
        // continue into the to-regions that survivors were copied to.
        heap.retire_alloc_targets();
        heap.clear_newly_allocated_flags();
        heap.bump_gc_epoch();
        heap.update_limit_after_gc();
        audit_gc_end(heap, &stats);
        (stats, outcome)
    }
}

impl crate::collector::Collector for GroupingGc {
    fn collect(&mut self, heap: &mut Heap, touch: &mut dyn MemoryTouch) -> GcStats {
        self.collect_grouping(heap, touch).0
    }

    fn kind(&self) -> GcKind {
        GcKind::Grouping
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, NoTouch};
    use crate::full::FullCopyingGc;
    use fleet_heap::HeapConfig;

    fn heap() -> Heap {
        Heap::new(HeapConfig { region_size: 4096, initial_limit: 8192, ..HeapConfig::default() })
    }

    /// root → mid → deep chain, all FGO, aged by a full GC so nothing is FYO.
    fn aged_chain(len: usize) -> (Heap, Vec<ObjectId>) {
        let mut h = heap();
        let ids: Vec<ObjectId> = (0..len).map(|_| h.alloc(64)).collect();
        h.add_root(ids[0]);
        for w in ids.windows(2) {
            h.add_ref(w[0], w[1]);
        }
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        (h, ids)
    }

    fn run(h: &mut Heap, depth: u32, ws: HashSet<ObjectId>) -> (GcStats, GroupingOutcome) {
        GroupingGc::new(GcCostModel::default(), depth, ws).collect_grouping(h, &mut NoTouch)
    }

    #[test]
    fn nro_classification_follows_depth() {
        let (mut h, ids) = aged_chain(10);
        let (_, out) = run(&mut h, 2, HashSet::new());
        assert_eq!(out.nro_objects, 3); // depths 0, 1, 2
        for (i, &id) in ids.iter().enumerate() {
            let expect = if i <= 2 { ObjectClass::Nro } else { ObjectClass::Cold };
            assert_eq!(h.object(id).class(), Some(expect), "object {i}");
        }
    }

    #[test]
    fn fyo_classification_uses_newly_allocated_flag() {
        let (mut h, ids) = aged_chain(6);
        // Young allocations since the last GC: FYO.
        let young = h.alloc(64);
        h.add_ref(ids[5], young);
        let (_, out) = run(&mut h, 1, HashSet::new());
        assert_eq!(out.fyo_objects, 1);
        assert_eq!(h.object(young).class(), Some(ObjectClass::Fyo));
        // NRO wins the label when both apply, but either way it is a launch
        // object.
        assert_eq!(out.launch_objects, out.nro_objects + out.fyo_objects);
    }

    #[test]
    fn ws_objects_group_into_ws_regions() {
        let (mut h, ids) = aged_chain(8);
        let ws: HashSet<ObjectId> = [ids[5], ids[6]].into_iter().collect();
        let (_, out) = run(&mut h, 1, ws);
        assert_eq!(out.ws_objects, 2);
        assert_eq!(h.object(ids[5]).class(), Some(ObjectClass::Ws));
        assert_eq!(h.region(h.object(ids[5]).region()).kind(), RegionKind::Ws);
        assert!(!out.ws_ranges.is_empty());
    }

    #[test]
    fn classes_land_in_disjoint_regions() {
        let (mut h, ids) = aged_chain(20);
        let ws: HashSet<ObjectId> = [ids[10]].into_iter().collect();
        let (_, out) = run(&mut h, 2, ws);
        // Every live object sits in a region whose kind matches its class.
        for &id in &ids {
            let kind = h.region(h.object(id).region()).kind();
            match h.object(id).class() {
                Some(ObjectClass::Nro) | Some(ObjectClass::Fyo) => {
                    assert_eq!(kind, RegionKind::Launch)
                }
                Some(ObjectClass::Ws) => assert_eq!(kind, RegionKind::Ws),
                Some(ObjectClass::Cold) => assert_eq!(kind, RegionKind::Cold),
                None => panic!("FGO must be classified"),
            }
        }
        // Ranges of the three groups never overlap.
        let mut all = Vec::new();
        all.extend(&out.launch_ranges);
        all.extend(&out.ws_ranges);
        all.extend(&out.cold_ranges);
        for (i, &(b1, l1)) in all.iter().enumerate() {
            for &(b2, l2) in &all[i + 1..] {
                assert!(b1 + l1 <= b2 || b2 + l2 <= b1, "ranges overlap");
            }
        }
    }

    #[test]
    fn garbage_is_collected_during_grouping() {
        let (mut h, _) = aged_chain(4);
        h.alloc(128); // unreachable
        let (stats, _) = run(&mut h, 2, HashSet::new());
        assert_eq!(stats.objects_freed, 1);
        assert_eq!(stats.bytes_freed, 128);
    }

    #[test]
    fn bfs_depth_equals_graph_shortest_path() {
        let mut h = heap();
        let root = h.alloc(16);
        h.add_root(root);
        let a = h.alloc(16);
        let b = h.alloc(16);
        h.add_ref(root, a);
        h.add_ref(a, b);
        h.add_ref(root, b); // shortcut: b is depth 1
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        let (_, out) = run(&mut h, 1, HashSet::new());
        assert_eq!(out.nro_objects, 3, "root, a and b are all within depth 1");
        assert_eq!(h.object(b).class(), Some(ObjectClass::Nro));
    }

    #[test]
    fn bgo_stay_out_of_fgo_groups() {
        let (mut h, ids) = aged_chain(4);
        h.set_context(AllocContext::Background);
        let bgo = h.alloc(32);
        h.add_ref(ids[3], bgo);
        let (_, out) = run(&mut h, 1, HashSet::new());
        assert_eq!(h.object(bgo).class(), None);
        assert_eq!(h.region(h.object(bgo).region()).kind(), RegionKind::Bg);
        assert_eq!(out.launch_objects + out.ws_objects + out.cold_objects, 4);
        // The FGO→BGO edge survives as a dirty card for the next BGC.
        assert!(h.cards().is_dirty(h.address(ids[3])));
    }

    #[test]
    fn incremental_regrouping_preserves_reachability() {
        // Regression: an object that goes cold while referencing a non-cold
        // object must keep that edge visible (via its card) or a later
        // incremental re-grouping frees the target and leaves a dangling
        // reference that crashes the next full GC.
        let (mut h, ids) = aged_chain(40);
        let gc = |h: &mut Heap, incremental: bool| {
            GroupingGc::new(GcCostModel::default(), 2, HashSet::new())
                .with_incremental(incremental)
                .collect_grouping(h, &mut NoTouch)
        };
        gc(&mut h, false); // full grouping: deep chain objects go cold
                           // A cold object gains a reference to a brand-new object.
        let deep = ids[30];
        assert_eq!(h.region(h.object(deep).region()).kind(), RegionKind::Cold);
        let newcomer = h.alloc(64);
        h.add_ref(deep, newcomer);
        // Several incremental re-groupings; the newcomer must survive.
        for _ in 0..3 {
            gc(&mut h, true);
            assert!(h.contains(newcomer), "cold→new edge must keep the target alive");
        }
        // A full GC over the result must not find dangling references.
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert!(h.contains(newcomer));
        for &id in &ids {
            assert!(h.contains(id));
        }
    }

    #[test]
    fn incremental_regrouping_skips_cold_touches() {
        use fleet_sim::SimDuration;
        struct Recorder(Vec<u64>);
        impl MemoryTouch for Recorder {
            fn touch(&mut self, addr: u64, _size: u32) -> SimDuration {
                self.0.push(addr);
                SimDuration::ZERO
            }
        }
        let (mut h, _) = aged_chain(60);
        GroupingGc::new(GcCostModel::default(), 2, HashSet::new())
            .collect_grouping(&mut h, &mut NoTouch);
        let cold_addrs: Vec<u64> = h
            .object_ids()
            .filter(|&o| h.region(h.object(o).region()).kind() == RegionKind::Cold)
            .map(|o| h.address(o))
            .collect();
        assert!(!cold_addrs.is_empty());
        let mut rec = Recorder(Vec::new());
        GroupingGc::new(GcCostModel::default(), 2, HashSet::new())
            .with_incremental(true)
            .collect_grouping(&mut h, &mut rec);
        for addr in &rec.0 {
            assert!(
                !cold_addrs.contains(addr),
                "incremental re-grouping must not touch kept-cold objects"
            );
        }
    }

    #[test]
    fn deeper_depth_grows_launch_set() {
        let (mut h1, _) = aged_chain(30);
        let (_, shallow) = run(&mut h1, 1, HashSet::new());
        let (mut h2, _) = aged_chain(30);
        let (_, deep) = run(&mut h2, 8, HashSet::new());
        assert!(deep.launch_objects > shallow.launch_objects);
        assert!(deep.launch_bytes > shallow.launch_bytes);
    }
}
