//! ART's full concurrent-copying GC — the default-Android baseline.
//!
//! "The GC performs liveness analysis of objects by traversing the object
//! reference graph and copies live objects to a new memory location" (§2.2).
//! The crucial property for the paper is that the trace *touches every live
//! object*, resident or swapped — when a background app's pages have been
//! swapped out, this GC faults them all back in (Figure 4's access spike at
//! 37 s), which is why default Android cannot keep many apps cached.

use crate::collector::{
    audit_evac_abort, audit_gc_end, audit_gc_start, obs_gc_phase, Collector, GcCostModel, GcKind,
    GcStats, MemoryTouch,
};
use fleet_heap::{AllocContext, Heap, ObjectId, ObjectMarks, RegionKind, RegionSet};
use fleet_sim::SimDuration;

/// The full copying collector (DFS trace over the whole heap).
///
/// # Examples
///
/// ```
/// use fleet_gc::{Collector, FullCopyingGc, GcCostModel, NoTouch};
/// use fleet_heap::{Heap, HeapConfig};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let keep = heap.alloc(32);
/// heap.add_root(keep);
/// heap.alloc(32); // garbage
/// let stats = FullCopyingGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
/// assert_eq!(stats.objects_traced, 1);
/// assert_eq!(stats.objects_freed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FullCopyingGc {
    cost: GcCostModel,
}

impl FullCopyingGc {
    /// Creates a collector with the given cost model.
    pub fn new(cost: GcCostModel) -> Self {
        FullCopyingGc { cost }
    }
}

impl Collector for FullCopyingGc {
    fn collect(&mut self, heap: &mut Heap, touch: &mut dyn MemoryTouch) -> GcStats {
        let mut stats = GcStats::new(GcKind::Full);
        stats.stw += self.cost.stw_base;
        audit_gc_start(heap, GcKind::Full, true);

        let from_regions = heap.region_ids();
        heap.retire_alloc_targets();

        // DFS trace from the roots, touching every visited object at its
        // pre-copy address (this is what faults swapped pages back in).
        // The mark set is a dense bitmap over arena slots, not a hash set:
        // one bit test-and-set per edge.
        let mut live = ObjectMarks::for_heap(heap);
        let mut order: Vec<ObjectId> = Vec::new();
        let mut stack: Vec<ObjectId> = heap.roots().to_vec();
        for &r in heap.roots() {
            live.insert(r);
        }
        while let Some(obj) = stack.pop() {
            let (addr, size) = (heap.address(obj), heap.object(obj).size());
            stats.fault_stall += touch.touch(addr, size);
            stats.cpu += self.cost.per_object_trace;
            stats.objects_traced += 1;
            order.push(obj);
            for &next in heap.object(obj).refs() {
                if live.insert(next) {
                    stack.push(next);
                }
            }
        }
        let mark_end = stats.cpu + stats.fault_stall;
        let traced = stats.objects_traced;
        obs_gc_phase(heap, "gc_mark", 1, SimDuration::ZERO, mark_end, || vec![("objects", traced)]);

        // Copy survivors to fresh to-regions; Android treats all to-regions
        // equally, so placement only distinguishes FGO/BGO allocation spaces.
        // Every copy first asks the embedder for budget: a denial (DRAM too
        // low to back another to-region page under an armed fault plan)
        // aborts the evacuation — this and all remaining survivors stay at
        // their pre-copy addresses and the GC degrades to an in-place sweep.
        // The trace was exact, so soundness is unaffected; only compaction
        // is lost until a later collection retries.
        let mut aborted_at = None;
        let mut abort_obs: Option<(SimDuration, u32, u64)> = None;
        for (i, &obj) in order.iter().enumerate() {
            let size = heap.object(obj).size() as u64;
            if !touch.copy_budget(size) {
                let region = heap.object(obj).region().0;
                audit_evac_abort(heap, region, (order.len() - i) as u64);
                stats.evac_aborted = true;
                abort_obs = Some((
                    (stats.cpu + stats.fault_stall).saturating_sub(mark_end),
                    region,
                    (order.len() - i) as u64,
                ));
                aborted_at = Some(i);
                break;
            }
            let dest = match heap.object(obj).context() {
                AllocContext::Foreground => RegionKind::Eden,
                AllocContext::Background => RegionKind::Bg,
            };
            heap.copy_object(obj, dest);
            heap.set_class(obj, None); // a full GC destroys any RGS grouping
            stats.bytes_copied += size;
            stats.cpu += self.cost.copy_cost(size);
        }
        if let Some(i) = aborted_at {
            // In-place survivors lose their RGS grouping too: a full GC
            // invalidates every class, moved or not.
            for &obj in &order[i..] {
                heap.set_class(obj, None);
            }
        }
        let copy_dur = (stats.cpu + stats.fault_stall).saturating_sub(mark_end);
        let copied = stats.bytes_copied;
        obs_gc_phase(heap, "gc_copy", 1, mark_end, copy_dur, || vec![("bytes", copied)]);
        if let Some((rel, region, left)) = abort_obs {
            obs_gc_phase(heap, "gc_evac_abort", 2, rel, SimDuration::ZERO, || {
                vec![("region", u64::from(region)), ("objects_left", left)]
            });
        }

        // Sweep the from-regions: anything unmarked is garbage. After a
        // clean evacuation this empties and frees every from-region; after
        // an abort, regions still holding in-place survivors stay mapped.
        for &rid in &from_regions {
            let dead: Vec<ObjectId> =
                heap.region(rid).objects().iter().copied().filter(|&o| !live.contains(o)).collect();
            for obj in dead {
                stats.bytes_freed += heap.object(obj).size() as u64;
                stats.objects_freed += 1;
                heap.free_object(obj);
            }
            if heap.region(rid).objects().is_empty() {
                heap.free_region(rid);
                stats.regions_freed += 1;
            }
        }

        // All addresses moved: stale cards are dropped, then the one piece
        // of card information that outlives a full GC is rebuilt — which
        // foreground objects reference background objects (the BGC
        // remembered set). Everything else (old→young, cold boundaries) was
        // consumed: the young generation was collected and no cold regions
        // survive a full GC.
        heap.cards_mut().clear();
        let bg_regions: RegionSet =
            heap.regions().filter(|r| r.kind() == RegionKind::Bg).map(|r| r.id()).collect();
        if !bg_regions.is_empty() {
            let needs_card: Vec<ObjectId> = order
                .iter()
                .copied()
                .filter(|&o| {
                    heap.object(o).context() == AllocContext::Foreground
                        && heap
                            .object(o)
                            .refs()
                            .iter()
                            .any(|&r| bg_regions.contains(heap.object(r).region()))
                })
                .collect();
            for obj in needs_card {
                let addr = heap.address(obj);
                let size = heap.object(obj).size() as u64;
                heap.cards_mut().dirty_range(addr, size);
            }
        }
        // Post-GC allocations must open fresh (flagged) regions, not
        // continue into the to-regions that survivors were copied to.
        heap.retire_alloc_targets();
        heap.clear_newly_allocated_flags();
        heap.bump_gc_epoch();
        heap.update_limit_after_gc();
        audit_gc_end(heap, &stats);
        stats
    }

    fn kind(&self) -> GcKind {
        GcKind::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::NoTouch;
    use fleet_heap::{depth_map, HeapConfig};
    use fleet_sim::SimDuration;

    fn heap() -> Heap {
        Heap::new(HeapConfig { region_size: 4096, initial_limit: 8192, ..HeapConfig::default() })
    }

    #[test]
    fn collects_unreachable_graph() {
        let mut h = heap();
        let root = h.alloc(100);
        let kept = h.alloc(50);
        h.add_root(root);
        h.add_ref(root, kept);
        // Unreachable cycle.
        let a = h.alloc(10);
        let b = h.alloc(10);
        h.add_ref(a, b);
        h.add_ref(b, a);
        let stats = FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert_eq!(stats.objects_traced, 2);
        assert_eq!(stats.objects_freed, 2);
        assert_eq!(stats.bytes_freed, 20);
        assert!(h.contains(root) && h.contains(kept));
        assert!(!h.contains(a) && !h.contains(b));
    }

    #[test]
    fn preserves_reference_topology() {
        let mut h = heap();
        let root = h.alloc(64);
        h.add_root(root);
        let mut prev = root;
        let mut ids = vec![root];
        for _ in 0..20 {
            let next = h.alloc(32);
            h.add_ref(prev, next);
            prev = next;
            ids.push(next);
        }
        let before = depth_map(&h, None);
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        let after = depth_map(&h, None);
        assert_eq!(before, after, "copying must not change the graph shape");
        for id in ids {
            assert!(h.contains(id));
        }
    }

    #[test]
    fn frees_all_from_regions() {
        let mut h = heap();
        let root = h.alloc(100);
        h.add_root(root);
        for _ in 0..200 {
            h.alloc(100); // garbage filling several regions
        }
        let regions_before = h.stats().regions;
        assert!(regions_before > 2);
        let stats = FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert_eq!(stats.regions_freed, regions_before);
        // One compact region remains.
        assert_eq!(h.stats().regions, 1);
        assert_eq!(h.used_bytes(), 100);
    }

    #[test]
    fn working_set_is_whole_live_heap() {
        let mut h = heap();
        let root = h.alloc(16);
        h.add_root(root);
        let mut prev = root;
        for _ in 0..99 {
            let next = h.alloc(16);
            h.add_ref(prev, next);
            prev = next;
        }
        let stats = FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert_eq!(stats.objects_traced, 100);
        assert!(stats.cpu >= SimDuration::from_nanos(100 * 150));
    }

    #[test]
    fn touch_observer_sees_pre_copy_addresses() {
        struct Recorder(Vec<u64>);
        impl MemoryTouch for Recorder {
            fn touch(&mut self, addr: u64, _size: u32) -> SimDuration {
                self.0.push(addr);
                SimDuration::ZERO
            }
        }
        let mut h = heap();
        let root = h.alloc(100);
        h.add_root(root);
        let old_addr = h.address(root);
        let mut rec = Recorder(Vec::new());
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut rec);
        assert_eq!(rec.0, vec![old_addr]);
        assert_ne!(h.address(root), old_addr);
    }

    #[test]
    fn updates_heap_limit_and_epoch() {
        let mut h = heap();
        let root = h.alloc(3000);
        h.add_root(root);
        for _ in 0..10 {
            h.alloc(3000);
        }
        assert!(h.should_trigger_gc());
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert_eq!(h.gc_epoch(), 1);
        assert!(!h.should_trigger_gc());
        assert_eq!(h.limit(), 8192.max((3000f64 * 2.0) as u64));
    }

    /// Grants the first `grants` copy requests, then denies everything —
    /// the shape of a device whose DRAM runs out mid-evacuation.
    struct Budget {
        grants: usize,
    }

    impl MemoryTouch for Budget {
        fn touch(&mut self, _addr: u64, _size: u32) -> SimDuration {
            SimDuration::ZERO
        }
        fn copy_budget(&mut self, _bytes: u64) -> bool {
            if self.grants == 0 {
                false
            } else {
                self.grants -= 1;
                true
            }
        }
    }

    #[test]
    fn evac_abort_leaves_survivors_in_place_and_still_sweeps() {
        let mut h = heap();
        let root = h.alloc(64);
        h.add_root(root);
        let mut prev = root;
        let mut live_ids = vec![root];
        for _ in 0..9 {
            let next = h.alloc(64);
            h.add_ref(prev, next);
            prev = next;
            live_ids.push(next);
        }
        for _ in 0..20 {
            h.alloc(64); // garbage interleaved with the survivors
        }
        let before_addrs: Vec<u64> = live_ids.iter().map(|&o| h.address(o)).collect();
        let shape_before = depth_map(&h, None);

        let stats =
            FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut Budget { grants: 3 });

        // Exactly three survivors moved; the other seven kept their
        // pre-copy addresses.
        assert_eq!(stats.bytes_copied, 3 * 64);
        let moved =
            live_ids.iter().zip(&before_addrs).filter(|&(&o, &addr)| h.address(o) != addr).count();
        assert_eq!(moved, 3);
        // The sweep is unaffected by the abort: every garbage object died.
        assert_eq!(stats.objects_freed, 20);
        assert_eq!(stats.bytes_freed, 20 * 64);
        for id in &live_ids {
            assert!(h.contains(*id));
        }
        assert_eq!(depth_map(&h, None), shape_before, "abort must not change the graph");
        h.validate_refs().unwrap();
    }

    #[test]
    fn zero_budget_degrades_to_in_place_sweep() {
        let mut h = heap();
        let root = h.alloc(100);
        h.add_root(root);
        let addr = h.address(root);
        for _ in 0..50 {
            h.alloc(100);
        }
        let regions_before = h.stats().regions;
        let stats =
            FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut Budget { grants: 0 });
        assert_eq!(stats.bytes_copied, 0);
        assert_eq!(stats.objects_freed, 50);
        assert_eq!(h.address(root), addr, "nothing may move without budget");
        // Only the root's region survives; the all-garbage ones were freed.
        assert_eq!(stats.regions_freed, regions_before - 1);
        assert_eq!(h.stats().regions, 1);
        h.validate_refs().unwrap();
    }

    #[test]
    fn empty_heap_collection_is_safe() {
        let mut h = heap();
        let stats = FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert_eq!(stats.objects_traced, 0);
        assert_eq!(stats.objects_freed, 0);
    }
}
