//! Fleet's Background-object GC (§5.2).
//!
//! BGC replaces the major GC while an app is cached in the background. It
//! "aims to free garbage objects only from BGO to minimize access to the
//! FGO":
//!
//! 1. **Root set** — the ordinary roots plus every foreground object whose
//!    card is dirty (it was written since the last BGC, so it may hold a
//!    reference into the background heap). Dirty FGO were written recently,
//!    hence resident — scanning them does not fault swapped pages.
//! 2. **Trace** — references into foreground regions are treated as live
//!    *without accessing the object* ("it considers this object as a live
//!    object and does not access it"); only background objects are visited.
//! 3. **Evacuate** — live BGO are copied to fresh background to-regions and
//!    the background from-regions are released.
//! 4. **Card upkeep** — cards are cleared, then re-dirtied for any scanned
//!    FGO that still references a live BGO, so the next BGC sees it again.
//!    (ART calls this card *aging*; without it a second BGC would free
//!    reachable BGO.)

use crate::collector::{
    audit_evac_abort, audit_gc_end, audit_gc_start, obs_gc_phase, Collector, GcCostModel, GcKind,
    GcStats, MemoryTouch,
};
use fleet_heap::{Heap, ObjectId, ObjectMarks, RegionId, RegionKind, RegionSet};
use fleet_sim::SimDuration;

/// The background-object collector.
///
/// # Examples
///
/// ```
/// use fleet_gc::{BackgroundObjectGc, Collector, GcCostModel, NoTouch};
/// use fleet_heap::{AllocContext, Heap, HeapConfig};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let fgo = heap.alloc(64);
/// heap.add_root(fgo);
/// heap.set_context(AllocContext::Background);
/// heap.alloc(64); // background garbage
/// let stats = BackgroundObjectGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
/// assert_eq!(stats.objects_freed, 1);
/// assert!(heap.contains(fgo)); // FGO is out of scope for BGC
/// ```
#[derive(Debug, Clone)]
pub struct BackgroundObjectGc {
    cost: GcCostModel,
}

impl BackgroundObjectGc {
    /// Creates a collector with the given cost model.
    pub fn new(cost: GcCostModel) -> Self {
        BackgroundObjectGc { cost }
    }
}

impl Collector for BackgroundObjectGc {
    fn collect(&mut self, heap: &mut Heap, touch: &mut dyn MemoryTouch) -> GcStats {
        let mut stats = GcStats::new(GcKind::Bgc);
        stats.stw += self.cost.stw_base;
        audit_gc_start(heap, GcKind::Bgc, false);

        let bg_regions: Vec<RegionId> =
            heap.regions().filter(|r| r.kind() == RegionKind::Bg).map(|r| r.id()).collect();
        let bg_set: RegionSet = bg_regions.iter().copied().collect();
        heap.retire_alloc_targets();

        let is_bgo = |heap: &Heap, obj: ObjectId| bg_set.contains(heap.object(obj).region());

        // Scan dirty cards for modified foreground objects.
        let mut dirty_fgo: Vec<ObjectId> = Vec::new();
        let dirty: Vec<usize> = heap.cards().dirty_cards().collect();
        for card in dirty {
            stats.cards_scanned += 1;
            stats.cpu += self.cost.per_card_scan;
            for obj in heap.objects_in_card(card) {
                if !is_bgo(heap, obj) {
                    dirty_fgo.push(obj);
                }
            }
        }

        // Trace. FGO sources (roots and dirty FGO) contribute their refs;
        // FGO found *during* the trace are live-by-fiat and never accessed.
        // Mark state lives in dense arena-slot bitmaps instead of hash sets.
        let mut live = ObjectMarks::for_heap(heap);
        let mut order: Vec<ObjectId> = Vec::new();
        let mut stack: Vec<ObjectId> = Vec::new();
        let mut seeded = ObjectMarks::for_heap(heap);
        let roots: Vec<ObjectId> = heap.roots().to_vec();
        for obj in roots.iter().copied().chain(dirty_fgo.iter().copied()) {
            if is_bgo(heap, obj) {
                if live.insert(obj) {
                    stack.push(obj);
                }
            } else if seeded.insert(obj) {
                // Scanning a root/dirty FGO touches it (cheap: it is resident).
                stats.fault_stall += touch.touch(heap.address(obj), heap.object(obj).size());
                stats.cpu += self.cost.per_object_trace;
                stats.objects_traced += 1;
                for &next in heap.object(obj).refs() {
                    if is_bgo(heap, next) && live.insert(next) {
                        stack.push(next);
                    }
                }
            }
        }
        while let Some(obj) = stack.pop() {
            order.push(obj);
            stats.fault_stall += touch.touch(heap.address(obj), heap.object(obj).size());
            stats.cpu += self.cost.per_object_trace;
            stats.objects_traced += 1;
            for &next in heap.object(obj).refs() {
                // References to FGO: live, not accessed, not traversed.
                if is_bgo(heap, next) && live.insert(next) {
                    stack.push(next);
                }
            }
        }

        let mark_end = stats.cpu + stats.fault_stall;
        let traced = stats.objects_traced;
        obs_gc_phase(heap, "gc_mark", 1, SimDuration::ZERO, mark_end, || {
            vec![("objects", traced), ("cards", stats.cards_scanned)]
        });

        // Evacuate live BGO into fresh background regions. A copy-budget
        // denial aborts the evacuation: the remaining live BGO stay where
        // they are and only proven-dead objects are swept below.
        let mut abort_obs: Option<(SimDuration, u32, u64)> = None;
        for (i, &obj) in order.iter().enumerate() {
            let size = heap.object(obj).size() as u64;
            if !touch.copy_budget(size) {
                audit_evac_abort(heap, heap.object(obj).region().0, (order.len() - i) as u64);
                stats.evac_aborted = true;
                abort_obs = Some((
                    (stats.cpu + stats.fault_stall).saturating_sub(mark_end),
                    heap.object(obj).region().0,
                    (order.len() - i) as u64,
                ));
                break;
            }
            heap.copy_object(obj, RegionKind::Bg);
            stats.bytes_copied += size;
            stats.cpu += self.cost.copy_cost(size);
        }
        let copy_dur = (stats.cpu + stats.fault_stall).saturating_sub(mark_end);
        let copied = stats.bytes_copied;
        obs_gc_phase(heap, "gc_copy", 1, mark_end, copy_dur, || vec![("bytes", copied)]);
        if let Some((rel, region, left)) = abort_obs {
            obs_gc_phase(heap, "gc_evac_abort", 2, rel, SimDuration::ZERO, || {
                vec![("region", u64::from(region)), ("objects_left", left)]
            });
        }

        // Free dead BGO; background from-regions are released only once
        // they hold nothing (always, unless the evacuation aborted).
        for rid in bg_regions {
            let dead: Vec<ObjectId> =
                heap.region(rid).objects().iter().copied().filter(|&o| !live.contains(o)).collect();
            for obj in dead {
                stats.bytes_freed += heap.object(obj).size() as u64;
                stats.objects_freed += 1;
                heap.free_object(obj);
            }
            if heap.region(rid).objects().is_empty() {
                heap.free_region(rid);
                stats.regions_freed += 1;
            }
        }

        // Card aging. BGC consumed only one piece of the card table's
        // information — which FGO may reference background objects. The same
        // dirty cards also serve as the minor GC's old→young remembered set
        // and as the incremental re-grouping's cold remembered set, and BGC
        // cannot tell those apart without tracing the foreground heap (the
        // very thing it exists to avoid). So every scanned card is
        // re-dirtied: cards only retire when a collector that consumes their
        // full meaning (a full GC or a full grouping) clears them.
        heap.cards_mut().clear();
        for fgo in seeded.iter() {
            let addr = heap.address(fgo);
            let size = heap.object(fgo).size() as u64;
            heap.cards_mut().dirty_range(addr, size);
        }

        heap.bump_gc_epoch();
        heap.update_limit_after_gc();
        audit_gc_end(heap, &stats);
        stats
    }

    fn kind(&self) -> GcKind {
        GcKind::Bgc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::NoTouch;
    use fleet_heap::{AllocContext, HeapConfig};
    use fleet_sim::SimDuration;

    fn heap() -> Heap {
        Heap::new(HeapConfig { region_size: 4096, initial_limit: 8192, ..HeapConfig::default() })
    }

    /// FGO graph + switch to background.
    fn backgrounded_heap(fgo_count: usize) -> (Heap, Vec<ObjectId>) {
        let mut h = heap();
        let mut fgo = Vec::new();
        let root = h.alloc(64);
        h.add_root(root);
        fgo.push(root);
        let mut prev = root;
        for _ in 1..fgo_count {
            let o = h.alloc(64);
            h.add_ref(prev, o);
            prev = o;
            fgo.push(o);
        }
        // Cards dirtied during construction are ancient history by the time
        // the app is backgrounded; the grouping GC (or a full GC) would have
        // consumed them. Clear to model a settled foreground heap.
        h.cards_mut().clear();
        h.set_context(AllocContext::Background);
        (h, fgo)
    }

    #[test]
    fn frees_bgo_garbage_only() {
        let (mut h, fgo) = backgrounded_heap(10);
        let bgo_live = h.alloc(32);
        h.add_root(bgo_live);
        h.alloc(32); // BGO garbage
        h.alloc(32); // BGO garbage
        let stats = BackgroundObjectGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert_eq!(stats.objects_freed, 2);
        assert!(h.contains(bgo_live));
        for o in fgo {
            assert!(h.contains(o), "BGC must never free an FGO");
        }
    }

    #[test]
    fn working_set_excludes_clean_fgo() {
        let (mut h, _fgo) = backgrounded_heap(100);
        // A couple of BGO.
        let b = h.alloc(32);
        h.add_root(b);
        let stats = BackgroundObjectGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        // Traced: the FGO root chain head (seeded from roots) + 1 BGO;
        // the 99 clean chain FGO are never visited.
        assert!(stats.objects_traced <= 3, "traced {}", stats.objects_traced);
    }

    #[test]
    fn dirty_fgo_keeps_bgo_alive() {
        let (mut h, fgo) = backgrounded_heap(5);
        let hidden_bgo = h.alloc(32);
        // Reachable ONLY through an FGO written while in the background.
        h.add_ref(fgo[3], hidden_bgo); // write barrier dirties fgo[3]'s card
        let stats = BackgroundObjectGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert!(h.contains(hidden_bgo));
        assert!(stats.cards_scanned > 0);
        assert_eq!(stats.objects_freed, 0);
    }

    #[test]
    fn card_aging_preserves_liveness_across_bgcs() {
        let (mut h, fgo) = backgrounded_heap(5);
        let hidden_bgo = h.alloc(32);
        h.add_ref(fgo[3], hidden_bgo);
        let mut gc = BackgroundObjectGc::new(GcCostModel::default());
        gc.collect(&mut h, &mut NoTouch);
        assert!(h.contains(hidden_bgo));
        // Second BGC with NO new writes: the re-dirtied card must still
        // protect the BGO.
        gc.collect(&mut h, &mut NoTouch);
        assert!(h.contains(hidden_bgo), "card aging must keep FGO→BGO edges visible");
    }

    #[test]
    fn bgc_preserves_the_minor_gc_remembered_set() {
        // Regression: an old FGO referencing a *young* FGO must keep its
        // dirty card across a BGC, or a following minor GC frees the young
        // object and leaves a dangling reference.
        use crate::minor::MinorGc;
        let (mut h, fgo) = backgrounded_heap(5);
        // Young FGO (allocate in foreground context to land in Eden).
        h.set_context(AllocContext::Foreground);
        let young = h.alloc(32);
        h.add_ref(fgo[3], young); // dirties fgo[3]'s card
        h.set_context(AllocContext::Background);
        h.alloc(32); // some BGO garbage so the BGC has work
        BackgroundObjectGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert!(h.contains(young), "BGC must not touch young FGO");
        // The card must still be dirty, or the minor GC below is unsound.
        assert!(h.cards().is_dirty(h.address(fgo[3])));
        MinorGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert!(h.contains(young), "young FGO reachable via carded old FGO must survive");
        h.validate_refs().expect("no dangling references");
    }

    #[test]
    fn bgo_evacuation_compacts_into_bg_regions() {
        let (mut h, _) = backgrounded_heap(3);
        let keep = h.alloc(32);
        h.add_root(keep);
        for _ in 0..200 {
            h.alloc(32); // garbage spanning multiple Bg regions
        }
        let bg_regions_before = h.regions().filter(|r| r.kind() == RegionKind::Bg).count();
        assert!(bg_regions_before >= 2);
        BackgroundObjectGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        let bg_regions_after = h.regions().filter(|r| r.kind() == RegionKind::Bg).count();
        assert_eq!(bg_regions_after, 1);
        assert_eq!(h.region(h.object(keep).region()).kind(), RegionKind::Bg);
    }

    #[test]
    fn fgo_addresses_never_move() {
        let (mut h, fgo) = backgrounded_heap(10);
        let addrs: Vec<u64> = fgo.iter().map(|&o| h.address(o)).collect();
        h.alloc(32);
        BackgroundObjectGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        let after: Vec<u64> = fgo.iter().map(|&o| h.address(o)).collect();
        assert_eq!(addrs, after, "BGC must not move foreground objects");
    }

    #[test]
    fn touch_never_hits_clean_fgo_addresses() {
        struct Recorder(Vec<u64>);
        impl MemoryTouch for Recorder {
            fn touch(&mut self, addr: u64, _size: u32) -> SimDuration {
                self.0.push(addr);
                SimDuration::ZERO
            }
        }
        let (mut h, fgo) = backgrounded_heap(50);
        let clean_fgo_addrs: Vec<u64> = fgo[1..].iter().map(|&o| h.address(o)).collect();
        let b = h.alloc(32);
        h.add_root(b);
        let mut rec = Recorder(Vec::new());
        BackgroundObjectGc::new(GcCostModel::default()).collect(&mut h, &mut rec);
        for addr in &rec.0 {
            assert!(
                !clean_fgo_addrs.contains(addr),
                "BGC touched a clean FGO at {addr} — that is the page-fault storm Fleet avoids"
            );
        }
    }
}
