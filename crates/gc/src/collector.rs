//! The collector interface, cost model and statistics.

use fleet_heap::Heap;
use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which collector produced a [`GcStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GcKind {
    /// ART full concurrent-copying GC (the Android baseline).
    Full,
    /// ART minor GC over newly-allocated regions.
    Minor,
    /// Marvin's bookmarking GC.
    Marvin,
    /// Fleet's background-object GC (§5.2).
    Bgc,
    /// Fleet's RGS grouping GC (§5.3.1).
    Grouping,
}

impl std::fmt::Display for GcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GcKind::Full => "full",
            GcKind::Minor => "minor",
            GcKind::Marvin => "marvin",
            GcKind::Bgc => "bgc",
            GcKind::Grouping => "grouping",
        };
        write!(f, "{s}")
    }
}

/// Observer for the memory the GC thread touches.
///
/// The embedding layer implements this by forwarding to the kernel model's
/// page LRU, so GC reads promote pages and fault swapped ones back in — the
/// §3.2 "GC may offset the effects of swapping" mechanism. The returned
/// duration is the stall the GC thread suffered (zero for resident pages).
pub trait MemoryTouch {
    /// The GC read `size` bytes at heap address `addr`.
    fn touch(&mut self, addr: u64, size: u32) -> SimDuration;

    /// Asks the embedder whether `bytes` more can be copied to a to-region.
    ///
    /// Copying collectors call this before evacuating each object. A `false`
    /// answer means the embedding layer cannot back another to-region page
    /// (DRAM below the low watermark while a fault plan is armed): the
    /// collector must abort evacuation — remaining live objects stay in
    /// place — and degrade to an in-place sweep of the garbage it has
    /// already proven dead. The default always grants, which preserves the
    /// legacy infallible-copy behaviour for [`NoTouch`] and quiet devices.
    fn copy_budget(&mut self, bytes: u64) -> bool {
        let _ = bytes;
        true
    }
}

/// A [`MemoryTouch`] that records nothing and never stalls; for unit tests
/// and heap-only usage.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTouch;

impl MemoryTouch for NoTouch {
    fn touch(&mut self, _addr: u64, _size: u32) -> SimDuration {
        SimDuration::ZERO
    }
}

/// CPU-cost constants for GC work, scaled for a mobile big core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcCostModel {
    /// Cost of visiting one object during tracing (mark + scan refs).
    pub per_object_trace: SimDuration,
    /// Cost per byte copied to a to-region.
    pub copy_bytes_per_sec: f64,
    /// Cost of scanning one dirty card.
    pub per_card_scan: SimDuration,
    /// Base stop-the-world pause (two pause points of the CC collector).
    pub stw_base: SimDuration,
    /// Marvin: per-stub reconciliation cost inside the STW pause. This is
    /// drawback (i) of Marvin in §3.1 — "a long STW pause time to maintain
    /// consistency between the separated reference information and objects".
    pub marvin_per_stub_stw: SimDuration,
}

impl Default for GcCostModel {
    fn default() -> Self {
        GcCostModel {
            per_object_trace: SimDuration::from_nanos(150),
            copy_bytes_per_sec: 4.0e9,
            per_card_scan: SimDuration::from_nanos(200),
            stw_base: SimDuration::from_micros(800),
            marvin_per_stub_stw: SimDuration::from_nanos(2500),
        }
    }
}

impl GcCostModel {
    /// CPU cost of copying `bytes` bytes.
    pub fn copy_cost(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.copy_bytes_per_sec)
    }
}

/// What one collection did and what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcStats {
    /// Which collector ran.
    pub kind: GcKind,
    /// Objects the GC thread visited — the paper's "GC working set"
    /// (Figure 12).
    pub objects_traced: u64,
    /// Bytes copied to to-regions.
    pub bytes_copied: u64,
    /// Garbage objects freed.
    pub objects_freed: u64,
    /// Garbage bytes freed.
    pub bytes_freed: u64,
    /// Regions released.
    pub regions_freed: u64,
    /// Dirty cards scanned.
    pub cards_scanned: u64,
    /// Stop-the-world pause experienced by mutators.
    pub stw: SimDuration,
    /// Total GC-thread CPU time (tracing, copying, card scans).
    pub cpu: SimDuration,
    /// Time the GC thread stalled on swapped-in pages.
    pub fault_stall: SimDuration,
    /// True when the copy phase ran out of copy budget and aborted
    /// evacuation (remaining live objects stayed in place; see
    /// [`MemoryTouch::copy_budget`]).
    pub evac_aborted: bool,
}

impl GcStats {
    pub(crate) fn new(kind: GcKind) -> Self {
        GcStats {
            kind,
            objects_traced: 0,
            bytes_copied: 0,
            objects_freed: 0,
            bytes_freed: 0,
            regions_freed: 0,
            cards_scanned: 0,
            stw: SimDuration::ZERO,
            cpu: SimDuration::ZERO,
            fault_stall: SimDuration::ZERO,
            evac_aborted: false,
        }
    }

    /// Wall-clock duration of the collection (CPU + fault stalls).
    pub fn duration(&self) -> SimDuration {
        self.cpu + self.fault_stall
    }
}

/// Emits a [`fleet_audit::AuditEvent::GcStart`] into the heap's flight-
/// recorder log; compiled to a no-op without the `audit` feature.
///
/// `complete` declares the collection's soundness contract to the auditor:
/// a complete collection (full, Marvin, non-incremental grouping) sweeps the
/// whole heap, so everything unreachable at start must be gone at the end;
/// a partial collection (minor, BGC, incremental grouping) only promises
/// never to free a live object.
#[cfg(feature = "audit")]
pub(crate) fn audit_gc_start(heap: &mut Heap, kind: GcKind, complete: bool) {
    heap.audit_log_mut().push(|pid| fleet_audit::AuditEvent::GcStart {
        pid,
        kind: kind.to_string(),
        complete,
    });
}

#[cfg(not(feature = "audit"))]
pub(crate) fn audit_gc_start(_heap: &mut Heap, _kind: GcKind, _complete: bool) {}

/// Emits a [`fleet_audit::AuditEvent::GcEnd`] carrying the collection's
/// reported counters, which the auditor cross-checks against the object
/// events observed inside the window.
#[cfg(feature = "audit")]
pub(crate) fn audit_gc_end(heap: &mut Heap, stats: &GcStats) {
    let (kind, traced, copied, freed, freed_bytes) = (
        stats.kind,
        stats.objects_traced,
        stats.bytes_copied,
        stats.objects_freed,
        stats.bytes_freed,
    );
    heap.audit_log_mut().push(move |pid| fleet_audit::AuditEvent::GcEnd {
        pid,
        kind: kind.to_string(),
        objects_traced: traced,
        bytes_copied: copied,
        objects_freed: freed,
        bytes_freed: freed_bytes,
    });
}

#[cfg(not(feature = "audit"))]
pub(crate) fn audit_gc_end(_heap: &mut Heap, _stats: &GcStats) {}

/// Emits a [`fleet_audit::AuditEvent::EvacAbort`] when a copying collector
/// runs out of copy budget mid-evacuation: `region` is the from-region of
/// the first object denied, `objects_left` the live objects left in place.
#[cfg(feature = "audit")]
pub(crate) fn audit_evac_abort(heap: &mut Heap, region: u32, objects_left: u64) {
    heap.audit_log_mut().push(move |pid| fleet_audit::AuditEvent::EvacAbort {
        pid,
        region,
        objects_left,
    });
}

#[cfg(not(feature = "audit"))]
pub(crate) fn audit_evac_abort(_heap: &mut Heap, _region: u32, _objects_left: u64) {}

/// Pushes one GC phase span into the heap's obs log (see `crates/obs`):
/// `"gc_mark"` / `"gc_copy"` at depth 1 (placed by the device layer under
/// its per-collection root span), `"gc_evac_abort"` at depth 2 inside the
/// copy phase. `rel_start` is the offset from the parent span's start;
/// `args` is only evaluated if the log is actually recording. Compiled to
/// a no-op without the `obs` feature.
#[cfg(feature = "obs")]
pub(crate) fn obs_gc_phase(
    heap: &mut Heap,
    name: &'static str,
    depth: u8,
    rel_start: SimDuration,
    dur: SimDuration,
    args: impl FnOnce() -> Vec<(&'static str, u64)>,
) {
    heap.obs_log_mut().push(move |pid| {
        fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
            pid,
            name,
            cat: "gc",
            depth,
            rel_start: rel_start.as_nanos(),
            dur: dur.as_nanos(),
            args: args(),
        })
    });
}

#[cfg(not(feature = "obs"))]
pub(crate) fn obs_gc_phase(
    _heap: &mut Heap,
    _name: &'static str,
    _depth: u8,
    _rel_start: SimDuration,
    _dur: SimDuration,
    _args: impl FnOnce() -> Vec<(&'static str, u64)>,
) {
}

/// A garbage collector over the modelled heap.
pub trait Collector {
    /// Runs one collection, reporting object touches to `touch`.
    fn collect(&mut self, heap: &mut Heap, touch: &mut dyn MemoryTouch) -> GcStats;

    /// The collector's kind tag.
    fn kind(&self) -> GcKind;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_copy_cost() {
        let m = GcCostModel::default();
        let c = m.copy_cost(4_000_000_000);
        assert_eq!(c, SimDuration::from_secs(1));
        assert_eq!(m.copy_cost(0), SimDuration::ZERO);
    }

    #[test]
    fn stats_duration_sums_components() {
        let mut s = GcStats::new(GcKind::Full);
        s.cpu = SimDuration::from_millis(2);
        s.fault_stall = SimDuration::from_millis(3);
        assert_eq!(s.duration(), SimDuration::from_millis(5));
    }

    #[test]
    fn kind_display() {
        assert_eq!(GcKind::Bgc.to_string(), "bgc");
        assert_eq!(GcKind::Grouping.to_string(), "grouping");
    }

    #[test]
    fn no_touch_is_free() {
        assert_eq!(NoTouch.touch(0, 100), SimDuration::ZERO);
    }
}
