//! Marvin's bookmarking GC and object-granularity swap helpers.
//!
//! Marvin (Lebeck et al., ATC '20) is the paper's co-design baseline
//! (Table 1): it "saves corresponding references for each swapped-out
//! object, allowing it to locate live objects based on the references
//! without touching and swapping them back" (§2.2). The paper attributes
//! three drawbacks to it (§3.1/§6), each of which is a first-class mechanism
//! here:
//!
//! 1. **Long stop-the-world pauses** — reconciliation of the stub table is
//!    charged per stub inside the STW window,
//! 2. **Object-granularity analysis vs page-granularity swap** — only
//!    objects larger than a threshold (1024 B in §6) are bookmarked, and a
//!    page can only leave DRAM when *every* live byte on it belongs to
//!    bookmarked objects ([`swappable_pages`]); apps made of small objects
//!    therefore barely swap at all (Figure 11b),
//! 3. **LRU-agnostic eviction** — victim selection ignores the next
//!    hot-launch; that policy lives in the scheme layer.
//!
//! The collector itself is non-moving (bookmarks pin addresses), so
//! fragmentation persists — its heap limit tracks *used* rather than live
//! bytes.

use crate::collector::{
    audit_gc_end, audit_gc_start, Collector, GcCostModel, GcKind, GcStats, MemoryTouch,
};
use fleet_heap::{Heap, ObjectId, ObjectMarks, PAGE_SIZE};

/// Marvin's persistent bookmarking state: which objects are swapped out and
/// therefore represented by resident stubs.
///
/// The stub table is a dense bitmap over arena slots (object ids are never
/// recycled), so the per-object `is_swapped` check on the trace hot path is
/// one bit test instead of a hash probe.
#[derive(Debug, Clone, Default)]
pub struct MarvinState {
    threshold: u32,
    swapped: ObjectMarks,
}

impl MarvinState {
    /// Creates a state with the large-object threshold (the paper evaluates
    /// Marvin with 1024 bytes, §6).
    pub fn new(threshold: u32) -> Self {
        MarvinState { threshold, swapped: ObjectMarks::default() }
    }

    /// The large-object threshold in bytes.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// True if `obj` is eligible for object-granularity swap.
    pub fn eligible(&self, heap: &Heap, obj: ObjectId) -> bool {
        heap.object(obj).size() >= self.threshold
    }

    /// Bookmarks `obj` as swapped out. Ineligible (small) objects are
    /// ignored, mirroring Marvin's inability to handle them. Returns whether
    /// the object was bookmarked.
    pub fn mark_swapped(&mut self, heap: &Heap, obj: ObjectId) -> bool {
        if self.eligible(heap, obj) {
            self.swapped.insert(obj);
            true
        } else {
            false
        }
    }

    /// Clears the bookmark after the object faults back in.
    pub fn mark_resident(&mut self, obj: ObjectId) {
        self.swapped.remove(obj);
    }

    /// True if `obj` is currently bookmarked (swapped out).
    pub fn is_swapped(&self, obj: ObjectId) -> bool {
        self.swapped.contains(obj)
    }

    /// Number of live stubs (drives the STW reconciliation cost).
    pub fn stub_count(&self) -> usize {
        self.swapped.len()
    }

    /// Iterates the bookmarked objects in ascending id order.
    pub fn swapped_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.swapped.iter()
    }
}

/// Pages every live byte of which belongs to bookmarked objects — the only
/// pages Marvin can actually release. This is the paper's swap-amplification
/// mechanism: one small resident object pins its whole page.
pub fn swappable_pages(heap: &Heap, state: &MarvinState) -> Vec<u64> {
    let mut pages: Vec<u64> = Vec::new();
    for region in heap.regions() {
        if region.objects().is_empty() {
            continue;
        }
        let first_page = region.base() / PAGE_SIZE;
        let page_count = region.size() as u64 / PAGE_SIZE;
        // A page is pinned if any non-bookmarked object overlaps it.
        let mut pinned = vec![false; page_count as usize];
        let mut occupied = vec![false; page_count as usize];
        for &obj in region.objects() {
            let o = heap.object(obj);
            let start = o.offset() as u64;
            let end = start + o.size() as u64;
            let lo = (start / PAGE_SIZE) as usize;
            let hi = ((end - 1) / PAGE_SIZE) as usize;
            let swapped = state.is_swapped(obj);
            for p in lo..=hi {
                occupied[p] = true;
                if !swapped {
                    pinned[p] = true;
                }
            }
        }
        for (p, (&pin, &occ)) in pinned.iter().zip(&occupied).enumerate() {
            if occ && !pin {
                pages.push(first_page + p as u64);
            }
        }
    }
    pages
}

/// The bookmarking collector. Owns the persistent [`MarvinState`].
///
/// # Examples
///
/// ```
/// use fleet_gc::{Collector, GcCostModel, MarvinGc, NoTouch};
/// use fleet_heap::{Heap, HeapConfig};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let root = heap.alloc(2048);
/// heap.add_root(root);
/// let mut gc = MarvinGc::new(GcCostModel::default(), 1024);
/// let stats = gc.collect(&mut heap, &mut NoTouch);
/// assert_eq!(stats.objects_traced, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MarvinGc {
    cost: GcCostModel,
    state: MarvinState,
}

impl MarvinGc {
    /// Creates a bookmarking collector with the given large-object
    /// threshold.
    pub fn new(cost: GcCostModel, threshold: u32) -> Self {
        MarvinGc { cost, state: MarvinState::new(threshold) }
    }

    /// The bookmarking state.
    pub fn state(&self) -> &MarvinState {
        &self.state
    }

    /// Mutable access to the bookmarking state (the scheme layer updates it
    /// as it swaps objects in and out).
    pub fn state_mut(&mut self) -> &mut MarvinState {
        &mut self.state
    }
}

impl Collector for MarvinGc {
    fn collect(&mut self, heap: &mut Heap, touch: &mut dyn MemoryTouch) -> GcStats {
        let mut stats = GcStats::new(GcKind::Marvin);
        // Drawback (i): reconciling stubs with objects needs a long pause.
        stats.stw +=
            self.cost.stw_base + self.cost.marvin_per_stub_stw * self.state.stub_count() as u64;
        audit_gc_start(heap, GcKind::Marvin, true);

        // Mark phase: bookmarked objects are traversed via their resident
        // stubs (reference metadata) without touching object memory. The
        // mark set is a dense bitmap over arena slots.
        let mut live = ObjectMarks::for_heap(heap);
        let mut stack: Vec<ObjectId> = heap.roots().to_vec();
        for &r in heap.roots() {
            live.insert(r);
        }
        while let Some(obj) = stack.pop() {
            stats.cpu += self.cost.per_object_trace;
            stats.objects_traced += 1;
            if !self.state.is_swapped(obj) {
                stats.fault_stall += touch.touch(heap.address(obj), heap.object(obj).size());
            }
            for &next in heap.object(obj).refs() {
                if live.insert(next) {
                    stack.push(next);
                }
            }
        }

        // Sweep phase: non-moving, so garbage is freed in place and only
        // fully-empty regions are returned.
        let all: Vec<ObjectId> = heap.object_ids().collect();
        for obj in all {
            if !live.contains(obj) {
                stats.bytes_freed += heap.object(obj).size() as u64;
                stats.objects_freed += 1;
                self.state.mark_resident(obj); // drop the stub if any
                heap.free_object(obj);
            }
        }
        heap.retire_alloc_targets();
        let empty: Vec<_> =
            heap.regions().filter(|r| r.objects().is_empty()).map(|r| r.id()).collect();
        for rid in empty {
            heap.free_region(rid);
            stats.regions_freed += 1;
        }

        // Marvin does not consume card-table information (its remembered
        // set is the stub table), so the cards are left untouched: clearing
        // them would silently destroy the remembered sets other collectors
        // rely on. Non-moving, so no card addresses went stale either.
        // Post-GC allocations must open fresh (flagged) regions, not
        // continue into the to-regions that survivors were copied to.
        heap.retire_alloc_targets();
        heap.clear_newly_allocated_flags();
        heap.bump_gc_epoch();
        // Non-moving: fragmentation cannot be compacted away, so the trigger
        // threshold must track used (not live) bytes.
        let factor = heap.growth_factor();
        heap.set_limit((heap.used_bytes() as f64 * factor) as u64);
        audit_gc_end(heap, &stats);
        stats
    }

    fn kind(&self) -> GcKind {
        GcKind::Marvin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::NoTouch;
    use fleet_heap::HeapConfig;
    use fleet_sim::SimDuration;

    fn heap() -> Heap {
        Heap::new(HeapConfig { region_size: 4096, initial_limit: 8192, ..HeapConfig::default() })
    }

    #[test]
    fn small_objects_are_never_bookmarked() {
        let mut h = heap();
        let small = h.alloc(512);
        let large = h.alloc(2048);
        let mut state = MarvinState::new(1024);
        assert!(!state.mark_swapped(&h, small));
        assert!(state.mark_swapped(&h, large));
        assert_eq!(state.stub_count(), 1);
        assert!(state.is_swapped(large));
        assert!(!state.is_swapped(small));
    }

    #[test]
    fn swapped_objects_are_not_touched_during_trace() {
        struct Recorder(Vec<u64>);
        impl MemoryTouch for Recorder {
            fn touch(&mut self, addr: u64, _size: u32) -> SimDuration {
                self.0.push(addr);
                SimDuration::ZERO
            }
        }
        let mut h = heap();
        let root = h.alloc(64);
        h.add_root(root);
        let big = h.alloc(2048);
        h.add_ref(root, big);
        let child = h.alloc(64);
        h.add_ref(big, child);
        let big_addr = h.address(big);
        let mut gc = MarvinGc::new(GcCostModel::default(), 1024);
        gc.state_mut().mark_swapped(&h, big);
        let mut rec = Recorder(Vec::new());
        let stats = gc.collect(&mut h, &mut rec);
        assert!(!rec.0.contains(&big_addr), "bookmarked object must not be touched");
        assert_eq!(stats.objects_traced, 3, "stub still contributes its references");
        assert!(h.contains(child), "objects reachable through stubs stay live");
    }

    #[test]
    fn stw_grows_with_stub_count() {
        let mut h = heap();
        let root = h.alloc(64);
        h.add_root(root);
        let mut gc = MarvinGc::new(GcCostModel::default(), 1024);
        let base_stw = gc.collect(&mut h, &mut NoTouch).stw;
        for _ in 0..100 {
            let big = h.alloc(2048);
            h.add_ref(root, big);
            gc.state_mut().mark_swapped(&h, big);
        }
        let loaded_stw = gc.collect(&mut h, &mut NoTouch).stw;
        assert!(
            loaded_stw > base_stw + SimDuration::from_micros(200),
            "{loaded_stw} vs {base_stw}"
        );
    }

    #[test]
    fn garbage_is_swept_in_place() {
        let mut h = heap();
        let root = h.alloc(64);
        h.add_root(root);
        let keep = h.alloc(64);
        h.add_ref(root, keep);
        let garbage = h.alloc(2048);
        let addr_keep = h.address(keep);
        let mut gc = MarvinGc::new(GcCostModel::default(), 1024);
        let stats = gc.collect(&mut h, &mut NoTouch);
        assert_eq!(stats.objects_freed, 1);
        assert_eq!(stats.bytes_freed, 2048);
        assert!(!h.contains(garbage));
        assert_eq!(h.address(keep), addr_keep, "bookmarking GC must not move objects");
    }

    #[test]
    fn swapped_garbage_loses_its_stub() {
        let mut h = heap();
        let root = h.alloc(64);
        h.add_root(root);
        let big = h.alloc(2048);
        let mut gc = MarvinGc::new(GcCostModel::default(), 1024);
        gc.state_mut().mark_swapped(&h, big);
        gc.collect(&mut h, &mut NoTouch);
        assert_eq!(gc.state().stub_count(), 0);
        assert!(!h.contains(big));
    }

    #[test]
    fn swappable_pages_require_pure_pages() {
        let mut h = heap();
        // Page 0: one large object (3000 B) + one small (500 B) sharing it.
        let big = h.alloc(3000);
        let small = h.alloc(500);
        let mut state = MarvinState::new(1024);
        state.mark_swapped(&h, big);
        // big spans pages 0..0 (0..3000) — small at 3000..3500 also page 0.
        let pages = swappable_pages(&h, &state);
        assert!(pages.is_empty(), "the small resident object pins the page");
        // Remove the pin: now the page is swappable.
        h.add_root(small); // keep borrow rules happy below
        h.remove_root(small);
        h.free_object(small);
        let pages = swappable_pages(&h, &state);
        assert_eq!(pages, vec![0]);
    }

    #[test]
    fn swappable_pages_multi_page_object() {
        let mut h = heap();
        // One 4096-aligned region: obj spans two pages cleanly.
        let big = h.alloc(4096 + 2048 - 4096); // 2048 bytes: page 0 only
        let big2 = h.alloc(2048); // 2048..4096: page 0 too
        let mut state = MarvinState::new(1024);
        state.mark_swapped(&h, big);
        state.mark_swapped(&h, big2);
        let pages = swappable_pages(&h, &state);
        assert_eq!(pages, vec![0], "page becomes swappable once all residents are bookmarked");
    }

    #[test]
    fn fragmentation_grows_under_marvin_but_not_full_gc() {
        use crate::full::FullCopyingGc;
        let build = || {
            let mut h = heap();
            let root = h.alloc(64);
            h.add_root(root);
            for _ in 0..50 {
                let live = h.alloc(100);
                h.add_ref(root, live);
                h.alloc(100); // interleaved garbage
            }
            h
        };
        let mut h = build();
        MarvinGc::new(GcCostModel::default(), 1024).collect(&mut h, &mut NoTouch);
        assert!(h.fragmentation() > 1.5, "non-moving sweep leaves holes: {}", h.fragmentation());
        let mut h = build();
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert!((h.fragmentation() - 1.0).abs() < 1e-9, "copying compacts: {}", h.fragmentation());
    }

    #[test]
    fn limit_tracks_used_bytes() {
        let mut h = heap();
        let root = h.alloc(64);
        h.add_root(root);
        // Fragmentation: garbage interleaved with live objects.
        for _ in 0..30 {
            let live = h.alloc(100);
            h.add_ref(root, live);
            h.alloc(100);
        }
        let mut gc = MarvinGc::new(GcCostModel::default(), 1024);
        gc.collect(&mut h, &mut NoTouch);
        // Non-moving: used stays above live.
        assert!(h.used_bytes() > h.live_bytes());
        assert_eq!(h.limit(), (h.used_bytes() as f64 * 2.0) as u64);
    }
}
