//! ART's minor GC: collects only regions allocated since the last GC.
//!
//! "Minor GC frees garbage objects from newly allocated regions after the
//! last GC" (§5.2). Liveness of young objects comes from two sources: the
//! roots, and old→young references found by scanning the dirty cards of the
//! card table — old regions are *not* traced wholesale.

use crate::collector::{
    audit_evac_abort, audit_gc_end, audit_gc_start, obs_gc_phase, Collector, GcCostModel, GcKind,
    GcStats, MemoryTouch,
};
use fleet_heap::{AllocContext, Heap, ObjectId, ObjectMarks, RegionId, RegionKind, RegionSet};
use fleet_sim::SimDuration;

/// The minor (young-generation) collector.
///
/// # Examples
///
/// ```
/// use fleet_gc::{Collector, GcCostModel, MinorGc, NoTouch};
/// use fleet_heap::{Heap, HeapConfig};
///
/// let mut heap = Heap::new(HeapConfig::default());
/// let root = heap.alloc(32);
/// heap.add_root(root);
/// heap.alloc(32); // young garbage
/// let stats = MinorGc::new(GcCostModel::default()).collect(&mut heap, &mut NoTouch);
/// assert_eq!(stats.objects_freed, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MinorGc {
    cost: GcCostModel,
}

impl MinorGc {
    /// Creates a collector with the given cost model.
    pub fn new(cost: GcCostModel) -> Self {
        MinorGc { cost }
    }
}

impl Collector for MinorGc {
    fn collect(&mut self, heap: &mut Heap, touch: &mut dyn MemoryTouch) -> GcStats {
        let mut stats = GcStats::new(GcKind::Minor);
        stats.stw += self.cost.stw_base;
        audit_gc_start(heap, GcKind::Minor, false);

        let young_regions: Vec<RegionId> =
            heap.regions().filter(|r| r.newly_allocated()).map(|r| r.id()).collect();
        let young_set: RegionSet = young_regions.iter().copied().collect();
        heap.retire_alloc_targets();

        let is_young = |heap: &Heap, obj: ObjectId| young_set.contains(heap.object(obj).region());

        // Old objects holding possible old→young references: the dirty cards.
        let mut boundary: Vec<ObjectId> = Vec::new();
        let dirty: Vec<usize> = heap.cards().dirty_cards().collect();
        for card in dirty {
            stats.cards_scanned += 1;
            stats.cpu += self.cost.per_card_scan;
            for obj in heap.objects_in_card(card) {
                if !is_young(heap, obj) {
                    boundary.push(obj);
                }
            }
        }

        // Trace young liveness from roots + carded old objects. Old objects
        // act as one-hop sources: their refs are scanned (the object itself
        // was recently written, hence resident) but old→old edges stop there.
        // Mark state lives in dense arena-slot bitmaps instead of hash sets.
        let mut live = ObjectMarks::for_heap(heap);
        let mut order: Vec<ObjectId> = Vec::new();
        let mut stack: Vec<ObjectId> = Vec::new();
        let seed = |heap: &Heap,
                    obj: ObjectId,
                    stats: &mut GcStats,
                    touch: &mut dyn MemoryTouch,
                    live: &mut ObjectMarks,
                    stack: &mut Vec<ObjectId>| {
            stats.fault_stall += touch.touch(heap.address(obj), heap.object(obj).size());
            stats.cpu += self.cost.per_object_trace;
            stats.objects_traced += 1;
            for &next in heap.object(obj).refs() {
                if young_set.contains(heap.object(next).region()) && live.insert(next) {
                    stack.push(next);
                }
            }
        };
        let roots: Vec<ObjectId> = heap.roots().to_vec();
        let mut seeded = ObjectMarks::for_heap(heap);
        for obj in roots.iter().copied().chain(boundary.iter().copied()) {
            if is_young(heap, obj) {
                if live.insert(obj) {
                    stack.push(obj);
                }
            } else if seeded.insert(obj) {
                seed(heap, obj, &mut stats, touch, &mut live, &mut stack);
            }
        }
        while let Some(obj) = stack.pop() {
            order.push(obj);
            stats.fault_stall += touch.touch(heap.address(obj), heap.object(obj).size());
            stats.cpu += self.cost.per_object_trace;
            stats.objects_traced += 1;
            for &next in heap.object(obj).refs() {
                if young_set.contains(heap.object(next).region()) && live.insert(next) {
                    stack.push(next);
                }
            }
        }

        let mark_end = stats.cpu + stats.fault_stall;
        let traced = stats.objects_traced;
        obs_gc_phase(heap, "gc_mark", 1, SimDuration::ZERO, mark_end, || {
            vec![("objects", traced), ("cards", stats.cards_scanned)]
        });

        // Evacuate young survivors, then sweep the young from-regions. A
        // copy-budget denial aborts the evacuation: remaining survivors are
        // promoted in place (their region just loses its newly-allocated
        // flag) and only proven-dead objects are swept.
        let mut abort_obs: Option<(SimDuration, u32, u64)> = None;
        for (i, &obj) in order.iter().enumerate() {
            let size = heap.object(obj).size() as u64;
            if !touch.copy_budget(size) {
                audit_evac_abort(heap, heap.object(obj).region().0, (order.len() - i) as u64);
                stats.evac_aborted = true;
                abort_obs = Some((
                    (stats.cpu + stats.fault_stall).saturating_sub(mark_end),
                    heap.object(obj).region().0,
                    (order.len() - i) as u64,
                ));
                break;
            }
            let dest = match heap.object(obj).context() {
                AllocContext::Foreground => RegionKind::Eden,
                AllocContext::Background => RegionKind::Bg,
            };
            heap.copy_object(obj, dest);
            stats.bytes_copied += size;
            stats.cpu += self.cost.copy_cost(size);
        }
        let copy_dur = (stats.cpu + stats.fault_stall).saturating_sub(mark_end);
        let copied = stats.bytes_copied;
        obs_gc_phase(heap, "gc_copy", 1, mark_end, copy_dur, || vec![("bytes", copied)]);
        if let Some((rel, region, left)) = abort_obs {
            obs_gc_phase(heap, "gc_evac_abort", 2, rel, SimDuration::ZERO, || {
                vec![("region", u64::from(region)), ("objects_left", left)]
            });
        }
        for rid in young_regions {
            let dead: Vec<ObjectId> =
                heap.region(rid).objects().iter().copied().filter(|&o| !live.contains(o)).collect();
            for obj in dead {
                stats.bytes_freed += heap.object(obj).size() as u64;
                stats.objects_freed += 1;
                heap.free_object(obj);
            }
            if heap.region(rid).objects().is_empty() {
                heap.free_region(rid);
                stats.regions_freed += 1;
            }
        }

        // Card aging, with the same preservation rules as BGC: boundary
        // objects that reference background objects keep their cards (BGC's
        // remembered set), and boundary objects in *cold* regions keep
        // theirs unconditionally (the incremental re-grouping remembered
        // set — see `GroupingGc::with_incremental`). Young survivors need
        // the same BGC rule: a young FGO holding the only edge to a BGO had
        // a dirty card from the write barrier, and dropping it here would
        // let the next BGC free a reachable BGO.
        heap.cards_mut().clear();
        let bg_regions: RegionSet =
            heap.regions().filter(|r| r.kind() == RegionKind::Bg).map(|r| r.id()).collect();
        let survivors: Vec<ObjectId> = order
            .iter()
            .copied()
            .filter(|&o| heap.contains(o) && !bg_regions.contains(heap.object(o).region()))
            .collect();
        for obj in seeded.iter().chain(survivors) {
            if !heap.contains(obj) {
                continue;
            }
            let in_cold = heap.region(heap.object(obj).region()).kind() == RegionKind::Cold;
            let refs_bgo = heap
                .object(obj)
                .refs()
                .iter()
                .any(|&r| bg_regions.contains(heap.object(r).region()));
            if in_cold || refs_bgo {
                let addr = heap.address(obj);
                let size = heap.object(obj).size() as u64;
                heap.cards_mut().dirty_range(addr, size);
            }
        }
        // Post-GC allocations must open fresh (flagged) regions, not
        // continue into the to-regions that survivors were copied to.
        heap.retire_alloc_targets();
        heap.clear_newly_allocated_flags();
        heap.bump_gc_epoch();
        heap.update_limit_after_gc();
        audit_gc_end(heap, &stats);
        stats
    }

    fn kind(&self) -> GcKind {
        GcKind::Minor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::NoTouch;
    use crate::full::FullCopyingGc;
    use fleet_heap::HeapConfig;

    fn heap() -> Heap {
        Heap::new(HeapConfig { region_size: 4096, initial_limit: 8192, ..HeapConfig::default() })
    }

    /// Builds a heap where `old` objects survived one full GC and `young`
    /// objects were allocated afterwards.
    fn aged_heap() -> (Heap, ObjectId) {
        let mut h = heap();
        let old_root = h.alloc(64);
        h.add_root(old_root);
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        (h, old_root)
    }

    #[test]
    fn young_garbage_dies_young_survivors_stay() {
        let (mut h, old_root) = aged_heap();
        let young_live = h.alloc(32);
        h.add_ref(old_root, young_live); // dirties old_root's card
        h.alloc(32); // young garbage
        let stats = MinorGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert_eq!(stats.objects_freed, 1);
        assert!(h.contains(young_live));
        assert!(h.contains(old_root));
    }

    #[test]
    fn old_objects_are_not_collected() {
        let (h, old_root) = aged_heap();
        // An *unreachable* old object: minor GC must not free it.
        let old_garbage = {
            let mut h2 = heap();
            let r = h2.alloc(64);
            h2.add_root(r);
            let g = h2.alloc(64);
            h2.add_ref(r, g);
            FullCopyingGc::new(GcCostModel::default()).collect(&mut h2, &mut NoTouch);
            h2.remove_ref(r, g);
            let stats = MinorGc::new(GcCostModel::default()).collect(&mut h2, &mut NoTouch);
            assert_eq!(stats.objects_freed, 0, "old garbage waits for a major GC");
            h2.contains(g)
        };
        assert!(old_garbage);
        let _ = old_root;
        let _ = h;
    }

    #[test]
    fn card_table_finds_old_to_young_refs() {
        let (mut h, old_root) = aged_heap();
        // A young object reachable ONLY through an old non-root object.
        let old_hidden = h.alloc(16); // young at first…
        h.add_ref(old_root, old_hidden);
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch); // …now old
        let young = h.alloc(16);
        h.add_ref(old_hidden, young); // dirties old_hidden's card
        let stats = MinorGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert!(h.contains(young), "young object reachable via carded old object survives");
        assert!(stats.cards_scanned > 0);
    }

    #[test]
    fn working_set_excludes_clean_old_objects() {
        let (mut h, old_root) = aged_heap();
        // Plenty of old objects that are never written again.
        let mut prev = old_root;
        for _ in 0..50 {
            let o = h.alloc(16);
            h.add_ref(prev, o);
            prev = o;
        }
        FullCopyingGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        // Young allocation with no old→young edge.
        let young = h.alloc(16);
        h.add_root(young);
        let stats = MinorGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        // Traced: the young root (+ the old root re-seeded from the root set),
        // but not the 50 clean old chain objects.
        assert!(stats.objects_traced <= 3, "traced {}", stats.objects_traced);
        assert!(h.contains(young));
    }

    #[test]
    fn newly_allocated_flags_are_consumed() {
        let (mut h, _) = aged_heap();
        h.alloc(16);
        assert!(h.regions().any(|r| r.newly_allocated()));
        MinorGc::new(GcCostModel::default()).collect(&mut h, &mut NoTouch);
        assert!(h.regions().all(|r| !r.newly_allocated()));
    }
}
