//! # Fleet — fore/background-aware GC-swap co-design (ASPLOS '24), in simulation
//!
//! This crate is the top of the reproduction stack: it ties the Java-heap
//! model (`fleet-heap`), the collectors (`fleet-gc`), the kernel memory
//! model (`fleet-kernel`) and the app workloads (`fleet-apps`) into a
//! simulated Pixel 3 ([`Device`]) running one of the paper's comparison
//! schemes ([`SchemeKind`], Table 1):
//!
//! * **Android** — native full-heap GC + kernel LRU swap,
//! * **Marvin** — bookmarking GC + object-granularity swap,
//! * **Fleet** — background-object GC (§5.2) + runtime-guided swap (§5.3).
//!
//! The [`experiment`] module has one driver per table and figure of the
//! paper's evaluation; the `fleet-bench` crate's `repro` binary prints each
//! one next to the paper's numbers.
//!
//! # Examples
//!
//! ```
//! use fleet::{Device, DeviceConfig, SchemeKind};
//! use fleet_apps::profile_by_name;
//!
//! let mut device = Device::new(DeviceConfig::pixel3(SchemeKind::Fleet));
//! let twitter = profile_by_name("Twitter").unwrap();
//! let (pid, cold) = device.launch_cold(&twitter);
//! device.launch_cold(&profile_by_name("Telegram").unwrap());
//! device.run(15); // Fleet groups + swaps 10 s after backgrounding
//! let hot = device.switch_to(pid);
//! assert!(hot.total < cold.total);
//! ```

#![warn(missing_docs)]

#[cfg(feature = "audit")]
pub mod audit;
pub mod config;
pub mod device;
pub mod error;
pub mod experiment;
#[cfg(feature = "obs")]
pub mod obs;
pub mod params;
pub mod population;
pub mod process;
pub mod telemetry;
pub mod timeline;

pub use config::{DeviceConfig, DeviceConfigBuilder, ZramFront};
pub use device::{Device, DeviceTrace, KillRecord, TraceSample, TraceSource};
pub use error::FleetError;
pub use fleet_kernel::{KillPolicy, ReclaimPolicy, SwamParams};
pub use params::{FleetParams, SchemeKind};
pub use population::{
    run_device_day, run_population, sample_device, DeviceClass, DeviceDayRow, DevicePlan, Persona,
    PopulationAggregate, PopulationRun, PopulationSpec,
};
pub use process::{AppState, FleetProcState, GcRecord, LaunchKind, LaunchReport, Process};
pub use telemetry::{
    drill_down, CohortTelemetry, DrilldownRecord, LaunchAttribution, LaunchSpanSample, Outlier,
    SloBreach, SloMetric, SloReport, SloSpec, SloVerdict,
};
pub use timeline::{Timeline, TimelineEvent};

/// The stable, supported surface of the reproduction in one import.
///
/// `use fleet::prelude::*;` brings in everything a downstream consumer —
/// an example, a bench, or an external driver — needs to build a device,
/// run experiments from the registry and summarise the results. Anything
/// *not* re-exported here (collector internals, page-table layouts, the
/// reference LRU model) is crate plumbing and may change without notice;
/// such items are marked `#[doc(hidden)]` at their definition sites.
pub mod prelude {
    pub use crate::config::{DeviceConfig, DeviceConfigBuilder, ZramFront};
    pub use crate::device::{Device, DeviceTrace, KillRecord};
    pub use crate::error::FleetError;
    pub use crate::experiment::harness::{
        run_experiments, select, Experiment, ExperimentCtx, ExperimentOutput, RunReport, REGISTRY,
    };
    pub use crate::experiment::scenario::AppPool;
    pub use crate::params::{FleetParams, SchemeKind};
    pub use crate::population::{
        run_device_day, run_population, sample_device, DeviceDayRow, DevicePlan,
        PopulationAggregate, PopulationRun, PopulationSpec,
    };
    pub use crate::process::{LaunchKind, LaunchReport};
    pub use crate::telemetry::{
        drill_down, CohortTelemetry, DrilldownRecord, LaunchSpanSample, Outlier, SloMetric,
        SloReport, SloSpec, SloVerdict,
    };
    pub use fleet_kernel::{KillPolicy, ReclaimPolicy, SwamParams};
    pub use fleet_metrics::{Histogram, LogHistogram, Summary, Table};
}
