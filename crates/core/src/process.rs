//! Per-process state: heap + behaviour + scheme bookkeeping + statistics.

use fleet_apps::AppBehavior;
use fleet_gc::{GcStats, GroupingOutcome, MarvinGc};
use fleet_heap::Heap;
use fleet_kernel::Pid;
use fleet_metrics::CpuAccounting;
use fleet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Fore/background state of an app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppState {
    /// The one interactive app.
    Foreground,
    /// Cached, awaiting a hot-launch.
    Background,
}

/// Whether a launch was served from the cache or from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaunchKind {
    /// The app was cached: background → foreground switch.
    Hot,
    /// The app had to be (re)created: new process + full init.
    Cold,
}

impl std::fmt::Display for LaunchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchKind::Hot => write!(f, "hot"),
            LaunchKind::Cold => write!(f, "cold"),
        }
    }
}

/// One measured launch (the paper's launch-to-first-frame time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchReport {
    /// Hot or cold.
    pub kind: LaunchKind,
    /// When the launch started.
    pub at: SimTime,
    /// Total time to first frame.
    pub total: SimDuration,
    /// Portion spent stalled on page faults.
    pub fault_stall: SimDuration,
    /// Portion of the fault stall spent decompressing zram slots (a subset
    /// of `fault_stall`; zero on flash-only devices).
    pub decompress: SimDuration,
    /// Pages faulted in from swap on the critical path.
    pub faulted_pages: u64,
    /// Stop-the-world pause of a launch-time GC, if one triggered.
    pub gc_stw: SimDuration,
}

/// A timestamped GC record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GcRecord {
    /// When the collection started.
    pub at: SimTime,
    /// What it did.
    pub stats: GcStats,
}

/// Fleet's per-process state machine (§5.1 workflow).
#[derive(Debug, Clone, Default)]
pub struct FleetProcState {
    /// When the RGS grouping GC is due (now + Ts after backgrounding).
    pub grouping_due: Option<SimTime>,
    /// The grouping result, once the grouping GC has run.
    pub grouped: Option<GroupingOutcome>,
    /// Next `madvise(HOT_RUNTIME)` refresh of the launch pages.
    pub hot_refresh_due: Option<SimTime>,
    /// How many grouping GCs have run over this process's lifetime (drives
    /// the incremental-regroup heuristic; survives foreground stops).
    pub groupings_done: u64,
}

impl FleetProcState {
    /// Resets the workflow (app returned to the foreground: "Fleet stops,
    /// and the foreground app executes the same as a default Android app").
    pub fn stop(&mut self) {
        self.grouping_due = None;
        self.grouped = None;
        self.hot_refresh_due = None;
    }
}

/// A live process on the device.
#[derive(Debug)]
pub struct Process {
    /// Kernel process id.
    pub pid: Pid,
    /// App display name.
    pub name: String,
    /// The Java heap.
    pub heap: Heap,
    /// The workload engine.
    pub behavior: AppBehavior,
    /// Fore/background state.
    pub state: AppState,
    /// Last time the app was (or became) foreground; LMK's coldness key.
    pub last_foreground: SimTime,
    /// Base address of the native anonymous mapping.
    pub native_base: u64,
    /// Length of the native anonymous mapping in bytes.
    pub native_len: u64,
    /// Base address of the file-backed mapping.
    pub file_base: u64,
    /// Length of the file-backed mapping in bytes.
    pub file_len: u64,
    /// Measured launches.
    pub launches: Vec<LaunchReport>,
    /// GC history.
    pub gcs: Vec<GcRecord>,
    /// CPU time by thread class.
    pub cpu: CpuAccounting,
    /// Marvin's persistent bookmarking collector (Marvin scheme only).
    pub marvin: Option<MarvinGc>,
    /// Next Marvin object-swap pass (Marvin scheme only).
    pub marvin_swap_due: Option<SimTime>,
    /// Fleet workflow state (Fleet scheme only).
    pub fleet: FleetProcState,
    /// Next background maintenance GC.
    pub next_bg_gc: Option<SimTime>,
    /// `(base, len)` byte ranges the last hot-launch touched — the history
    /// driving ASAP-style prepaging when `prefetch_on_launch` is set.
    pub last_launch_faults: Vec<(u64, u64)>,
}

impl Process {
    /// Launch reports of the given kind, as milliseconds.
    pub fn launch_times_ms(&self, kind: LaunchKind) -> Vec<f64> {
        self.launches.iter().filter(|l| l.kind == kind).map(|l| l.total.as_millis_f64()).collect()
    }

    /// Total GC CPU time so far.
    pub fn gc_cpu(&self) -> SimDuration {
        self.gcs.iter().map(|g| g.stats.cpu).sum()
    }
}
