//! A consolidated, serialisable timeline of everything a device run did.
//!
//! The paper's artifact collects `adb logcat` + system traces and
//! post-processes them in notebooks; [`Timeline`] is the equivalent: one
//! time-ordered record of launches, collections and kills across all
//! processes, exportable as JSON via `experiment::export`.

use crate::device::Device;
use crate::process::LaunchKind;
use fleet_gc::GcKind;
use fleet_kernel::Pid;
use serde::{Deserialize, Serialize};

/// One timeline entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimelineEvent {
    /// An app launch completed.
    Launch {
        /// Process id.
        pid: u32,
        /// App name.
        app: String,
        /// Hot or cold.
        kind: String,
        /// Time to first frame, milliseconds.
        total_ms: f64,
        /// Page-fault stall on the critical path, milliseconds.
        stall_ms: f64,
    },
    /// A garbage collection finished.
    Gc {
        /// Process id.
        pid: u32,
        /// App name.
        app: String,
        /// Collector kind ("full", "minor", "bgc", "grouping", "marvin").
        collector: String,
        /// Objects the GC thread visited.
        objects_traced: u64,
        /// Bytes freed.
        bytes_freed: u64,
        /// Stop-the-world pause, milliseconds.
        stw_ms: f64,
    },
    /// The low-memory killer terminated an app.
    Kill {
        /// Process id.
        pid: u32,
        /// App name.
        app: String,
    },
}

/// A time-ordered record of a run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// `(seconds, event)` pairs in increasing time order.
    pub events: Vec<(f64, TimelineEvent)>,
}

impl Timeline {
    /// Builds the timeline from a device's accumulated records (live
    /// processes' launches and GCs, plus all LMK kills). Events of killed
    /// processes' histories are gone with the process, exactly like logcat
    /// buffers of dead apps.
    pub fn capture(device: &Device) -> Timeline {
        let mut events: Vec<(f64, TimelineEvent)> = Vec::new();
        for proc in device.processes() {
            for launch in &proc.launches {
                events.push((
                    launch.at.as_secs_f64(),
                    TimelineEvent::Launch {
                        pid: proc.pid.0,
                        app: proc.name.clone(),
                        kind: match launch.kind {
                            LaunchKind::Hot => "hot".to_string(),
                            LaunchKind::Cold => "cold".to_string(),
                        },
                        total_ms: launch.total.as_millis_f64(),
                        stall_ms: launch.fault_stall.as_millis_f64(),
                    },
                ));
            }
            for gc in &proc.gcs {
                events.push((
                    gc.at.as_secs_f64(),
                    TimelineEvent::Gc {
                        pid: proc.pid.0,
                        app: proc.name.clone(),
                        collector: gc.stats.kind.to_string(),
                        objects_traced: gc.stats.objects_traced,
                        bytes_freed: gc.stats.bytes_freed,
                        stw_ms: gc.stats.stw.as_millis_f64(),
                    },
                ));
            }
        }
        for kill in device.kills() {
            events.push((
                kill.at.as_secs_f64(),
                TimelineEvent::Kill { pid: kill.pid.0, app: kill.name.clone() },
            ));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("virtual time has no NaN"));
        Timeline { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events concerning one process.
    pub fn for_pid(&self, pid: Pid) -> impl Iterator<Item = &(f64, TimelineEvent)> {
        self.events.iter().filter(move |(_, e)| match e {
            TimelineEvent::Launch { pid: p, .. }
            | TimelineEvent::Gc { pid: p, .. }
            | TimelineEvent::Kill { pid: p, .. } => *p == pid.0,
        })
    }

    /// Counts events by coarse class: `(launches, gcs, kills)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut launches = 0;
        let mut gcs = 0;
        let mut kills = 0;
        for (_, e) in &self.events {
            match e {
                TimelineEvent::Launch { .. } => launches += 1,
                TimelineEvent::Gc { .. } => gcs += 1,
                TimelineEvent::Kill { .. } => kills += 1,
            }
        }
        (launches, gcs, kills)
    }

    /// GC events of a given collector kind.
    pub fn gcs_of_kind(&self, kind: GcKind) -> usize {
        let name = kind.to_string();
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, TimelineEvent::Gc { collector, .. } if *collector == name))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::params::SchemeKind;
    use fleet_apps::{profile_by_name, synthetic_app};

    #[test]
    fn captures_launches_gcs_and_kills_in_order() {
        let mut dev = Device::new(DeviceConfig::pixel3(SchemeKind::Fleet));
        let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(20); // grouping at +10 s
        dev.switch_to(pid);
        for _ in 0..12 {
            dev.launch_cold(&synthetic_app(2048, 180));
            dev.run(3);
        }
        let timeline = Timeline::capture(&dev);
        assert!(!timeline.is_empty());
        let (launches, gcs, kills) = timeline.counts();
        assert!(launches >= 3, "launches {launches}");
        assert!(gcs >= 1, "gcs {gcs}");
        assert!(kills >= 1, "kills {kills}");
        // Time-ordered.
        for w in timeline.events.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // The grouping GC of the Fleet workflow appears by name.
        assert!(timeline.gcs_of_kind(fleet_gc::GcKind::Grouping) >= 1);
    }

    #[test]
    fn per_pid_filter_and_json_round_trip() {
        let mut dev = Device::new(DeviceConfig::pixel3(SchemeKind::Android));
        let (pid, _) = dev.launch_cold(&profile_by_name("Spotify").unwrap());
        dev.run(3);
        let timeline = Timeline::capture(&dev);
        assert!(timeline.for_pid(pid).count() >= 1);
        assert_eq!(timeline.for_pid(fleet_kernel::Pid(9999)).count(), 0);
        let json = serde_json::to_string(&timeline).unwrap();
        let parsed: Timeline = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, timeline);
    }
}
