//! Population-scale fleet simulation: sampled device cohorts, streamed
//! device-days, mergeable percentile dashboards (DESIGN.md §12).
//!
//! The paper validates the co-design on one Pixel 3; the questions that
//! matter at fleet scale — p50/p99/p999 hot-launch, LMK kill rate, zram
//! writeback volume *across device classes* — need cohorts. This module
//! provides them in three pieces:
//!
//! * **Sampling.** A seeded [`PopulationSpec`] describes the cohort as
//!   distributions: weighted [`DeviceClass`]es (DRAM 3–12 GB, swap/zram
//!   sizing) and weighted [`Persona`]s (app mix, working-set size, usage
//!   cadence). [`sample_device`] materialises device `i` as a
//!   [`DevicePlan`] using *only* `(spec, i)`: the per-device seed is
//!   derived splitmix-style from the population seed by [`device_seed`],
//!   so any device-day can be re-simulated standalone, bit-identically —
//!   the splittable-seed contract `tests/population_properties.rs` pins.
//! * **Simulation.** [`run_device_day`] plays one device's active-use day
//!   (cold-boot its working set, then a seeded launch/usage script) and
//!   folds everything observable into a flat [`DeviceDayRow`] with an
//!   FNV-1a event fingerprint.
//! * **Aggregation.** [`run_population`] streams the cohort through
//!   worker-owned shards (each worker builds, runs and drops its own
//!   [`crate::Device`]s — state is fully `Send`, nothing is shared) and
//!   merges [`PopulationAggregate`]s. Every aggregate field is an integer
//!   counter, a log2-bucketed [`LogHistogram`], an XOR fingerprint or a
//!   per-slice row keyed by device index, so absorption and merging are
//!   commutative: the result is byte-identical whatever the thread count
//!   or completion order. Exports are batched run-slices
//!   ([`SliceRow`], [`SLICE_LEN`] devices each), not per-device JSON.

use crate::config::{DeviceConfig, ZramFront};
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::scenario::AppPool;
use crate::params::SchemeKind;
use crate::process::{LaunchKind, LaunchReport};
use crate::telemetry::{CohortTelemetry, LaunchSpanSample, SloSpec, SloVerdict};
use fleet_kernel::{FaultConfig, IntegrityConfig, KillPolicy, ReclaimPolicy};
use fleet_metrics::LogHistogram;
use fleet_sim::SimRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

// ------------------------------------------------------------------ ranges

/// An inclusive `[lo, hi]` integer range sampled uniformly on a step grid.
///
/// A zero-variance range (`lo == hi`) is sampled without consuming
/// randomness, so degenerate specs reduce exactly to fixed-config runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeU32 {
    /// Smallest sampleable value.
    pub lo: u32,
    /// Largest sampleable value (inclusive).
    pub hi: u32,
}

impl RangeU32 {
    /// A zero-variance range.
    pub const fn fixed(v: u32) -> Self {
        RangeU32 { lo: v, hi: v }
    }

    /// Uniform sample from `{lo, lo+step, …} ∩ [lo, hi]`.
    fn sample(&self, rng: &mut SimRng, step: u32) -> u32 {
        debug_assert!(self.lo <= self.hi && step > 0);
        let n = (self.hi - self.lo) / step + 1;
        if n == 1 {
            self.lo
        } else {
            self.lo + step * rng.index(n as usize) as u32
        }
    }
}

/// An inclusive `[lo, hi]` float range; `lo == hi` samples without
/// consuming randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeF64 {
    /// Smallest sampleable value.
    pub lo: f64,
    /// Largest sampleable value.
    pub hi: f64,
}

impl RangeF64 {
    /// A zero-variance range.
    pub const fn fixed(v: f64) -> Self {
        RangeF64 { lo: v, hi: v }
    }

    fn sample(&self, rng: &mut SimRng) -> f64 {
        debug_assert!(self.lo <= self.hi);
        if self.lo == self.hi {
            self.lo
        } else {
            rng.uniform(self.lo, self.hi)
        }
    }
}

// ------------------------------------------------------- spec: distributions

/// One weighted hardware class in the population (e.g. "entry", "flagship").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceClass {
    /// Display name, exported in per-device rows.
    pub name: String,
    /// Relative sampling weight (must be positive).
    pub weight: u32,
    /// Physical DRAM in MiB, sampled on a 256 MiB grid.
    pub dram_mib: RangeU32,
    /// Swap partition size as a fraction of DRAM.
    pub swap_ratio: RangeF64,
    /// Probability that the device ships a zram front tier.
    pub zram_chance: f64,
    /// Front-tier uncompressed capacity as a fraction of the swap size
    /// (only sampled when the zram draw hits).
    pub zram_fraction: RangeF64,
    /// Front-tier compression ratio (only sampled when the draw hits).
    pub zram_ratio: RangeF64,
    /// Kernel reclaim balance (`vm.swappiness`-style).
    pub swappiness: RangeU32,
}

/// One weighted usage persona: which apps, how many at once, how the day's
/// launch/usage script is shaped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Persona {
    /// Display name, exported in per-device rows.
    pub name: String,
    /// Relative sampling weight (must be positive).
    pub weight: u32,
    /// Candidate apps (Table 3 catalog names).
    pub apps: Vec<String>,
    /// Working-set size: how many of `apps` the device keeps installed and
    /// cycles through. Sampling the full list keeps catalog order (no
    /// draws), so a degenerate persona reduces to a fixed app list.
    pub working_set: RangeU32,
    /// Foreground-switch cycles in the active-use day.
    pub cycles: RangeU32,
    /// Seconds of other-app usage between launches (the §7.2 gap).
    pub usage_gap_secs: RangeU32,
}

/// A seeded description of a heterogeneous device cohort.
///
/// Everything a cohort run produces is a pure function of this value: the
/// per-device seed stream splits from `seed` ([`device_seed`]), and every
/// sampled choice draws from that per-device stream in a fixed order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Population master seed.
    pub seed: u64,
    /// Cohort size in device-days.
    pub devices: u32,
    /// Weighted hardware classes (at least one).
    pub classes: Vec<DeviceClass>,
    /// Weighted usage personas (at least one).
    pub personas: Vec<Persona>,
    /// Scheme mix, sampled uniformly (at least one).
    pub schemes: Vec<SchemeKind>,
    /// Reclaim policy applied to every sampled device (not sampled — a
    /// cohort-wide deployment knob, so A/B cohorts differ only here and
    /// consume identical RNG streams).
    pub reclaim_policy: ReclaimPolicy,
    /// Kill policy applied to every sampled device (not sampled, like
    /// [`Self::reclaim_policy`]).
    pub kill_policy: KillPolicy,
    /// Fault-injection rates applied to every sampled device (not sampled,
    /// like [`Self::reclaim_policy`] — a cohort-wide chaos knob). The
    /// default quiet config draws no fates, so arming a hazard leaves the
    /// sampling stream and day scripts of the quiet cohort untouched.
    pub fault: FaultConfig,
    /// Swap data-integrity layer applied to every sampled device (not
    /// sampled; default disabled, which is bit-identical to a cohort that
    /// predates the layer).
    pub integrity: IntegrityConfig,
    /// Declarative SLO monitors evaluated over the merged per-slice
    /// telemetry after the cohort run (not sampled; empty = no monitors,
    /// which is bit-identical to a cohort that predates the layer).
    pub slos: Vec<SloSpec>,
}

impl PopulationSpec {
    /// The standard heterogeneous cohort: three hardware classes spanning
    /// 3–12 GB DRAM with vendor-style zram adoption, three personas over
    /// the Table 3 catalog, all four schemes in the mix.
    pub fn default_mix(seed: u64, devices: u32) -> Self {
        let class =
            |name: &str, weight: u32, dram: (u32, u32), swap: (f64, f64), zram_chance: f64| {
                DeviceClass {
                    name: name.to_string(),
                    weight,
                    dram_mib: RangeU32 { lo: dram.0, hi: dram.1 },
                    swap_ratio: RangeF64 { lo: swap.0, hi: swap.1 },
                    zram_chance,
                    zram_fraction: RangeF64 { lo: 0.25, hi: 0.5 },
                    zram_ratio: RangeF64 { lo: 2.0, hi: 3.5 },
                    swappiness: RangeU32 { lo: 50, hi: 100 },
                }
            };
        let persona = |name: &str,
                       weight: u32,
                       apps: &[&str],
                       ws: (u32, u32),
                       cycles: (u32, u32),
                       gap: (u32, u32)| Persona {
            name: name.to_string(),
            weight,
            apps: apps.iter().map(|s| s.to_string()).collect(),
            working_set: RangeU32 { lo: ws.0, hi: ws.1 },
            cycles: RangeU32 { lo: cycles.0, hi: cycles.1 },
            usage_gap_secs: RangeU32 { lo: gap.0, hi: gap.1 },
        };
        PopulationSpec {
            seed,
            devices,
            classes: vec![
                class("entry", 3, (3072, 4608), (0.4, 0.6), 0.25),
                class("mid", 4, (4096, 8192), (0.3, 0.5), 0.5),
                class("flagship", 2, (8192, 12288), (0.2, 0.4), 0.75),
            ],
            personas: vec![
                persona(
                    "messenger",
                    4,
                    &["Twitter", "Telegram", "Line", "Instagram", "Facebook", "LinkedIn"],
                    (3, 5),
                    (4, 8),
                    (15, 45),
                ),
                persona(
                    "streamer",
                    3,
                    &["Youtube", "Tiktok", "Twitch", "Spotify", "Rave", "BigoLive"],
                    (3, 4),
                    (3, 6),
                    (20, 60),
                ),
                persona(
                    "browser_gamer",
                    2,
                    &["Chrome", "Firefox", "GoogleMaps", "AmazonShop", "AngryBirds", "CandyCrush"],
                    (3, 5),
                    (3, 6),
                    (15, 40),
                ),
            ],
            schemes: SchemeKind::ALL.to_vec(),
            reclaim_policy: ReclaimPolicy::Reactive,
            kill_policy: KillPolicy::ColdestFirst,
            fault: FaultConfig::default(),
            integrity: IntegrityConfig::default(),
            slos: Vec::new(),
        }
    }

    /// A zero-variance spec: one class pinned to the §6 Pixel 3, one
    /// persona with a fixed app list and cadence, one scheme. Sampling any
    /// device from it yields [`DeviceConfig::pixel3`] with only the seed
    /// overridden — the degenerate-reduction contract the sampler tests pin.
    pub fn degenerate(seed: u64, devices: u32, scheme: SchemeKind, apps: &[String]) -> Self {
        let pixel3 = DeviceConfig::pixel3(scheme);
        PopulationSpec {
            seed,
            devices,
            classes: vec![DeviceClass {
                name: "pixel3".to_string(),
                weight: 1,
                dram_mib: RangeU32::fixed(pixel3.dram_mib),
                swap_ratio: RangeF64::fixed(pixel3.swap_mib as f64 / pixel3.dram_mib as f64),
                zram_chance: 0.0,
                zram_fraction: RangeF64::fixed(0.25),
                zram_ratio: RangeF64::fixed(2.5),
                swappiness: RangeU32::fixed(pixel3.swappiness),
            }],
            personas: vec![Persona {
                name: "fixed".to_string(),
                weight: 1,
                apps: apps.to_vec(),
                working_set: RangeU32::fixed(apps.len() as u32),
                cycles: RangeU32::fixed(4),
                usage_gap_secs: RangeU32::fixed(30),
            }],
            schemes: vec![scheme],
            reclaim_policy: ReclaimPolicy::Reactive,
            kill_policy: KillPolicy::ColdestFirst,
            fault: FaultConfig::default(),
            integrity: IntegrityConfig::default(),
            slos: Vec::new(),
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices == 0 {
            return Err("population must contain at least one device".into());
        }
        if self.classes.is_empty() || self.personas.is_empty() || self.schemes.is_empty() {
            return Err("population needs at least one class, persona and scheme".into());
        }
        for class in &self.classes {
            if class.weight == 0 {
                return Err(format!("class {} has zero weight", class.name));
            }
            if class.dram_mib.lo > class.dram_mib.hi
                || class.swap_ratio.lo > class.swap_ratio.hi
                || class.zram_fraction.lo > class.zram_fraction.hi
                || class.zram_ratio.lo > class.zram_ratio.hi
                || class.swappiness.lo > class.swappiness.hi
            {
                return Err(format!("class {} has an inverted range", class.name));
            }
            if class.dram_mib.lo <= 2304 {
                return Err(format!(
                    "class {}: DRAM must exceed the 2304 MiB system reserve",
                    class.name
                ));
            }
            if !(0.0..=1.0).contains(&class.zram_chance) {
                return Err(format!("class {}: zram chance outside [0, 1]", class.name));
            }
            if class.swap_ratio.lo <= 0.0 || class.zram_fraction.lo <= 0.0 {
                return Err(format!(
                    "class {}: swap and zram fractions must be positive",
                    class.name
                ));
            }
            if class.zram_chance > 0.0 && class.zram_ratio.lo <= 1.0 {
                return Err(format!("class {}: zram ratio must exceed 1.0", class.name));
            }
        }
        for persona in &self.personas {
            if persona.weight == 0 {
                return Err(format!("persona {} has zero weight", persona.name));
            }
            if persona.apps.is_empty() {
                return Err(format!("persona {} lists no apps", persona.name));
            }
            for app in &persona.apps {
                if fleet_apps::profile_by_name(app).is_none() {
                    return Err(format!("persona {}: unknown app {app}", persona.name));
                }
            }
            if persona.working_set.lo > persona.working_set.hi
                || persona.cycles.lo > persona.cycles.hi
                || persona.usage_gap_secs.lo > persona.usage_gap_secs.hi
            {
                return Err(format!("persona {} has an inverted range", persona.name));
            }
            if persona.working_set.lo == 0 || persona.cycles.lo == 0 {
                return Err(format!(
                    "persona {}: working set and cycles must be at least 1",
                    persona.name
                ));
            }
            if persona.working_set.hi as usize > persona.apps.len() {
                return Err(format!("persona {}: working set exceeds its app list", persona.name));
            }
        }
        self.reclaim_policy.validate()?;
        self.fault.validate()?;
        self.integrity.validate()?;
        for slo in &self.slos {
            slo.validate()?;
        }
        Ok(())
    }
}

// ------------------------------------------------------------------ sampling

/// Splits device `index`'s seed from the population seed (splitmix64-style
/// finaliser over the pair): stable across platforms, and no two devices
/// of a cohort share an RNG stream.
pub fn device_seed(population_seed: u64, index: u32) -> u64 {
    let mut z = population_seed ^ (index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Salt separating the day-script RNG stream from the sampling stream.
const SCRIPT_SALT: u64 = 0xDA11_5C21_F700_0001;

/// Everything needed to run one sampled device-day in isolation.
///
/// A plan is a pure function of `(spec, index)`; re-deriving it later (or
/// on another machine) reproduces the same device-day bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DevicePlan {
    /// Device index within the cohort.
    pub index: u32,
    /// The split per-device seed ([`device_seed`]).
    pub seed: u64,
    /// Sampled hardware class name.
    pub class: String,
    /// Sampled persona name.
    pub persona: String,
    /// The fully sampled, validated device configuration.
    pub config: DeviceConfig,
    /// The working set, cold-launched at day start and cycled through.
    pub apps: Vec<String>,
    /// Foreground-switch cycles in the day script.
    pub cycles: u32,
    /// Seconds of usage between launches.
    pub usage_gap_secs: u32,
}

fn choose_weighted<'a, T>(rng: &mut SimRng, items: &'a [T], weight: impl Fn(&T) -> u32) -> &'a T {
    if items.len() == 1 {
        return &items[0];
    }
    let total: u64 = items.iter().map(|i| weight(i) as u64).sum();
    let mut draw = rng.range(0, total);
    for item in items {
        let w = weight(item) as u64;
        if draw < w {
            return item;
        }
        draw -= w;
    }
    unreachable!("weights sum to total")
}

/// Samples device `index` of the cohort into a [`DevicePlan`].
///
/// Draw order (fixed; the splittable-seed contract depends on it): class →
/// persona → scheme → DRAM → swap ratio → swappiness → zram (chance,
/// fraction, ratio) → working set → cycles → usage gap. Zero-variance
/// ranges and single-entry mixes consume no randomness.
///
/// # Errors
///
/// [`FleetError::InvalidConfig`] if the spec is invalid or the sampled
/// combination fails [`DeviceConfig`] validation.
pub fn sample_device(spec: &PopulationSpec, index: u32) -> Result<DevicePlan, FleetError> {
    spec.validate().map_err(FleetError::InvalidConfig)?;
    let seed = device_seed(spec.seed, index);
    let mut rng = SimRng::seed_from(seed);

    let class = choose_weighted(&mut rng, &spec.classes, |c| c.weight);
    let persona = choose_weighted(&mut rng, &spec.personas, |p| p.weight);
    let scheme = if spec.schemes.len() == 1 {
        spec.schemes[0]
    } else {
        spec.schemes[rng.index(spec.schemes.len())]
    };

    let dram_mib = class.dram_mib.sample(&mut rng, 256);
    let swap_mib = (dram_mib as f64 * class.swap_ratio.sample(&mut rng)).round() as u32;
    let swappiness = class.swappiness.sample(&mut rng, 1);
    let zram_front = if scheme != SchemeKind::AndroidNoSwap && rng.chance(class.zram_chance) {
        let mib = (swap_mib as f64 * class.zram_fraction.sample(&mut rng)).round().max(1.0) as u32;
        Some(ZramFront { mib, compression_ratio: class.zram_ratio.sample(&mut rng) })
    } else {
        None
    };

    // Cohort-wide deployment knobs: applied, never sampled, so turning
    // Swam on leaves every RNG draw (and thus the sampled hardware and
    // day script) identical to the Reactive cohort.
    let mut builder = DeviceConfig::builder(scheme)
        .dram_mib(dram_mib)
        .swap_mib(swap_mib)
        .swappiness(swappiness)
        .reclaim_policy(spec.reclaim_policy)
        .kill_policy(spec.kill_policy)
        .fault(spec.fault)
        .integrity(spec.integrity)
        .seed(seed);
    if let Some(front) = zram_front {
        builder = builder.zram_front(front.mib, front.compression_ratio);
    }
    let config = builder.build()?;

    let k = persona.working_set.sample(&mut rng, 1) as usize;
    let apps = if k == persona.apps.len() {
        persona.apps.clone()
    } else {
        // Partial Fisher–Yates: pick k distinct apps, order-deterministic.
        let mut pool = persona.apps.clone();
        let mut picked = Vec::with_capacity(k);
        for _ in 0..k {
            picked.push(pool.swap_remove(rng.index(pool.len())));
        }
        picked
    };
    let cycles = persona.cycles.sample(&mut rng, 1);
    let usage_gap_secs = persona.usage_gap_secs.sample(&mut rng, 1);

    Ok(DevicePlan {
        index,
        seed,
        class: class.name.clone(),
        persona: persona.name.clone(),
        config,
        apps,
        cycles,
        usage_gap_secs,
    })
}

// ---------------------------------------------------------------- device-day

/// Streaming FNV-1a over the device-day's observable event stream.
#[derive(Debug, Clone, Copy)]
struct Fingerprint(u64);

impl Fingerprint {
    fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    fn mix(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn mix_report(&mut self, cycle: u32, r: &LaunchReport) {
        self.mix(cycle as u64);
        self.mix(match r.kind {
            LaunchKind::Hot => 1,
            LaunchKind::Cold => 2,
        });
        self.mix(r.at.as_nanos());
        self.mix(r.total.as_nanos());
        self.mix(r.fault_stall.as_nanos());
        self.mix(r.decompress.as_nanos());
        self.mix(r.faulted_pages);
        self.mix(r.gc_stw.as_nanos());
    }
}

/// The flat, serialisable outcome of one device-day: identity, sampled
/// hardware, counters and the event-stream fingerprint. This row — not
/// the device — is what crosses thread boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDayRow {
    /// Device index within the cohort.
    pub index: u32,
    /// The split per-device seed.
    pub seed: u64,
    /// Sampled hardware class name.
    pub class: String,
    /// Sampled persona name.
    pub persona: String,
    /// Sampled scheme.
    pub scheme: SchemeKind,
    /// Sampled DRAM in MiB.
    pub dram_mib: u32,
    /// Sampled swap partition in MiB.
    pub swap_mib: u32,
    /// Sampled zram front capacity in MiB (0 = flash-only).
    pub zram_front_mib: u32,
    /// Scripted foreground switches performed.
    pub launches: u64,
    /// Launches served hot from the cache.
    pub hot_launches: u64,
    /// Launches that had to cold-relaunch after a kill.
    pub cold_relaunches: u64,
    /// Scripted launches that died mid-launch (SIGBUS under injected
    /// corruption; always zero on quiet cohorts).
    pub failed_launches: u64,
    /// Hot-launch times, microseconds, in script order.
    pub hot_launch_us: Vec<u64>,
    /// Per-hot-launch latency decomposition (same script order as
    /// [`Self::hot_launch_us`]): the §10 span taxonomy flattened to
    /// integers for the cohort attribution fold.
    pub hot_spans: Vec<LaunchSpanSample>,
    /// LMK kills over the day.
    pub lmk_kills: u64,
    /// SIGBUS kills (lost swap slots under injected faults).
    pub sigbus_kills: u64,
    /// All kill records (LMK + pressure) the device logged.
    pub kills: u64,
    /// Kernel page faults served.
    pub faults: u64,
    /// Pages written to swap.
    pub swapped_out_pages: u64,
    /// Pages the zram writeback daemon demoted to flash.
    pub zram_writeback_pages: u64,
    /// Pages the proactive reclaim daemon swapped out ahead of pressure
    /// (zero under the Reactive policy).
    pub proactive_swapout_pages: u64,
    /// Silent corruptions injected into this device's swap stores (zero
    /// unless [`PopulationSpec::fault`] arms a corruption hazard *and*
    /// [`PopulationSpec::integrity`] is enabled).
    pub corruptions_injected: u64,
    /// Corruptions the integrity layer caught (fault/writeback/scrub/unmap).
    pub corruptions_detected: u64,
    /// Swap slots permanently quarantined.
    pub slots_quarantined: u64,
    /// Tiers retired at runtime by quarantine saturation.
    pub tiers_retired: u64,
    /// Simulated seconds the day covered.
    pub sim_secs: u64,
    /// FNV-1a fingerprint of the day's event stream (launch reports and
    /// closing device statistics). The integrity counters above are *not*
    /// mixed in: quiet cohorts must keep the fingerprints they had before
    /// the layer existed.
    pub fingerprint: u64,
}

/// Simulates one device-day from its plan, standalone.
///
/// Cold-boots the working set (the §7.2 pressure build-up), then runs the
/// scripted day: each cycle brings a seeded pick of the working set to the
/// foreground and uses it for the persona's gap. Deterministic given the
/// plan alone; in-population and standalone runs are byte-identical.
///
/// # Errors
///
/// [`FleetError::InvalidConfig`] / [`FleetError::UnknownApp`] if the plan's
/// config or app list is invalid.
pub fn run_device_day(plan: &DevicePlan) -> Result<DeviceDayRow, FleetError> {
    let mut pool = AppPool::with_config(plan.config, &plan.apps)?;
    pool.set_usage_gap(plan.usage_gap_secs as u64);
    let mut script = SimRng::seed_from(plan.seed ^ SCRIPT_SALT);
    let mut fp = Fingerprint::new();
    fp.mix(plan.index as u64);
    fp.mix(plan.seed);

    let mut hot_launch_us = Vec::new();
    let mut hot_spans = Vec::new();
    let (mut hot, mut cold, mut failed) = (0u64, 0u64, 0u64);
    for cycle in 0..plan.cycles {
        let target = &plan.apps[script.index(plan.apps.len())];
        match pool.launch(target) {
            Ok(report) => {
                fp.mix_report(cycle, &report);
                match report.kind {
                    LaunchKind::Hot => {
                        hot += 1;
                        hot_launch_us.push(report.total.as_micros());
                        hot_spans.push(LaunchSpanSample::from_report(&report));
                    }
                    LaunchKind::Cold => cold += 1,
                }
            }
            Err(FleetError::ProcessNotAlive(_)) => {
                // The target died mid-launch (SIGBUS under injected
                // corruption); the day goes on. The sentinel keeps armed
                // reruns bit-identical; quiet cohorts never branch here.
                failed += 1;
                fp.mix(cycle as u64);
                fp.mix(0xDEAD_FA11);
            }
            Err(e) => return Err(e),
        }
        pool.device_mut().run(plan.usage_gap_secs as u64);
    }
    pool.device_mut().run(5); // settle: let daemons drain the last gap

    let dev: &Device = pool.device();
    let stats = dev.mm().stats();
    let row = DeviceDayRow {
        index: plan.index,
        seed: plan.seed,
        class: plan.class.clone(),
        persona: plan.persona.clone(),
        scheme: plan.config.scheme,
        dram_mib: plan.config.dram_mib,
        swap_mib: plan.config.swap_mib,
        zram_front_mib: plan.config.zram_front.map_or(0, |f| f.mib),
        launches: hot + cold,
        hot_launches: hot,
        cold_relaunches: cold,
        failed_launches: failed,
        hot_launch_us,
        hot_spans,
        lmk_kills: dev.reclaim().total_kills(),
        sigbus_kills: dev.sigbus_kills(),
        kills: dev.kills().len() as u64,
        faults: stats.faults,
        swapped_out_pages: stats.pages_swapped_out,
        zram_writeback_pages: stats.zram_writeback_pages,
        proactive_swapout_pages: stats.proactive_swapout_pages,
        corruptions_injected: stats.corruptions_injected,
        corruptions_detected: stats.corruptions_detected,
        slots_quarantined: stats.slots_quarantined,
        tiers_retired: stats.tiers_retired,
        sim_secs: dev.now().as_nanos() / 1_000_000_000,
        fingerprint: 0,
    };
    fp.mix(row.lmk_kills);
    fp.mix(row.sigbus_kills);
    fp.mix(row.kills);
    fp.mix(row.faults);
    fp.mix(row.swapped_out_pages);
    fp.mix(row.zram_writeback_pages);
    fp.mix(row.proactive_swapout_pages);
    fp.mix(row.sim_secs);
    Ok(DeviceDayRow { fingerprint: fp.0, ..row })
}

// --------------------------------------------------------------- aggregation

/// Devices per export slice: the cohort exports one [`SliceRow`] per
/// [`SLICE_LEN`] device indices instead of one JSON record per device.
pub const SLICE_LEN: u32 = 256;

/// One batched run-slice: the aggregate of device indices
/// `[slice · SLICE_LEN, (slice+1) · SLICE_LEN)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceRow {
    /// Slice ordinal.
    pub slice: u32,
    /// Device-days absorbed into this slice.
    pub devices: u64,
    /// Scripted launches across the slice.
    pub launches: u64,
    /// Hot launches across the slice.
    pub hot_launches: u64,
    /// Sum of hot-launch times, microseconds.
    pub hot_launch_us_sum: u64,
    /// Largest hot-launch time in the slice, microseconds.
    pub hot_launch_us_max: u64,
    /// LMK kills across the slice.
    pub lmk_kills: u64,
    /// Zram writeback pages across the slice.
    pub zram_writeback_pages: u64,
}

/// The mergeable cohort aggregate: integer counters, log2 histograms, an
/// XOR cohort fingerprint and batched slice rows. [`Self::absorb`] and
/// [`Self::merge`] are commutative, so any sharding of the cohort over any
/// number of workers folds to identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationAggregate {
    /// Device-days absorbed.
    pub devices: u64,
    /// Devices that sampled a zram front tier.
    pub zram_devices: u64,
    /// Scripted launches.
    pub launches: u64,
    /// Hot launches.
    pub hot_launches: u64,
    /// Cold relaunches after kills.
    pub cold_relaunches: u64,
    /// Scripted launches that died mid-launch (SIGBUS under injected
    /// corruption).
    pub failed_launches: u64,
    /// LMK kills.
    pub lmk_kills: u64,
    /// SIGBUS kills.
    pub sigbus_kills: u64,
    /// All kill records.
    pub kills: u64,
    /// Kernel page faults.
    pub faults: u64,
    /// Pages written to swap.
    pub swapped_out_pages: u64,
    /// Zram writeback pages.
    pub zram_writeback_pages: u64,
    /// Pages the proactive reclaim daemon swapped out ahead of pressure.
    pub proactive_swapout_pages: u64,
    /// Silent corruptions injected cohort-wide.
    pub corruptions_injected: u64,
    /// Corruptions the integrity layer caught cohort-wide.
    pub corruptions_detected: u64,
    /// Swap slots permanently quarantined cohort-wide.
    pub slots_quarantined: u64,
    /// Tier retirements across the cohort.
    pub tiers_retired: u64,
    /// Total simulated seconds.
    pub sim_secs: u64,
    /// Population hot-launch distribution, microseconds.
    pub hot_launch_us: LogHistogram,
    /// Per-scheme hot-launch distributions, indexed like
    /// [`SchemeKind::ALL`].
    pub scheme_hot_launch_us: Vec<LogHistogram>,
    /// Per-scheme device counts, indexed like [`SchemeKind::ALL`].
    pub scheme_devices: Vec<u64>,
    /// Per-scheme LMK kills, indexed like [`SchemeKind::ALL`].
    pub scheme_lmk_kills: Vec<u64>,
    /// XOR of per-device event fingerprints (order-free cohort hash).
    pub cohort_hash: u64,
    /// Devices per slice row.
    pub slice_len: u32,
    /// Batched run-slice rows, one per [`Self::slice_len`] device indices.
    pub slices: Vec<SliceRow>,
    /// Launch attribution, per-slice SLO inputs, moment sums and outlier
    /// pools (DESIGN.md §15). Folds commutatively like every other field.
    pub telemetry: CohortTelemetry,
    /// Verdicts for the spec's SLO monitors, filled post-merge by
    /// [`Self::evaluate_slos`] (empty on shards and on specs without
    /// monitors).
    pub slo_verdicts: Vec<SloVerdict>,
}

fn scheme_index(scheme: SchemeKind) -> usize {
    SchemeKind::ALL.iter().position(|&s| s == scheme).expect("scheme in ALL")
}

impl PopulationAggregate {
    /// An empty aggregate sized for a cohort of `cohort_devices`.
    pub fn new(cohort_devices: u32, slice_len: u32) -> Self {
        assert!(slice_len > 0, "slice length must be positive");
        let slices = cohort_devices.div_ceil(slice_len);
        PopulationAggregate {
            devices: 0,
            zram_devices: 0,
            launches: 0,
            hot_launches: 0,
            cold_relaunches: 0,
            failed_launches: 0,
            lmk_kills: 0,
            sigbus_kills: 0,
            kills: 0,
            faults: 0,
            swapped_out_pages: 0,
            zram_writeback_pages: 0,
            proactive_swapout_pages: 0,
            corruptions_injected: 0,
            corruptions_detected: 0,
            slots_quarantined: 0,
            tiers_retired: 0,
            sim_secs: 0,
            hot_launch_us: LogHistogram::new(),
            scheme_hot_launch_us: vec![LogHistogram::new(); SchemeKind::ALL.len()],
            scheme_devices: vec![0; SchemeKind::ALL.len()],
            scheme_lmk_kills: vec![0; SchemeKind::ALL.len()],
            cohort_hash: 0,
            slice_len,
            slices: (0..slices)
                .map(|slice| SliceRow {
                    slice,
                    devices: 0,
                    launches: 0,
                    hot_launches: 0,
                    hot_launch_us_sum: 0,
                    hot_launch_us_max: 0,
                    lmk_kills: 0,
                    zram_writeback_pages: 0,
                })
                .collect(),
            telemetry: CohortTelemetry::new(cohort_devices, slice_len),
            slo_verdicts: Vec::new(),
        }
    }

    /// Folds one device-day into the aggregate.
    pub fn absorb(&mut self, row: &DeviceDayRow) {
        self.devices += 1;
        self.zram_devices += u64::from(row.zram_front_mib > 0);
        self.launches += row.launches;
        self.hot_launches += row.hot_launches;
        self.cold_relaunches += row.cold_relaunches;
        self.failed_launches += row.failed_launches;
        self.lmk_kills += row.lmk_kills;
        self.sigbus_kills += row.sigbus_kills;
        self.kills += row.kills;
        self.faults += row.faults;
        self.swapped_out_pages += row.swapped_out_pages;
        self.zram_writeback_pages += row.zram_writeback_pages;
        self.proactive_swapout_pages += row.proactive_swapout_pages;
        self.corruptions_injected += row.corruptions_injected;
        self.corruptions_detected += row.corruptions_detected;
        self.slots_quarantined += row.slots_quarantined;
        self.tiers_retired += row.tiers_retired;
        self.sim_secs += row.sim_secs;
        let si = scheme_index(row.scheme);
        self.scheme_devices[si] += 1;
        self.scheme_lmk_kills[si] += row.lmk_kills;
        for &us in &row.hot_launch_us {
            self.hot_launch_us.record(us);
            self.scheme_hot_launch_us[si].record(us);
        }
        self.cohort_hash ^= row.fingerprint;
        let slice = &mut self.slices[(row.index / self.slice_len) as usize];
        slice.devices += 1;
        slice.launches += row.launches;
        slice.hot_launches += row.hot_launches;
        slice.hot_launch_us_sum += row.hot_launch_us.iter().sum::<u64>();
        slice.hot_launch_us_max =
            slice.hot_launch_us_max.max(row.hot_launch_us.iter().copied().max().unwrap_or(0));
        slice.lmk_kills += row.lmk_kills;
        slice.zram_writeback_pages += row.zram_writeback_pages;
        self.telemetry.absorb(row);
    }

    /// Folds another shard into this one. Commutative with [`Self::absorb`]:
    /// any partition of the cohort over any merge order yields identical
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if the shards were sized for different cohorts.
    pub fn merge(&mut self, other: &PopulationAggregate) {
        assert_eq!(self.slice_len, other.slice_len, "shards must share a slice length");
        assert_eq!(self.slices.len(), other.slices.len(), "shards must share a cohort size");
        self.devices += other.devices;
        self.zram_devices += other.zram_devices;
        self.launches += other.launches;
        self.hot_launches += other.hot_launches;
        self.cold_relaunches += other.cold_relaunches;
        self.failed_launches += other.failed_launches;
        self.lmk_kills += other.lmk_kills;
        self.sigbus_kills += other.sigbus_kills;
        self.kills += other.kills;
        self.faults += other.faults;
        self.swapped_out_pages += other.swapped_out_pages;
        self.zram_writeback_pages += other.zram_writeback_pages;
        self.proactive_swapout_pages += other.proactive_swapout_pages;
        self.corruptions_injected += other.corruptions_injected;
        self.corruptions_detected += other.corruptions_detected;
        self.slots_quarantined += other.slots_quarantined;
        self.tiers_retired += other.tiers_retired;
        self.sim_secs += other.sim_secs;
        self.hot_launch_us.merge(&other.hot_launch_us);
        for (a, b) in self.scheme_hot_launch_us.iter_mut().zip(&other.scheme_hot_launch_us) {
            a.merge(b);
        }
        for (a, b) in self.scheme_devices.iter_mut().zip(&other.scheme_devices) {
            *a += b;
        }
        for (a, b) in self.scheme_lmk_kills.iter_mut().zip(&other.scheme_lmk_kills) {
            *a += b;
        }
        self.cohort_hash ^= other.cohort_hash;
        for (a, b) in self.slices.iter_mut().zip(&other.slices) {
            a.devices += b.devices;
            a.launches += b.launches;
            a.hot_launches += b.hot_launches;
            a.hot_launch_us_sum += b.hot_launch_us_sum;
            a.hot_launch_us_max = a.hot_launch_us_max.max(b.hot_launch_us_max);
            a.lmk_kills += b.lmk_kills;
            a.zram_writeback_pages += b.zram_writeback_pages;
        }
        self.telemetry.merge(&other.telemetry);
    }

    /// Evaluates `slos` against the merged per-slice telemetry and stores
    /// the verdicts. Called by [`run_population`] after the shards merge;
    /// a pure function of the order-free aggregate, so parallel and
    /// sequential runs verdict identically.
    pub fn evaluate_slos(&mut self, slos: &[SloSpec]) {
        self.slo_verdicts = self.telemetry.evaluate(slos);
    }

    /// The SLO verdicts as a report (breach totals, enforce failures).
    pub fn slo_report(&self) -> crate::telemetry::SloReport {
        crate::telemetry::SloReport { verdicts: self.slo_verdicts.clone() }
    }

    /// Hot-launch quantile in milliseconds (0 when no hot launch landed).
    pub fn hot_launch_quantile_ms(&self, q: f64) -> f64 {
        self.hot_launch_us.quantile(q) as f64 / 1e3
    }

    /// LMK kills per device-day.
    pub fn lmk_kills_per_device_day(&self) -> f64 {
        if self.devices == 0 {
            0.0
        } else {
            self.lmk_kills as f64 / self.devices as f64
        }
    }

    /// Total simulated device-hours absorbed.
    pub fn device_hours(&self) -> f64 {
        self.sim_secs as f64 / 3600.0
    }
}

// -------------------------------------------------------------- cohort runner

/// The outcome of a cohort run: the deterministic aggregate plus the
/// (non-deterministic, never exported) wall-clock cost.
#[derive(Debug)]
pub struct PopulationRun {
    /// The merged, thread-count-independent aggregate.
    pub aggregate: PopulationAggregate,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl PopulationRun {
    /// The headline throughput: simulated device-hours per wall-second.
    pub fn device_hours_per_wall_sec(&self) -> f64 {
        self.aggregate.device_hours() / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Streams the cohort through `threads` worker-owned shards and merges.
///
/// With `threads == 1` every device-day runs inline on the calling thread
/// (so thread-local audit/obs pipelines observe the whole cohort); with
/// more, scoped workers pull device indices from a shared counter, own
/// every device they build, and fold rows into a private shard. The merged
/// aggregate is byte-identical for every thread count by construction.
///
/// When the calling thread has an audit or obs pipeline installed, the run
/// drops to one inline worker regardless of `threads`: worker threads have
/// no access to the caller's thread-local pipelines, so a parallel run
/// would silently record nothing. (This is how `repro --trace` captures
/// population experiments without a manual `--threads 1`.)
///
/// After the shards merge, any [`PopulationSpec::slos`] are evaluated and
/// the verdicts stored on the aggregate.
///
/// # Errors
///
/// The first sampling or simulation error ([`FleetError`]).
pub fn run_population(spec: &PopulationSpec, threads: usize) -> Result<PopulationRun, FleetError> {
    spec.validate().map_err(FleetError::InvalidConfig)?;
    let start = Instant::now();
    #[allow(unused_mut)]
    let mut threads = threads.clamp(1, spec.devices.max(1) as usize);
    #[cfg(feature = "obs")]
    if crate::obs::current().is_some() {
        threads = 1;
    }
    #[cfg(feature = "audit")]
    if crate::audit::current().is_some() {
        threads = 1;
    }
    let mut aggregate = if threads == 1 {
        let mut agg = PopulationAggregate::new(spec.devices, SLICE_LEN);
        for index in 0..spec.devices {
            agg.absorb(&run_device_day(&sample_device(spec, index)?)?);
        }
        agg
    } else {
        let next = AtomicU32::new(0);
        let shards = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut shard = PopulationAggregate::new(spec.devices, SLICE_LEN);
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= spec.devices {
                                break;
                            }
                            shard.absorb(&run_device_day(&sample_device(spec, index)?)?);
                        }
                        Ok::<_, FleetError>(shard)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("population worker panicked"))
                .collect::<Result<Vec<_>, _>>()
        })?;
        let mut agg = PopulationAggregate::new(spec.devices, SLICE_LEN);
        for shard in &shards {
            agg.merge(shard);
        }
        agg
    };
    aggregate.evaluate_slos(&spec.slos);
    Ok(PopulationRun { aggregate, wall: start.elapsed(), threads })
}

// Workers own their devices outright; everything that crosses (or could
// cross) a thread boundary in the cohort runner must be Send. These bind
// the contract at compile time — adding an Rc/RefCell anywhere in the
// per-device state breaks the build, not a 2 a.m. cohort run.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Device>();
    assert_send::<AppPool>();
    assert_send::<DevicePlan>();
    assert_send::<DeviceDayRow>();
    assert_send::<PopulationAggregate>();
    assert_send::<PopulationSpec>();
    assert_send::<FleetError>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(seed: u64, devices: u32) -> PopulationSpec {
        let mut spec = PopulationSpec::default_mix(seed, devices);
        // Shrink the day so unit tests stay fast.
        for p in &mut spec.personas {
            p.working_set = RangeU32 { lo: 2, hi: 3 };
            p.cycles = RangeU32 { lo: 1, hi: 2 };
            p.usage_gap_secs = RangeU32 { lo: 5, hi: 10 };
        }
        spec
    }

    #[test]
    fn default_mix_validates() {
        assert!(PopulationSpec::default_mix(7, 100).validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut spec = PopulationSpec::default_mix(7, 10);
        spec.devices = 0;
        assert!(spec.validate().is_err());

        let mut spec = PopulationSpec::default_mix(7, 10);
        spec.classes[0].weight = 0;
        assert!(spec.validate().is_err());

        let mut spec = PopulationSpec::default_mix(7, 10);
        spec.classes[0].dram_mib = RangeU32 { lo: 2048, hi: 4096 };
        assert!(spec.validate().is_err(), "DRAM below the system reserve must be rejected");

        let mut spec = PopulationSpec::default_mix(7, 10);
        spec.personas[0].apps[0] = "NotAnApp".into();
        assert!(spec.validate().is_err());

        let mut spec = PopulationSpec::default_mix(7, 10);
        spec.personas[0].working_set =
            RangeU32 { lo: 1, hi: spec.personas[0].apps.len() as u32 + 1 };
        assert!(spec.validate().is_err());

        let mut spec = PopulationSpec::default_mix(7, 10);
        spec.fault.corruption_rate = 1.5;
        assert!(spec.validate().is_err(), "out-of-range fault rates must be rejected");

        let mut spec = PopulationSpec::default_mix(7, 10);
        spec.integrity = IntegrityConfig { quarantine_threshold: 0, ..IntegrityConfig::checked() };
        assert!(spec.validate().is_err(), "armed integrity with a zero threshold is nonsense");
    }

    #[test]
    fn chaos_knobs_apply_cohort_wide_without_disturbing_sampling() {
        // Arming fault injection + the integrity layer is a deployment
        // knob like the reclaim policy: every sampled device gets it, and
        // the sampled hardware/persona/script stays identical to the
        // quiet cohort's (no extra RNG draws at sampling time).
        let quiet = tiny_spec(13, 4);
        let mut armed = quiet.clone();
        armed.fault = FaultConfig::silent_corruption(0.05);
        armed.integrity = IntegrityConfig::checked();
        for index in 0..quiet.devices {
            let q = sample_device(&quiet, index).unwrap();
            let a = sample_device(&armed, index).unwrap();
            assert_eq!(a.config.fault, armed.fault);
            assert_eq!(a.config.integrity, armed.integrity);
            let mut neutral = a.clone();
            neutral.config.fault = q.config.fault;
            neutral.config.integrity = q.config.integrity;
            assert_eq!(neutral, q, "chaos knobs must not perturb the sampling stream");
        }
    }

    #[test]
    fn device_seeds_are_stable_and_distinct() {
        assert_eq!(device_seed(7, 0), device_seed(7, 0));
        let mut seen = std::collections::BTreeSet::new();
        for index in 0..10_000 {
            assert!(seen.insert(device_seed(0xF1EE7, index)), "seed collision at {index}");
        }
    }

    #[test]
    fn sampling_is_deterministic_and_validated() {
        let spec = PopulationSpec::default_mix(11, 64);
        for index in [0, 7, 63] {
            let a = sample_device(&spec, index).unwrap();
            let b = sample_device(&spec, index).unwrap();
            assert_eq!(a, b, "sampling must be a pure function of (spec, index)");
            assert!(a.config.validate().is_ok());
            assert_eq!(a.seed, device_seed(spec.seed, index));
            assert_eq!(a.config.seed, a.seed);
        }
    }

    #[test]
    fn device_day_reruns_bit_identically() {
        let spec = tiny_spec(3, 4);
        let plan = sample_device(&spec, 2).unwrap();
        let a = run_device_day(&plan).unwrap();
        let b = run_device_day(&plan).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.launches, plan.cycles as u64);
        assert!(a.fingerprint != 0);
    }

    #[test]
    fn absorb_then_merge_matches_single_fold() {
        let spec = tiny_spec(5, 6);
        let rows: Vec<DeviceDayRow> = (0..spec.devices)
            .map(|i| run_device_day(&sample_device(&spec, i).unwrap()).unwrap())
            .collect();
        let mut whole = PopulationAggregate::new(spec.devices, 2);
        for row in &rows {
            whole.absorb(row);
        }
        // Scrambled partition over three shards, merged out of order.
        let mut shards = vec![PopulationAggregate::new(spec.devices, 2); 3];
        for (i, row) in rows.iter().enumerate() {
            shards[(i * 2 + 1) % 3].absorb(row);
        }
        let mut merged = PopulationAggregate::new(spec.devices, 2);
        for idx in [1, 2, 0] {
            merged.merge(&shards[idx]);
        }
        assert_eq!(merged, whole);
    }

    #[test]
    fn parallel_and_sequential_cohorts_are_bit_identical() {
        let spec = tiny_spec(9, 5);
        let seq = run_population(&spec, 1).unwrap();
        let par = run_population(&spec, 3).unwrap();
        assert_eq!(seq.aggregate, par.aggregate);
        assert_eq!(seq.aggregate.devices, 5);
    }

    #[test]
    fn slo_monitors_evaluate_identically_across_thread_counts() {
        let mut spec = tiny_spec(21, 5);
        spec.slos = vec![
            SloSpec::hot_launch_ms("impossible", 5000, 0, 1),
            SloSpec::hot_launch_ms("generous", 9900, 1 << 30, 1),
        ];
        let seq = run_population(&spec, 1).unwrap();
        let par = run_population(&spec, 3).unwrap();
        assert_eq!(seq.aggregate, par.aggregate);
        let v = &seq.aggregate.slo_verdicts;
        assert_eq!(v.len(), 2);
        assert!(!v[0].pass, "a 0 ms objective must breach");
        assert!(v[1].pass, "a ~18-minute objective must hold");
        assert!(seq.aggregate.slo_report().breaches() >= 1);
        assert!(seq.aggregate.slo_report().enforce_failures().is_empty());
        assert_eq!(
            seq.aggregate.telemetry.overall.launches(),
            seq.aggregate.hot_launches,
            "attribution folds exactly the hot launches"
        );
    }

    #[test]
    fn degenerate_spec_samples_pixel3_exactly() {
        let apps: Vec<String> = ["Twitter", "Telegram"].iter().map(|s| s.to_string()).collect();
        let spec = PopulationSpec::degenerate(42, 3, SchemeKind::Fleet, &apps);
        for index in 0..3 {
            let plan = sample_device(&spec, index).unwrap();
            let mut expect = DeviceConfig::pixel3(SchemeKind::Fleet);
            expect.seed = device_seed(42, index);
            assert_eq!(plan.config, expect, "degenerate sampling must reduce to pixel3");
            assert_eq!(plan.apps, apps, "full working set keeps catalog order");
        }
    }
}
