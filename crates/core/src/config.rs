//! Device configuration: the simulated Pixel 3 and the simulation scale.

use crate::error::FleetError;
use crate::params::{FleetParams, SchemeKind};
use fleet_kernel::{
    FaultConfig, IntegrityConfig, KillPolicy, MmConfig, ReclaimPolicy, SwapConfig, SwapMedium,
    PAGE_SIZE,
};
use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A zram front tier placed ahead of the flash swap partition.
///
/// Vendors ship exactly this hybrid (Ariadne and most Android devices run
/// zram writeback): warm swap victims land in compressed DRAM where a
/// refault costs microseconds, while a background writeback daemon demotes
/// aging slots to flash. The front tier's *capacity* is what it can hold
/// uncompressed; the DRAM it pins is that divided by the compression ratio,
/// charged against the device's app DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZramFront {
    /// Uncompressed capacity of the zram tier in MiB (real scale).
    pub mib: u32,
    /// Compression ratio (stored bytes shrink by this factor; must be a
    /// finite value above 1.0).
    pub compression_ratio: f64,
}

/// The simulated device and run parameters.
///
/// The experiment platform of §6: a Pixel 3 with 4 GB LPDDR4X and a 2 GB
/// flash swap partition. The simulation runs at a configurable **scale**
/// (default 1/16): all capacities and footprints are divided by `scale`
/// while per-byte latencies are multiplied by it, so stall *times* stay at
/// real magnitude while the object count stays laptop-sized. DESIGN.md §5
/// discusses the fidelity consequences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Memory-management scheme under test.
    pub scheme: SchemeKind,
    /// Scale divisor (see above).
    pub scale: u32,
    /// Physical DRAM in MiB (Pixel 3: 4096).
    pub dram_mib: u32,
    /// DRAM reserved for the system (kernel, system_server, SurfaceFlinger,
    /// zygote…), unavailable to cached apps. ~2.25 GiB held or churned by
    /// the system on a loaded Android 10 device.
    pub system_reserve_mib: u32,
    /// Swap partition size in MiB (§6: 2048).
    pub swap_mib: u32,
    /// Swap read bandwidth at real scale, bytes/s (§3.2: 20.3 MB/s).
    pub swap_read_bw: f64,
    /// Swap write bandwidth at real scale, bytes/s.
    pub swap_write_bw: f64,
    /// Fleet parameters (Table 2).
    pub fleet: FleetParams,
    /// Marvin's large-object threshold in bytes (§6: 1024).
    pub marvin_threshold: u32,
    /// Heap-growth factor while an app is in the foreground.
    pub heap_growth_foreground: f64,
    /// Heap-growth factor while an app is in the background (§7.4 sweeps
    /// 1.1 vs 2.0).
    pub heap_growth_background: f64,
    /// Interval of the background maintenance GC cycle (Android's
    /// memory-trim GC; Fleet substitutes BGC, Marvin its bookmarking GC).
    pub bg_gc_interval: SimDuration,
    /// Ablation switch for Figure 12a: run Fleet *without* BGC (background
    /// collections fall back to the full tracing GC).
    pub fleet_disable_bgc: bool,
    /// Ablation: run Fleet without the periodic `madvise(HOT_RUNTIME)`
    /// refresh, leaving launch pages to ordinary LRU aging.
    pub fleet_disable_hot_refresh: bool,
    /// Ablation: run Fleet without the proactive `madvise(COLD_RUNTIME)`
    /// swap-out (cold pages leave only under reclaim pressure).
    pub fleet_disable_cold_madvise: bool,
    /// Extension: ASAP-style adaptive prepaging (Son et al., ATC '21) —
    /// prefetch the pages faulted by the previous hot-launch, overlapped
    /// with the launch render work. The paper's related-work point: this
    /// speeds launches but does nothing about the GC-swap conflict.
    pub prefetch_on_launch: bool,
    /// What backs the swap space: the paper's flash partition, or a
    /// vendor-style compressed-RAM (zram) device.
    pub swap_medium: SwapMedium,
    /// Optional zram front tier ahead of the flash partition. `None` (the
    /// default) reproduces the paper's flash-only device bit-for-bit;
    /// `Some` enables hotness-aware tiered placement with writeback.
    /// Requires `swap_medium` to be flash — a zram front of a zram back
    /// would model nothing.
    pub zram_front: Option<ZramFront>,
    /// Kernel reclaim balance (`vm.swappiness`-style, 0–200; default 50).
    pub swappiness: u32,
    /// Fault-injection rates for the swap device (DESIGN.md §9). The
    /// default is quiet — nothing is injected and the kernel behaves
    /// bit-identically to a build without the fault module.
    pub fault: FaultConfig,
    /// How reclaim daemons run (DESIGN.md §13). The default `Reactive`
    /// reproduces the pressure-driven kswapd/lmkd stack bit-for-bit;
    /// `Swam` adds working-set tracking and a proactive swap-out daemon
    /// that drains idle background apps ahead of pressure.
    pub reclaim_policy: ReclaimPolicy,
    /// How the low-memory killer picks victims. The default
    /// `ColdestFirst` is the legacy staleness order; `WssWeighted`
    /// scores candidates by reclaimable (resident minus working-set)
    /// pages.
    pub kill_policy: KillPolicy,
    /// Swap data-integrity layer (DESIGN.md §14). The default is disabled —
    /// no checksums are kept, no corruption is drawn, and the kernel
    /// behaves bit-identically to a build without the layer. Enabling it
    /// arms per-slot checksums with the quarantine/retirement ladder.
    pub integrity: IntegrityConfig,
    /// Master seed for the run.
    pub seed: u64,
}

impl DeviceConfig {
    /// Starts a [`DeviceConfigBuilder`] from the §6 Pixel 3 defaults.
    ///
    /// The builder is the preferred way to derive experiment variants:
    /// it keeps the Pixel 3 baseline in one place and validates the result
    /// in [`DeviceConfigBuilder::build`], so a sweep cannot silently run
    /// with an impossible configuration.
    ///
    /// ```
    /// use fleet::{DeviceConfig, SchemeKind};
    ///
    /// let cfg = DeviceConfig::builder(SchemeKind::Fleet)
    ///     .dram_mib(6144)
    ///     .swap_read_bw(40.0e6)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.dram_mib, 6144);
    /// ```
    pub fn builder(scheme: SchemeKind) -> DeviceConfigBuilder {
        DeviceConfigBuilder { config: DeviceConfig::pixel3(scheme) }
    }

    /// The §6 Pixel 3 platform running `scheme`, at 1/16 scale.
    pub fn pixel3(scheme: SchemeKind) -> Self {
        DeviceConfig {
            scheme,
            scale: 16,
            dram_mib: 4096,
            system_reserve_mib: 2304,
            swap_mib: 2048,
            swap_read_bw: 20.3e6,
            swap_write_bw: 15.0e6,
            fleet: FleetParams::default(),
            marvin_threshold: 1024,
            heap_growth_foreground: 2.0,
            heap_growth_background: 1.1,
            bg_gc_interval: SimDuration::from_secs(90),
            fleet_disable_bgc: false,
            fleet_disable_hot_refresh: false,
            fleet_disable_cold_madvise: false,
            prefetch_on_launch: false,
            swap_medium: SwapMedium::Flash,
            zram_front: None,
            swappiness: 50,
            fault: FaultConfig::default(),
            reclaim_policy: ReclaimPolicy::Reactive,
            kill_policy: KillPolicy::ColdestFirst,
            integrity: IntegrityConfig::default(),
            seed: 0xF1EE7,
        }
    }

    /// DRAM available to apps after the system reserve, scaled, in bytes.
    pub fn app_dram_bytes(&self) -> u64 {
        (self.dram_mib.saturating_sub(self.system_reserve_mib)) as u64 * 1024 * 1024
            / self.scale as u64
    }

    /// Swap capacity, scaled, in bytes. Zero for the no-swap scheme.
    pub fn swap_bytes(&self) -> u64 {
        if self.scheme == SchemeKind::AndroidNoSwap {
            0
        } else {
            self.swap_mib as u64 * 1024 * 1024 / self.scale as u64
        }
    }

    /// The kernel memory-manager configuration implied by this device.
    ///
    /// Bandwidths are divided by `scale` so that a *scaled* page population
    /// produces *real-scale* stall times.
    pub fn mm_config(&self) -> MmConfig {
        let frames = self.app_dram_bytes() / PAGE_SIZE;
        let swap = match self.swap_medium {
            SwapMedium::Flash => SwapConfig {
                capacity_bytes: self.swap_bytes(),
                read_bw: self.swap_read_bw / self.scale as f64,
                write_bw: self.swap_write_bw / self.scale as f64,
                op_latency: SimDuration::from_micros(80 * self.scale as u64),
                medium: SwapMedium::Flash,
            },
            SwapMedium::Zram { compression_ratio } => {
                let base = SwapConfig::try_zram(self.swap_bytes(), compression_ratio)
                    .expect("zram swap medium validated by DeviceConfig::validate");
                SwapConfig {
                    read_bw: base.read_bw / self.scale as f64,
                    write_bw: base.write_bw / self.scale as f64,
                    op_latency: base.op_latency * self.scale as u64,
                    ..base
                }
            }
        };
        let zram = self.zram_front.map(|front| {
            let base = SwapConfig::try_zram(
                front.mib as u64 * 1024 * 1024 / self.scale as u64,
                front.compression_ratio,
            )
            .expect("zram front validated by DeviceConfig::validate");
            SwapConfig {
                read_bw: base.read_bw / self.scale as f64,
                write_bw: base.write_bw / self.scale as f64,
                op_latency: base.op_latency * self.scale as u64,
                ..base
            }
        });
        MmConfig {
            dram_bytes: self.app_dram_bytes(),
            swap,
            zram,
            file_read_bw: 300.0e6 / self.scale as f64,
            swappiness: self.swappiness,
            low_watermark_frames: frames / 24,
            high_watermark_frames: frames / 12,
            dram_page_cost: SimDuration::from_nanos(450 * self.scale as u64),
            integrity: self.integrity,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.scale == 0 {
            return Err("scale must be at least 1".into());
        }
        if self.system_reserve_mib >= self.dram_mib {
            return Err("system reserve exceeds DRAM".into());
        }
        if self.heap_growth_foreground < 1.0 || self.heap_growth_background < 1.0 {
            return Err("heap growth factors must be >= 1.0".into());
        }
        if self.marvin_threshold == 0 {
            return Err("marvin threshold must be positive".into());
        }
        if let SwapMedium::Zram { compression_ratio } = self.swap_medium {
            if !compression_ratio.is_finite() || compression_ratio <= 1.0 {
                return Err("zram compression ratio must be a finite value above 1.0".into());
            }
        }
        if let Some(front) = self.zram_front {
            if front.mib == 0 {
                return Err("zram front tier must have a positive capacity".into());
            }
            if !front.compression_ratio.is_finite() || front.compression_ratio <= 1.0 {
                return Err("zram front compression ratio must be a finite value above 1.0".into());
            }
            if !matches!(self.swap_medium, SwapMedium::Flash) {
                return Err("a zram front tier requires a flash-backed swap partition".into());
            }
            if self.swap_bytes() == 0 {
                return Err("a zram front tier requires a swap partition behind it".into());
            }
        }
        self.fault.validate()?;
        self.reclaim_policy.validate()?;
        self.integrity.validate()?;
        Ok(())
    }
}

/// Builder for [`DeviceConfig`], seeded from the Pixel 3 defaults.
///
/// Created by [`DeviceConfig::builder`]. Every setter overrides one field of
/// the §6 platform; [`DeviceConfigBuilder::build`] validates the combination
/// and returns [`FleetError::InvalidConfig`] on contradiction, which is the
/// difference from mutating a `DeviceConfig` struct literal by hand.
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    config: DeviceConfig,
}

impl DeviceConfigBuilder {
    /// Memory-management scheme under test.
    pub fn scheme(mut self, scheme: SchemeKind) -> Self {
        self.config.scheme = scheme;
        self
    }

    /// Scale divisor (capacities shrink, per-byte latencies grow).
    pub fn scale(mut self, scale: u32) -> Self {
        self.config.scale = scale;
        self
    }

    /// Physical DRAM in MiB.
    pub fn dram_mib(mut self, mib: u32) -> Self {
        self.config.dram_mib = mib;
        self
    }

    /// Swap partition size in MiB.
    pub fn swap_mib(mut self, mib: u32) -> Self {
        self.config.swap_mib = mib;
        self
    }

    /// Swap read bandwidth at real scale, bytes/s.
    pub fn swap_read_bw(mut self, bw: f64) -> Self {
        self.config.swap_read_bw = bw;
        self
    }

    /// Swap write bandwidth at real scale, bytes/s.
    pub fn swap_write_bw(mut self, bw: f64) -> Self {
        self.config.swap_write_bw = bw;
        self
    }

    /// Backs the swap space with a zram device at the given compression
    /// ratio instead of the paper's flash partition.
    pub fn zram(mut self, compression_ratio: f64) -> Self {
        self.config.swap_medium = SwapMedium::Zram { compression_ratio };
        self
    }

    /// Any [`SwapMedium`], for cases the [`Self::zram`] shorthand can't say.
    pub fn swap_medium(mut self, medium: SwapMedium) -> Self {
        self.config.swap_medium = medium;
        self
    }

    /// Places a zram front tier of `mib` MiB (uncompressed capacity, real
    /// scale) at the given compression ratio ahead of the flash partition,
    /// enabling hotness-aware tiered placement with writeback.
    pub fn zram_front(mut self, mib: u32, compression_ratio: f64) -> Self {
        self.config.zram_front = Some(ZramFront { mib, compression_ratio });
        self
    }

    /// Heap-growth factor while an app is in the background (§7.4).
    pub fn heap_growth_background(mut self, factor: f64) -> Self {
        self.config.heap_growth_background = factor;
        self
    }

    /// Kernel reclaim balance (`vm.swappiness`-style, 0–200).
    pub fn swappiness(mut self, swappiness: u32) -> Self {
        self.config.swappiness = swappiness;
        self
    }

    /// Master seed for the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Fault-injection rates for the swap device (default: quiet).
    pub fn fault(mut self, fault: FaultConfig) -> Self {
        self.config.fault = fault;
        self
    }

    /// How reclaim daemons run (default: `Reactive`, the legacy
    /// pressure-driven stack). `ReclaimPolicy::swam()` enables SWAM-style
    /// proactive reclaim with working-set tracking.
    pub fn reclaim_policy(mut self, policy: ReclaimPolicy) -> Self {
        self.config.reclaim_policy = policy;
        self
    }

    /// How the low-memory killer picks victims (default: `ColdestFirst`).
    pub fn kill_policy(mut self, policy: KillPolicy) -> Self {
        self.config.kill_policy = policy;
        self
    }

    /// Swap data-integrity layer (default: disabled).
    /// `IntegrityConfig::checked()` arms per-slot checksums with the
    /// quarantine/retirement ladder and background scrubber.
    pub fn integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.config.integrity = integrity;
        self
    }

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidConfig`] naming the first violated constraint.
    pub fn build(self) -> Result<DeviceConfig, FleetError> {
        self.config.validate().map_err(FleetError::InvalidConfig)?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel3_defaults() {
        let cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        assert!(cfg.validate().is_ok());
        // (4096 − 2304) MiB / 16 = 112 MiB for apps.
        assert_eq!(cfg.app_dram_bytes(), 112 * 1024 * 1024);
        // 2048 MiB / 16 = 128 MiB swap.
        assert_eq!(cfg.swap_bytes(), 128 * 1024 * 1024);
    }

    #[test]
    fn no_swap_scheme_disables_swap() {
        let cfg = DeviceConfig::pixel3(SchemeKind::AndroidNoSwap);
        assert_eq!(cfg.swap_bytes(), 0);
        assert_eq!(cfg.mm_config().swap.capacity_bytes, 0);
    }

    #[test]
    fn scaled_bandwidth_preserves_stall_times() {
        let cfg = DeviceConfig::pixel3(SchemeKind::Android);
        let mm = cfg.mm_config();
        // A scaled page set 1/16 the size read at 1/16 bandwidth costs the
        // same wall-clock time as the full set at full bandwidth.
        let real_time = (16.0 * 100.0 * PAGE_SIZE as f64) / 20.3e6;
        let scaled_time = (100.0 * PAGE_SIZE as f64) / mm.swap.read_bw;
        assert!((real_time - scaled_time).abs() < 1e-9);
    }

    #[test]
    fn builder_matches_pixel3_when_untouched() {
        let built = DeviceConfig::builder(SchemeKind::Marvin).build().unwrap();
        assert_eq!(built, DeviceConfig::pixel3(SchemeKind::Marvin));
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = DeviceConfig::builder(SchemeKind::Fleet)
            .dram_mib(8192)
            .swap_read_bw(40.0e6)
            .swap_write_bw(30.0e6)
            .zram(2.5)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(cfg.dram_mib, 8192);
        assert_eq!(cfg.swap_read_bw, 40.0e6);
        assert_eq!(cfg.swap_medium, SwapMedium::Zram { compression_ratio: 2.5 });
        assert_eq!(cfg.seed, 42);

        let err = DeviceConfig::builder(SchemeKind::Fleet).scale(0).build();
        assert!(matches!(err, Err(FleetError::InvalidConfig(_))));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        cfg.scale = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        cfg.system_reserve_mib = 5000;
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        cfg.heap_growth_background = 0.9;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zram_front_maps_to_a_hybrid_mm_config() {
        let cfg = DeviceConfig::builder(SchemeKind::Fleet).zram_front(512, 2.5).build().unwrap();
        let mm = cfg.mm_config();
        let front = mm.zram.expect("hybrid config must carry a front tier");
        // 512 MiB / 16 scale = 32 MiB of uncompressed front capacity.
        assert_eq!(front.capacity_bytes, 32 * 1024 * 1024);
        assert_eq!(front.medium, SwapMedium::Zram { compression_ratio: 2.5 });
        // The flash partition behind it is untouched.
        assert_eq!(mm.swap.capacity_bytes, 128 * 1024 * 1024);
        assert_eq!(mm.swap.medium, SwapMedium::Flash);
        // And the default device carries no front at all.
        assert!(DeviceConfig::pixel3(SchemeKind::Fleet).mm_config().zram.is_none());
    }

    #[test]
    fn zram_front_validation_rejects_nonsense() {
        let err = DeviceConfig::builder(SchemeKind::Fleet).zram_front(0, 2.5).build();
        assert!(matches!(err, Err(FleetError::InvalidConfig(_))));
        let err = DeviceConfig::builder(SchemeKind::Fleet).zram_front(512, 1.0).build();
        assert!(matches!(err, Err(FleetError::InvalidConfig(_))));
        // Front of a zram back tier models nothing.
        let err = DeviceConfig::builder(SchemeKind::Fleet).zram(2.5).zram_front(512, 2.5).build();
        assert!(matches!(err, Err(FleetError::InvalidConfig(_))));
        // No-swap scheme leaves the front tier nothing to write back to.
        let err = DeviceConfig::builder(SchemeKind::AndroidNoSwap).zram_front(512, 2.5).build();
        assert!(matches!(err, Err(FleetError::InvalidConfig(_))));
    }

    #[test]
    fn reclaim_policy_defaults_reactive_and_validates() {
        let cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        assert_eq!(cfg.reclaim_policy, ReclaimPolicy::Reactive);
        assert_eq!(cfg.kill_policy, KillPolicy::ColdestFirst);

        let cfg = DeviceConfig::builder(SchemeKind::Fleet)
            .reclaim_policy(ReclaimPolicy::swam())
            .kill_policy(KillPolicy::WssWeighted)
            .build()
            .unwrap();
        assert!(cfg.reclaim_policy.is_swam());
        assert_eq!(cfg.kill_policy, KillPolicy::WssWeighted);

        let params = fleet_kernel::SwamParams { batch_pages: 0, ..Default::default() };
        let err = DeviceConfig::builder(SchemeKind::Fleet)
            .reclaim_policy(ReclaimPolicy::Swam(params))
            .build();
        assert!(matches!(err, Err(FleetError::InvalidConfig(_))));
    }

    #[test]
    fn fault_rates_are_validated_and_default_quiet() {
        assert!(DeviceConfig::pixel3(SchemeKind::Fleet).fault.is_quiet());
        let mut cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        cfg.fault.read_transient_rate = 2.0;
        assert!(cfg.validate().is_err());
        let cfg = DeviceConfig::builder(SchemeKind::Android)
            .fault(FaultConfig::flaky_flash(0.1))
            .build()
            .unwrap();
        assert!(!cfg.fault.is_quiet());
    }
}
