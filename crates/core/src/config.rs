//! Device configuration: the simulated Pixel 3 and the simulation scale.

use crate::params::{FleetParams, SchemeKind};
use fleet_kernel::{MmConfig, SwapConfig, SwapMedium, PAGE_SIZE};
use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The simulated device and run parameters.
///
/// The experiment platform of §6: a Pixel 3 with 4 GB LPDDR4X and a 2 GB
/// flash swap partition. The simulation runs at a configurable **scale**
/// (default 1/16): all capacities and footprints are divided by `scale`
/// while per-byte latencies are multiplied by it, so stall *times* stay at
/// real magnitude while the object count stays laptop-sized. DESIGN.md §5
/// discusses the fidelity consequences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Memory-management scheme under test.
    pub scheme: SchemeKind,
    /// Scale divisor (see above).
    pub scale: u32,
    /// Physical DRAM in MiB (Pixel 3: 4096).
    pub dram_mib: u32,
    /// DRAM reserved for the system (kernel, system_server, SurfaceFlinger,
    /// zygote…), unavailable to cached apps. ~2.25 GiB held or churned by
    /// the system on a loaded Android 10 device.
    pub system_reserve_mib: u32,
    /// Swap partition size in MiB (§6: 2048).
    pub swap_mib: u32,
    /// Swap read bandwidth at real scale, bytes/s (§3.2: 20.3 MB/s).
    pub swap_read_bw: f64,
    /// Swap write bandwidth at real scale, bytes/s.
    pub swap_write_bw: f64,
    /// Fleet parameters (Table 2).
    pub fleet: FleetParams,
    /// Marvin's large-object threshold in bytes (§6: 1024).
    pub marvin_threshold: u32,
    /// Heap-growth factor while an app is in the foreground.
    pub heap_growth_foreground: f64,
    /// Heap-growth factor while an app is in the background (§7.4 sweeps
    /// 1.1 vs 2.0).
    pub heap_growth_background: f64,
    /// Interval of the background maintenance GC cycle (Android's
    /// memory-trim GC; Fleet substitutes BGC, Marvin its bookmarking GC).
    pub bg_gc_interval: SimDuration,
    /// Ablation switch for Figure 12a: run Fleet *without* BGC (background
    /// collections fall back to the full tracing GC).
    pub fleet_disable_bgc: bool,
    /// Ablation: run Fleet without the periodic `madvise(HOT_RUNTIME)`
    /// refresh, leaving launch pages to ordinary LRU aging.
    pub fleet_disable_hot_refresh: bool,
    /// Ablation: run Fleet without the proactive `madvise(COLD_RUNTIME)`
    /// swap-out (cold pages leave only under reclaim pressure).
    pub fleet_disable_cold_madvise: bool,
    /// Extension: ASAP-style adaptive prepaging (Son et al., ATC '21) —
    /// prefetch the pages faulted by the previous hot-launch, overlapped
    /// with the launch render work. The paper's related-work point: this
    /// speeds launches but does nothing about the GC-swap conflict.
    pub prefetch_on_launch: bool,
    /// What backs the swap space: the paper's flash partition, or a
    /// vendor-style compressed-RAM (zram) device.
    pub swap_medium: SwapMedium,
    /// Kernel reclaim balance (`vm.swappiness`-style, 0–200; default 50).
    pub swappiness: u32,
    /// Master seed for the run.
    pub seed: u64,
}

impl DeviceConfig {
    /// The §6 Pixel 3 platform running `scheme`, at 1/16 scale.
    pub fn pixel3(scheme: SchemeKind) -> Self {
        DeviceConfig {
            scheme,
            scale: 16,
            dram_mib: 4096,
            system_reserve_mib: 2304,
            swap_mib: 2048,
            swap_read_bw: 20.3e6,
            swap_write_bw: 15.0e6,
            fleet: FleetParams::default(),
            marvin_threshold: 1024,
            heap_growth_foreground: 2.0,
            heap_growth_background: 1.1,
            bg_gc_interval: SimDuration::from_secs(90),
            fleet_disable_bgc: false,
            fleet_disable_hot_refresh: false,
            fleet_disable_cold_madvise: false,
            prefetch_on_launch: false,
            swap_medium: SwapMedium::Flash,
            swappiness: 50,
            seed: 0xF1EE7,
        }
    }

    /// DRAM available to apps after the system reserve, scaled, in bytes.
    pub fn app_dram_bytes(&self) -> u64 {
        (self.dram_mib.saturating_sub(self.system_reserve_mib)) as u64 * 1024 * 1024
            / self.scale as u64
    }

    /// Swap capacity, scaled, in bytes. Zero for the no-swap scheme.
    pub fn swap_bytes(&self) -> u64 {
        if self.scheme == SchemeKind::AndroidNoSwap {
            0
        } else {
            self.swap_mib as u64 * 1024 * 1024 / self.scale as u64
        }
    }

    /// The kernel memory-manager configuration implied by this device.
    ///
    /// Bandwidths are divided by `scale` so that a *scaled* page population
    /// produces *real-scale* stall times.
    pub fn mm_config(&self) -> MmConfig {
        let frames = self.app_dram_bytes() / PAGE_SIZE;
        let swap = match self.swap_medium {
            SwapMedium::Flash => SwapConfig {
                capacity_bytes: self.swap_bytes(),
                read_bw: self.swap_read_bw / self.scale as f64,
                write_bw: self.swap_write_bw / self.scale as f64,
                op_latency: SimDuration::from_micros(80 * self.scale as u64),
                medium: SwapMedium::Flash,
            },
            SwapMedium::Zram { compression_ratio } => {
                let base = SwapConfig::zram(self.swap_bytes(), compression_ratio);
                SwapConfig {
                    read_bw: base.read_bw / self.scale as f64,
                    write_bw: base.write_bw / self.scale as f64,
                    op_latency: base.op_latency * self.scale as u64,
                    ..base
                }
            }
        };
        MmConfig {
            dram_bytes: self.app_dram_bytes(),
            swap,
            file_read_bw: 300.0e6 / self.scale as f64,
            swappiness: self.swappiness,
            low_watermark_frames: frames / 24,
            high_watermark_frames: frames / 12,
            dram_page_cost: SimDuration::from_nanos(450 * self.scale as u64),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.scale == 0 {
            return Err("scale must be at least 1".into());
        }
        if self.system_reserve_mib >= self.dram_mib {
            return Err("system reserve exceeds DRAM".into());
        }
        if self.heap_growth_foreground < 1.0 || self.heap_growth_background < 1.0 {
            return Err("heap growth factors must be >= 1.0".into());
        }
        if self.marvin_threshold == 0 {
            return Err("marvin threshold must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel3_defaults() {
        let cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        assert!(cfg.validate().is_ok());
        // (4096 − 2304) MiB / 16 = 112 MiB for apps.
        assert_eq!(cfg.app_dram_bytes(), 112 * 1024 * 1024);
        // 2048 MiB / 16 = 128 MiB swap.
        assert_eq!(cfg.swap_bytes(), 128 * 1024 * 1024);
    }

    #[test]
    fn no_swap_scheme_disables_swap() {
        let cfg = DeviceConfig::pixel3(SchemeKind::AndroidNoSwap);
        assert_eq!(cfg.swap_bytes(), 0);
        assert_eq!(cfg.mm_config().swap.capacity_bytes, 0);
    }

    #[test]
    fn scaled_bandwidth_preserves_stall_times() {
        let cfg = DeviceConfig::pixel3(SchemeKind::Android);
        let mm = cfg.mm_config();
        // A scaled page set 1/16 the size read at 1/16 bandwidth costs the
        // same wall-clock time as the full set at full bandwidth.
        let real_time = (16.0 * 100.0 * PAGE_SIZE as f64) / 20.3e6;
        let scaled_time = (100.0 * PAGE_SIZE as f64) / mm.swap.read_bw;
        assert!((real_time - scaled_time).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        cfg.scale = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        cfg.system_reserve_mib = 5000;
        assert!(cfg.validate().is_err());
        let mut cfg = DeviceConfig::pixel3(SchemeKind::Fleet);
        cfg.heap_growth_background = 0.9;
        assert!(cfg.validate().is_err());
    }
}
