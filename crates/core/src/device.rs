//! The simulated device: processes, scheme logic, launches, LMK.
//!
//! `Device` is the top of the stack — it owns the kernel memory manager and
//! every process (heap + behaviour), advances virtual time in one-second
//! slices, and implements the three schemes' policies:
//!
//! * **Android** — full-heap concurrent-copying GC everywhere; the kernel's
//!   LRU swap does whatever it wants (§2.2, Table 1),
//! * **Marvin** — bookmarking GC; Java-heap pages are excluded from kernel
//!   LRU eviction and reclaimed only through Marvin's object-granularity
//!   swap of ≥ 1 KiB objects onto *pure* pages (§3.1, §6),
//! * **Fleet** — the §5.1 workflow: Ts after backgrounding run the RGS
//!   grouping GC, `madvise(COLD_RUNTIME)` the cold ranges, periodically
//!   `madvise(HOT_RUNTIME)` the launch ranges, and run BGC instead of full
//!   GCs while cached; Tf after foregrounding, stop.
//!
//! Hot-launches are measured exactly as the paper defines them: time to
//! first frame = render cost + page-fault stalls on the launch working set
//! + the pause/stall of a launch-triggered GC.

use crate::config::DeviceConfig;
use crate::error::FleetError;
use crate::params::SchemeKind;
use crate::process::{AppState, FleetProcState, GcRecord, LaunchKind, LaunchReport, Process};
use fleet_apps::{AppBehavior, AppProfile};
use fleet_gc::{
    swappable_pages, BackgroundObjectGc, Collector, FullCopyingGc, GcCostModel, GcKind, GcStats,
    GroupingGc, MarvinGc, MemoryTouch, MinorGc,
};
use fleet_heap::{AllocContext, Heap, HeapConfig, HeapEvent, ObjectId, RegionKind, PAGE_SIZE};
use fleet_kernel::{
    AccessKind, AccessOutcome, Advice, FaultPlan, LmkCandidate, MemoryManager, PageKind, Pid,
    ReclaimDriver,
};
use fleet_metrics::ThreadClass;
use fleet_sim::{Clock, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Emits a device-level audit event through the attached pipeline; expands
/// to nothing without the `audit` feature, so event construction is free.
#[cfg(feature = "audit")]
macro_rules! device_audit {
    ($self:ident, $ev:expr) => {
        $self.audit_emit($ev)
    };
}
#[cfg(not(feature = "audit"))]
macro_rules! device_audit {
    ($self:ident, $ev:expr) => {};
}

/// Native anonymous mappings live far above any Java-heap address.
const NATIVE_BASE: u64 = 1 << 40;
/// File-backed mappings live in their own window above the native ones.
const FILE_BASE: u64 = 1 << 41;
/// Foreground page-cache churn lives in this window under a pseudo-pid.
const SCRATCH_BASE: u64 = 1 << 42;
/// Pseudo-process owning the global page cache (never killed/LMK'd).
const PAGECACHE_PID: Pid = Pid(u32::MAX);
/// The page cache keeps at most this many bytes of recent file pages
/// mapped; older cache pages are dropped as the window slides.
const PAGECACHE_WINDOW: u64 = 64 * 1024 * 1024;

/// Who generated a traced access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceSource {
    /// App threads.
    Mutator,
    /// The GC thread.
    Gc,
    /// The hot-launch critical path.
    Launch,
}

/// One sampled object access (Figure 4 / Figure 12b raw data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Seconds since the start of the run.
    pub secs: f64,
    /// Allocation-order object id.
    pub object: u64,
    /// Access source.
    pub source: TraceSource,
}

/// Object-access trace for one process (sampled 1-in-`every`).
#[derive(Debug, Clone)]
pub struct DeviceTrace {
    target: Pid,
    every: u64,
    counter: u64,
    samples: Vec<TraceSample>,
}

impl DeviceTrace {
    /// The collected samples.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }
}

/// A record of an LMK kill.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KillRecord {
    /// When the kill happened.
    pub at: SimTime,
    /// Which process died.
    pub pid: Pid,
    /// Its app name.
    pub name: String,
}

/// The simulated phone.
pub struct Device {
    config: DeviceConfig,
    clock: Clock,
    mm: MemoryManager,
    procs: BTreeMap<Pid, Process>,
    foreground: Option<Pid>,
    next_pid: u32,
    rng: SimRng,
    kills: Vec<KillRecord>,
    /// The reclaim daemon: owns the per-slice tick (kswapd scan, zram
    /// writeback, proactive swap-out under Swam) and executes kills against
    /// the kernel under the configured kill policy.
    reclaim: ReclaimDriver,
    oom_touch_skips: u64,
    /// Processes killed because an anonymous page was lost to a permanent
    /// swap I/O error (the SIGBUS analog); fault injection only.
    sigbus_kills: u64,
    /// Mappings abandoned because memory was exhausted with nothing left to
    /// kill (the un-mapped remainder simply never becomes resident).
    map_failures: u64,
    /// Collections that ran out of copy budget mid-evacuation and degraded
    /// to an in-place sweep ([`fleet_gc::MemoryTouch::copy_budget`]);
    /// fault injection only.
    evac_aborts: u64,
    trace: Option<DeviceTrace>,
    gc_cost: GcCostModel,
    /// PSI-style IO-pressure tracker: EWMA of the fraction of wall time
    /// threads spend stalled on swap faults. Sustained thrash kills cached
    /// apps — §3.2's "high memory pressure, which may induce terminations".
    psi_ewma: f64,
    psi_last_stall_nanos: u64,
    /// Sliding page-cache window: next offset and trailing edge.
    scratch_head: u64,
    scratch_tail: u64,
    /// Per-app launch-page history for ASAP-style prepaging. Keyed by app
    /// name and persisted across LMK kills, like ASAP's on-disk profiles.
    launch_history: BTreeMap<String, Vec<(u64, u64)>>,
    /// Flight-recorder hookup, present when a pipeline was installed via
    /// [`crate::audit::install`] at construction time.
    #[cfg(feature = "audit")]
    audit: Option<DeviceAudit>,
    /// Tracing hookup, present when a pipeline was installed via
    /// [`crate::obs::install`] at construction time.
    #[cfg(feature = "obs")]
    obs: Option<DeviceObs>,
}

#[cfg(feature = "audit")]
struct DeviceAudit {
    pipeline: crate::audit::SharedPipeline,
    ordinal: u32,
}

#[cfg(feature = "obs")]
struct DeviceObs {
    pipeline: crate::obs::SharedPipeline,
    ordinal: u32,
}

struct KernelTouch<'a> {
    mm: &'a mut MemoryManager,
    pid: Pid,
    oom: &'a mut u64,
    /// Fast path: consecutive touches within one already-resident page skip
    /// the kernel call (real hardware pays a TLB hit, not a page walk).
    last_resident_page: Option<u64>,
    /// Set when an anonymous page of this process was lost to a permanent
    /// swap error mid-trace: the process must be SIGBUS-killed by the
    /// device once the collector unwinds.
    fatal: bool,
}

impl<'a> KernelTouch<'a> {
    fn new(mm: &'a mut MemoryManager, pid: Pid, oom: &'a mut u64) -> Self {
        KernelTouch { mm, pid, oom, last_resident_page: None, fatal: false }
    }
}

impl MemoryTouch for KernelTouch<'_> {
    fn touch(&mut self, addr: u64, size: u32) -> SimDuration {
        let size = size.max(1) as u64;
        let first_page = addr / PAGE_SIZE;
        let last_page = (addr + size - 1) / PAGE_SIZE;
        if first_page == last_page && self.last_resident_page == Some(first_page) {
            return SimDuration::ZERO;
        }
        let outcome = self.mm.access(self.pid, addr, size, AccessKind::Gc);
        if outcome.killed {
            self.fatal = true;
        }
        if outcome.oom {
            // Frames and swap both exhausted mid-trace: the untouched pages
            // stay where they are; the device-level LMK will make room soon.
            *self.oom += 1;
            self.last_resident_page = None;
        } else {
            self.last_resident_page = Some(last_page);
        }
        outcome.latency
    }

    fn copy_budget(&mut self, _bytes: u64) -> bool {
        // Under an armed fault plan, a collector running at the free-memory
        // floor aborts evacuation instead of deepening the shortage; quiet
        // plans always grant so golden traces are untouched (DESIGN.md §9).
        !self.mm.fault_active() || self.mm.free_frames() > self.mm.config().low_watermark_frames
    }
}

impl Device {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DeviceConfig::validate`]; see
    /// [`Device::try_new`] for the fallible form.
    pub fn new(config: DeviceConfig) -> Self {
        Self::try_new(config).expect("invalid device configuration")
    }

    /// Creates a device, or reports why the configuration is invalid.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::InvalidConfig`] if `config` fails
    /// [`DeviceConfig::validate`].
    pub fn try_new(config: DeviceConfig) -> Result<Self, FleetError> {
        config.validate().map_err(FleetError::InvalidConfig)?;
        let scale = config.scale as u64;
        let gc_cost = GcCostModel {
            per_object_trace: SimDuration::from_nanos(150 * scale),
            copy_bytes_per_sec: 4.0e9 / scale as f64,
            per_card_scan: SimDuration::from_nanos(200 * scale),
            stw_base: SimDuration::from_micros(800),
            marvin_per_stub_stw: SimDuration::from_nanos(6000 * scale),
        };
        #[allow(unused_mut)]
        let mut device = Device {
            mm: MemoryManager::new(config.mm_config()),
            clock: Clock::new(),
            procs: BTreeMap::new(),
            foreground: None,
            next_pid: 1,
            rng: SimRng::seed_from(config.seed),
            kills: Vec::new(),
            reclaim: ReclaimDriver::new(config.reclaim_policy, config.kill_policy),
            oom_touch_skips: 0,
            sigbus_kills: 0,
            map_failures: 0,
            evac_aborts: 0,
            trace: None,
            gc_cost,
            psi_ewma: 0.0,
            psi_last_stall_nanos: 0,
            scratch_head: 0,
            scratch_tail: 0,
            launch_history: BTreeMap::new(),
            config,
            #[cfg(feature = "audit")]
            audit: None,
            #[cfg(feature = "obs")]
            obs: None,
        };
        if !device.config.fault.is_quiet() {
            let plan = FaultPlan::new(device.config.seed, device.config.fault);
            device.mm.install_fault_plan(plan);
        }
        // Swam enables the kernel's observe-only working-set tracker;
        // Reactive leaves the kernel untouched (bit-identical streams).
        device.reclaim.attach(&mut device.mm);
        #[cfg(feature = "audit")]
        device.attach_audit();
        #[cfg(feature = "obs")]
        device.attach_obs();
        Ok(device)
    }

    /// Hooks this device up to the thread's installed audit pipeline (if
    /// any): registers a device ordinal, announces capacities, and enables
    /// the kernel's event log. Per-process heap logs are enabled at spawn.
    #[cfg(feature = "audit")]
    fn attach_audit(&mut self) {
        let Some(pipeline) = crate::audit::current() else { return };
        let ordinal = pipeline.lock().expect("audit pipeline poisoned").attach();
        self.audit = Some(DeviceAudit { pipeline, ordinal });
        self.mm.audit_log_mut().enable(0);
        let frames = self.mm.frames_capacity();
        let swap_pages = self.mm.swap().capacity_pages();
        self.audit_emit(fleet_audit::AuditEvent::DeviceAttached { frames, swap_pages });
    }

    /// Drains every component's buffered events into the pipeline, heap
    /// logs in pid order first, then the kernel's. This is the ordering
    /// barrier: each component's stream stays internally ordered, and no
    /// auditor invariant spans a heap log and the kernel log.
    #[cfg(feature = "audit")]
    fn audit_flush(&mut self) {
        let Some(audit) = self.audit.as_ref() else { return };
        let ordinal = audit.ordinal;
        let mut events: Vec<fleet_audit::AuditEvent> = Vec::new();
        for proc in self.procs.values_mut() {
            events.append(&mut proc.heap.audit_log_mut().drain());
        }
        events.append(&mut self.mm.audit_log_mut().drain());
        if events.is_empty() {
            return;
        }
        let audit = self.audit.as_ref().expect("checked above");
        let mut pipeline = audit.pipeline.lock().expect("audit pipeline poisoned");
        for event in events {
            pipeline.feed(ordinal, event);
        }
    }

    /// Flushes the component logs, then feeds one device-level event.
    #[cfg(feature = "audit")]
    fn audit_emit(&mut self, event: fleet_audit::AuditEvent) {
        if self.audit.is_none() {
            return;
        }
        self.audit_flush();
        let audit = self.audit.as_ref().expect("checked above");
        audit.pipeline.lock().expect("audit pipeline poisoned").feed(audit.ordinal, event);
    }

    /// Announces a newly spawned process and synthesizes a snapshot of its
    /// initial heap (built before its event log was enabled): regions,
    /// objects, reference edges and roots, in allocation order.
    #[cfg(feature = "audit")]
    fn audit_spawn(&mut self, pid: Pid) {
        if self.audit.is_none() {
            return;
        }
        let name = self.procs.get(&pid).expect("alive").name.clone();
        self.audit_emit(fleet_audit::AuditEvent::ProcessSpawn { pid: pid.0, name });
        let mut events: Vec<fleet_audit::AuditEvent> = Vec::new();
        {
            let proc = self.procs.get_mut(&pid).expect("alive");
            let p = pid.0;
            for region in proc.heap.regions() {
                events.push(fleet_audit::AuditEvent::RegionMapped {
                    pid: p,
                    region: region.id().0,
                    base: region.base(),
                    len: region.size() as u64,
                    kind: region.kind().to_string(),
                });
            }
            let ids: Vec<ObjectId> = proc.heap.object_ids().collect();
            for &obj in &ids {
                let o = proc.heap.object(obj);
                events.push(fleet_audit::AuditEvent::ObjectAlloc {
                    pid: p,
                    object: obj.0 as u64,
                    region: o.region().0,
                    size: o.size() as u64,
                });
            }
            for &obj in &ids {
                for &to in proc.heap.object(obj).refs() {
                    events.push(fleet_audit::AuditEvent::RefAdded {
                        pid: p,
                        from: obj.0 as u64,
                        to: to.0 as u64,
                    });
                }
            }
            for &root in proc.heap.roots() {
                events.push(fleet_audit::AuditEvent::RootAdded { pid: p, object: root.0 as u64 });
            }
            // From here on the heap reports its own transitions.
            proc.heap.audit_log_mut().enable(p);
        }
        let audit = self.audit.as_ref().expect("checked above");
        let mut pipeline = audit.pipeline.lock().expect("audit pipeline poisoned");
        for event in events {
            pipeline.feed(audit.ordinal, event);
        }
    }

    /// Hooks this device up to the thread's installed observability
    /// pipeline (if any): registers a device ordinal, names the kernel
    /// track, and enables the kernel's span log. Per-process heap logs are
    /// enabled at spawn.
    #[cfg(feature = "obs")]
    fn attach_obs(&mut self) {
        let Some(pipeline) = crate::obs::current() else { return };
        let ordinal = pipeline.lock().expect("obs pipeline poisoned").attach();
        self.obs = Some(DeviceObs { pipeline, ordinal });
        self.mm.obs_log_mut().enable(0);
        let obs = self.obs.as_ref().expect("just set");
        obs.pipeline.lock().expect("obs pipeline poisoned").set_track_name(
            ordinal,
            0,
            "kernel (mm)".to_string(),
        );
    }

    /// Names the process's trace track and enables its heap span log so GC
    /// phase spans are recorded from the first collection on.
    #[cfg(feature = "obs")]
    fn obs_spawn(&mut self, pid: Pid) {
        let Some(obs) = self.obs.as_ref() else { return };
        let name = {
            let proc = self.procs.get_mut(&pid).expect("alive");
            proc.heap.obs_log_mut().enable(pid.0);
            format!("{} (pid {})", proc.name, pid.0)
        };
        obs.pipeline.lock().expect("obs pipeline poisoned").set_track_name(
            obs.ordinal,
            pid.0,
            name,
        );
    }

    /// Drains the kernel's buffered span records into the tracer, anchored
    /// at the current virtual time. Heap logs are *not* drained here: GC
    /// phase spans are placed per-collection by [`Device::obs_gc_span`] so
    /// they nest under that collection's root span.
    #[cfg(feature = "obs")]
    fn obs_flush(&mut self) {
        if self.obs.is_none() {
            return;
        }
        let records = self.mm.obs_log_mut().drain();
        if records.is_empty() {
            return;
        }
        let anchor = self.clock.now().as_nanos();
        let obs = self.obs.as_ref().expect("checked above");
        obs.pipeline.lock().expect("obs pipeline poisoned").feed_batch(
            obs.ordinal,
            anchor,
            records,
        );
    }

    /// Emits one collection's span family onto the app's track: a depth-0
    /// root span named after the collector, with the phase spans the
    /// collector pushed into the heap's obs log (`gc_mark` / `gc_copy` /
    /// `gc_evac_abort`) nested beneath it, plus the GC latency metrics.
    #[cfg(feature = "obs")]
    fn obs_gc_span(&mut self, pid: Pid, stats: &GcStats) {
        if self.obs.is_none() {
            return;
        }
        let drained = match self.procs.get_mut(&pid) {
            Some(proc) => proc.heap.obs_log_mut().drain(),
            None => Vec::new(),
        };
        // Slow-path `alloc` spans ("heap" cat, depth 0) ride in the same
        // buffer as the GC phase spans but are roots of their own: feed them
        // as a separate batch first, so the collection root inserted below
        // adopts only the phase spans as children.
        let (alloc_spans, mut records): (Vec<_>, Vec<_>) = drained
            .into_iter()
            .partition(|r| matches!(r, fleet_obs::ObsRecord::Span(s) if s.cat == "heap"));
        let name = match stats.kind {
            GcKind::Full => "gc_full",
            GcKind::Minor => "gc_minor",
            GcKind::Marvin => "gc_marvin",
            GcKind::Bgc => "gc_bgc",
            GcKind::Grouping => "gc_grouping",
        };
        let root = fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
            pid: pid.0,
            name,
            cat: "gc",
            depth: 0,
            rel_start: 0,
            dur: stats.duration().as_nanos(),
            args: vec![
                ("stw_ns", stats.stw.as_nanos()),
                ("objects_traced", stats.objects_traced),
                ("bytes_freed", stats.bytes_freed),
                ("evac_aborted", u64::from(stats.evac_aborted)),
            ],
        });
        records.insert(0, root);
        let anchor = self.clock.now().as_nanos();
        let obs = self.obs.as_ref().expect("checked above");
        let mut pipeline = obs.pipeline.lock().expect("obs pipeline poisoned");
        if !alloc_spans.is_empty() {
            pipeline.feed_batch(obs.ordinal, anchor, alloc_spans);
        }
        pipeline.feed_batch(obs.ordinal, anchor, records);
        pipeline.latency("gc.stw_ns", stats.stw.as_nanos());
        pipeline.latency("gc.duration_ns", stats.duration().as_nanos());
        pipeline.counter_add("gc.collections", 1);
    }

    /// Emits the hot-launch span family: a root `launch` span of the full
    /// time-to-first-frame with `cpu` / `fault_in` / `gc_pause` children
    /// laid end to end — their durations sum *exactly* to the root's, which
    /// is what the `launch_attribution` experiment decomposes. On hybrid
    /// swap stacks the `fault_in` child additionally nests a `decompress`
    /// span covering the portion of the stall spent inflating zram slots;
    /// flash-only devices emit no such span, keeping their traces
    /// unchanged.
    #[cfg(feature = "obs")]
    fn obs_launch_span(
        &mut self,
        pid: Pid,
        report: &LaunchReport,
        cpu: SimDuration,
        fault_in: SimDuration,
        gc_pause: SimDuration,
    ) {
        let Some(obs) = self.obs.as_ref() else { return };
        let total = report.total.as_nanos();
        let faulted = report.faulted_pages;
        let root_name = match report.kind {
            LaunchKind::Cold => "launch_cold",
            LaunchKind::Hot => "launch_hot",
        };
        let span =
            |name: &'static str, depth: u8, rel_start: u64, dur: u64, args: fleet_obs::SpanArgs| {
                fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                    pid: pid.0,
                    name,
                    cat: "launch",
                    depth,
                    rel_start,
                    dur,
                    args,
                })
            };
        let mut records = vec![span(root_name, 0, 0, total, vec![("faulted_pages", faulted)])];
        let decompress = report.decompress;
        if total > 0 {
            records.push(span("cpu", 1, 0, cpu.as_nanos(), Vec::new()));
            records.push(span("fault_in", 1, cpu.as_nanos(), fault_in.as_nanos(), Vec::new()));
            if decompress > SimDuration::ZERO {
                // The decompression stall sits at the front of the fault
                // window: zram reads are served before the flash batch.
                records.push(span(
                    "decompress",
                    2,
                    cpu.as_nanos(),
                    decompress.as_nanos(),
                    Vec::new(),
                ));
            }
            records.push(span(
                "gc_pause",
                1,
                cpu.as_nanos() + fault_in.as_nanos(),
                gc_pause.as_nanos(),
                Vec::new(),
            ));
        }
        let anchor = self.clock.now().as_nanos();
        let mut pipeline = obs.pipeline.lock().expect("obs pipeline poisoned");
        pipeline.feed_batch(obs.ordinal, anchor, records);
        pipeline.latency("launch.total_ns", total);
        pipeline.latency("launch.fault_in_ns", fault_in.as_nanos());
        pipeline.latency("launch.gc_ns", gc_pause.as_nanos());
        if decompress > SimDuration::ZERO {
            pipeline.latency("launch.decompress_ns", decompress.as_nanos());
        }
        pipeline.counter_add("launch.hot", 1);
    }

    /// Once per one-second slice: drains the kernel span log and samples
    /// the degradation and occupancy counters onto the metric timeline, so
    /// `KernelStats` becomes a set of time series in `metrics.json`.
    #[cfg(feature = "obs")]
    fn obs_slice_sample(&mut self) {
        if self.obs.is_none() {
            return;
        }
        self.obs_flush();
        let now = self.clock.now().as_nanos();
        let faults = self.mm.stats().faults;
        let retries = self.mm.stats().fault_retries;
        let read_errors = self.mm.stats().swap_read_errors;
        let lost = self.mm.stats().pages_lost;
        let used = self.mm.used_frames();
        let swap_used = self.mm.swap().used_pages();
        let psi_micro = (self.psi_ewma * 1e6) as u64;
        let obs = self.obs.as_ref().expect("checked above");
        let mut pipeline = obs.pipeline.lock().expect("obs pipeline poisoned");
        pipeline.sample("kernel.faults", now, faults);
        pipeline.sample("kernel.fault_retries", now, retries);
        pipeline.sample("kernel.swap_read_errors", now, read_errors);
        pipeline.sample("kernel.pages_lost", now, lost);
        pipeline.sample("mem.used_frames", now, used);
        pipeline.sample("swap.used_pages", now, swap_used);
        pipeline.sample("device.psi_micro", now, psi_micro);
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The kernel memory manager (for inspection).
    pub fn mm(&self) -> &MemoryManager {
        &self.mm
    }

    /// A live process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not alive; see [`Device::try_process`] for the
    /// fallible form.
    pub fn process(&self, pid: Pid) -> &Process {
        self.try_process(pid).expect("process not alive")
    }

    /// A live process, or [`FleetError::ProcessNotAlive`].
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::ProcessNotAlive`] if `pid` has been killed or
    /// never existed.
    pub fn try_process(&self, pid: Pid) -> Result<&Process, FleetError> {
        self.procs.get(&pid).ok_or(FleetError::ProcessNotAlive(pid))
    }

    /// Pids of all live processes in creation order.
    pub fn alive(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// Iterates over all live processes in pid order.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }

    /// Number of live (cached + foreground) apps.
    pub fn cached_apps(&self) -> usize {
        self.procs.len()
    }

    /// The foreground pid, if an app is up.
    pub fn foreground(&self) -> Option<Pid> {
        self.foreground
    }

    /// LMK kills so far.
    pub fn kills(&self) -> &[KillRecord] {
        &self.kills
    }

    /// GC touches that could not be served because memory was exhausted.
    pub fn oom_touch_skips(&self) -> u64 {
        self.oom_touch_skips
    }

    /// Processes killed by an unrecoverable swap data loss (SIGBUS analog).
    /// Always zero under a quiet fault plan.
    pub fn sigbus_kills(&self) -> u64 {
        self.sigbus_kills
    }

    /// Mappings abandoned because memory was exhausted with no killable
    /// process left; the affected range simply never becomes resident.
    pub fn map_failures(&self) -> u64 {
        self.map_failures
    }

    /// Collections that ran out of copy budget mid-evacuation and degraded
    /// to an in-place sweep. Always zero under a quiet fault plan.
    pub fn evac_aborts(&self) -> u64 {
        self.evac_aborts
    }

    /// The reclaim driver (kill counters, escalation stats, proactive
    /// reclaim totals).
    pub fn reclaim(&self) -> &ReclaimDriver {
        &self.reclaim
    }

    /// Enables 1-in-`every` object-access tracing for `pid`.
    pub fn enable_trace(&mut self, pid: Pid, every: u64) {
        self.trace =
            Some(DeviceTrace { target: pid, every: every.max(1), counter: 0, samples: Vec::new() });
    }

    /// Stops tracing and returns the trace.
    pub fn take_trace(&mut self) -> Option<DeviceTrace> {
        self.trace.take()
    }

    fn heap_config(&self) -> HeapConfig {
        HeapConfig {
            region_size: self.config.fleet.region_size,
            card_shift: self.config.fleet.card_shift,
            initial_limit: 2 * 1024 * 1024,
            growth_factor_foreground: self.config.heap_growth_foreground,
            growth_factor_background: self.config.heap_growth_background,
        }
    }

    fn scaled_profile(&self, profile: &AppProfile) -> AppProfile {
        let mut p = profile.clone();
        p.fg_alloc_mib_per_sec /= self.config.scale as f64;
        p.bg_alloc_mib_per_sec /= self.config.scale as f64;
        p
    }

    // ------------------------------------------------------------- launching

    /// Cold-launches a new instance of `profile`, making it foreground.
    pub fn launch_cold(&mut self, profile: &AppProfile) -> (Pid, LaunchReport) {
        self.background_current();
        let pid = Pid(self.next_pid);
        self.next_pid += 1;

        let mut heap = Heap::new(self.heap_config());
        let scaled = self.scaled_profile(profile);
        let mut behavior = AppBehavior::new(scaled, self.rng.fork());
        behavior.build_initial_graph(&mut heap, profile.java_heap_bytes_scaled(self.config.scale));
        // The initial graph stands for a long-used foreground app: many GCs
        // have already run over it, so its regions are not "newly allocated"
        // and the heap limit sits at live × growth-factor.
        heap.retire_alloc_targets();
        heap.clear_newly_allocated_flags();
        heap.update_limit_after_gc();

        let native_len = profile.native_anon_bytes_scaled(self.config.scale);
        let file_len = profile.file_bytes_scaled(self.config.scale);
        let proc = Process {
            pid,
            name: profile.name.clone(),
            heap,
            behavior,
            state: AppState::Foreground,
            last_foreground: self.now(),
            native_base: NATIVE_BASE,
            native_len,
            file_base: FILE_BASE,
            file_len,
            launches: Vec::new(),
            gcs: Vec::new(),
            cpu: fleet_metrics::CpuAccounting::new(),
            marvin: if self.config.scheme == SchemeKind::Marvin {
                Some(MarvinGc::new(self.gc_cost, self.config.marvin_threshold))
            } else {
                None
            },
            marvin_swap_due: None,
            fleet: FleetProcState::default(),
            next_bg_gc: None,
            last_launch_faults: Vec::new(),
        };
        self.procs.insert(pid, proc);
        #[cfg(feature = "audit")]
        self.audit_spawn(pid);
        #[cfg(feature = "obs")]
        self.obs_spawn(pid);
        self.sync_heap(pid);
        self.map_with_retry(pid, NATIVE_BASE, native_len);
        self.map_file_with_retry(pid, FILE_BASE, file_len);
        self.foreground = Some(pid);
        device_audit!(self, fleet_audit::AuditEvent::AppState { pid: pid.0, foreground: true });

        let jitter = self.rng.normal(1.0, 0.05).clamp(0.8, 1.3);
        let total = SimDuration::from_millis_f64(profile.cold_launch_ms * jitter);
        let report = LaunchReport {
            kind: LaunchKind::Cold,
            at: self.now(),
            total,
            fault_stall: SimDuration::ZERO,
            decompress: SimDuration::ZERO,
            faulted_pages: 0,
            gc_stw: SimDuration::ZERO,
        };
        let proc = self.procs.get_mut(&pid).expect("just inserted");
        proc.cpu.charge(ThreadClass::Mutator, total);
        proc.launches.push(report);
        #[cfg(feature = "obs")]
        self.obs_launch_span(pid, &report, total, SimDuration::ZERO, SimDuration::ZERO);
        self.clock.advance(total);
        (pid, report)
    }

    /// Hot-launches a cached app: background → foreground switch, measured
    /// as time-to-first-frame.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not a live cached process, or if an armed fault
    /// plan SIGBUS-kills the app mid-launch; under fault injection use
    /// [`Device::try_switch_to`] and treat the error as a failed launch.
    pub fn switch_to(&mut self, pid: Pid) -> LaunchReport {
        self.try_switch_to(pid).expect("switch_to a dead process")
    }

    /// Hot-launches a cached app, or reports that it is not alive.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::ProcessNotAlive`] if `pid` has been killed or
    /// never existed — or if the launch itself touched an anonymous page
    /// lost to a permanent swap error, SIGBUS-killing the app mid-launch.
    pub fn try_switch_to(&mut self, pid: Pid) -> Result<LaunchReport, FleetError> {
        if !self.procs.contains_key(&pid) {
            return Err(FleetError::ProcessNotAlive(pid));
        }
        if self.foreground == Some(pid) {
            // Already foreground: instantaneous.
            return Ok(LaunchReport {
                kind: LaunchKind::Hot,
                at: self.now(),
                total: SimDuration::ZERO,
                fault_stall: SimDuration::ZERO,
                decompress: SimDuration::ZERO,
                faulted_pages: 0,
                gc_stw: SimDuration::ZERO,
            });
        }
        self.background_current();
        device_audit!(self, fleet_audit::AuditEvent::LaunchStart { pid: pid.0 });
        // Place any kernel spans buffered before the launch at their
        // pre-launch anchor, so the fault spans generated *during* the
        // launch land inside the launch window on the kernel track.
        #[cfg(feature = "obs")]
        self.obs_flush();

        // --- sample the launch working set from ground truth.
        let access = {
            let proc = self.procs.get_mut(&pid).expect("checked above");
            proc.behavior.launch_access(&proc.heap)
        };

        // --- touch the launch pages (this is where swapped-out state hurts).
        let pages: Vec<u64> = {
            let proc = self.procs.get(&pid).expect("alive");
            let mut set: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            for &obj in &access.objects {
                for page in proc.heap.pages_of(obj) {
                    set.insert(page);
                }
            }
            set.into_iter().collect()
        };
        let mut outcome = AccessOutcome::default();
        // ASAP-style adaptive prepaging: pull in whatever the *previous*
        // hot-launch faulted, in one batched read overlapped with the render
        // work. Mispredictions (pages the launch no longer needs) still cost
        // bandwidth; unpredicted pages still fault on demand below.
        let mut prefetch_overlap = SimDuration::ZERO;
        if self.config.prefetch_on_launch {
            let name = self.procs.get(&pid).expect("alive").name.clone();
            let history = self.launch_history.get(&name).cloned().unwrap_or_default();
            let (_, latency) = self.mm.prefetch_many(pid, &history);
            prefetch_overlap = latency;
        }
        for run in page_runs(&pages) {
            let o = self.access_with_retry(
                pid,
                run.0 * PAGE_SIZE,
                run.1 * PAGE_SIZE,
                AccessKind::Launch,
            );
            outcome.merge(o);
            if !self.procs.contains_key(&pid) {
                // The launch touched an anon page lost to a permanent swap
                // error; the app was SIGBUS-killed and the launch failed.
                return Err(FleetError::ProcessNotAlive(pid));
            }
        }
        // Native working set: a slice of the anonymous mapping (slow when
        // swapped) and a larger slice of the file mapping (fast readahead).
        let (native_base, native_touch, file_base, file_touch) = {
            let proc = self.procs.get(&pid).expect("alive");
            let launch = proc.behavior.profile().launch;
            (
                proc.native_base,
                (proc.native_len as f64 * launch.native_touch_frac) as u64,
                proc.file_base,
                (proc.file_len as f64 * launch.file_touch_frac) as u64,
            )
        };
        let o = self.access_with_retry(pid, native_base, native_touch, AccessKind::Launch);
        outcome.merge(o);
        let o = self.access_with_retry(pid, file_base, file_touch, AccessKind::Launch);
        outcome.merge(o);
        if !self.procs.contains_key(&pid) {
            return Err(FleetError::ProcessNotAlive(pid));
        }

        self.record_access_objects(pid, &access.objects, TraceSource::Launch);

        // --- launch allocation burst; may trigger the §4.2 launch GC.
        {
            let proc = self.procs.get_mut(&pid).expect("alive");
            proc.heap.set_context(AllocContext::Foreground);
            proc.behavior.launch_allocate(&mut proc.heap, access.alloc_bytes);
        }
        self.sync_heap(pid);
        let mut gc_stw = SimDuration::ZERO;
        let mut gc_stall = SimDuration::ZERO;
        if self.procs.get(&pid).expect("alive").heap.should_trigger_gc() {
            // The launch GC runs concurrently, but its pauses and its page
            // faults (which share the flash device with launch faults)
            // lengthen the time to first frame.
            let stats = self.run_gc(pid);
            gc_stw = stats.stw;
            gc_stall = stats.fault_stall;
        }
        if !self.procs.contains_key(&pid) {
            return Err(FleetError::ProcessNotAlive(pid));
        }
        device_audit!(
            self,
            fleet_audit::AuditEvent::LaunchEnd { pid: pid.0, faulted_pages: outcome.faulted_pages }
        );

        // --- foreground transition.
        let now = self.now();
        let proc = self.procs.get_mut(&pid).expect("alive");
        proc.state = AppState::Foreground;
        proc.last_foreground = now;
        proc.behavior.enter_foreground();
        proc.fleet.stop(); // Fleet stops once the app is foreground (§5.1)
        proc.next_bg_gc = None;
        proc.marvin_swap_due = None;
        let mut marvin_resume = SimDuration::ZERO;
        if let Some(marvin) = proc.marvin.as_mut() {
            // §3.1 drawback (i): resuming mutators over bookmarked objects
            // needs a stop-the-world reconciliation of the stub table.
            marvin_resume = self.gc_cost.marvin_per_stub_stw * marvin.state().stub_count() as u64;
            // Touched objects are resident again; their stubs retire.
            for &obj in &access.objects {
                marvin.state_mut().mark_resident(obj);
            }
        }
        self.foreground = Some(pid);
        device_audit!(self, fleet_audit::AuditEvent::AppState { pid: pid.0, foreground: true });

        let profile_hot_ms = self.procs.get(&pid).expect("alive").behavior.profile().hot_launch_ms;
        let jitter = self.rng.normal(1.0, 0.05).clamp(0.8, 1.3);
        let render = SimDuration::from_millis_f64(profile_hot_ms * jitter);
        // Prefetch I/O overlaps with render CPU; only the excess stalls.
        let prefetch_stall = prefetch_overlap.saturating_sub(render);
        let total = render + outcome.latency + gc_stw + gc_stall + marvin_resume + prefetch_stall;
        let report = LaunchReport {
            kind: LaunchKind::Hot,
            at: now,
            total,
            fault_stall: outcome.latency + gc_stall + prefetch_stall,
            decompress: outcome.decompress_latency,
            faulted_pages: outcome.faulted_pages,
            gc_stw: gc_stw + marvin_resume,
        };
        let proc = self.procs.get_mut(&pid).expect("alive");
        // Remember what this launch touched: the prefetch history for the
        // next launch of this app (ASAP's adaptive prepaging), surviving
        // process death like ASAP's persisted per-app profiles.
        let mut history: Vec<(u64, u64)> =
            page_runs(&pages).into_iter().map(|(p, n)| (p * PAGE_SIZE, n * PAGE_SIZE)).collect();
        history.push((native_base, native_touch));
        history.push((file_base, file_touch));
        proc.last_launch_faults = history.clone();
        let name = proc.name.clone();
        proc.cpu.charge(ThreadClass::Mutator, render);
        proc.launches.push(report);
        self.launch_history.insert(name, history);
        // The clock still reads launch-start here, so both the kernel fault
        // spans and the launch span family anchor at the launch window.
        #[cfg(feature = "obs")]
        {
            self.obs_flush();
            self.obs_launch_span(
                pid,
                &report,
                render,
                outcome.latency + prefetch_stall,
                gc_stw + gc_stall + marvin_resume,
            );
        }
        self.clock.advance(total);
        Ok(report)
    }

    /// Moves the current foreground app (if any) to the background and arms
    /// the scheme's background machinery.
    pub fn background_current(&mut self) {
        let Some(pid) = self.foreground.take() else { return };
        let Some(proc) = self.procs.get_mut(&pid) else { return };
        let now = self.clock.now();
        proc.state = AppState::Background;
        proc.last_foreground = now;
        // §4.1: "At the moment that an app switches to the background, all
        // existing objects are considered FGO, while all newly allocated
        // objects after the switching are classified as BGO."
        let stale_bgo: Vec<_> = proc
            .heap
            .object_ids()
            .filter(|&o| proc.heap.object(o).context() == AllocContext::Background)
            .collect();
        for obj in stale_bgo {
            proc.heap.set_object_context(obj, AllocContext::Foreground);
        }
        proc.heap.set_context(AllocContext::Background);
        proc.behavior.enter_background(&proc.heap);
        // First background maintenance GC comes sooner than the steady-state
        // interval (ART compacts an app shortly after it is backgrounded).
        proc.next_bg_gc = Some(now + SimDuration::from_secs(15));
        match self.config.scheme {
            SchemeKind::Fleet => {
                proc.fleet.grouping_due = Some(now + self.config.fleet.ts);
            }
            SchemeKind::Marvin => {
                proc.marvin_swap_due = Some(now + SimDuration::from_secs(10));
            }
            _ => {}
        }
        device_audit!(self, fleet_audit::AuditEvent::AppState { pid: pid.0, foreground: false });
    }

    // ------------------------------------------------------------- main loop

    /// Runs the device for `secs` seconds of virtual time in one-second
    /// slices: mutator activity, GC triggers, scheme timers, kswapd and LMK.
    pub fn run(&mut self, secs: u64) {
        for _ in 0..secs {
            let pids = self.alive();
            for pid in pids {
                if !self.procs.contains_key(&pid) {
                    continue; // killed earlier in this slice
                }
                self.step_process(pid, 1.0);
            }
            // One reclaim-daemon tick: the kswapd watermark scan and zram
            // writeback (hybrid stacks age their zram tier once per slice; a
            // no-op on flash-only devices), plus the proactive swap-out pass
            // when the Swam policy is active.
            self.reclaim_tick();
            self.update_psi(1.0);
            self.pressure_kill();
            device_audit!(
                self,
                fleet_audit::AuditEvent::Counters {
                    used_frames: self.mm.used_frames(),
                    swap_used: self.mm.swap().used_pages(),
                }
            );
            #[cfg(feature = "obs")]
            self.obs_slice_sample();
            self.clock.advance(SimDuration::from_secs(1));
        }
    }

    /// Folds the last slice's fault-stall time into the PSI EWMA.
    fn update_psi(&mut self, dt_secs: f64) {
        let stall = self.mm.stats().fault_stall_nanos;
        let delta = stall.saturating_sub(self.psi_last_stall_nanos) as f64 / 1e9;
        self.psi_last_stall_nanos = stall;
        let frac = (delta / dt_secs).min(4.0);
        self.psi_ewma = 0.90 * self.psi_ewma + 0.10 * frac;
    }

    /// Current IO-pressure EWMA (stalled seconds per second).
    pub fn psi(&self) -> f64 {
        self.psi_ewma
    }

    fn step_process(&mut self, pid: Pid, dt: f64) {
        let state = self.procs.get(&pid).expect("alive").state;
        match state {
            AppState::Foreground => {
                let out = {
                    let proc = self.procs.get_mut(&pid).expect("alive");
                    proc.behavior.foreground_step(&mut proc.heap, dt)
                };
                self.sync_heap(pid);
                self.touch_objects(pid, &out.accessed, AccessKind::Mutator);
                self.record_access_objects(pid, &out.accessed, TraceSource::Mutator);
                // Unrecoverable swap errors can SIGBUS-kill the process
                // anywhere a page is touched; every step below re-checks.
                let Some(proc) = self.procs.get_mut(&pid) else { return };
                proc.cpu.charge(ThreadClass::Mutator, SimDuration::from_secs_f64(dt * 0.35));
                if proc.heap.should_trigger_gc() {
                    self.run_gc(pid);
                }
                if !self.procs.contains_key(&pid) {
                    return;
                }
                self.foreground_churn(pid, dt);
            }
            AppState::Background => {
                let out = {
                    let proc = self.procs.get_mut(&pid).expect("alive");
                    proc.behavior.background_step(&mut proc.heap, dt)
                };
                self.sync_heap(pid);
                self.touch_objects(pid, &out.accessed, AccessKind::Mutator);
                self.record_access_objects(pid, &out.accessed, TraceSource::Mutator);
                let Some(proc) = self.procs.get_mut(&pid) else { return };
                proc.cpu.charge(ThreadClass::Mutator, SimDuration::from_secs_f64(dt * 0.01));
                self.service_background_timers(pid);
            }
        }
    }

    /// Foreground page-cache churn: a busy app streams media and code
    /// through the page cache. Fresh file pages enter at the hot end of the
    /// LRU and *stay mapped* (a sliding window), so the kernel must keep
    /// reclaiming — pushing idle apps' anonymous pages out to swap, exactly
    /// the pressure regime of the paper's experiments.
    fn foreground_churn(&mut self, pid: Pid, dt: f64) {
        let rate = {
            let proc = self.procs.get(&pid).expect("alive");
            proc.behavior.profile().fg_page_churn_mib_per_sec
        };
        let bytes = (rate / self.config.scale as f64 * dt * 1024.0 * 1024.0) as u64;
        if bytes == 0 {
            return;
        }
        let base = SCRATCH_BASE + self.scratch_head;
        self.scratch_head += bytes;
        loop {
            match self.mm.map_range_kind(PAGECACHE_PID, base, bytes, PageKind::File) {
                Ok(()) => break,
                Err(_) => {
                    if !self.lmk_kill(Some(pid)) {
                        return; // nothing killable; skip the churn
                    }
                }
            }
        }
        // Slide the window: drop cache pages beyond the retention budget.
        if self.scratch_head - self.scratch_tail > PAGECACHE_WINDOW {
            let drop_to = self.scratch_head - PAGECACHE_WINDOW;
            self.mm.unmap_range(
                PAGECACHE_PID,
                SCRATCH_BASE + self.scratch_tail,
                drop_to - self.scratch_tail,
            );
            self.scratch_tail = drop_to;
        }
    }

    fn service_background_timers(&mut self, pid: Pid) {
        let now = self.clock.now();
        // Any GC here may SIGBUS-kill the process under an armed fault plan,
        // so each timer re-checks liveness instead of expecting it.
        // Heap-pressure GC.
        if self.procs.get(&pid).is_some_and(|p| p.heap.should_trigger_gc()) {
            self.run_gc(pid);
        }
        // Fleet: grouping GC at +Ts, then periodic HOT_RUNTIME refreshes.
        if self.config.scheme == SchemeKind::Fleet {
            let due = self.procs.get(&pid).and_then(|p| p.fleet.grouping_due);
            if due.is_some_and(|t| now >= t) {
                self.run_grouping(pid);
            }
            let refresh = self.procs.get(&pid).and_then(|p| p.fleet.hot_refresh_due);
            if refresh.is_some_and(|t| now >= t) {
                self.refresh_hot_pages(pid);
            }
        }
        // Marvin: periodic object-swap pass.
        if self.config.scheme == SchemeKind::Marvin {
            let due = self.procs.get(&pid).and_then(|p| p.marvin_swap_due);
            if due.is_some_and(|t| now >= t) {
                self.marvin_swap_pass(pid);
                if let Some(proc) = self.procs.get_mut(&pid) {
                    proc.marvin_swap_due = Some(now + SimDuration::from_secs(30));
                }
            }
        }
        // Background maintenance GC (Android trim cycle; BGC under Fleet,
        // bookmarking GC under Marvin).
        let due = self.procs.get(&pid).and_then(|p| p.next_bg_gc);
        if due.is_some_and(|t| now >= t) {
            self.run_gc(pid);
            if let Some(proc) = self.procs.get_mut(&pid) {
                proc.next_bg_gc = Some(now + self.config.bg_gc_interval);
            }
        }
    }

    // ------------------------------------------------------------------- GC

    /// Runs the scheme-appropriate collector for `pid` now.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not alive; see [`Device::try_run_gc`] for the
    /// fallible form.
    pub fn run_gc(&mut self, pid: Pid) -> GcStats {
        self.try_run_gc(pid).expect("run_gc on a dead process")
    }

    /// Runs the scheme-appropriate collector for `pid` now, or reports that
    /// the process is not alive.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::ProcessNotAlive`] if `pid` has been killed or
    /// never existed.
    pub fn try_run_gc(&mut self, pid: Pid) -> Result<GcStats, FleetError> {
        let scheme = self.config.scheme;
        let state = self.try_process(pid)?.state;
        let (stats, fatal) = {
            let proc = self.procs.get_mut(&pid).expect("alive");
            let mut touch = KernelTouch::new(&mut self.mm, pid, &mut self.oom_touch_skips);
            let stats = match scheme {
                SchemeKind::Marvin => {
                    let mut gc = proc.marvin.take().expect("marvin scheme has a marvin gc");
                    let stats = gc.collect(&mut proc.heap, &mut touch);
                    proc.marvin = Some(gc);
                    stats
                }
                SchemeKind::Fleet
                    if state == AppState::Background && !self.config.fleet_disable_bgc =>
                {
                    BackgroundObjectGc::new(self.gc_cost).collect(&mut proc.heap, &mut touch)
                }
                // Foreground apps get ART's tiered policy: a minor GC over
                // the newly-allocated regions first, escalating to the full
                // collector only when that does not relieve the pressure.
                _ if state == AppState::Foreground => {
                    let minor = MinorGc::new(self.gc_cost).collect(&mut proc.heap, &mut touch);
                    if proc.heap.should_trigger_gc() {
                        let full =
                            FullCopyingGc::new(self.gc_cost).collect(&mut proc.heap, &mut touch);
                        let _ = minor; // the escalation's stats supersede it
                        full
                    } else {
                        minor
                    }
                }
                _ => FullCopyingGc::new(self.gc_cost).collect(&mut proc.heap, &mut touch),
            };
            (stats, touch.fatal)
        };
        if fatal {
            // The trace touched an anon page lost to a permanent swap error:
            // the process is not salvageable. Skip post-GC bookkeeping — the
            // kill unmaps everything the collector left behind.
            if stats.evac_aborted {
                self.evac_aborts += 1;
            }
            #[cfg(feature = "obs")]
            self.obs_gc_span(pid, &stats);
            self.sigbus_kill(pid);
            return Ok(stats);
        }
        self.finish_gc(pid, stats);
        Ok(stats)
    }

    /// Fleet's RGS grouping GC (§5.3.1) plus the §5.3.2 madvise calls.
    pub fn run_grouping(&mut self, pid: Pid) -> GcStats {
        let depth = self.config.fleet.depth;
        let (stats, outcome, fatal) = {
            let proc = self.procs.get_mut(&pid).expect("alive");
            let ws = proc.behavior.working_set().clone();
            // After the first grouping, re-group incrementally: regions that
            // are already cold keep their placement and are NOT re-traced,
            // so a re-grouping does not fault the swapped bulk back in.
            // Every 8th grouping is full, bounding cold-garbage buildup.
            let incremental =
                proc.fleet.groupings_done > 0 && !proc.fleet.groupings_done.is_multiple_of(8);
            proc.fleet.groupings_done += 1;
            let mut touch = KernelTouch::new(&mut self.mm, pid, &mut self.oom_touch_skips);
            let (stats, outcome) = GroupingGc::new(self.gc_cost, depth, ws)
                .with_incremental(incremental)
                .collect_grouping(&mut proc.heap, &mut touch);
            (stats, outcome, touch.fatal)
        };
        if fatal {
            if stats.evac_aborted {
                self.evac_aborts += 1;
            }
            #[cfg(feature = "obs")]
            self.obs_gc_span(pid, &stats);
            self.sigbus_kill(pid);
            return stats;
        }
        self.finish_gc(pid, stats);
        // Actively swap the cold ranges out; pin launch pages hot.
        let (cold, launch) = {
            let proc = self.procs.get_mut(&pid).expect("alive");
            let cold = outcome.cold_ranges.clone();
            let launch = outcome.launch_ranges.clone();
            proc.fleet.grouping_due = None;
            proc.fleet.grouped = Some(outcome);
            proc.fleet.hot_refresh_due = Some(self.clock.now() + self.config.fleet.hot_refresh);
            (cold, launch)
        };
        if !self.config.fleet_disable_cold_madvise {
            for (base, len) in cold {
                self.mm.madvise(pid, base, len, Advice::ColdRuntime);
            }
        }
        if !self.config.fleet_disable_hot_refresh {
            for (base, len) in launch {
                self.mm.madvise(pid, base, len, Advice::HotRuntime);
            }
        } else {
            self.procs.get_mut(&pid).expect("alive").fleet.hot_refresh_due = None;
        }
        stats
    }

    fn refresh_hot_pages(&mut self, pid: Pid) {
        let ranges: Vec<(u64, u64)> = {
            let proc = self.procs.get_mut(&pid).expect("alive");
            proc.fleet.hot_refresh_due = Some(self.clock.now() + self.config.fleet.hot_refresh);
            proc.fleet.grouped.as_ref().map(|g| g.launch_ranges.clone()).unwrap_or_default()
        };
        for (base, len) in ranges {
            self.mm.madvise(pid, base, len, Advice::HotRuntime);
        }
    }

    /// Marvin's background reclamation: bookmark cold large objects and
    /// release the pages that became pure.
    fn marvin_swap_pass(&mut self, pid: Pid) {
        let pages: Vec<u64> = {
            let proc = self.procs.get_mut(&pid).expect("alive");
            let ws = proc.behavior.working_set().clone();
            let mut gc = proc.marvin.take().expect("marvin scheme");
            let ids: Vec<ObjectId> = proc.heap.object_ids().collect();
            for obj in ids {
                // Object-LRU approximation: everything outside the working
                // set is cold. Crucially launch-agnostic (§3.1 drawback iii).
                if !ws.contains(&obj) {
                    gc.state_mut().mark_swapped(&proc.heap, obj);
                }
            }
            let pages = swappable_pages(&proc.heap, gc.state());
            proc.marvin = Some(gc);
            pages
        };
        for run in page_runs(&pages) {
            self.mm.madvise(pid, run.0 * PAGE_SIZE, run.1 * PAGE_SIZE, Advice::ColdRuntime);
        }
    }

    fn finish_gc(&mut self, pid: Pid, stats: GcStats) {
        if stats.evac_aborted {
            self.evac_aborts += 1;
        }
        #[cfg(feature = "obs")]
        self.obs_gc_span(pid, &stats);
        // Paranoia hook: `FLEET_VALIDATE_HEAP=1` re-verifies the whole heap
        // after every collection (O(heap); used when hunting GC bugs — the
        // per-collector invariants are otherwise covered by the adversarial
        // interleaving test in fleet-gc/tests/soundness.rs).
        if std::env::var_os("FLEET_VALIDATE_HEAP").is_some_and(|v| v == "1") {
            let proc = self.procs.get(&pid).expect("alive");
            if let Err(msg) = proc.heap.validate_refs() {
                panic!("heap invariant broken after {} GC of {}: {msg}", stats.kind, proc.name);
            }
        }
        self.sync_heap(pid);
        let at = self.clock.now();
        let proc = self.procs.get_mut(&pid).expect("alive");
        let heap = &proc.heap;
        proc.behavior.prune(heap);
        proc.cpu.charge(ThreadClass::Gc, stats.cpu);
        proc.gcs.push(GcRecord { at, stats });
        self.record_gc_snapshot(pid, stats.kind);
    }

    // ------------------------------------------------------ memory plumbing

    /// Applies queued heap address-space events to the kernel.
    fn sync_heap(&mut self, pid: Pid) {
        let events = self.procs.get_mut(&pid).expect("alive").heap.drain_events();
        for event in events {
            match event {
                HeapEvent::RegionMapped { base, len } => {
                    self.map_with_retry(pid, base, len);
                    if self.config.scheme == SchemeKind::Marvin {
                        // Marvin removes the Java heap from kernel LRU
                        // control; reclamation is object-granularity only.
                        self.mm.pin_range(pid, base, len);
                    }
                }
                HeapEvent::RegionFreed { base, len } => {
                    self.mm.unmap_range(pid, base, len);
                }
            }
        }
    }

    fn map_with_retry(&mut self, pid: Pid, base: u64, len: u64) {
        loop {
            match self.mm.map_range(pid, base, len) {
                Ok(()) => return,
                Err(_) => {
                    if !self.lmk_kill(Some(pid)) {
                        // Nothing left to kill: give up on the mapping. The
                        // kernel treats accesses to unmapped pages as no-ops,
                        // so the process limps along partially mapped rather
                        // than taking the whole device down.
                        self.map_failures += 1;
                        return;
                    }
                }
            }
        }
    }

    fn map_file_with_retry(&mut self, pid: Pid, base: u64, len: u64) {
        loop {
            match self.mm.map_range_kind(pid, base, len, PageKind::File) {
                Ok(()) => return,
                Err(_) => {
                    if !self.lmk_kill(Some(pid)) {
                        self.map_failures += 1;
                        return;
                    }
                }
            }
        }
    }

    fn access_with_retry(
        &mut self,
        pid: Pid,
        base: u64,
        len: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        let mut merged = AccessOutcome::default();
        loop {
            // Partial progress before an OOM is kept: the retry re-walks the
            // range, but already-faulted pages are resident and free.
            let outcome = self.mm.access(pid, base, len, kind);
            let oom = outcome.oom;
            let killed = outcome.killed;
            merged.merge(outcome);
            if killed {
                // An anonymous page was lost to a permanent swap error: the
                // process cannot recover the data and takes a SIGBUS.
                self.sigbus_kill(pid);
                return merged;
            }
            if !oom {
                merged.oom = false;
                return merged;
            }
            if !self.lmk_kill(Some(pid)) {
                self.oom_touch_skips += 1;
                return merged;
            }
        }
    }

    fn touch_objects(&mut self, pid: Pid, objects: &[ObjectId], kind: AccessKind) {
        let pages: Vec<u64> = {
            let proc = self.procs.get(&pid).expect("alive");
            let mut set: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            for &obj in objects {
                if proc.heap.contains(obj) {
                    for page in proc.heap.pages_of(obj) {
                        set.insert(page);
                    }
                }
            }
            set.into_iter().collect()
        };
        let mut stall = SimDuration::ZERO;
        for run in page_runs(&pages) {
            stall +=
                self.access_with_retry(pid, run.0 * PAGE_SIZE, run.1 * PAGE_SIZE, kind).latency;
            if !self.procs.contains_key(&pid) {
                return; // SIGBUS-killed mid-walk by a permanent swap error
            }
        }
        let proc = self.procs.get_mut(&pid).expect("alive");
        proc.cpu.charge(ThreadClass::Kernel, stall);
        // Marvin: touched bookmarked objects become resident again.
        if let Some(marvin) = proc.marvin.as_mut() {
            for &obj in objects {
                marvin.state_mut().mark_resident(obj);
            }
        }
    }

    // ------------------------------------------------------------- reclaim

    /// One reclaim-daemon tick via the [`ReclaimDriver`]: kswapd scan, zram
    /// writeback, and (under Swam) the working-set epoch advance plus the
    /// proactive swap-out of idle background apps.
    fn reclaim_tick(&mut self) {
        let candidates = self.lmk_candidates(None);
        self.reclaim.tick(&mut self.mm, &candidates);
    }

    // ---------------------------------------------------------------- LMK

    /// Snapshots the current process set as LMK candidates. `protect`
    /// additionally shields one pid (e.g. the app whose launch is in
    /// progress) by presenting it as foreground.
    fn lmk_candidates(&self, protect: Option<Pid>) -> Vec<LmkCandidate> {
        self.procs
            .values()
            .map(|p| LmkCandidate {
                pid: p.pid,
                foreground: Some(p.pid) == self.foreground || Some(p.pid) == protect,
                last_foreground: p.last_foreground,
                pinned: false,
            })
            .collect()
    }

    /// Kills the coldest killable background app via the lmkd driver.
    /// Returns false when none exists.
    fn lmk_kill(&mut self, protect: Option<Pid>) -> bool {
        let candidates = self.lmk_candidates(protect);
        // Flush buffered component events first so the victim's heap events
        // precede its unmap/kill events in the audit stream.
        #[cfg(feature = "audit")]
        self.audit_flush();
        match self.reclaim.kill_one(&mut self.mm, &candidates) {
            Some(_) => {
                self.reap_lmk_kills();
                true
            }
            None => false,
        }
    }

    /// Completes device-side teardown of processes the lmkd driver killed:
    /// removes their process records, emits the device-level kill events,
    /// and records the kills.
    fn reap_lmk_kills(&mut self) {
        for victim in self.reclaim.drain_kills() {
            let Some(proc) = self.procs.remove(&victim) else { continue };
            device_audit!(self, fleet_audit::AuditEvent::ProcessKill { pid: victim.0 });
            if self.foreground == Some(victim) {
                self.foreground = None;
            }
            self.kills.push(KillRecord { at: self.clock.now(), pid: victim, name: proc.name });
        }
    }

    /// Terminates a process hit by an unrecoverable data loss (a permanent
    /// swap read error on an anonymous page — the SIGBUS analog).
    fn sigbus_kill(&mut self, pid: Pid) {
        self.sigbus_kills += 1;
        self.kill(pid);
    }

    fn pressure_kill(&mut self) {
        // lmkd-style: if even after kswapd the free headroom is under half
        // the low watermark, a cached app dies.
        let threshold = self.mm.config().low_watermark_frames / 2;
        if self.mm.free_frames() < threshold {
            if self.mm.fault_active() {
                // Degraded mode: keep killing until the full low watermark is
                // restored, so the next fault burst has headroom to retry
                // into. The quiet path keeps the historical one-kill policy.
                let target = self.mm.config().low_watermark_frames;
                let candidates = self.lmk_candidates(None);
                #[cfg(feature = "audit")]
                self.audit_flush();
                let _ = self.reclaim.escalate(&mut self.mm, &candidates, target);
                self.reap_lmk_kills();
                // Mark the escalation on the kernel track (drained by the
                // next obs_flush) and count it.
                #[cfg(feature = "obs")]
                {
                    let free = self.mm.free_frames();
                    self.mm.obs_log_mut().push(move |_| {
                        fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                            pid: 0,
                            name: "lmkd_escalate",
                            cat: "kernel",
                            depth: 0,
                            rel_start: 0,
                            dur: 0,
                            args: vec![("free_frames", free), ("target_frames", target)],
                        })
                    });
                    self.mm.obs_log_mut().push(|_| fleet_obs::ObsRecord::Counter {
                        name: "lmkd.escalations",
                        delta: 1,
                    });
                }
            } else {
                self.lmk_kill(None);
            }
            return;
        }
        // PSI path: sustained swap thrash (as produced by background GCs
        // re-faulting swapped heaps, §3.2) kills the coldest cached app.
        if self.psi_ewma > 0.75 && self.lmk_kill(None) {
            // Hysteresis: give the survivors a chance to settle.
            self.psi_ewma = 0.35;
        }
    }

    /// Terminates a process, releasing all its memory.
    pub fn kill(&mut self, pid: Pid) {
        if !self.procs.contains_key(&pid) {
            return;
        }
        // Drain the victim's buffered heap events before it disappears.
        #[cfg(feature = "audit")]
        self.audit_flush();
        let proc = self.procs.remove(&pid).expect("checked above");
        self.mm.unmap_process(pid);
        device_audit!(self, fleet_audit::AuditEvent::ProcessKill { pid: pid.0 });
        if self.foreground == Some(pid) {
            self.foreground = None;
        }
        self.kills.push(KillRecord { at: self.clock.now(), pid, name: proc.name });
    }

    // ------------------------------------------------------------ diagnostics

    /// Classifies what the *next* hot-launch of `pid` would touch: for each
    /// region kind, how many of the launch working-set pages are resident vs
    /// swapped. Non-destructive apart from consuming RNG; intended for
    /// calibration and debugging.
    pub fn launch_breakdown(&mut self, pid: Pid) -> Vec<(String, u64, u64)> {
        use std::collections::{BTreeMap, BTreeSet};
        let proc = self.procs.get_mut(&pid).expect("alive");
        let access = proc.behavior.launch_access(&proc.heap);
        let mut buckets: BTreeMap<String, (BTreeSet<u64>, BTreeSet<u64>)> = BTreeMap::new();
        for &obj in &access.objects {
            let region = proc.heap.object(obj).region();
            let kind = proc.heap.region(region).kind().to_string();
            for page in proc.heap.pages_of(obj) {
                let resident = self.mm.is_resident(pid, page * PAGE_SIZE);
                let entry = buckets.entry(kind.clone()).or_default();
                if resident {
                    entry.0.insert(page);
                } else {
                    entry.1.insert(page);
                }
            }
        }
        buckets
            .into_iter()
            .map(|(kind, (res, swp))| (kind, res.len() as u64, swp.len() as u64))
            .collect()
    }

    // ------------------------------------------------------------- rendering

    /// Drives the foreground app through `secs` seconds of scripted swipe
    /// interaction at a 60 Hz target (§7.3's frame-rendering experiment) and
    /// returns the jank/FPS report.
    ///
    /// A frame completes after its render cost plus any page-fault stall and
    /// any stop-the-world pause of a GC it triggered; completions are fed to
    /// the jank detector (gap > 16.7 ms = jank).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not the current foreground app.
    pub fn run_frames(&mut self, pid: Pid, secs: u64) -> fleet_metrics::FrameReport {
        assert_eq!(self.foreground, Some(pid), "run_frames drives the foreground app");
        let mut script = {
            let proc = self.procs.get(&pid).expect("alive");
            fleet_apps::InteractionScript::new(proc.behavior.profile(), self.rng.fork())
        };
        let mut recorder = fleet_metrics::FrameRecorder::new();
        let deadline = self.clock.now() + SimDuration::from_secs(secs);
        let frame_dt = 1.0 / 60.0;
        let mut since_kswapd = 0u32;
        // Marvin's stub indirection taxes every object access on the render
        // path (§3.1); Figure 14 attributes its ~20% jank/FPS gap to this.
        let render_overhead = if self.config.scheme == SchemeKind::Marvin { 1.18 } else { 1.0 };
        while self.clock.now() < deadline {
            let work = script.next_frame();
            let work = fleet_apps::interact::FrameWork {
                render_cost: work.render_cost.mul_f64(render_overhead),
                ..work
            };
            // Mutator work for this frame: allocations + object touches.
            let out = {
                let proc = self.procs.get_mut(&pid).expect("alive");
                proc.behavior.foreground_step(&mut proc.heap, frame_dt)
            };
            self.sync_heap(pid);
            let mut stall = SimDuration::ZERO;
            {
                let pages: Vec<u64> = {
                    let proc = self.procs.get(&pid).expect("alive");
                    let mut set: std::collections::BTreeSet<u64> =
                        std::collections::BTreeSet::new();
                    for &obj in out.accessed.iter().take(work.touches as usize) {
                        if proc.heap.contains(obj) {
                            for page in proc.heap.pages_of(obj) {
                                set.insert(page);
                            }
                        }
                    }
                    set.into_iter().collect()
                };
                for run in page_runs(&pages) {
                    stall += self
                        .access_with_retry(
                            pid,
                            run.0 * PAGE_SIZE,
                            run.1 * PAGE_SIZE,
                            AccessKind::Mutator,
                        )
                        .latency;
                }
            }
            if !self.procs.contains_key(&pid) {
                break; // SIGBUS-killed by a permanent swap error
            }
            // A frame that triggers GC eats the pause on its critical path.
            let mut gc_pause = SimDuration::ZERO;
            if self.procs.get(&pid).expect("alive").heap.should_trigger_gc() {
                let stats = self.run_gc(pid);
                gc_pause = stats.stw;
            }
            if !self.procs.contains_key(&pid) {
                break;
            }
            // Marvin periodically reconciles the stub table with mutators
            // stopped; with bookmarked objects outstanding this lands in the
            // middle of frames (§3.1 drawback i).
            if self.config.scheme == SchemeKind::Marvin && recorder.frames() % 60 == 59 {
                let stubs = self
                    .procs
                    .get(&pid)
                    .expect("alive")
                    .marvin
                    .as_ref()
                    .map(|m| m.state().stub_count() as u64)
                    .unwrap_or(0);
                gc_pause += self.gc_cost.marvin_per_stub_stw * stubs / 8;
            }
            let frame_time = work.render_cost + stall + gc_pause;
            // The next frame cannot start before the vsync slot either way.
            let advance = frame_time.max(SimDuration::from_secs_f64(frame_dt));
            self.clock.advance(advance);
            recorder.frame(self.clock.now());
            let proc = self.procs.get_mut(&pid).expect("alive");
            proc.cpu.charge(ThreadClass::Mutator, work.render_cost);
            // Housekeeping once per simulated second.
            since_kswapd += 1;
            if since_kswapd >= 60 {
                since_kswapd = 0;
                self.reclaim_tick();
                self.pressure_kill();
                device_audit!(
                    self,
                    fleet_audit::AuditEvent::Counters {
                        used_frames: self.mm.used_frames(),
                        swap_used: self.mm.swap().used_pages(),
                    }
                );
            }
        }
        recorder.report()
    }

    // -------------------------------------------------------------- tracing

    fn record_access_objects(&mut self, pid: Pid, objects: &[ObjectId], source: TraceSource) {
        let now_secs = self.clock.now().as_secs_f64();
        if let Some(trace) = self.trace.as_mut() {
            if trace.target == pid {
                for &obj in objects {
                    trace.counter += 1;
                    if trace.counter % trace.every == 0 {
                        trace.samples.push(TraceSample {
                            secs: now_secs,
                            object: obj.0 as u64,
                            source,
                        });
                    }
                }
            }
        }
    }

    fn record_gc_snapshot(&mut self, pid: Pid, kind: GcKind) {
        let now_secs = self.clock.now().as_secs_f64();
        let Some(trace) = self.trace.as_mut() else { return };
        if trace.target != pid {
            return;
        }
        let proc = self.procs.get(&pid).expect("alive");
        let every = trace.every as usize;
        let ids: Vec<ObjectId> = proc.heap.object_ids().collect();
        for obj in ids.iter().step_by(every.max(1)) {
            // BGC only walks background regions; a full/grouping GC walks
            // everything. Sample accordingly so the trace reflects the
            // working set honestly.
            if kind == GcKind::Bgc {
                let region = proc.heap.object(*obj).region();
                if proc.heap.region(region).kind() != RegionKind::Bg {
                    continue;
                }
            }
            trace.samples.push(TraceSample {
                secs: now_secs,
                object: obj.0 as u64,
                source: TraceSource::Gc,
            });
        }
    }
}

/// Groups sorted page indices into `(start, len)` runs of contiguous pages.
fn page_runs(pages: &[u64]) -> Vec<(u64, u64)> {
    let mut runs = Vec::new();
    let mut iter = pages.iter().copied();
    let Some(first) = iter.next() else { return runs };
    let mut start = first;
    let mut len = 1;
    for page in iter {
        if page == start + len {
            len += 1;
        } else {
            runs.push((start, len));
            start = page;
            len = 1;
        }
    }
    runs.push((start, len));
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet_apps::{profile_by_name, synthetic_app};

    fn device(scheme: SchemeKind) -> Device {
        Device::new(DeviceConfig::pixel3(scheme))
    }

    #[test]
    fn page_runs_group_contiguous() {
        assert_eq!(page_runs(&[]), vec![]);
        assert_eq!(page_runs(&[5]), vec![(5, 1)]);
        assert_eq!(page_runs(&[1, 2, 3, 7, 8, 10]), vec![(1, 3), (7, 2), (10, 1)]);
    }

    #[test]
    fn cold_launch_creates_foreground_process() {
        let mut dev = device(SchemeKind::Android);
        let profile = profile_by_name("Twitter").unwrap();
        let (pid, report) = dev.launch_cold(&profile);
        assert_eq!(report.kind, LaunchKind::Cold);
        assert!(report.total.as_millis_f64() > 1500.0, "{}", report.total);
        assert_eq!(dev.foreground(), Some(pid));
        let proc = dev.process(pid);
        assert!(proc.heap.live_bytes() >= profile.java_heap_bytes_scaled(16));
        assert!(dev.mm().process_mem(pid).resident > 0);
    }

    #[test]
    fn hot_launch_on_idle_device_is_fast() {
        let mut dev = device(SchemeKind::Android);
        let twitter = profile_by_name("Twitter").unwrap();
        let telegram = profile_by_name("Telegram").unwrap();
        let (tw, _) = dev.launch_cold(&twitter);
        dev.run(5);
        let (_tg, _) = dev.launch_cold(&telegram);
        dev.run(5);
        let report = dev.switch_to(tw);
        assert_eq!(report.kind, LaunchKind::Hot);
        // No memory pressure: the hot launch is near the render floor
        // (Figure 2: Twitter ≈ 273 ms).
        assert!(report.total.as_millis_f64() < 450.0, "{}", report.total);
        assert!(report.total.as_millis_f64() > 150.0, "{}", report.total);
    }

    #[test]
    fn background_transition_arms_scheme_timers() {
        let mut dev = device(SchemeKind::Fleet);
        let profile = profile_by_name("Twitter").unwrap();
        let (pid, _) = dev.launch_cold(&profile);
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        let proc = dev.process(pid);
        assert_eq!(proc.state, AppState::Background);
        assert!(proc.fleet.grouping_due.is_some());
    }

    #[test]
    fn fleet_grouping_runs_after_ts() {
        let mut dev = device(SchemeKind::Fleet);
        let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(15); // Ts = 10 s
        let proc = dev.process(pid);
        assert!(proc.fleet.grouped.is_some(), "grouping GC should have run");
        let grouped = proc.fleet.grouped.as_ref().unwrap();
        assert!(!grouped.launch_ranges.is_empty());
        assert!(!grouped.cold_ranges.is_empty());
        assert!(proc.gcs.iter().any(|g| g.stats.kind == GcKind::Grouping));
        // Cold ranges were actively swapped out.
        assert!(dev.mm().process_mem(pid).swapped > 0, "COLD_RUNTIME should push pages out");
    }

    #[test]
    fn fleet_uses_bgc_in_background() {
        let mut dev = device(SchemeKind::Fleet);
        let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(80); // past the first maintenance GC
        let proc = dev.process(pid);
        assert!(
            proc.gcs.iter().any(|g| g.stats.kind == GcKind::Bgc),
            "BGC should run while cached"
        );
    }

    #[test]
    fn android_uses_full_gc_in_background() {
        let mut dev = device(SchemeKind::Android);
        let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(80);
        let proc = dev.process(pid);
        let bg_gcs: Vec<_> = proc.gcs.iter().filter(|g| g.stats.kind == GcKind::Full).collect();
        assert!(!bg_gcs.is_empty());
    }

    #[test]
    fn marvin_pins_java_pages_and_swaps_objects() {
        let mut dev = device(SchemeKind::Marvin);
        let big_objects = synthetic_app(2048, 180);
        let (pid, _) = dev.launch_cold(&big_objects);
        dev.launch_cold(&synthetic_app(2048, 180));
        dev.run(50);
        let proc = dev.process(pid);
        let marvin = proc.marvin.as_ref().unwrap();
        assert!(marvin.state().stub_count() > 0, "cold large objects should be bookmarked");
        assert!(dev.mm().process_mem(pid).swapped > 0, "pure pages should be released");
    }

    #[test]
    fn marvin_cannot_swap_small_objects() {
        let mut dev = device(SchemeKind::Marvin);
        let small_objects = synthetic_app(512, 180);
        let (pid, _) = dev.launch_cold(&small_objects);
        dev.launch_cold(&synthetic_app(512, 180));
        dev.run(50);
        let proc = dev.process(pid);
        let marvin = proc.marvin.as_ref().unwrap();
        assert_eq!(marvin.state().stub_count(), 0, "512 B objects are below the threshold");
        // Java pages are pinned and nothing is object-swappable: no swap.
        let heap_pages = dev.mm().process_mem(pid);
        assert!(
            heap_pages.swapped <= proc.native_len / PAGE_SIZE,
            "only native pages may swap under Marvin"
        );
    }

    #[test]
    fn capacity_pressure_triggers_lmk_kills() {
        let mut dev = device(SchemeKind::AndroidNoSwap);
        let app = synthetic_app(2048, 180);
        for _ in 0..20 {
            dev.launch_cold(&app);
            dev.run(3);
        }
        assert!(!dev.kills().is_empty(), "no-swap device must kill under pressure");
        assert!(dev.cached_apps() < 20);
    }

    #[test]
    fn deterministic_runs_with_same_seed() {
        let run = || {
            let mut dev = device(SchemeKind::Fleet);
            let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
            dev.launch_cold(&profile_by_name("Telegram").unwrap());
            dev.run(40);
            let r = dev.switch_to(pid);
            (r.total, dev.mm().stats().faults, dev.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zram_device_consumes_dram_for_swap() {
        let mut config = DeviceConfig::pixel3(SchemeKind::Android);
        config.swap_medium = fleet_kernel::SwapMedium::Zram { compression_ratio: 2.8 };
        let mut dev = Device::new(config);
        let app = synthetic_app(2048, 180);
        for _ in 0..8 {
            dev.launch_cold(&app);
            dev.run(5);
        }
        let swap = dev.mm().swap();
        if swap.used_pages() > 0 {
            assert!(swap.frames_consumed() > 0, "zram store must occupy DRAM");
            assert!(swap.frames_consumed() < swap.used_pages(), "compression must help");
        }
        // Zram faults are near-DRAM speed: background GC stalls stay small.
        let pid = dev.alive()[0];
        let stats = dev.run_gc(pid);
        assert!(
            stats.fault_stall.as_millis_f64() < 200.0,
            "zram GC stall should be small: {}",
            stats.fault_stall
        );
    }

    #[test]
    fn prefetch_history_survives_kills() {
        let mut config = DeviceConfig::pixel3(SchemeKind::Android);
        config.prefetch_on_launch = true;
        let mut dev = Device::new(config);
        let profile = profile_by_name("Twitter").unwrap();
        let (pid, _) = dev.launch_cold(&profile);
        dev.run(3);
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(3);
        dev.switch_to(pid); // records launch history under "Twitter"
        dev.run(3);
        dev.kill(pid);
        // Relaunch: the device-level history still exists and prefetching
        // must not panic or corrupt accounting.
        let (pid2, _) = dev.launch_cold(&profile);
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(3);
        let report = dev.switch_to(pid2);
        assert!(report.total.as_millis_f64() > 0.0);
        assert!(dev.mm().used_frames() <= dev.mm().frames_capacity());
    }

    #[test]
    fn psi_rises_under_thrash_and_decays_when_idle() {
        let mut dev = device(SchemeKind::Android);
        assert_eq!(dev.psi(), 0.0);
        let app = synthetic_app(2048, 180);
        for _ in 0..16 {
            dev.launch_cold(&app);
            dev.run(4);
        }
        // Heavy overcommit produced stall time at some point; after a long
        // quiet period the EWMA decays back toward zero.
        dev.run(120);
        assert!(dev.psi() < 0.5, "psi should decay when quiet: {}", dev.psi());
    }

    #[test]
    fn launch_breakdown_reports_fleet_grouping() {
        let mut dev = device(SchemeKind::Fleet);
        let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(15); // grouping done
        let breakdown = dev.launch_breakdown(pid);
        let kinds: Vec<&str> = breakdown.iter().map(|(k, _, _)| k.as_str()).collect();
        assert!(kinds.contains(&"launch"), "launch-region pages in the set: {kinds:?}");
        let (_, resident, swapped) = breakdown.iter().find(|(k, _, _)| k == "launch").unwrap();
        assert!(resident > swapped, "launch pages must be kept resident");
    }

    #[test]
    fn ablation_flags_change_fleet_behaviour() {
        let run = |disable_cold: bool| {
            let mut config = DeviceConfig::pixel3(SchemeKind::Fleet);
            config.fleet_disable_cold_madvise = disable_cold;
            let mut dev = Device::new(config);
            let (pid, _) = dev.launch_cold(&profile_by_name("Twitter").unwrap());
            dev.launch_cold(&profile_by_name("Telegram").unwrap());
            dev.run(15);
            dev.mm().process_mem(pid).swapped
        };
        let with_cold = run(false);
        let without_cold = run(true);
        assert!(
            with_cold > without_cold,
            "COLD_RUNTIME must proactively swap: {with_cold} vs {without_cold}"
        );
    }

    #[test]
    fn trace_records_mutator_and_gc_samples() {
        let mut dev = device(SchemeKind::Android);
        let (pid, _) = dev.launch_cold(&profile_by_name("AmazonShop").unwrap());
        dev.enable_trace(pid, 100);
        dev.run(5);
        dev.launch_cold(&profile_by_name("Telegram").unwrap());
        dev.run(40); // bg maintenance GC at +15 s
        let trace = dev.take_trace().unwrap();
        assert!(trace.samples().iter().any(|s| s.source == TraceSource::Mutator));
        assert!(trace.samples().iter().any(|s| s.source == TraceSource::Gc));
    }
}
