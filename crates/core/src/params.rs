//! Fleet's parameters (Table 2) and the comparison schemes (Table 1).

use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Fleet's tunables; defaults are Table 2 of the paper.
///
/// # Examples
///
/// ```
/// use fleet::FleetParams;
///
/// let p = FleetParams::default();
/// assert_eq!(p.depth, 2);
/// assert_eq!(p.ts.as_millis(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetParams {
    /// Maximum depth to the roots for NRO (Table 2: D = 2).
    pub depth: u32,
    /// Wait time after backgrounding before Fleet starts (Table 2: 10 s).
    pub ts: SimDuration,
    /// Wait time after foregrounding before Fleet stops (Table 2: 3 s).
    pub tf: SimDuration,
    /// `CARD_SHIFT` for card-address conversion (Table 2: 10).
    pub card_shift: u32,
    /// Region size of the Java heap (Table 2: 256 KiB).
    pub region_size: u32,
    /// How often RGS re-issues `madvise(HOT_RUNTIME)` on the launch pages
    /// while the app stays cached (§5.3.2 "periodically execute").
    pub hot_refresh: SimDuration,
}

impl Default for FleetParams {
    fn default() -> Self {
        FleetParams {
            depth: 2,
            ts: SimDuration::from_secs(10),
            tf: SimDuration::from_secs(3),
            card_shift: 10,
            region_size: 256 * 1024,
            hot_refresh: SimDuration::from_secs(5),
        }
    }
}

/// The comparison schemes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Default Android with the swap partition disabled (the §3.1 "w/o
    /// swap" baseline).
    AndroidNoSwap,
    /// Default Android: native GC + page-granularity kernel LRU swap.
    Android,
    /// Marvin: bookmarking GC + object-granularity swap (kernel LRU swap of
    /// the Java heap is disabled; Marvin manages reclamation itself).
    Marvin,
    /// Fleet: background-object GC + runtime-guided swap.
    Fleet,
}

impl SchemeKind {
    /// All schemes in Table 1 order (plus the no-swap baseline first).
    pub const ALL: [SchemeKind; 4] =
        [SchemeKind::AndroidNoSwap, SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet];

    /// Table 1's "GC approach" column.
    pub fn gc_approach(self) -> &'static str {
        match self {
            SchemeKind::AndroidNoSwap | SchemeKind::Android => "Native GC",
            SchemeKind::Marvin => "Bookmark GC",
            SchemeKind::Fleet => "Background-object GC (§5.2)",
        }
    }

    /// Table 1's swap "Granularity" column.
    pub fn swap_granularity(self) -> &'static str {
        match self {
            SchemeKind::AndroidNoSwap => "None",
            SchemeKind::Android => "Page",
            SchemeKind::Marvin => "Object",
            SchemeKind::Fleet => "Grouped page (§5.3.1)",
        }
    }

    /// Table 1's swap "Scheme" column.
    pub fn swap_scheme(self) -> &'static str {
        match self {
            SchemeKind::AndroidNoSwap => "Disabled",
            SchemeKind::Android => "LRU",
            SchemeKind::Marvin => "Object LRU",
            SchemeKind::Fleet => "Runtime-guided swap (§5.3)",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchemeKind::AndroidNoSwap => "Android w/o swap",
            SchemeKind::Android => "Android",
            SchemeKind::Marvin => "Marvin",
            SchemeKind::Fleet => "Fleet",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table2() {
        let p = FleetParams::default();
        assert_eq!(p.depth, 2);
        assert_eq!(p.ts, SimDuration::from_secs(10));
        assert_eq!(p.tf, SimDuration::from_secs(3));
        assert_eq!(p.card_shift, 10);
        assert_eq!(p.region_size, 256 * 1024);
    }

    #[test]
    fn table1_rows_are_complete() {
        for scheme in SchemeKind::ALL {
            assert!(!scheme.gc_approach().is_empty());
            assert!(!scheme.swap_granularity().is_empty());
            assert!(!scheme.swap_scheme().is_empty());
            assert!(!scheme.to_string().is_empty());
        }
        assert_eq!(SchemeKind::Marvin.swap_granularity(), "Object");
        assert_eq!(SchemeKind::Android.swap_scheme(), "LRU");
    }
}
