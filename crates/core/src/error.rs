//! The crate-wide error type.
//!
//! Hand-rolled in the `thiserror` idiom (offline build, no proc-macro
//! dependency): one enum, a `Display` impl per variant, `std::error::Error`
//! with sources where applicable, and `From` conversions for the error
//! types that flow into it.

use fleet_kernel::Pid;
use std::fmt;

/// Everything that can go wrong in the `fleet` crate's fallible APIs.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// A [`DeviceConfig`](crate::DeviceConfig) failed validation.
    InvalidConfig(String),
    /// An operation referenced a process that is not alive.
    ProcessNotAlive(Pid),
    /// An app name was not found in the Table 3 catalog.
    UnknownApp(String),
    /// An experiment selector matched nothing in the registry.
    UnknownExperiment(String),
    /// An export or other I/O operation failed.
    Io(std::io::Error),
    /// JSON encoding/decoding of experiment records failed.
    Serde(String),
    /// An *enforcing* SLO monitor breached; the message names the failed
    /// objectives.
    SloBreached(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::InvalidConfig(why) => write!(f, "invalid device configuration: {why}"),
            FleetError::ProcessNotAlive(pid) => write!(f, "process {pid:?} is not alive"),
            FleetError::UnknownApp(name) => {
                write!(f, "unknown app `{name}` (not in Table 3 catalog)")
            }
            FleetError::UnknownExperiment(sel) => {
                write!(f, "selector `{sel}` matches no experiment id, module or alias")
            }
            FleetError::Io(e) => write!(f, "I/O error: {e}"),
            FleetError::Serde(why) => write!(f, "serialisation error: {why}"),
            FleetError::SloBreached(which) => {
                write!(f, "enforced SLO breached: {which}")
            }
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<serde_json::Error> for FleetError {
    fn from(e: serde_json::Error) -> Self {
        FleetError::Serde(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert!(FleetError::InvalidConfig("dram too small".into())
            .to_string()
            .contains("dram too small"));
        assert!(FleetError::UnknownApp("Nope".into()).to_string().contains("Nope"));
        assert!(FleetError::UnknownExperiment("fig99".into()).to_string().contains("fig99"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let err: FleetError = io.into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
