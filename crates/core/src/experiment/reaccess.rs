//! Figure 6: which objects are re-accessed at hot-launch (§4.2).
//!
//! 6a: the NRO (depth ≤ 2) and FYO (allocated just before backgrounding)
//! shares of launch re-accesses, with their memory footprints — the paper
//! finds ≈50% / ≈40% of re-accesses for ≈10% / ≈9% of memory, 68% combined.
//!
//! 6b: sweeping the depth parameter D for Twitter — the re-access coverage
//! climbs faster than the memory footprint at small D, which is why D = 2
//! is a good operating point.

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use fleet_apps::{profile_by_name, AppBehavior};
use fleet_heap::{depth_map, AllocContext, Heap, HeapConfig, ObjectId};
use fleet_metrics::Table;
use fleet_sim::SimRng;
use serde::Serialize;
use std::collections::HashSet;

/// One app row of Figure 6a.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6aRow {
    /// App name.
    pub app: String,
    /// Share of re-accessed objects that are NRO (D = 2), percent.
    pub nro_share_pct: f64,
    /// Share of re-accessed objects that are FYO, percent.
    pub fyo_share_pct: f64,
    /// Share covered by NRO ∪ FYO, percent.
    pub both_share_pct: f64,
    /// NRO memory footprint, percent of live heap bytes.
    pub nro_mem_pct: f64,
    /// FYO memory footprint, percent of live heap bytes.
    pub fyo_mem_pct: f64,
    /// NRO ∪ FYO memory footprint, percent of live heap bytes.
    pub both_mem_pct: f64,
}

/// One depth point of Figure 6b.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig6bPoint {
    /// The depth parameter D.
    pub depth: u32,
    /// Launch re-accesses covered by NRO(D), percent.
    pub reaccess_coverage_pct: f64,
    /// NRO(D) memory footprint, percent of live heap bytes.
    pub mem_footprint_pct: f64,
}

/// A prepared backgrounded app with its ground-truth sets.
struct PreparedApp {
    heap: Heap,
    nro_by_depth: std::collections::HashMap<ObjectId, u32>,
    fyo: HashSet<ObjectId>,
    accessed: Vec<ObjectId>,
}

fn prepare(app: &str, seed: u64) -> PreparedApp {
    let mut profile = profile_by_name(app).unwrap_or_else(|| panic!("unknown app {app}"));
    // The heap is built at 1/16 scale; allocation rates must match.
    profile.fg_alloc_mib_per_sec /= 16.0;
    profile.bg_alloc_mib_per_sec /= 16.0;
    let mut heap = Heap::new(HeapConfig::default());
    let mut behavior = AppBehavior::new(profile.clone(), SimRng::seed_from(seed));
    behavior.build_initial_graph(&mut heap, profile.java_heap_bytes_scaled(16));
    // The last pre-background GC: whatever is allocated after this is FYO.
    heap.retire_alloc_targets();
    heap.clear_newly_allocated_flags();
    // A little more foreground use → young allocations in flagged regions
    // (sized so FYO land near the paper's ≈9% of heap memory).
    for _ in 0..8 {
        behavior.foreground_step(&mut heap, 1.0);
    }
    behavior.enter_background(&heap);
    heap.set_context(AllocContext::Background);
    // Ground truth at background time.
    let nro_by_depth = depth_map(&heap, None);
    let fyo: HashSet<ObjectId> = heap
        .object_ids()
        .filter(|&o| {
            let obj = heap.object(o);
            obj.context() == AllocContext::Foreground && heap.region(obj.region()).newly_allocated()
        })
        .collect();
    // 30 s later the app hot-launches (§4.2's protocol).
    let accessed = behavior.launch_access(&heap).objects;
    PreparedApp { heap, nro_by_depth, fyo, accessed }
}

fn live_bytes_of(heap: &Heap, set: impl Iterator<Item = ObjectId>) -> u64 {
    set.map(|o| heap.object(o).size() as u64).sum()
}

/// Runs Figure 6a over the paper's five analysed apps.
pub fn fig6a(seed: u64) -> Vec<Fig6aRow> {
    ["Twitter", "Facebook", "Youtube", "AmazonShop", "Tiktok"]
        .iter()
        .map(|app| {
            let prep = prepare(app, seed ^ app.len() as u64);
            let nro: HashSet<ObjectId> =
                prep.nro_by_depth.iter().filter(|&(_, &d)| d <= 2).map(|(&o, _)| o).collect();
            let acc: HashSet<ObjectId> = prep.accessed.iter().copied().collect();
            let total = acc.len().max(1) as f64;
            let nro_hits = acc.intersection(&nro).count() as f64;
            let fyo_hits = acc.intersection(&prep.fyo).count() as f64;
            let both_hits =
                acc.iter().filter(|o| nro.contains(o) || prep.fyo.contains(o)).count() as f64;
            let live = prep.heap.live_bytes().max(1) as f64;
            let nro_mem = live_bytes_of(&prep.heap, nro.iter().copied()) as f64;
            let fyo_mem = live_bytes_of(&prep.heap, prep.fyo.iter().copied()) as f64;
            let both_mem = live_bytes_of(
                &prep.heap,
                prep.heap.object_ids().filter(|o| nro.contains(o) || prep.fyo.contains(o)),
            ) as f64;
            Fig6aRow {
                app: app.to_string(),
                nro_share_pct: 100.0 * nro_hits / total,
                fyo_share_pct: 100.0 * fyo_hits / total,
                both_share_pct: 100.0 * both_hits / total,
                nro_mem_pct: 100.0 * nro_mem / live,
                fyo_mem_pct: 100.0 * fyo_mem / live,
                both_mem_pct: 100.0 * both_mem / live,
            }
        })
        .collect()
}

/// Runs Figure 6b: the NRO depth sweep on Twitter, D in `0..=max_depth`.
pub fn fig6b(seed: u64, max_depth: u32) -> Vec<Fig6bPoint> {
    let prep = prepare("Twitter", seed);
    let acc: HashSet<ObjectId> = prep.accessed.iter().copied().collect();
    let live = prep.heap.live_bytes().max(1) as f64;
    (0..=max_depth)
        .map(|depth| {
            let nro: Vec<ObjectId> =
                prep.nro_by_depth.iter().filter(|&(_, &d)| d <= depth).map(|(&o, _)| o).collect();
            let covered = nro.iter().filter(|o| acc.contains(o)).count() as f64;
            let mem = live_bytes_of(&prep.heap, nro.iter().copied()) as f64;
            Fig6bPoint {
                depth,
                reaccess_coverage_pct: 100.0 * covered / acc.len().max(1) as f64,
                mem_footprint_pct: 100.0 * mem / live,
            }
        })
        .collect()
}

/// Experiment `fig6` (6a shares and footprints; 6b depth sweep).
pub struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }
    fn title(&self) -> &'static str {
        "Figure 6 — NRO/FYO re-access shares and the depth sweep"
    }
    fn description(&self) -> &'static str {
        "Re-access shares of backgrounded objects and the grouping-depth sweep"
    }
    fn module(&self) -> &'static str {
        "reaccess"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let mut out = ExperimentOutput::new();
        out.section("Figure 6a — NRO/FYO re-access shares and footprints");
        let rows = fig6a(ctx.seed);
        let mut t =
            Table::new(["App", "NRO %", "FYO %", "Both %", "NRO mem %", "FYO mem %", "Both mem %"]);
        for r in &rows {
            t.row([
                r.app.clone(),
                format!("{:.0}", r.nro_share_pct),
                format!("{:.0}", r.fyo_share_pct),
                format!("{:.0}", r.both_share_pct),
                format!("{:.1}", r.nro_mem_pct),
                format!("{:.1}", r.fyo_mem_pct),
                format!("{:.1}", r.both_mem_pct),
            ]);
        }
        out.table(t);
        out.text(
            "paper averages: NRO ≈50%, FYO ≈40%, both ≈68% of re-accesses for ≈15.5% of memory",
        );
        out.section("Figure 6b — NRO depth sweep (Twitter)");
        let points = fig6b(ctx.seed, 14);
        let mut t = Table::new(["Depth D", "Re-access coverage %", "Memory footprint %"]);
        for p in &points {
            t.row([
                p.depth.to_string(),
                format!("{:.0}", p.reaccess_coverage_pct),
                format!("{:.1}", p.mem_footprint_pct),
            ]);
        }
        out.table(t);
        out.text("paper shape: coverage rises much faster than footprint at small D");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nro_and_fyo_cover_most_reaccesses_cheaply() {
        let rows = fig6a(2);
        assert_eq!(rows.len(), 5);
        let avg = |f: fn(&Fig6aRow) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
        let nro = avg(|r| r.nro_share_pct);
        let fyo = avg(|r| r.fyo_share_pct);
        let both = avg(|r| r.both_share_pct);
        let both_mem = avg(|r| r.both_mem_pct);
        // Paper: NRO ≈ 50%, FYO ≈ 40%, combined ≈ 68% of re-accesses for
        // ≈ 15.5% of memory. Shapes, not exact values:
        assert!((30.0..85.0).contains(&nro), "NRO share {nro}");
        assert!((10.0..60.0).contains(&fyo), "FYO share {fyo}");
        assert!(both >= nro.max(fyo), "union dominates either");
        assert!(both > 55.0, "combined share {both}");
        assert!(both_mem < 30.0, "combined footprint {both_mem}%");
        assert!(both > 2.0 * both_mem, "coverage must be much denser than footprint");
    }

    #[test]
    fn depth_sweep_coverage_outpaces_footprint_early() {
        let points = fig6b(2, 10);
        assert_eq!(points.len(), 11);
        // Monotone in depth.
        for w in points.windows(2) {
            assert!(w[1].reaccess_coverage_pct >= w[0].reaccess_coverage_pct);
            assert!(w[1].mem_footprint_pct >= w[0].mem_footprint_pct);
        }
        // At D = 2 coverage is already large while footprint is small.
        let d2 = &points[2];
        assert!(d2.reaccess_coverage_pct > 30.0, "coverage at D=2: {}", d2.reaccess_coverage_pct);
        assert!(d2.mem_footprint_pct < 20.0, "footprint at D=2: {}", d2.mem_footprint_pct);
        assert!(d2.reaccess_coverage_pct > 2.0 * d2.mem_footprint_pct);
        // Deep sweep approaches full memory.
        let last = points.last().unwrap();
        assert!(last.mem_footprint_pct > 60.0);
    }
}
