//! Population-scale cohort simulation (extension; DESIGN.md §12).
//!
//! Not a paper figure — the ROADMAP's cohort-level extension. The paper
//! validates the co-design on one Pixel 3; this experiment samples a
//! heterogeneous cohort from [`PopulationSpec::default_mix`] (DRAM 3–12 GB
//! classes, vendor-style zram adoption, per-persona app mixes and usage
//! scripts), streams the device-days through the parallel cohort runner
//! and renders the population dashboard: p50/p99/p999 hot-launch, LMK kill
//! rate and zram writeback volume, overall and per scheme.
//!
//! Everything rendered and exported derives from the merged
//! [`PopulationAggregate`] alone, which is byte-identical whatever the
//! worker-thread count — `repro population --threads N` exports the same
//! JSON as a sequential run. Wall-clock throughput (simulated device-hours
//! per wall-second) is deliberately *not* here: it is the `fleet-bench`
//! headline row, where non-determinism belongs.

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::SchemeKind;
use crate::population::{run_population, PopulationAggregate, PopulationSpec};
use fleet_kernel::{KillPolicy, ReclaimPolicy};
use fleet_metrics::Table;
use serde::Serialize;

/// Cohort size: quick keeps CI fast, full clears the 10k device-day bar.
pub fn cohort_devices(quick: bool) -> u32 {
    if quick {
        96
    } else {
        10_000
    }
}

/// The export payload: the spec identity plus the merged aggregate and the
/// headline percentiles derived from it. Pure function of the aggregate —
/// no wall-clock, no thread count.
#[derive(Debug, Clone, Serialize)]
pub struct PopulationExport {
    /// The population master seed the cohort was sampled from.
    pub seed: u64,
    /// Cohort size in device-days.
    pub devices: u32,
    /// Population hot-launch p50, ms.
    pub hot_p50_ms: f64,
    /// Population hot-launch p99, ms.
    pub hot_p99_ms: f64,
    /// Population hot-launch p999, ms.
    pub hot_p999_ms: f64,
    /// LMK kills per device-day.
    pub lmk_kills_per_device_day: f64,
    /// Reclaim-policy A/B over the same sampled cohort: the default
    /// Reactive deployment versus the SWAM-style proactive co-design.
    pub policies: Vec<PolicyCohortSummary>,
    /// The full merged aggregate of the default (Reactive) cohort
    /// (counters, histograms, slice rows, cohort hash).
    pub aggregate: PopulationAggregate,
}

/// One reclaim-policy arm of the cohort A/B.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyCohortSummary {
    /// Policy label (`reactive` / `swam`).
    pub policy: String,
    /// Hot-launch p50, ms.
    pub hot_p50_ms: f64,
    /// Hot-launch p99, ms.
    pub hot_p99_ms: f64,
    /// LMK kills per device-day.
    pub lmk_kills_per_device_day: f64,
    /// Cold relaunches forced by kills.
    pub cold_relaunches: u64,
    /// Pages the proactive daemon swapped out ahead of pressure.
    pub proactive_swapout_pages: u64,
}

fn policy_summary(label: &str, agg: &PopulationAggregate) -> PolicyCohortSummary {
    PolicyCohortSummary {
        policy: label.to_string(),
        hot_p50_ms: agg.hot_launch_quantile_ms(0.5),
        hot_p99_ms: agg.hot_launch_quantile_ms(0.99),
        lmk_kills_per_device_day: agg.lmk_kills_per_device_day(),
        cold_relaunches: agg.cold_relaunches,
        proactive_swapout_pages: agg.proactive_swapout_pages,
    }
}

fn policy_table(arms: &[PolicyCohortSummary]) -> Table {
    let mut t = Table::new([
        "Reclaim policy",
        "p50 (ms)",
        "p99 (ms)",
        "LMK/day",
        "Cold relaunches",
        "Proactive pages",
    ]);
    for arm in arms {
        t.row([
            arm.policy.clone(),
            format!("{:.0}", arm.hot_p50_ms),
            format!("{:.0}", arm.hot_p99_ms),
            format!("{:.2}", arm.lmk_kills_per_device_day),
            arm.cold_relaunches.to_string(),
            arm.proactive_swapout_pages.to_string(),
        ]);
    }
    t
}

fn dashboard(agg: &PopulationAggregate) -> Table {
    let mut t = Table::new([
        "Cohort",
        "Devices",
        "Hot launches",
        "p50 (ms)",
        "p99 (ms)",
        "p999 (ms)",
        "LMK/day",
        "Writeback pages",
    ]);
    t.row([
        "all".to_string(),
        agg.devices.to_string(),
        agg.hot_launches.to_string(),
        format!("{:.0}", agg.hot_launch_quantile_ms(0.5)),
        format!("{:.0}", agg.hot_launch_quantile_ms(0.99)),
        format!("{:.0}", agg.hot_launch_quantile_ms(0.999)),
        format!("{:.2}", agg.lmk_kills_per_device_day()),
        agg.zram_writeback_pages.to_string(),
    ]);
    for (i, &scheme) in SchemeKind::ALL.iter().enumerate() {
        let devices = agg.scheme_devices[i];
        if devices == 0 {
            continue;
        }
        let hist = &agg.scheme_hot_launch_us[i];
        t.row([
            scheme.to_string(),
            devices.to_string(),
            hist.count().to_string(),
            format!("{:.0}", hist.quantile(0.5) as f64 / 1e3),
            format!("{:.0}", hist.quantile(0.99) as f64 / 1e3),
            format!("{:.0}", hist.quantile(0.999) as f64 / 1e3),
            format!("{:.2}", agg.scheme_lmk_kills[i] as f64 / devices as f64),
            "-".to_string(),
        ]);
    }
    t
}

/// Publishes the cohort dashboard into an installed obs pipeline so
/// `repro population --trace DIR` lands it in `population.metrics.json`.
#[cfg(feature = "obs")]
fn publish_obs(agg: &PopulationAggregate) {
    let Some(pipeline) = crate::obs::current() else { return };
    let mut p = pipeline.lock().expect("obs pipeline lock");
    p.counter_add("population.device_days", agg.devices);
    p.counter_add("population.launches", agg.launches);
    p.counter_add("population.hot_launches", agg.hot_launches);
    p.counter_add("population.lmk_kills", agg.lmk_kills);
    p.counter_add("population.zram_writeback_pages", agg.zram_writeback_pages);
    p.gauge_set("population.cohort_hash", agg.cohort_hash);
    // Bulk-absorb the cohort histogram: one record_n per log2 bucket at the
    // bucket's lower bound (the obs histogram re-buckets identically).
    for (b, &n) in agg.hot_launch_us.buckets().iter().enumerate() {
        if n > 0 {
            let lo_us = if b == 0 { 0u64 } else { 1u64 << b };
            p.latency_n("population.hot_launch_ns", lo_us.saturating_mul(1_000), n);
        }
    }
}

/// Experiment `population`.
pub struct Population;

impl Experiment for Population {
    fn id(&self) -> &'static str {
        "population"
    }
    fn title(&self) -> &'static str {
        "Extension — population-scale cohort simulation"
    }
    fn description(&self) -> &'static str {
        "Cohort dashboard: hot-launch p50/p99/p999, kill rate, writeback across sampled devices"
    }
    fn module(&self) -> &'static str {
        "population"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["cohort"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let devices = cohort_devices(ctx.quick);
        let spec = PopulationSpec::default_mix(ctx.seed, devices);
        // The A/B arm: same seed, same sampled hardware and day scripts
        // (the policy knobs are applied, never sampled), Swam co-design on.
        let mut swam_spec = spec.clone();
        swam_spec.reclaim_policy = ReclaimPolicy::swam();
        swam_spec.kill_policy = KillPolicy::WssWeighted;
        // run_population drops to one inline worker by itself when an
        // audit/obs pipeline is installed (repro --trace), so the trace is
        // never silently empty under parallelism.
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let run = run_population(&spec, threads)?;
        let agg = &run.aggregate;
        let swam_run = run_population(&swam_spec, threads)?;
        let policies =
            vec![policy_summary("reactive", agg), policy_summary("swam", &swam_run.aggregate)];
        #[cfg(feature = "obs")]
        publish_obs(agg);

        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.table(dashboard(agg));
        out.text(
            "Reclaim-policy A/B over the same sampled cohort (Swam arm: proactive \
             reclaim + WSS-weighted oom scoring):"
                .to_string(),
        );
        out.table(policy_table(&policies));
        out.text(format!(
            "{} device-days sampled from {} classes x {} personas x {} schemes \
             (seed {:#x}); {} zram devices; cohort hash {:016x}",
            agg.devices,
            spec.classes.len(),
            spec.personas.len(),
            spec.schemes.len(),
            spec.seed,
            agg.zram_devices,
            agg.cohort_hash,
        ));
        out.text(format!(
            "{:.1} simulated device-hours in {} run-slices of {} devices; \
             throughput headline lives in fleet-bench (BENCH_kernel.json, population row)",
            agg.device_hours(),
            agg.slices.len(),
            agg.slice_len,
        ));
        out.export(
            "population",
            "n/a (extension; SWAM-style cohort dashboard, PAPERS.md)",
            &PopulationExport {
                seed: spec.seed,
                devices,
                hot_p50_ms: agg.hot_launch_quantile_ms(0.5),
                hot_p99_ms: agg.hot_launch_quantile_ms(0.99),
                hot_p999_ms: agg.hot_launch_quantile_ms(0.999),
                lmk_kills_per_device_day: agg.lmk_kills_per_device_day(),
                policies,
                aggregate: agg.clone(),
            },
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{run_device_day, sample_device, RangeU32, SLICE_LEN};

    /// A tiny cohort through the real experiment path (spec shrunk, not the
    /// driver): dashboard renders, export is aggregate-only.
    #[test]
    fn dashboard_renders_and_exports_deterministically() {
        let mut spec = PopulationSpec::default_mix(0xF1EE7, 4);
        for p in &mut spec.personas {
            p.working_set = RangeU32 { lo: 2, hi: 2 };
            p.cycles = RangeU32 { lo: 1, hi: 1 };
            p.usage_gap_secs = RangeU32 { lo: 5, hi: 5 };
        }
        let mut agg = PopulationAggregate::new(spec.devices, SLICE_LEN);
        for i in 0..spec.devices {
            agg.absorb(&run_device_day(&sample_device(&spec, i).unwrap()).unwrap());
        }
        let rendered = format!("{}", dashboard(&agg));
        assert!(rendered.contains("all"));
        assert!(rendered.contains("p999 (ms)"));
        let a = serde_json::to_string_pretty(&serde::Serialize::to_value(&agg));
        let b = serde_json::to_string_pretty(&serde::Serialize::to_value(&agg.clone()));
        assert_eq!(a, b);
    }

    #[test]
    fn cohort_sizes_meet_the_bar() {
        assert!(cohort_devices(false) >= 10_000, "full runs must clear 10k device-days");
        assert!(cohort_devices(true) <= 128, "quick runs must stay CI-sized");
    }
}
