//! The experiment harness: a uniform driver API and a parallel runner.
//!
//! Every table and figure of the paper is an [`Experiment`]: a named unit
//! that takes an [`ExperimentCtx`] (its derived seed and the quick/full
//! switch) and returns an [`ExperimentOutput`] — render blocks for the
//! terminal plus serialisable export artifacts. The [`REGISTRY`] lists all
//! of them in paper order; [`select`] resolves user selectors (ids,
//! aliases, module names, `fig1*` globs) against it; [`run_experiments`]
//! executes a selection on a thread pool.
//!
//! Determinism contract: each experiment's RNG seed is [`derive_seed`]d
//! from the master seed and the experiment id, so a run's output depends
//! only on `(master seed, id, quick)` — never on which other experiments
//! run, in what order, or on how many threads. `tests/determinism.rs`
//! pins the parallel/sequential equivalence down.

use crate::error::FleetError;
use fleet_metrics::Table;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-experiment run context.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// This experiment's RNG seed, already derived from the master seed
    /// and the experiment id (see [`derive_seed`]).
    pub seed: u64,
    /// Trade fidelity for speed: fewer launches, shorter usage windows.
    pub quick: bool,
    /// Where this experiment should write outlier drill-down artifacts
    /// (already suffixed with the experiment id), or `None` when
    /// `--drilldown` was not given. Only telemetry-style experiments look
    /// at it.
    pub drilldown: Option<std::path::PathBuf>,
}

impl ExperimentCtx {
    /// The standard per-app launch count (§7.2 uses 20; quick runs 6).
    pub fn launches(&self) -> usize {
        if self.quick {
            6
        } else {
            20
        }
    }
}

/// One renderable piece of an experiment's terminal output.
#[derive(Debug, Clone)]
pub enum RenderBlock {
    /// A `====`-framed section header.
    Section(String),
    /// An aligned text table.
    Table(Table),
    /// A free-form line (commentary, paper references).
    Text(String),
}

/// A serialisable record destined for `--export DIR` as `<id>.json`.
#[derive(Debug, Clone)]
pub struct ExportArtifact {
    /// Export file stem (e.g. "fig13").
    pub id: String,
    /// The paper's reported value, stored alongside the data.
    pub paper: String,
    /// The measured records, already serialised.
    pub data: serde::Value,
}

/// What an experiment produces: render blocks in display order plus any
/// export artifacts.
#[derive(Debug, Clone, Default)]
pub struct ExperimentOutput {
    /// Terminal output, in order.
    pub blocks: Vec<RenderBlock>,
    /// JSON export payloads.
    pub exports: Vec<ExportArtifact>,
}

impl ExperimentOutput {
    /// An empty output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section header.
    pub fn section(&mut self, title: impl Into<String>) {
        self.blocks.push(RenderBlock::Section(title.into()));
    }

    /// Appends a table.
    pub fn table(&mut self, table: Table) {
        self.blocks.push(RenderBlock::Table(table));
    }

    /// Appends a free-form line.
    pub fn text(&mut self, line: impl Into<String>) {
        self.blocks.push(RenderBlock::Text(line.into()));
    }

    /// Registers `data` for `--export DIR` under `<id>.json`, paired with
    /// the paper's reported value for side-by-side reading.
    pub fn export<T: Serialize>(
        &mut self,
        id: impl Into<String>,
        paper: impl Into<String>,
        data: &T,
    ) {
        self.exports.push(ExportArtifact {
            id: id.into(),
            paper: paper.into(),
            data: data.to_value(),
        });
    }

    /// Renders the blocks as the `repro` binary prints them.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for block in &self.blocks {
            match block {
                RenderBlock::Section(title) => {
                    let _ = writeln!(out);
                    let _ = writeln!(out, "{}", "=".repeat(64));
                    let _ = writeln!(out, "{title}");
                    let _ = writeln!(out, "{}", "=".repeat(64));
                }
                RenderBlock::Table(t) => {
                    let _ = write!(out, "{t}");
                }
                RenderBlock::Text(line) => {
                    let _ = writeln!(out, "{line}");
                }
            }
        }
        out
    }
}

/// One table or figure of the paper, runnable by id.
pub trait Experiment: Sync {
    /// Canonical selector and export stem (e.g. "fig13").
    fn id(&self) -> &'static str;
    /// Human title printed by `repro --list`.
    fn title(&self) -> &'static str;
    /// One-line summary of what the experiment measures, printed under the
    /// title by `repro --list`.
    fn description(&self) -> &'static str;
    /// The `experiment::` submodule this driver lives in; also a selector.
    fn module(&self) -> &'static str;
    /// Extra selectors that resolve to this experiment (e.g. "fig15" for
    /// the fig13 experiment, which renders both).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }
    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Drivers are infallible simulations today, but the signature leaves
    /// room for config/export failures ([`FleetError`]).
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError>;
}

/// All experiments, in paper order. `repro all` runs exactly this list.
pub static REGISTRY: &[&dyn Experiment] = &[
    &crate::experiment::tables::Table1,
    &crate::experiment::tables::Table2,
    &crate::experiment::tables::Table3,
    &crate::experiment::launch_basics::Fig2,
    &crate::experiment::hot_launch::Fig3,
    &crate::experiment::access_trace::Fig4,
    &crate::experiment::lifetimes::Fig5,
    &crate::experiment::reaccess::Fig6,
    &crate::experiment::object_sizes::Fig7,
    &crate::experiment::caching::Fig11,
    &crate::experiment::gc_working_set::Fig12,
    &crate::experiment::hot_launch::Fig13,
    &crate::experiment::frames::Fig14,
    &crate::experiment::runtime::CpuUsage,
    &crate::experiment::runtime::Power,
    &crate::experiment::runtime::MemoryOverhead,
    &crate::experiment::sensitivity::Sensitivity,
    &crate::experiment::scenario::Scenario,
    &crate::experiment::ablation::Ablation,
    &crate::experiment::resilience::Resilience,
    &crate::experiment::chaos::Chaos,
    &crate::experiment::attribution::LaunchAttribution,
    &crate::experiment::swap_tiers::SwapTiers,
    &crate::experiment::proactive_reclaim::ProactiveReclaim,
    &crate::experiment::population::Population,
    &crate::experiment::fleet_telemetry::FleetTelemetry,
];

/// Derives an experiment's RNG seed from the master seed and its id.
///
/// FNV-1a over the id, mixed with the master seed through a splitmix64
/// finaliser: stable across runs and platforms, and two experiments never
/// share a stream even under the same master seed.
pub fn derive_seed(master: u64, id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = master ^ h;
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Does `pattern` (with `*` and `?` wildcards) match `text`?
fn glob_match(pattern: &str, text: &str) -> bool {
    fn matches(p: &[u8], t: &[u8]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some(b'*'), _) => matches(&p[1..], t) || (!t.is_empty() && matches(p, &t[1..])),
            (Some(b'?'), Some(_)) => matches(&p[1..], &t[1..]),
            (Some(a), Some(b)) if a == b => matches(&p[1..], &t[1..]),
            _ => false,
        }
    }
    matches(pattern.as_bytes(), text.as_bytes())
}

fn selector_matches(selector: &str, exp: &dyn Experiment) -> bool {
    let names = std::iter::once(exp.id())
        .chain(std::iter::once(exp.module()))
        .chain(exp.aliases().iter().copied());
    if selector.contains('*') || selector.contains('?') {
        names.into_iter().any(|n| glob_match(selector, n))
    } else {
        names.into_iter().any(|n| n == selector)
    }
}

/// Resolves selectors against the [`REGISTRY`].
///
/// A selector is `all`, an experiment id, an alias, a module name, or a
/// glob over any of those (`fig1*`). The result is deduplicated and in
/// registry (paper) order regardless of selector order.
///
/// # Errors
///
/// [`FleetError::UnknownExperiment`] for the first selector that matches
/// nothing.
pub fn select(selectors: &[String]) -> Result<Vec<&'static dyn Experiment>, FleetError> {
    for sel in selectors {
        if sel != "all" && !REGISTRY.iter().any(|e| selector_matches(sel, *e)) {
            return Err(FleetError::UnknownExperiment(sel.clone()));
        }
    }
    Ok(REGISTRY
        .iter()
        .filter(|e| selectors.iter().any(|s| s == "all" || selector_matches(s, **e)))
        .copied()
        .collect())
}

/// The outcome of one experiment run.
pub struct RunReport {
    /// The experiment's id.
    pub id: &'static str,
    /// The experiment's title.
    pub title: &'static str,
    /// Its output, or the error that stopped it.
    pub result: Result<ExperimentOutput, FleetError>,
    /// Wall-clock time the run took.
    pub elapsed: Duration,
}

/// Runs `selected` on up to `threads` worker threads.
///
/// Each experiment gets its own seed via [`derive_seed`], so the reports —
/// returned in `selected` order — are identical whatever `threads` is.
/// With `progress`, a `done <id> (<secs>)` line goes to stderr as each
/// experiment finishes (completion order, the one place parallelism shows).
/// A `drilldown` directory is forwarded to each experiment as
/// `drilldown/<id>` (only telemetry-style experiments write there).
pub fn run_experiments(
    selected: &[&'static dyn Experiment],
    master_seed: u64,
    quick: bool,
    threads: usize,
    progress: bool,
    drilldown: Option<&std::path::Path>,
) -> Vec<RunReport> {
    let threads = threads.clamp(1, selected.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunReport>>> = selected.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(exp) = selected.get(i) else { break };
                let ctx = ExperimentCtx {
                    seed: derive_seed(master_seed, exp.id()),
                    quick,
                    drilldown: drilldown.map(|d| d.join(exp.id())),
                };
                let start = Instant::now();
                let result = exp.run(&ctx);
                let elapsed = start.elapsed();
                if progress {
                    eprintln!(
                        "done {:<12} ({:.1}s{})",
                        exp.id(),
                        elapsed.as_secs_f64(),
                        if result.is_err() { ", FAILED" } else { "" }
                    );
                }
                *slots[i].lock().expect("slot lock") =
                    Some(RunReport { id: exp.id(), title: exp.title(), result, elapsed });
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot lock").expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// The compile-time list of `experiment::` submodules (minus the
    /// harness itself and the export plumbing). Kept literally in sync
    /// with `mod.rs` so a new driver module cannot be forgotten here.
    const DRIVER_MODULES: &[&str] = &[
        "ablation",
        "access_trace",
        "attribution",
        "caching",
        "chaos",
        "fleet_telemetry",
        "frames",
        "gc_working_set",
        "hot_launch",
        "launch_basics",
        "lifetimes",
        "object_sizes",
        "population",
        "proactive_reclaim",
        "reaccess",
        "resilience",
        "runtime",
        "scenario",
        "sensitivity",
        "swap_tiers",
        "tables",
    ];

    #[test]
    fn registry_ids_and_aliases_are_unique() {
        let mut seen = BTreeSet::new();
        for exp in REGISTRY {
            assert!(seen.insert(exp.id()), "duplicate id {}", exp.id());
            for alias in exp.aliases() {
                assert!(seen.insert(*alias), "alias {alias} collides");
            }
        }
    }

    #[test]
    fn every_experiment_has_a_description() {
        for exp in REGISTRY {
            let d = exp.description();
            assert!(!d.trim().is_empty(), "{} has an empty description", exp.id());
            assert!(!d.contains('\n'), "{} description must be one line", exp.id());
            assert!(d.len() <= 90, "{} description too long for --list", exp.id());
        }
    }

    #[test]
    fn every_driver_module_is_registered() {
        let registered: BTreeSet<&str> = REGISTRY.iter().map(|e| e.module()).collect();
        for module in DRIVER_MODULES {
            assert!(registered.contains(module), "module {module} has no experiment");
        }
        for module in &registered {
            assert!(DRIVER_MODULES.contains(module), "unknown module {module}");
        }
    }

    #[test]
    fn selectors_resolve_ids_aliases_modules_and_globs() {
        let ids = |sel: &str| -> Vec<&str> {
            select(&[sel.to_string()]).unwrap().iter().map(|e| e.id()).collect()
        };
        assert_eq!(ids("fig13"), ["fig13"]);
        assert_eq!(ids("fig15"), ["fig13"], "alias resolves to its experiment");
        assert_eq!(ids("hot_launch"), ["fig3", "fig13"], "module selects all its drivers");
        assert_eq!(ids("table*"), ["table1", "table2", "table3"]);
        assert_eq!(select(&["all".into()]).unwrap().len(), REGISTRY.len());
        // Dedup + registry order even with overlapping, shuffled selectors.
        let both = select(&["fig13".into(), "fig2".into(), "hot_launch".into()]).unwrap();
        let got: Vec<&str> = both.iter().map(|e| e.id()).collect();
        assert_eq!(got, ["fig2", "fig3", "fig13"]);
        assert!(matches!(
            select(&["fig99".into()]),
            Err(FleetError::UnknownExperiment(s)) if s == "fig99"
        ));
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(7, "fig13"), derive_seed(7, "fig13"));
        assert_ne!(derive_seed(7, "fig13"), derive_seed(8, "fig13"));
        let mut seeds = BTreeSet::new();
        for exp in REGISTRY {
            assert!(seeds.insert(derive_seed(0xF1EE7, exp.id())), "seed collision");
        }
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("fig1*", "fig13"));
        assert!(glob_match("fig1?", "fig12"));
        assert!(glob_match("*", "anything"));
        assert!(!glob_match("fig1*", "fig2"));
        assert!(!glob_match("fig1?", "fig1"));
    }

    #[test]
    fn render_frames_sections_and_keeps_order() {
        let mut out = ExperimentOutput::new();
        out.section("Title");
        out.text("a line");
        let rendered = out.render();
        assert!(rendered.contains("================"));
        assert!(rendered.contains("Title"));
        assert!(rendered.ends_with("a line\n"));
    }
}
