//! Tables 1–3 of the paper, regenerated from the code's own types.
//!
//! These are configuration tables rather than measurements; reproducing
//! them from the implementation proves the implementation carries the same
//! structure (schemes, parameters, workload set).

use crate::params::{FleetParams, SchemeKind};
use fleet_apps::{catalog, AppCategory};
use fleet_metrics::Table;

/// Table 1: comparison methods.
pub fn table1() -> Table {
    let mut t = Table::new(["Method", "GC approach", "Swap granularity", "Swap scheme"]);
    for scheme in [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet] {
        t.row([
            scheme.to_string(),
            scheme.gc_approach().to_string(),
            scheme.swap_granularity().to_string(),
            scheme.swap_scheme().to_string(),
        ]);
    }
    t
}

/// Table 2: Fleet's default parameters.
pub fn table2() -> Table {
    let p = FleetParams::default();
    let mut t = Table::new(["Parameter", "Symbol", "Setting"]);
    t.row(["Maximum depth to the roots for NRO", "D", &p.depth.to_string()]);
    t.row(["Wait time to start Fleet in the background", "Ts", &format!("{} seconds", p.ts.as_millis() / 1000)]);
    t.row(["Wait time to stop Fleet in the foreground", "Tf", &format!("{} seconds", p.tf.as_millis() / 1000)]);
    t.row(["CARD_SHIFT for card address conversion", "-", &p.card_shift.to_string()]);
    t.row(["Region size of the Java heap", "-", &format!("{} KB", p.region_size / 1024)]);
    t
}

/// Table 3: the commercial apps under evaluation.
pub fn table3() -> Table {
    let mut t = Table::new(["App type", "Apps"]);
    for cat in [AppCategory::Communication, AppCategory::Multimedia, AppCategory::Tools, AppCategory::Games] {
        let names: Vec<String> =
            catalog().into_iter().filter(|a| a.category == cat).map(|a| a.name).collect();
        t.row([cat.to_string(), names.join(", ")]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_methods() {
        let t = table1();
        assert_eq!(t.len(), 3);
        let s = t.to_string();
        assert!(s.contains("Marvin"));
        assert!(s.contains("Background-object GC"));
    }

    #[test]
    fn table2_lists_all_five_parameters() {
        let t = table2();
        assert_eq!(t.len(), 5);
        let s = t.to_string();
        assert!(s.contains("10 seconds"));
        assert!(s.contains("256 KB"));
    }

    #[test]
    fn table3_covers_four_categories() {
        let t = table3();
        assert_eq!(t.len(), 4);
        let s = t.to_string();
        assert!(s.contains("Twitter"));
        assert!(s.contains("CandyCrush"));
    }
}
