//! Tables 1–3 of the paper, regenerated from the code's own types.
//!
//! These are configuration tables rather than measurements; reproducing
//! them from the implementation proves the implementation carries the same
//! structure (schemes, parameters, workload set).

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::{FleetParams, SchemeKind};
use fleet_apps::{catalog, AppCategory};
use fleet_metrics::Table;

/// Table 1: comparison methods.
pub fn table1() -> Table {
    let mut t = Table::new(["Method", "GC approach", "Swap granularity", "Swap scheme"]);
    for scheme in [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet] {
        t.row([
            scheme.to_string(),
            scheme.gc_approach().to_string(),
            scheme.swap_granularity().to_string(),
            scheme.swap_scheme().to_string(),
        ]);
    }
    t
}

/// Table 2: Fleet's default parameters.
pub fn table2() -> Table {
    let p = FleetParams::default();
    let mut t = Table::new(["Parameter", "Symbol", "Setting"]);
    t.row(["Maximum depth to the roots for NRO", "D", &p.depth.to_string()]);
    t.row([
        "Wait time to start Fleet in the background",
        "Ts",
        &format!("{} seconds", p.ts.as_millis() / 1000),
    ]);
    t.row([
        "Wait time to stop Fleet in the foreground",
        "Tf",
        &format!("{} seconds", p.tf.as_millis() / 1000),
    ]);
    t.row(["CARD_SHIFT for card address conversion", "-", &p.card_shift.to_string()]);
    t.row(["Region size of the Java heap", "-", &format!("{} KB", p.region_size / 1024)]);
    t
}

/// Table 3: the commercial apps under evaluation.
pub fn table3() -> Table {
    let mut t = Table::new(["App type", "Apps"]);
    for cat in [
        AppCategory::Communication,
        AppCategory::Multimedia,
        AppCategory::Tools,
        AppCategory::Games,
    ] {
        let names: Vec<String> =
            catalog().into_iter().filter(|a| a.category == cat).map(|a| a.name).collect();
        t.row([cat.to_string(), names.join(", ")]);
    }
    t
}

/// Experiment `table1`.
pub struct Table1;

impl Experiment for Table1 {
    fn id(&self) -> &'static str {
        "table1"
    }
    fn title(&self) -> &'static str {
        "Table 1 — comparison methods"
    }
    fn description(&self) -> &'static str {
        "Qualitative side-by-side of the Android, Marvin, and Fleet mechanisms"
    }
    fn module(&self) -> &'static str {
        "tables"
    }
    fn run(&self, _ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.table(table1());
        Ok(out)
    }
}

/// Experiment `table2`.
pub struct Table2;

impl Experiment for Table2 {
    fn id(&self) -> &'static str {
        "table2"
    }
    fn title(&self) -> &'static str {
        "Table 2 — Fleet's default parameters"
    }
    fn description(&self) -> &'static str {
        "Fleet's Ts/Tf, grouping depth, and region parameters as modelled"
    }
    fn module(&self) -> &'static str {
        "tables"
    }
    fn run(&self, _ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.table(table2());
        Ok(out)
    }
}

/// Experiment `table3`.
pub struct Table3;

impl Experiment for Table3 {
    fn id(&self) -> &'static str {
        "table3"
    }
    fn title(&self) -> &'static str {
        "Table 3 — commercial apps for evaluation"
    }
    fn description(&self) -> &'static str {
        "The simulated app profiles standing in for the paper's app set"
    }
    fn module(&self) -> &'static str {
        "tables"
    }
    fn run(&self, _ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.table(table3());
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_methods() {
        let t = table1();
        assert_eq!(t.len(), 3);
        let s = t.to_string();
        assert!(s.contains("Marvin"));
        assert!(s.contains("Background-object GC"));
    }

    #[test]
    fn table2_lists_all_five_parameters() {
        let t = table2();
        assert_eq!(t.len(), 5);
        let s = t.to_string();
        assert!(s.contains("10 seconds"));
        assert!(s.contains("256 KB"));
    }

    #[test]
    fn table3_covers_four_categories() {
        let t = table3();
        assert_eq!(t.len(), 4);
        let s = t.to_string();
        assert!(s.contains("Twitter"));
        assert!(s.contains("CandyCrush"));
    }
}
