//! Figure 12a: the background GC working set (§7.1 "GC working set").
//!
//! "We measure the number of objects accessed by the GC thread during a
//! single GC execution" for a backgrounded app: Android's full GC touches
//! the whole live heap (~7×10⁵ objects on the Pixel 3), while Fleet's BGC
//! touches only the background objects (~10⁵), a ≈7× reduction.

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::access_trace;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::SchemeKind;
use fleet_apps::profile_by_name;
use fleet_metrics::Table;
use serde::Serialize;

/// One app's working-set comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12aRow {
    /// App name.
    pub app: String,
    /// Objects traced by Android's background full GC (real-scale estimate).
    pub android: u64,
    /// Objects traced by Fleet with BGC disabled (full GC after grouping).
    pub fleet_without_bgc: u64,
    /// Objects traced by Fleet's BGC.
    pub fleet_with_bgc: u64,
}

fn background_gc_working_set(
    scheme: SchemeKind,
    disable_bgc: bool,
    app: &str,
    seed: u64,
) -> Result<u64, FleetError> {
    let mut config = DeviceConfig::pixel3(scheme);
    config.seed = seed;
    config.fleet_disable_bgc = disable_bgc;
    // Only the explicit measurement GC should run in the background.
    config.bg_gc_interval = fleet_sim::SimDuration::from_secs(100_000);
    let mut device = Device::try_new(config)?;
    let profile = profile_by_name(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let (pid, _) = device.launch_cold(&profile);
    device.run(10);
    device.launch_cold(&profile_by_name("Telegram").expect("catalog app"));
    device.run(20); // Fleet groups at +10 s; the app settles into background
    let stats = device.try_run_gc(pid)?;
    Ok(stats.objects_traced * device.config().scale as u64)
}

/// Runs Figure 12a over the plotted apps.
pub fn fig12a(seed: u64) -> Result<Vec<Fig12aRow>, FleetError> {
    ["Twitter", "Youtube", "Twitch", "AmazonShop", "Chrome", "AngryBirds"]
        .iter()
        .map(|app| {
            Ok(Fig12aRow {
                app: app.to_string(),
                android: background_gc_working_set(SchemeKind::Android, false, app, seed)?,
                fleet_without_bgc: background_gc_working_set(SchemeKind::Fleet, true, app, seed)?,
                fleet_with_bgc: background_gc_working_set(SchemeKind::Fleet, false, app, seed)?,
            })
        })
        .collect()
}

/// Average reduction factor (Android / Fleet-with-BGC) across the rows.
pub fn average_reduction(rows: &[Fig12aRow]) -> f64 {
    let ratios: Vec<f64> =
        rows.iter().map(|r| r.android as f64 / r.fleet_with_bgc.max(1) as f64).collect();
    ratios.iter().sum::<f64>() / ratios.len().max(1) as f64
}

/// Sanity helper used by tests and the harness: the number of live objects
/// in a freshly warmed app of this profile (the trace upper bound).
pub fn live_objects_estimate(app: &str) -> u64 {
    let profile = profile_by_name(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let heap_bytes = profile.java_heap_bytes_scaled(16);
    heap_bytes / profile.size_dist.mean() as u64
}

/// Experiment `fig12`: 12a working-set table plus the 12b traces (the
/// latter measured by [`access_trace::fig12b`]).
pub struct Fig12;

impl Experiment for Fig12 {
    fn id(&self) -> &'static str {
        "fig12"
    }
    fn title(&self) -> &'static str {
        "Figure 12 — background GC working set"
    }
    fn description(&self) -> &'static str {
        "Objects traced by background collections — the GC working set"
    }
    fn module(&self) -> &'static str {
        "gc_working_set"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let mut out = ExperimentOutput::new();
        out.section("Figure 12a — background GC working set (objects, real-scale)");
        let rows = fig12a(ctx.seed)?;
        out.export("fig12a", "≈7x working-set reduction", &rows);
        let mut t = Table::new(["App", "Android", "Fleet w/o BGC", "Fleet w/ BGC", "Reduction"]);
        for r in &rows {
            t.row([
                r.app.clone(),
                r.android.to_string(),
                r.fleet_without_bgc.to_string(),
                r.fleet_with_bgc.to_string(),
                format!("{:.1}x", r.android as f64 / r.fleet_with_bgc.max(1) as f64),
            ]);
        }
        out.table(t);
        out.text(format!(
            "average reduction {:.1}x   (paper: ≈7x, from ~7e5 to ~1e5 objects)",
            average_reduction(&rows)
        ));
        out.section("Figure 12b — accessed objects over 600 s (Twitch), Android vs Fleet");
        for result in access_trace::fig12b(ctx.seed)? {
            let bg_gc = access_trace::gc_samples_in_window(&result, 190.0, 480.0);
            out.text(format!(
                "{:>8}: GC-touched samples in the background window = {bg_gc}",
                result.scheme
            ));
        }
        out.text("paper shape: Fleet's background GC activity is an order of magnitude lower");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgc_shrinks_the_background_working_set() {
        let rows: Vec<Fig12aRow> = ["Twitter", "Twitch"]
            .iter()
            .map(|app| Fig12aRow {
                app: app.to_string(),
                android: background_gc_working_set(SchemeKind::Android, false, app, 5).unwrap(),
                fleet_without_bgc: background_gc_working_set(SchemeKind::Fleet, true, app, 5)
                    .unwrap(),
                fleet_with_bgc: background_gc_working_set(SchemeKind::Fleet, false, app, 5)
                    .unwrap(),
            })
            .collect();
        for row in &rows {
            assert!(
                row.android as f64 >= 3.0 * row.fleet_with_bgc as f64,
                "{}: android {} vs bgc {}",
                row.app,
                row.android,
                row.fleet_with_bgc
            );
            // Without BGC, Fleet's background GC is a full GC again.
            assert!(
                row.fleet_without_bgc as f64 > 0.5 * row.android as f64,
                "{}: w/o bgc {} vs android {}",
                row.app,
                row.fleet_without_bgc,
                row.android
            );
        }
        let reduction = average_reduction(&rows);
        assert!(reduction >= 3.0, "average reduction {reduction} (paper: ≈7×)");
    }

    #[test]
    fn live_object_estimates_are_plausible() {
        // Twitter: ~6 MiB scaled heap of ~100 B objects → tens of thousands.
        let est = live_objects_estimate("Twitter");
        assert!((20_000..200_000).contains(&est), "{est}");
    }
}
