//! Figures 4 and 12b: object accesses over time across state changes.
//!
//! Figure 4 (Amazon shop, Android): foreground until 20 s, backgrounded,
//! a GC at ~37 s faults the whole heap back (the spike), hot-launch at 53 s
//! re-touches old foreground objects. Figure 12b (Twitch): the same
//! phenomenon over 600 s, Android vs Fleet — with BGC the background GC
//! spikes collapse.

use crate::config::DeviceConfig;
use crate::device::{Device, TraceSample, TraceSource};
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::SchemeKind;
use fleet_apps::profile_by_name;
use fleet_metrics::Table;
use serde::Serialize;

/// An access trace with phase markers.
#[derive(Debug, Clone, Serialize)]
pub struct AccessTraceResult {
    /// Scheme that produced the trace.
    pub scheme: String,
    /// Sampled accesses.
    pub samples: Vec<TraceSample>,
    /// `(seconds, label)` phase markers.
    pub markers: Vec<(f64, String)>,
}

fn run_phase_trace(
    scheme: SchemeKind,
    app: &str,
    fg_secs: u64,
    bg_gc_at: Option<u64>,
    relaunch_at: u64,
    tail_secs: u64,
    seed: u64,
) -> Result<AccessTraceResult, FleetError> {
    let mut config = DeviceConfig::pixel3(scheme);
    config.seed = seed;
    let mut device = Device::try_new(config)?;
    let mut markers = Vec::new();

    let profile = profile_by_name(app).unwrap_or_else(|| panic!("unknown app {app}"));
    let (pid, _) = device.launch_cold(&profile);
    device.enable_trace(pid, 100);
    let t0 = device.now().as_secs_f64();
    device.run(fg_secs);

    // Switch to another app: the target goes to the background.
    let helper = profile_by_name("Telegram").expect("catalog app");
    device.launch_cold(&helper);
    markers.push((device.now().as_secs_f64() - t0, "switch to background".to_string()));

    let bg_start = device.now().as_secs_f64() - t0;
    if let Some(gc_at) = bg_gc_at {
        let wait = (gc_at as f64 - bg_start).max(0.0) as u64;
        device.run(wait);
        markers.push((device.now().as_secs_f64() - t0, "background GC".to_string()));
        device.try_run_gc(pid)?;
    }
    let elapsed = device.now().as_secs_f64() - t0;
    device.run((relaunch_at as f64 - elapsed).max(0.0) as u64);

    markers.push((device.now().as_secs_f64() - t0, "hot-launch".to_string()));
    device.try_switch_to(pid)?;
    device.run(tail_secs);

    let trace = device.take_trace().expect("trace was enabled");
    // Markers are relative to the app's launch; shift samples to match.
    let samples = trace.samples().iter().map(|s| TraceSample { secs: s.secs - t0, ..*s }).collect();
    Ok(AccessTraceResult { scheme: scheme.to_string(), samples, markers })
}

/// Figure 4: Amazon shop on default Android. Foreground 0–20 s, background
/// with a GC at ~37 s, hot-launch at 53 s.
pub fn fig4(seed: u64) -> Result<AccessTraceResult, FleetError> {
    run_phase_trace(SchemeKind::Android, "AmazonShop", 20, Some(37), 53, 7, seed)
}

/// Figure 12b: Twitch over 600 s (background at ~180 s, foreground at
/// ~480 s) under both Android and Fleet. The background GC activity is the
/// signal: Fleet's BGC touches an order of magnitude fewer objects.
pub fn fig12b(seed: u64) -> Result<Vec<AccessTraceResult>, FleetError> {
    [SchemeKind::Android, SchemeKind::Fleet]
        .into_iter()
        .map(|scheme| run_phase_trace(scheme, "Twitch", 180, None, 480, 120, seed))
        .collect()
}

/// Counts GC-sourced samples inside a `[from, to)` window of seconds.
pub fn gc_samples_in_window(result: &AccessTraceResult, from: f64, to: f64) -> usize {
    result
        .samples
        .iter()
        .filter(|s| s.source == TraceSource::Gc && s.secs >= from && s.secs < to)
        .count()
}

/// Experiment `fig4`.
pub struct Fig4;

impl Experiment for Fig4 {
    fn id(&self) -> &'static str {
        "fig4"
    }
    fn title(&self) -> &'static str {
        "Figure 4 — accessed objects over time (Amazon shop, Android)"
    }
    fn description(&self) -> &'static str {
        "Object accesses sampled over time around a backgrounding event"
    }
    fn module(&self) -> &'static str {
        "access_trace"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let result = fig4(ctx.seed)?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.export("fig4", "GC spike ≈37 s, launch re-accesses ≈53 s", &result);
        out.text(format!("markers: {:?}", result.markers));
        let mut t = Table::new(["Window (s)", "Mutator samples", "GC samples", "Launch samples"]);
        let count = |from: f64, to: f64, src: crate::TraceSource| {
            result
                .samples
                .iter()
                .filter(|s| s.secs >= from && s.secs < to && s.source == src)
                .count()
        };
        for w in [(0.0, 20.0), (20.0, 35.0), (35.0, 40.0), (40.0, 52.0), (52.0, 62.0)] {
            t.row([
                format!("{:.0}–{:.0}", w.0, w.1),
                count(w.0, w.1, crate::TraceSource::Mutator).to_string(),
                count(w.0, w.1, crate::TraceSource::Gc).to_string(),
                count(w.0, w.1, crate::TraceSource::Launch).to_string(),
            ]);
        }
        out.table(t);
        out.text("paper shape: quiet background, GC access spike ≈37 s, launch re-accesses ≈53 s");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shows_the_gc_spike_and_relaunch() {
        let result = fig4(3).unwrap();
        assert_eq!(result.markers.len(), 3);
        // Mutator samples exist in the foreground phase.
        let fg_mutator = result
            .samples
            .iter()
            .filter(|s| s.source == TraceSource::Mutator && s.secs < 20.0)
            .count();
        assert!(fg_mutator > 0, "foreground mutator activity should be sampled");
        // The background GC produces a burst of accesses.
        let gc_at = result.markers.iter().find(|(_, l)| l == "background GC").unwrap().0;
        let spike = gc_samples_in_window(&result, gc_at - 1.0, gc_at + 3.0);
        assert!(spike > 50, "GC spike should touch a large share of the heap, got {spike}");
        // Launch accesses appear at the relaunch marker.
        let launch_at = result.markers.iter().find(|(_, l)| l == "hot-launch").unwrap().0;
        let launch = result
            .samples
            .iter()
            .filter(|s| s.source == TraceSource::Launch && (s.secs - launch_at).abs() < 2.0)
            .count();
        assert!(launch > 0, "hot-launch should re-touch old objects");
    }

    #[test]
    fn fig12b_fleet_background_gc_is_smaller() {
        let results = fig12b(5).unwrap();
        let android = &results[0];
        let fleet = &results[1];
        // Compare GC-sourced samples during the background window.
        let android_gc = gc_samples_in_window(android, 190.0, 480.0);
        let fleet_gc = gc_samples_in_window(fleet, 190.0, 480.0);
        assert!(
            fleet_gc * 3 < android_gc.max(1),
            "Fleet BGC should touch far fewer objects: fleet {fleet_gc} vs android {android_gc}"
        );
    }
}
