//! One experiment driver per table and figure of the paper's evaluation.
//!
//! Each submodule returns plain serde-serialisable records; the
//! `fleet-bench` crate's `repro` binary renders them as text tables next to
//! the paper's reported values. DESIGN.md §4 is the index mapping each
//! figure/table to its driver.

pub mod ablation;
pub mod access_trace;
pub mod caching;
pub mod export;
pub mod frames;
pub mod gc_working_set;
pub mod hot_launch;
pub mod launch_basics;
pub mod lifetimes;
pub mod object_sizes;
pub mod reaccess;
pub mod runtime;
pub mod scenario;
pub mod sensitivity;
pub mod tables;
