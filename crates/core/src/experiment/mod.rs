//! One experiment driver per table and figure of the paper's evaluation.
//!
//! Each submodule returns plain serde-serialisable records and registers
//! an [`harness::Experiment`] that renders them next to the paper's
//! reported values; the `fleet-bench` crate's `repro` binary is a thin CLI
//! over [`harness::REGISTRY`]. DESIGN.md §4 is the index mapping each
//! figure/table to its experiment id.

pub mod ablation;
pub mod access_trace;
pub mod attribution;
pub mod caching;
pub mod chaos;
pub mod export;
pub mod fleet_telemetry;
pub mod frames;
pub mod gc_working_set;
pub mod harness;
pub mod hot_launch;
pub mod launch_basics;
pub mod lifetimes;
pub mod object_sizes;
pub mod population;
pub mod proactive_reclaim;
pub mod reaccess;
pub mod resilience;
pub mod runtime;
pub mod scenario;
pub mod sensitivity;
pub mod swap_tiers;
pub mod tables;

pub use harness::{Experiment, ExperimentCtx, ExperimentOutput, RenderBlock, REGISTRY};
