//! Chaos: the swap data-integrity ladder under injected silent corruption.
//!
//! Not a figure from the paper — a robustness study of the repro itself
//! (DESIGN.md §14). Flash cells lie quietly: a store succeeds, the read
//! back returns garbage. The integrity layer's answer is a detection and
//! recovery ladder — checksummed slots, discard-and-refault for file
//! pages, SIGBUS for anon pages, slot quarantine for repeat offenders,
//! and runtime tier retirement when a tier's quarantine count saturates.
//! This sweep injects `silent_corruption` at increasing intensity over a
//! hybrid (zram + flash) stack and reports what each rung did, first on
//! single devices across schemes, then on a population cohort.
//!
//! Intensity 0 with the layer armed is the control: checksums compute and
//! verify on every store and fault, yet zero detections fire — the
//! zero-false-positive property the audit stream also proves.

use crate::config::DeviceConfig;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::AppPool;
use crate::params::SchemeKind;
use crate::population::{run_population, PopulationSpec, RangeU32};
use fleet_kernel::{FaultConfig, IntegrityConfig};
use fleet_metrics::{Summary, Table};
use serde::Serialize;

/// The sweep's integrity policy: checksums on, an aggressive quarantine
/// threshold so saturation (and thus tier retirement) is reachable within
/// one experiment run, and a fast scrubber.
pub fn chaos_integrity() -> IntegrityConfig {
    IntegrityConfig {
        quarantine_threshold: 4,
        scrub_interval_ticks: 2,
        ..IntegrityConfig::checked()
    }
}

/// The sweep's standard corruption-intensity ladder.
pub fn standard_intensities() -> Vec<f64> {
    vec![0.0, 0.02, 0.10, 0.25]
}

/// One (scheme, intensity) cell of the single-device chaos sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosRow {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// `silent_corruption` intensity (per-store corruption probability;
    /// torn writebacks at half that).
    pub intensity: f64,
    /// Hot launches that completed.
    pub launches: usize,
    /// Launches lost to a SIGBUS kill mid-launch.
    pub failed_launches: u64,
    /// Median hot-launch time, ms.
    pub median_hot_ms: f64,
    /// 99th-percentile hot-launch time, ms.
    pub p99_hot_ms: f64,
    /// Corrupt copies the fault plan injected at store time.
    pub corruptions_injected: u64,
    /// Corruptions the checksum layer caught.
    pub corruptions_detected: u64,
    /// Anonymous pages lost to SIGBUS recovery.
    pub pages_lost: u64,
    /// Processes SIGBUS-killed over the run.
    pub sigbus_kills: u64,
    /// LMK kills over the run.
    pub lmk_kills: u64,
    /// Swap slots permanently quarantined.
    pub slots_quarantined: u64,
    /// Tiers retired at runtime (zram front and/or flash back).
    pub tiers_retired: u64,
    /// Background scrubber passes completed.
    pub scrub_passes: u64,
    /// Slots the scrubber verified.
    pub scrub_pages_scanned: u64,
    /// True when quarantine saturation put the device in degraded mode
    /// (flash back tier retired — no further swap stores at all).
    pub degraded: bool,
}

/// One intensity cell of the population-cohort chaos arm.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosCohortRow {
    /// `silent_corruption` intensity applied cohort-wide.
    pub intensity: f64,
    /// Device-days simulated.
    pub devices: u64,
    /// Scripted launches across the cohort.
    pub launches: u64,
    /// Cohort hot-launch p50, ms.
    pub hot_p50_ms: f64,
    /// Cohort hot-launch p99, ms.
    pub hot_p99_ms: f64,
    /// LMK kills across the cohort.
    pub lmk_kills: u64,
    /// SIGBUS kills across the cohort.
    pub sigbus_kills: u64,
    /// All kill records across the cohort.
    pub kills: u64,
    /// Corruptions injected cohort-wide.
    pub corruptions_injected: u64,
    /// Corruptions detected cohort-wide.
    pub corruptions_detected: u64,
    /// Slots quarantined cohort-wide.
    pub slots_quarantined: u64,
    /// Tier retirements across the cohort.
    pub tiers_retired: u64,
    /// Order-free cohort hash (XOR of device-day fingerprints).
    pub cohort_hash: u64,
}

/// Everything the chaos experiment exports: both arms of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosExport {
    /// Single-device scheme × intensity sweep.
    pub device: Vec<ChaosRow>,
    /// Population-cohort intensity sweep.
    pub cohort: Vec<ChaosCohortRow>,
}

/// Runs the single-device arm: the §7.2 pressure protocol on a hybrid
/// stack with `silent_corruption(intensity)` armed, for each scheme with
/// swap enabled.
pub fn chaos_devices(
    seed: u64,
    intensities: &[f64],
    launches: usize,
) -> Result<Vec<ChaosRow>, FleetError> {
    let apps: Vec<String> = ["Twitter", "Facebook", "Youtube", "Chrome", "Spotify"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let schemes = [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet];
    let mut rows = Vec::new();
    for &scheme in &schemes {
        for &intensity in intensities {
            let config = DeviceConfig::builder(scheme)
                .seed(seed)
                .zram_front(512, 2.5)
                .fault(FaultConfig::silent_corruption(intensity))
                .integrity(chaos_integrity())
                .build()
                .expect("pixel3 variant with chaos knobs is valid");
            let mut pool = AppPool::with_config(config, &apps)?;
            let mut reports = Vec::new();
            let mut failed_launches = 0u64;
            let mut attempts = 0usize;
            // A SIGBUS mid-launch is data (a failed launch), not an error.
            while reports.len() < launches && attempts < 4 * launches {
                attempts += 1;
                let other = pool.next_other_app("Twitter");
                match pool.launch(&other) {
                    Ok(_) => {}
                    Err(FleetError::ProcessNotAlive(_)) => {
                        failed_launches += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
                pool.device_mut().run(30);
                match pool.launch("Twitter") {
                    Ok(report) if report.kind == crate::process::LaunchKind::Hot => {
                        reports.push(report);
                    }
                    Ok(_) => pool.device_mut().run(5), // cold re-warm, not counted
                    Err(FleetError::ProcessNotAlive(_)) => failed_launches += 1,
                    Err(e) => return Err(e),
                }
            }
            let device = pool.device();
            let stats = device.mm().stats();
            let summary = Summary::from_values(reports.iter().map(|r| r.total.as_millis_f64()));
            rows.push(ChaosRow {
                scheme,
                intensity,
                launches: reports.len(),
                failed_launches,
                median_hot_ms: summary.median(),
                p99_hot_ms: summary.percentile(99.0),
                corruptions_injected: stats.corruptions_injected,
                corruptions_detected: stats.corruptions_detected,
                pages_lost: stats.pages_lost,
                sigbus_kills: device.sigbus_kills(),
                lmk_kills: device.reclaim().total_kills(),
                slots_quarantined: stats.slots_quarantined,
                tiers_retired: stats.tiers_retired,
                scrub_passes: stats.scrub_passes,
                scrub_pages_scanned: stats.scrub_pages_scanned,
                degraded: device.mm().degraded(),
            });
        }
    }
    Ok(rows)
}

/// Runs the population arm: the default heterogeneous cohort (day script
/// shortened to keep the sweep tractable) with the chaos knobs applied
/// cohort-wide at each intensity.
pub fn chaos_cohorts(
    seed: u64,
    intensities: &[f64],
    devices: u32,
) -> Result<Vec<ChaosCohortRow>, FleetError> {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for &intensity in intensities {
        let mut spec = PopulationSpec::default_mix(seed, devices);
        for p in &mut spec.personas {
            p.cycles = RangeU32 { lo: 2, hi: 4 };
            p.usage_gap_secs = RangeU32 { lo: 10, hi: 20 };
        }
        spec.fault = FaultConfig::silent_corruption(intensity);
        spec.integrity = chaos_integrity();
        let run = run_population(&spec, threads)?;
        let agg = run.aggregate;
        rows.push(ChaosCohortRow {
            intensity,
            devices: agg.devices,
            launches: agg.launches,
            hot_p50_ms: agg.hot_launch_quantile_ms(0.50),
            hot_p99_ms: agg.hot_launch_quantile_ms(0.99),
            lmk_kills: agg.lmk_kills,
            sigbus_kills: agg.sigbus_kills,
            kills: agg.kills,
            corruptions_injected: agg.corruptions_injected,
            corruptions_detected: agg.corruptions_detected,
            slots_quarantined: agg.slots_quarantined,
            tiers_retired: agg.tiers_retired,
            cohort_hash: agg.cohort_hash,
        });
    }
    Ok(rows)
}

/// Experiment `chaos`.
pub struct Chaos;

impl Experiment for Chaos {
    fn id(&self) -> &'static str {
        "chaos"
    }
    fn title(&self) -> &'static str {
        "DESIGN.md §14 — data-integrity ladder under injected silent corruption"
    }
    fn description(&self) -> &'static str {
        "Detection, quarantine and tier retirement under silent corruption, device and cohort"
    }
    fn module(&self) -> &'static str {
        "chaos"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let launches = if ctx.quick { 4 } else { 10 };
        let cohort_devices = if ctx.quick { 6 } else { 16 };
        let intensities = standard_intensities();
        let device = chaos_devices(ctx.seed, &intensities, launches)?;
        let cohort = chaos_cohorts(ctx.seed, &intensities, cohort_devices)?;

        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new([
            "Scheme",
            "Intensity",
            "Hot launches",
            "Failed",
            "Median (ms)",
            "p99 (ms)",
            "Injected",
            "Detected",
            "Lost pages",
            "SIGBUS",
            "Quarantined",
            "Retired",
            "Degraded",
        ]);
        for r in &device {
            t.row([
                format!("{:?}", r.scheme),
                format!("{:.2}", r.intensity),
                r.launches.to_string(),
                r.failed_launches.to_string(),
                format!("{:.0}", r.median_hot_ms),
                format!("{:.0}", r.p99_hot_ms),
                r.corruptions_injected.to_string(),
                r.corruptions_detected.to_string(),
                r.pages_lost.to_string(),
                r.sigbus_kills.to_string(),
                r.slots_quarantined.to_string(),
                r.tiers_retired.to_string(),
                if r.degraded { "yes" } else { "no" }.to_string(),
            ]);
        }
        out.table(t);
        out.text(
            "intensity 0 with checksums armed detects nothing (zero false \
             positives); rising intensity climbs the ladder: SIGBUS recovery, \
             slot quarantine, then runtime tier retirement into degraded mode",
        );

        out.section("Population cohort under cohort-wide silent corruption");
        let mut t = Table::new([
            "Intensity",
            "Devices",
            "Launches",
            "Hot p50 (ms)",
            "Hot p99 (ms)",
            "LMK kills",
            "SIGBUS",
            "Detected",
            "Quarantined",
            "Retired",
        ]);
        for r in &cohort {
            t.row([
                format!("{:.2}", r.intensity),
                r.devices.to_string(),
                r.launches.to_string(),
                format!("{:.0}", r.hot_p50_ms),
                format!("{:.0}", r.hot_p99_ms),
                r.lmk_kills.to_string(),
                r.sigbus_kills.to_string(),
                r.corruptions_detected.to_string(),
                r.slots_quarantined.to_string(),
                r.tiers_retired.to_string(),
            ]);
        }
        out.table(t);
        out.export(
            "chaos",
            "n/a (robustness study, not a paper figure)",
            &ChaosExport { device, cohort },
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_intensity_detects_nothing() {
        let rows = chaos_devices(19, &[0.0], 3).unwrap();
        for r in &rows {
            assert_eq!(r.corruptions_injected, 0);
            assert_eq!(r.corruptions_detected, 0);
            assert_eq!(r.slots_quarantined, 0);
            assert_eq!(r.tiers_retired, 0);
            assert_eq!(r.sigbus_kills, 0);
            assert!(!r.degraded);
            assert!(r.scrub_passes > 0, "the scrubber runs even on a clean device");
        }
    }

    #[test]
    fn high_intensity_climbs_the_ladder() {
        let rows = chaos_devices(23, &[0.25], 4).unwrap();
        let detected: u64 = rows.iter().map(|r| r.corruptions_detected).sum();
        let quarantined: u64 = rows.iter().map(|r| r.slots_quarantined).sum();
        let retired: u64 = rows.iter().map(|r| r.tiers_retired).sum();
        assert!(detected > 0, "quarter-rate corruption must be caught");
        assert!(quarantined > 0, "detections at unmap must quarantine slots");
        assert!(retired > 0, "threshold 4 must retire at least one tier");
        for r in &rows {
            assert!(
                r.corruptions_detected <= r.corruptions_injected,
                "every detection maps to an injection"
            );
        }
    }

    #[test]
    fn cohort_arm_is_deterministic_and_detects_under_load() {
        let a = chaos_cohorts(29, &[0.0, 0.25], 3).unwrap();
        let b = chaos_cohorts(29, &[0.0, 0.25], 3).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a[0].corruptions_detected, 0, "quiet cohort stays clean");
        assert!(
            a[1].corruptions_detected <= a[1].corruptions_injected,
            "zero false positives cohort-wide"
        );
    }
}
