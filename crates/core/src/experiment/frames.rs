//! Figure 14: frame rendering quality — jank ratio and FPS (§7.3).
//!
//! Each app is driven for one minute of scripted swiping in the foreground
//! while other apps sit cached. The paper finds Fleet ≈ Android, with
//! Marvin ≈ 20% worse on both jank ratio and FPS (its stop-the-world stub
//! reconciliation lands in the middle of frames).

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::AppPool;
use crate::params::SchemeKind;
use fleet_apps::catalog;
use fleet_metrics::Table;
use serde::Serialize;

/// One app × scheme cell of Figure 14.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14Row {
    /// App name.
    pub app: String,
    /// Scheme name.
    pub scheme: String,
    /// Jank ratio in percent.
    pub jank_ratio_pct: f64,
    /// Frames per second.
    pub fps: f64,
}

/// Runs the frame-rendering experiment for `secs` seconds per app.
pub fn fig14(seed: u64, secs: u64, apps: Option<Vec<String>>) -> Result<Vec<Fig14Row>, FleetError> {
    let apps: Vec<String> = apps.unwrap_or_else(|| catalog().into_iter().map(|a| a.name).collect());
    let mut rows = Vec::new();
    for scheme in [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet] {
        // A modest cached population creates realistic (not crushing)
        // pressure for the foreground app.
        let companions: Vec<String> =
            ["Telegram", "Spotify", "LinkedIn", "Line"].iter().map(|s| s.to_string()).collect();
        for app in &apps {
            let mut pool_apps = companions.clone();
            pool_apps.retain(|a| a != app);
            pool_apps.push(app.clone());
            let mut pool = AppPool::under_pressure(scheme, &pool_apps, seed ^ app.len() as u64)?;
            // Let the background machinery settle (Fleet groups, Marvin
            // bookmarks and swaps) before the measured interaction starts.
            pool.device_mut().run(40);
            let (pid, _) = pool.ensure(app)?;
            if pool.device().foreground() != Some(pid) {
                pool.device_mut().try_switch_to(pid)?;
            }
            let report = pool.device_mut().run_frames(pid, secs);
            rows.push(Fig14Row {
                app: app.clone(),
                scheme: scheme.to_string(),
                jank_ratio_pct: report.jank_ratio_percent,
                fps: report.fps,
            });
        }
    }
    Ok(rows)
}

/// Mean jank/fps per scheme across apps: `(scheme, jank%, fps)`.
pub fn scheme_means(rows: &[Fig14Row]) -> Vec<(String, f64, f64)> {
    let mut out = Vec::new();
    for scheme in ["Android", "Marvin", "Fleet"] {
        let cells: Vec<&Fig14Row> = rows.iter().filter(|r| r.scheme == scheme).collect();
        if cells.is_empty() {
            continue;
        }
        let n = cells.len() as f64;
        let jank = cells.iter().map(|r| r.jank_ratio_pct).sum::<f64>() / n;
        let fps = cells.iter().map(|r| r.fps).sum::<f64>() / n;
        out.push((scheme.to_string(), jank, fps));
    }
    out
}

/// Experiment `fig14`.
pub struct Fig14;

impl Experiment for Fig14 {
    fn id(&self) -> &'static str {
        "fig14"
    }
    fn title(&self) -> &'static str {
        "Figure 14 — frame rendering: jank ratio and FPS"
    }
    fn description(&self) -> &'static str {
        "Jank ratio and FPS while swiping the foreground app under pressure"
    }
    fn module(&self) -> &'static str {
        "frames"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let secs = if ctx.quick { 20 } else { 60 };
        let apps = if ctx.quick {
            Some(vec![
                "Twitter".to_string(),
                "Tiktok".to_string(),
                "Chrome".to_string(),
                "CandyCrush".to_string(),
            ])
        } else {
            None
        };
        let rows = fig14(ctx.seed, secs, apps)?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new(["Scheme", "Mean jank %", "Mean FPS", "Paper"]);
        for (scheme, jank, fps) in scheme_means(&rows) {
            let paper = match scheme.as_str() {
                "Fleet" => "≈ Android; 19.9%/20.3% better than Marvin",
                "Marvin" => "worst jank and FPS",
                _ => "baseline",
            };
            t.row([scheme, format!("{jank:.1}"), format!("{fps:.1}"), paper.to_string()]);
        }
        out.table(t);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_matches_android_marvin_lags() {
        let apps = Some(vec!["Twitter".to_string(), "Tiktok".to_string(), "Chrome".to_string()]);
        let rows = fig14(4, 20, apps).unwrap();
        assert_eq!(rows.len(), 9);
        let means = scheme_means(&rows);
        let get = |name: &str| means.iter().find(|(s, _, _)| s == name).unwrap().clone();
        let (_, android_jank, android_fps) = get("Android");
        let (_, marvin_jank, marvin_fps) = get("Marvin");
        let (_, fleet_jank, fleet_fps) = get("Fleet");
        // Fleet ≈ Android.
        assert!(
            (fleet_fps - android_fps).abs() / android_fps < 0.15,
            "fps {fleet_fps} vs {android_fps}"
        );
        assert!((fleet_jank - android_jank).abs() < 6.0, "jank {fleet_jank} vs {android_jank}");
        // Marvin is worse on at least one axis (paper: ~20% on both).
        assert!(
            marvin_jank > fleet_jank || marvin_fps < 0.95 * fleet_fps,
            "marvin jank {marvin_jank} fps {marvin_fps} vs fleet jank {fleet_jank} fps {fleet_fps}"
        );
        // Everyone renders at a plausible rate.
        for row in &rows {
            assert!(
                row.fps > 20.0 && row.fps < 62.0,
                "{}/{}: fps {}",
                row.scheme,
                row.app,
                row.fps
            );
        }
    }
}
