//! Figure 5: fore/background object lifetimes and footprints (§4.1).
//!
//! Protocol (Twitter): use the app in the foreground, switch it to the
//! background, then run an explicit GC every 15 seconds. An object's
//! lifetime is the number of GC cycles it survived; the paper finds most
//! BGO die within the first few cycles while > 40% of FGO outlive all 15.

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::SchemeKind;
use fleet_apps::catalog;
use fleet_heap::{AllocContext, ObjectId};
use fleet_metrics::{Histogram, Table};
use serde::Serialize;
use std::collections::HashMap;

/// Result of the lifetime study plus the per-app footprint split.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Figure 5a: FGO lifetime histogram (bucket = GC cycles survived;
    /// overflow = still alive after all cycles).
    pub fgo_lifetime: Histogram,
    /// Figure 5b: BGO lifetime histogram.
    pub bgo_lifetime: Histogram,
    /// Figure 5c: per-app `(name, fgo_mb, bgo_mb)` at real scale.
    pub footprints: Vec<FootprintRow>,
}

/// One bar pair of Figure 5c.
#[derive(Debug, Clone, Serialize)]
pub struct FootprintRow {
    /// App name.
    pub app: String,
    /// Live FGO megabytes (real scale).
    pub fgo_mb: f64,
    /// Live BGO megabytes (real scale).
    pub bgo_mb: f64,
}

/// Runs the Figure 5 study: `cycles` explicit GCs 15 s apart on a
/// backgrounded Twitter (5a/5b), plus the FGO/BGO footprint of every app
/// (5c).
pub fn fig5(seed: u64, cycles: u32) -> Result<Fig5Result, FleetError> {
    let mut config = DeviceConfig::pixel3(SchemeKind::Android);
    config.seed = seed;
    // Explicit GCs only: push the periodic trim cycle out of the way.
    config.bg_gc_interval = fleet_sim::SimDuration::from_secs(100_000);
    let mut device = Device::try_new(config)?;

    let twitter = catalog().into_iter().find(|a| a.name == "Twitter").expect("catalog app");
    let (pid, _) = device.launch_cold(&twitter);
    device.run(30); // foreground usage
    let helper = catalog().into_iter().find(|a| a.name == "Telegram").expect("catalog app");
    device.launch_cold(&helper); // Twitter → background

    // Birth cycle per object: FGO (alive at the switch) are cycle 0; BGO
    // are stamped with the first cycle that observes them.
    let mut birth: HashMap<ObjectId, (AllocContext, u32)> = HashMap::new();
    let mut fgo_lifetime = Histogram::new(cycles.saturating_sub(1));
    let mut bgo_lifetime = Histogram::new(cycles.saturating_sub(1));
    let snapshot = |device: &Device| -> Result<HashMap<ObjectId, AllocContext>, FleetError> {
        let proc = device.try_process(pid)?;
        Ok(proc.heap.object_ids().map(|o| (o, proc.heap.object(o).context())).collect())
    };
    for (obj, ctx) in snapshot(&device)? {
        birth.insert(obj, (ctx, 0));
    }

    for cycle in 0..cycles {
        device.run(15);
        // New allocations since the last snapshot are born this cycle.
        let live = snapshot(&device)?;
        for (&obj, &ctx) in &live {
            birth.entry(obj).or_insert((ctx, cycle));
        }
        device.try_run_gc(pid)?;
        let survivors = snapshot(&device)?;
        // Deaths this cycle: lifetime = cycles survived since birth.
        birth.retain(|obj, &mut (ctx, born)| {
            if survivors.contains_key(obj) {
                true
            } else {
                let lifetime = cycle.saturating_sub(born);
                match ctx {
                    AllocContext::Foreground => fgo_lifetime.record(lifetime),
                    AllocContext::Background => bgo_lifetime.record(lifetime),
                }
                false
            }
        });
    }
    // Still alive after all cycles → overflow bucket.
    for (_, &(ctx, _)) in birth.iter() {
        match ctx {
            AllocContext::Foreground => fgo_lifetime.record(cycles),
            AllocContext::Background => bgo_lifetime.record(cycles),
        }
    }

    // Figure 5c: footprints for every app after a short background stay.
    let mut footprints = Vec::new();
    for profile in catalog() {
        let mut config = DeviceConfig::pixel3(SchemeKind::Android);
        config.seed = seed ^ 0x5c ^ profile.footprint_mib as u64;
        let mut dev = Device::try_new(config)?;
        let (p, _) = dev.launch_cold(&profile);
        dev.run(20);
        let helper = catalog().into_iter().find(|a| a.name != profile.name).expect("catalog");
        dev.launch_cold(&helper);
        dev.run(20); // accumulate some BGO
        let stats = dev.try_process(p)?.heap.stats();
        let scale = dev.config().scale as f64;
        footprints.push(FootprintRow {
            app: profile.name,
            fgo_mb: stats.fgo_bytes as f64 * scale / (1024.0 * 1024.0),
            bgo_mb: stats.bgo_bytes as f64 * scale / (1024.0 * 1024.0),
        });
    }

    Ok(Fig5Result { fgo_lifetime, bgo_lifetime, footprints })
}

/// Experiment `fig5`.
pub struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }
    fn title(&self) -> &'static str {
        "Figure 5 — FGO/BGO lifetimes and footprints"
    }
    fn description(&self) -> &'static str {
        "Lifetimes and heap footprints of foreground- vs background-allocated objects"
    }
    fn module(&self) -> &'static str {
        "lifetimes"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let result = fig5(ctx.seed, 15)?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.text(format!(
            "5a FGO alive after 15 GCs: {:.0}%   (paper: > 40%)",
            result.fgo_lifetime.overflow_percent()
        ));
        out.text(format!(
            "5b BGO alive after 15 GCs: {:.0}%   (paper: most BGO die within the first few GCs)",
            result.bgo_lifetime.overflow_percent()
        ));
        let bgo_early: u64 = (0..3).map(|c| result.bgo_lifetime.count(c)).sum();
        out.text(format!(
            "5b BGO dying within 3 GCs: {:.0}%",
            100.0 * bgo_early as f64 / result.bgo_lifetime.total().max(1) as f64
        ));
        let mut t = Table::new(["App", "FGO (MB)", "BGO (MB)", "Paper: FGO occupy the majority"]);
        for row in &result.footprints {
            t.row([
                row.app.clone(),
                format!("{:.1}", row.fgo_mb),
                format!("{:.2}", row.bgo_mb),
                String::new(),
            ]);
        }
        out.table(t);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bgo_die_young_fgo_live_long() {
        let result = fig5(11, 8).unwrap();
        let fgo = &result.fgo_lifetime;
        let bgo = &result.bgo_lifetime;
        assert!(fgo.total() > 0 && bgo.total() > 0);
        // §4.1: most BGO are reclaimed within the first several GCs…
        let bgo_early = (0..2).map(|c| bgo.count(c)).sum::<u64>() as f64 / bgo.total() as f64;
        assert!(bgo_early > 0.5, "early-dying BGO share {bgo_early}");
        // …while a large share of FGO survives every cycle.
        assert!(
            fgo.overflow_percent() > 40.0,
            "FGO surviving all cycles: {}%",
            fgo.overflow_percent()
        );
        // And BGO survivors are rare in comparison.
        assert!(fgo.overflow_percent() > 2.0 * bgo.overflow_percent());
    }

    #[test]
    fn fgo_dominate_footprints() {
        let result = fig5(13, 2).unwrap();
        assert_eq!(result.footprints.len(), 18);
        for row in &result.footprints {
            assert!(
                row.fgo_mb > 5.0 * row.bgo_mb.max(0.01),
                "{}: fgo {} vs bgo {}",
                row.app,
                row.fgo_mb,
                row.bgo_mb
            );
            assert!(row.fgo_mb > 1.0, "{} fgo {} MB", row.app, row.fgo_mb);
        }
    }
}
