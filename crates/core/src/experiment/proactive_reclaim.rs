//! Proactive reclaim + OOMK co-design: responsiveness vs kill rate.
//!
//! Not a paper figure — the SWAM-style extension (PAPERS.md): per-process
//! working-set tracking, proactive swap-out of idle background apps ahead
//! of pressure, and WSS-weighted oom scoring, all behind the
//! [`ReclaimPolicy`] API. This sweep runs the §7.2 pressure protocol at
//! three memory-pressure levels (DRAM shrunk below the Pixel 3 baseline)
//! over the three runtimes, once under the legacy `Reactive` stack and
//! once under the `Swam` co-design, and reports the tradeoff curve the
//! co-design claims: fewer LMK kills per device-day at equal-or-better
//! hot-launch tails, because idle apps shrink to their warm core *before*
//! the watermark forces a kill.

use crate::config::DeviceConfig;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::{fig13_apps, AppPool};
use crate::params::SchemeKind;
use crate::process::LaunchKind;
use fleet_kernel::{KillPolicy, ReclaimPolicy};
use fleet_metrics::{Summary, Table};
use serde::Serialize;

/// Seconds in a simulated device-day (kill counts normalise to this).
const DAY_SECS: f64 = 86_400.0;

/// One memory-pressure level of the sweep: the Pixel 3 with its DRAM
/// shrunk, so the same §7.2 working set squeezes the page cache harder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PressureLevel {
    /// Stable label used in tables and exports.
    pub name: &'static str,
    /// Device DRAM in MiB (the §6 baseline is 4096).
    pub dram_mib: u32,
}

/// The sweep's pressure levels, mildest first.
pub fn pressure_levels() -> [PressureLevel; 3] {
    [
        PressureLevel { name: "baseline", dram_mib: 4096 },
        PressureLevel { name: "tight", dram_mib: 3840 },
        PressureLevel { name: "squeezed", dram_mib: 3584 },
    ]
}

/// One policy × scheme × pressure cell of the tradeoff sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ReclaimCell {
    /// Reclaim policy label (`reactive` / `swam`).
    pub policy: String,
    /// Runtime scheme.
    pub scheme: String,
    /// Pressure-level label.
    pub pressure: String,
    /// Hot launches measured.
    pub hot_launches: usize,
    /// Hot-launch p50, ms.
    pub hot_p50_ms: f64,
    /// Hot-launch p99, ms.
    pub hot_p99_ms: f64,
    /// Cold relaunches forced by kills during the script.
    pub cold_relaunches: u64,
    /// LMK kills over the scripted run.
    pub kills: u64,
    /// Kills normalised to one simulated device-day.
    pub kills_per_device_day: f64,
    /// Pages the proactive daemon swapped out ahead of pressure (zero
    /// under `reactive`).
    pub proactive_swapout_pages: u64,
    /// Simulated seconds the script covered.
    pub sim_secs: u64,
}

/// The two arms of the A/B: the legacy reactive stack and the Swam
/// co-design (proactive reclaim + WSS-weighted oom scoring).
pub fn policy_arms() -> [(&'static str, ReclaimPolicy, KillPolicy); 2] {
    [
        ("reactive", ReclaimPolicy::Reactive, KillPolicy::ColdestFirst),
        ("swam", ReclaimPolicy::swam(), KillPolicy::WssWeighted),
    ]
}

/// Runs one cell: the fig13 pool under the §7.2 rotation protocol,
/// `cycles` passes over three probe apps, under the given policy arm.
///
/// # Errors
///
/// Propagates pool construction and launch failures ([`FleetError`]).
fn run_cell(
    seed: u64,
    scheme: SchemeKind,
    level: PressureLevel,
    label: &str,
    reclaim: ReclaimPolicy,
    kill: KillPolicy,
    cycles: usize,
) -> Result<ReclaimCell, FleetError> {
    let config = DeviceConfig::builder(scheme)
        .dram_mib(level.dram_mib)
        .reclaim_policy(reclaim)
        .kill_policy(kill)
        .seed(seed)
        .build()?;
    let mut pool = AppPool::with_config(config, &fig13_apps())?;
    let probes = ["Twitter", "Youtube", "Chrome"];
    let mut hot_ms = Vec::new();
    let mut cold = 0u64;
    for _ in 0..cycles {
        for probe in probes {
            let other = pool.next_other_app(probe);
            pool.launch(&other)?;
            pool.device_mut().run(30);
            let report = pool.launch(probe)?;
            match report.kind {
                LaunchKind::Hot => hot_ms.push(report.total.as_millis_f64()),
                LaunchKind::Cold => cold += 1,
            }
            pool.device_mut().run(30);
        }
    }
    let dev = pool.device();
    let kills = dev.reclaim().total_kills();
    let sim_secs = dev.now().as_nanos() / 1_000_000_000;
    let summary = Summary::from_values(hot_ms.iter().copied());
    Ok(ReclaimCell {
        policy: label.to_string(),
        scheme: scheme.to_string(),
        pressure: level.name.to_string(),
        hot_launches: hot_ms.len(),
        hot_p50_ms: summary.median(),
        hot_p99_ms: summary.p99(),
        cold_relaunches: cold,
        kills,
        kills_per_device_day: kills as f64 * DAY_SECS / (sim_secs.max(1) as f64),
        proactive_swapout_pages: dev.reclaim().proactive_pages(),
        sim_secs,
    })
}

/// Runs the full sweep: both policy arms × `schemes` × every pressure
/// level.
///
/// # Errors
///
/// Propagates pool construction and launch failures ([`FleetError`]).
pub fn measure_reclaim(
    seed: u64,
    schemes: &[SchemeKind],
    cycles: usize,
) -> Result<Vec<ReclaimCell>, FleetError> {
    let mut rows = Vec::new();
    for &scheme in schemes {
        for level in pressure_levels() {
            for (label, reclaim, kill) in policy_arms() {
                rows.push(run_cell(seed, scheme, level, label, reclaim, kill, cycles)?);
            }
        }
    }
    Ok(rows)
}

/// Experiment `proactive_reclaim`.
pub struct ProactiveReclaim;

impl Experiment for ProactiveReclaim {
    fn id(&self) -> &'static str {
        "proactive_reclaim"
    }
    fn title(&self) -> &'static str {
        "Extension — proactive reclaim + OOMK co-design (Reactive vs Swam)"
    }
    fn description(&self) -> &'static str {
        "Responsiveness-vs-kill-rate tradeoff curves per reclaim policy, scheme and pressure"
    }
    fn module(&self) -> &'static str {
        "proactive_reclaim"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["swam", "reclaim"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let cycles = if ctx.quick { 2 } else { 6 };
        let schemes = [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet];
        let rows = measure_reclaim(ctx.seed, &schemes, cycles)?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new([
            "Scheme",
            "Pressure",
            "Policy",
            "Hot p50 (ms)",
            "Hot p99 (ms)",
            "Kills/day",
            "Cold relaunches",
            "Proactive pages",
        ]);
        for r in &rows {
            t.row([
                r.scheme.clone(),
                r.pressure.clone(),
                r.policy.clone(),
                format!("{:.0}", r.hot_p50_ms),
                format!("{:.0}", r.hot_p99_ms),
                format!("{:.2}", r.kills_per_device_day),
                r.cold_relaunches.to_string(),
                r.proactive_swapout_pages.to_string(),
            ]);
        }
        out.table(t);
        out.text(
            "swam = working-set tracking + proactive swap-out of idle background apps \
             (dynamic swap target) + WSS-weighted oom scoring; reactive = the legacy \
             watermark-driven stack, bit-identical to the pre-ReclaimPolicy event streams",
        );
        out.text(
            "expectation: under pressure, swam drains idle apps' cold pages ahead of the \
             watermark, so fewer launches find the device below the kill threshold",
        );
        out.export(
            "proactive_reclaim",
            "n/a (extension; expectation: swam kills strictly fewer at equal-or-better p99 \
             on at least one pressure level)",
            &rows,
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm_totals(rows: &[ReclaimCell], policy: &str) -> (u64, u64) {
        let kills = rows.iter().filter(|r| r.policy == policy).map(|r| r.kills).sum();
        let proactive =
            rows.iter().filter(|r| r.policy == policy).map(|r| r.proactive_swapout_pages).sum();
        (kills, proactive)
    }

    /// The acceptance criterion of the co-design, pinned as a test: on at
    /// least one pressure level the Swam arm strictly reduces kills at an
    /// equal-or-better hot-launch p99.
    #[test]
    fn swam_reduces_kills_at_equal_or_better_p99_somewhere() {
        let rows = measure_reclaim(11, &[SchemeKind::Android], 2).unwrap();
        let wins = pressure_levels().iter().any(|level| {
            let cell = |policy: &str| {
                rows.iter()
                    .find(|r| r.policy == policy && r.pressure == level.name)
                    .expect("cell present")
            };
            let (reactive, swam) = (cell("reactive"), cell("swam"));
            swam.kills < reactive.kills && swam.hot_p99_ms <= reactive.hot_p99_ms
        });
        assert!(
            wins,
            "swam must strictly reduce kills at equal-or-better p99 on >= 1 pressure level: \
             {rows:#?}"
        );
    }

    #[test]
    fn reactive_arm_never_reclaims_proactively_and_swam_does() {
        let rows = measure_reclaim(7, &[SchemeKind::Fleet], 1).unwrap();
        let (_, reactive_pages) = arm_totals(&rows, "reactive");
        let (_, swam_pages) = arm_totals(&rows, "swam");
        assert_eq!(reactive_pages, 0, "reactive must never touch the proactive daemon");
        assert!(swam_pages > 0, "swam must proactively swap out under the fig13 pool");
    }
}
