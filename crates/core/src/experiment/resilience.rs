//! Robustness: hot-launch behaviour under injected swap faults.
//!
//! Not a figure from the paper — a degradation study of the repro itself
//! (DESIGN.md §9). The §7.2 pressure protocol runs against a swap device
//! with the `flaky_flash` fault mix at increasing intensity; the sweep
//! reports how the hot-launch tail stretches and what the graceful-
//! degradation machinery did about it: bounded retries, discard-and-
//! refault, LMK escalation, and SIGBUS kills for unrecoverable anon-page
//! losses. Intensity 0 is the quiet plan and must match the fault-free
//! baseline bit for bit.

use crate::config::DeviceConfig;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::AppPool;
use crate::params::SchemeKind;
use fleet_kernel::FaultConfig;
use fleet_metrics::{Summary, Table};
use serde::Serialize;

/// One fault-intensity cell of the resilience sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ResilienceRow {
    /// `flaky_flash` intensity (transient read-error probability).
    pub intensity: f64,
    /// Hot launches that completed.
    pub launches: usize,
    /// Launches that failed because the app was SIGBUS-killed mid-launch.
    pub failed_launches: u64,
    /// Median hot-launch time, ms.
    pub median_hot_ms: f64,
    /// 99th-percentile hot-launch time, ms.
    pub p99_hot_ms: f64,
    /// Transient-fault retries the kernel performed.
    pub fault_retries: u64,
    /// Swap reads that failed after all retries.
    pub swap_read_errors: u64,
    /// Swap writes that failed (page kept resident).
    pub swap_write_errors: u64,
    /// Anonymous pages lost to permanent errors.
    pub pages_lost: u64,
    /// Processes SIGBUS-killed over the run.
    pub sigbus_kills: u64,
    /// Kills executed by the lmkd driver (incl. escalation rounds).
    pub lmk_kills: u64,
    /// Collections that aborted evacuation on a copy-budget denial and
    /// degraded to an in-place sweep.
    pub evac_aborts: u64,
    /// GC touches skipped because memory was exhausted mid-trace.
    pub oom_touch_skips: u64,
    /// Mappings abandoned with nothing left to kill.
    pub map_failures: u64,
    /// The swap stack's schema-stable per-tier counters (flash-only here,
    /// so `front` is `None`; the I/O-error counts complement the kernel's
    /// retry/loss counters above).
    pub swap: fleet_kernel::SwapStats,
}

/// Runs the §7.2 pressure protocol under each fault intensity and collects
/// launch-tail and degradation counters.
pub fn resilience(
    seed: u64,
    intensities: &[f64],
    launches: usize,
) -> Result<Vec<ResilienceRow>, FleetError> {
    let mut rows = Vec::new();
    let apps: Vec<String> = ["Twitter", "Facebook", "Youtube", "Chrome", "Spotify"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    for &intensity in intensities {
        let config = DeviceConfig::builder(SchemeKind::Fleet)
            .seed(seed)
            .fault(FaultConfig::flaky_flash(intensity))
            .build()
            .expect("pixel3 variant with faults is valid");
        let mut pool = AppPool::with_config(config, &apps)?;
        let mut reports = Vec::new();
        let mut failed_launches = 0u64;
        let mut attempts = 0usize;
        // Like `measure_hot_launches`, but a SIGBUS mid-launch is data (a
        // failed launch), not an error that aborts the sweep.
        while reports.len() < launches && attempts < 4 * launches {
            attempts += 1;
            let other = pool.next_other_app("Twitter");
            match pool.launch(&other) {
                Ok(_) => {}
                Err(FleetError::ProcessNotAlive(_)) => {
                    failed_launches += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
            pool.device_mut().run(30);
            match pool.launch("Twitter") {
                Ok(report) if report.kind == crate::process::LaunchKind::Hot => {
                    reports.push(report);
                }
                Ok(_) => pool.device_mut().run(5), // cold re-warm, not counted
                Err(FleetError::ProcessNotAlive(_)) => failed_launches += 1,
                Err(e) => return Err(e),
            }
        }
        let device = pool.device();
        let summary = Summary::from_values(reports.iter().map(|r| r.total.as_millis_f64()));
        let stats = device.mm().stats();
        rows.push(ResilienceRow {
            intensity,
            launches: reports.len(),
            failed_launches,
            median_hot_ms: summary.median(),
            p99_hot_ms: summary.percentile(99.0),
            fault_retries: stats.fault_retries,
            swap_read_errors: stats.swap_read_errors,
            swap_write_errors: stats.swap_write_errors,
            pages_lost: stats.pages_lost,
            sigbus_kills: device.sigbus_kills(),
            lmk_kills: device.reclaim().total_kills(),
            evac_aborts: device.evac_aborts(),
            oom_touch_skips: device.oom_touch_skips(),
            map_failures: device.map_failures(),
            swap: device.mm().swap_stats(),
        });
    }
    Ok(rows)
}

/// The sweep's standard intensity ladder.
pub fn standard_intensities() -> Vec<f64> {
    vec![0.0, 0.02, 0.05, 0.10]
}

/// Experiment `resilience`.
pub struct Resilience;

impl Experiment for Resilience {
    fn id(&self) -> &'static str {
        "resilience"
    }
    fn title(&self) -> &'static str {
        "DESIGN.md §9 — hot-launch degradation under injected swap faults"
    }
    fn description(&self) -> &'static str {
        "Launch tails and graceful-degradation counters under injected swap faults"
    }
    fn module(&self) -> &'static str {
        "resilience"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let launches = if ctx.quick { 4 } else { 10 };
        let rows = resilience(ctx.seed, &standard_intensities(), launches)?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new([
            "Intensity",
            "Hot launches",
            "Failed",
            "Median (ms)",
            "p99 (ms)",
            "Retries",
            "Read errs",
            "Lost pages",
            "SIGBUS",
            "LMK kills",
            "Evac aborts",
            "OOM skips",
        ]);
        for r in &rows {
            t.row([
                format!("{:.2}", r.intensity),
                r.launches.to_string(),
                r.failed_launches.to_string(),
                format!("{:.0}", r.median_hot_ms),
                format!("{:.0}", r.p99_hot_ms),
                r.fault_retries.to_string(),
                r.swap_read_errors.to_string(),
                r.pages_lost.to_string(),
                r.sigbus_kills.to_string(),
                r.lmk_kills.to_string(),
                r.evac_aborts.to_string(),
                r.oom_touch_skips.to_string(),
            ]);
        }
        out.table(t);
        out.text(
            "intensity 0 is the quiet plan (bit-identical to a fault-free run); \
             transients are absorbed by bounded retries, permanents degrade to \
             refaults or SIGBUS kills — never a panic",
        );
        out.export("resilience", "n/a (robustness study, not a paper figure)", &rows);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_intensity_matches_fault_free_baseline() {
        // Intensity 0 must take the exact code paths of a config without a
        // fault plan: same launches, same kernel stats.
        let a = resilience(11, &[0.0], 3).unwrap();
        let apps: Vec<String> = ["Twitter", "Facebook", "Youtube", "Chrome", "Spotify"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let config = DeviceConfig::builder(SchemeKind::Fleet).seed(11).build().expect("valid");
        let mut pool = AppPool::with_config(config, &apps).unwrap();
        let baseline = pool.measure_hot_launches("Twitter", 3).unwrap();
        assert_eq!(a[0].launches, baseline.len());
        let medians = Summary::from_values(baseline.iter().map(|r| r.total.as_millis_f64()));
        assert_eq!(a[0].median_hot_ms, medians.median(), "quiet plan diverged from baseline");
        assert_eq!(a[0].fault_retries, 0);
        assert_eq!(a[0].pages_lost, 0);
        assert_eq!(a[0].sigbus_kills, 0);
        assert_eq!(a[0].failed_launches, 0);
        assert_eq!(a[0].evac_aborts, 0, "quiet plans always grant copy budget");
    }

    #[test]
    fn armed_intensities_degrade_without_panicking() {
        let rows = resilience(13, &[0.05], 3).unwrap();
        let row = &rows[0];
        // The run survived; the machinery reported *some* fault activity.
        assert!(row.fault_retries + row.swap_read_errors + row.swap_write_errors > 0);
        // Whatever completed is a plausible launch time.
        if row.launches > 0 {
            assert!(row.median_hot_ms > 0.0);
        }
    }

    #[test]
    fn resilience_sweep_is_deterministic() {
        let a = resilience(17, &[0.05], 2).unwrap();
        let b = resilience(17, &[0.05], 2).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
