//! §7.3 runtime-cost experiments: CPU usage, memory overhead, power.
//!
//! Paper findings: Fleet costs +0.18% total CPU vs Android (mostly in the
//! GC thread, +0.16%) and −3.21% vs Marvin; the card table adds a fixed
//! 4 MiB per 4 GiB of heap; power draw is statistically indistinguishable
//! from Android (1851 ± 143 mW vs 1817 ± 197 mW).

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::AppPool;
use crate::params::SchemeKind;
use fleet_heap::CardTable;
use fleet_metrics::{CpuAccounting, PowerModel, Table, ThreadClass};
use fleet_sim::SimDuration;
use serde::Serialize;

/// CPU-time totals for one scheme over the fg/bg cycling workload.
#[derive(Debug, Clone, Serialize)]
pub struct CpuRow {
    /// Scheme name.
    pub scheme: String,
    /// Total CPU seconds consumed (mutator + GC + kernel).
    pub total_cpu_s: f64,
    /// GC thread share of the total, percent.
    pub gc_share_pct: f64,
    /// Kernel (reclaim/swap) share of the total, percent.
    pub kernel_share_pct: f64,
}

fn cycling_workload(
    scheme: SchemeKind,
    seed: u64,
    cycles: usize,
) -> Result<(CpuAccounting, u64, u64, SimDuration), FleetError> {
    let apps: Vec<String> = ["Twitter", "Youtube", "AmazonShop", "Chrome", "Spotify"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut pool = AppPool::under_pressure(scheme, &apps, seed)?;
    let start = pool.device().now();
    let swap_before = pool.device().mm().swap().total_bytes_moved();
    // "launch an app, use it for 30 seconds, switch it to the background
    // for 30 seconds, and repeat" — rotated over the pool.
    for i in 0..cycles {
        let app = apps[i % apps.len()].clone();
        pool.launch(&app)?;
        pool.device_mut().run(30);
        let next = apps[(i + 1) % apps.len()].clone();
        pool.launch(&next)?;
        pool.device_mut().run(30);
    }
    let mut cpu = CpuAccounting::new();
    for proc in pool.device().processes() {
        cpu.merge(&proc.cpu);
    }
    cpu.charge(
        ThreadClass::Kernel,
        SimDuration::from_nanos(pool.device().mm().stats().kswapd_cpu_nanos),
    );
    let swap_bytes = pool.device().mm().swap().total_bytes_moved() - swap_before;
    let resident_bytes = pool.device().mm().used_frames() * fleet_heap::PAGE_SIZE;
    let window = pool.device().now() - start;
    Ok((cpu, swap_bytes, resident_bytes, window))
}

/// Runs the CPU-usage comparison.
pub fn cpu_usage(seed: u64, cycles: usize) -> Result<Vec<CpuRow>, FleetError> {
    [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet]
        .into_iter()
        .map(|scheme| {
            let (cpu, _, _, _) = cycling_workload(scheme, seed, cycles)?;
            Ok(CpuRow {
                scheme: scheme.to_string(),
                total_cpu_s: cpu.total().as_secs_f64(),
                gc_share_pct: cpu.share_percent(ThreadClass::Gc),
                kernel_share_pct: cpu.share_percent(ThreadClass::Kernel),
            })
        })
        .collect()
}

/// Power report for one scheme.
#[derive(Debug, Clone, Serialize)]
pub struct PowerRow {
    /// Scheme name.
    pub scheme: String,
    /// Average draw in mW.
    pub average_mw: f64,
    /// CPU component, mW.
    pub cpu_mw: f64,
    /// Swap-I/O component, mW.
    pub swap_mw: f64,
}

/// Runs the power comparison (1 min foreground + 1 min background cycles).
pub fn power(seed: u64, cycles: usize) -> Result<Vec<PowerRow>, FleetError> {
    [SchemeKind::Android, SchemeKind::Fleet]
        .into_iter()
        .map(|scheme| {
            let (cpu, swap_bytes, resident, window) = cycling_workload(scheme, seed, cycles)?;
            // Scale activity back to real magnitude: the simulation runs at
            // 1/16 of the device's memory traffic.
            let scale = 16;
            let report =
                PowerModel::default().report(window, &cpu, swap_bytes * scale, resident * scale);
            Ok(PowerRow {
                scheme: scheme.to_string(),
                average_mw: report.average_mw,
                cpu_mw: report.cpu_mw,
                swap_mw: report.swap_mw,
            })
        })
        .collect()
}

/// The §7.3 memory-overhead accounting for the card table.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct OverheadReport {
    /// Card-table bytes for a 4 GiB heap at CARD_SHIFT = 10.
    pub card_table_bytes_per_4gib: u64,
    /// Card bytes per heap byte (1 / 1024).
    pub bytes_per_heap_byte: f64,
}

/// Computes the card-table overhead from the implementation itself.
pub fn memory_overhead() -> OverheadReport {
    let mut cards = CardTable::new(10);
    let four_gib: u64 = 4 * 1024 * 1024 * 1024;
    cards.dirty(four_gib - 1);
    OverheadReport {
        card_table_bytes_per_4gib: cards.footprint_bytes() as u64,
        bytes_per_heap_byte: 1.0 / cards.card_size() as f64,
    }
}

/// Experiment `cpu`.
pub struct CpuUsage;

impl Experiment for CpuUsage {
    fn id(&self) -> &'static str {
        "cpu"
    }
    fn title(&self) -> &'static str {
        "§7.3 — CPU usage"
    }
    fn description(&self) -> &'static str {
        "GC and kernel CPU seconds consumed per scheme over the protocol"
    }
    fn module(&self) -> &'static str {
        "runtime"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let rows = cpu_usage(ctx.seed, if ctx.quick { 2 } else { 4 })?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new(["Scheme", "Total CPU (s)", "GC share %", "Kernel share %"]);
        for r in &rows {
            t.row([
                r.scheme.clone(),
                format!("{:.2}", r.total_cpu_s),
                format!("{:.2}", r.gc_share_pct),
                format!("{:.2}", r.kernel_share_pct),
            ]);
        }
        out.table(t);
        let get = |name: &str| {
            rows.iter().find(|r| r.scheme == name).map(|r| r.total_cpu_s).unwrap_or(0.0)
        };
        out.text(format!(
            "Fleet vs Android: {:+.2}%   (paper: +0.18%);  Fleet vs Marvin: {:+.2}%   (paper: −3.21%)",
            100.0 * (get("Fleet") - get("Android")) / get("Android"),
            100.0 * (get("Fleet") - get("Marvin")) / get("Marvin"),
        ));
        Ok(out)
    }
}

/// Experiment `power`.
pub struct Power;

impl Experiment for Power {
    fn id(&self) -> &'static str {
        "power"
    }
    fn title(&self) -> &'static str {
        "§7.3 — power consumption"
    }
    fn description(&self) -> &'static str {
        "Energy proxy derived from CPU time and swap I/O per scheme"
    }
    fn module(&self) -> &'static str {
        "runtime"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let rows = power(ctx.seed, if ctx.quick { 1 } else { 2 })?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new(["Scheme", "Average (mW)", "CPU (mW)", "Swap (mW)", "Paper"]);
        for r in &rows {
            let paper = if r.scheme == "Fleet" { "1851 ± 143 mW" } else { "1817 ± 197 mW" };
            t.row([
                r.scheme.clone(),
                format!("{:.0}", r.average_mw),
                format!("{:.0}", r.cpu_mw),
                format!("{:.0}", r.swap_mw),
                paper.to_string(),
            ]);
        }
        out.table(t);
        out.text("paper: equal within the standard error");
        Ok(out)
    }
}

/// Experiment `overhead`.
pub struct MemoryOverhead;

impl Experiment for MemoryOverhead {
    fn id(&self) -> &'static str {
        "overhead"
    }
    fn title(&self) -> &'static str {
        "§7.3 — memory overhead (card table)"
    }
    fn description(&self) -> &'static str {
        "Card-table and scheme metadata overhead relative to heap size"
    }
    fn module(&self) -> &'static str {
        "runtime"
    }
    fn run(&self, _ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let report = memory_overhead();
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.text(format!(
            "card table for a 4 GiB heap: {} MiB   (paper: 4 MB, fixed, ∝ heap size)",
            report.card_table_bytes_per_4gib / (1024 * 1024)
        ));
        out.text(format!("bytes of card table per heap byte: {:.6}", report.bytes_per_heap_byte));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_cpu_is_close_to_android_marvin_higher() {
        let rows = cpu_usage(17, 2).unwrap();
        let get = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap();
        let android = get("Android");
        let fleet = get("Fleet");
        let marvin = get("Marvin");
        // Fleet in the same ballpark as Android (paper: +0.18%; the
        // simulator's launch-stall accounting is coarser, so allow 2x).
        let ratio = fleet.total_cpu_s / android.total_cpu_s;
        assert!((0.5..2.0).contains(&ratio), "Fleet vs Android CPU ratio {ratio}");
        // All schemes do comparable total work on the same workload.
        let marvin_ratio = marvin.total_cpu_s / fleet.total_cpu_s;
        assert!((0.3..3.0).contains(&marvin_ratio), "marvin/fleet ratio {marvin_ratio}");
        for row in &rows {
            assert!(row.total_cpu_s > 0.0);
            assert!(row.gc_share_pct >= 0.0 && row.gc_share_pct <= 100.0);
        }
    }

    #[test]
    fn power_is_comparable_between_fleet_and_android() {
        let rows = power(19, 2).unwrap();
        let get = |name: &str| rows.iter().find(|r| r.scheme == name).unwrap();
        let android = get("Android");
        let fleet = get("Fleet");
        // Paper: 1851 ± 143 vs 1817 ± 197 mW — same within noise. Require
        // the same ballpark (±25%) and a sane absolute range. (Our simulated
        // workload never idles, so absolutes run higher than the paper's.)
        let delta = (fleet.average_mw - android.average_mw).abs() / android.average_mw;
        assert!(delta < 0.25, "power delta {delta}");
        for row in &rows {
            assert!(
                (1500.0..4500.0).contains(&row.average_mw),
                "{}: {} mW",
                row.scheme,
                row.average_mw
            );
        }
    }

    #[test]
    fn card_table_overhead_matches_paper() {
        let report = memory_overhead();
        assert_eq!(report.card_table_bytes_per_4gib, 4 * 1024 * 1024);
        assert!((report.bytes_per_heap_byte - 1.0 / 1024.0).abs() < 1e-12);
    }
}
