//! Shared experiment scaffolding: app pools under memory pressure.
//!
//! §7.2 measures hot launches "under memory pressure with about 10
//! background apps", launching targets repeatedly with 30 seconds of other
//! app usage in between. [`AppPool`] packages that protocol.

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::SchemeKind;
use crate::process::{LaunchKind, LaunchReport};
use fleet_apps::{catalog, AppProfile};
use fleet_kernel::Pid;
use fleet_metrics::{Summary, Table};
use std::collections::BTreeMap;

/// The 12 representative apps plotted in Figure 13 (a–l).
pub fn fig13_apps() -> Vec<String> {
    [
        "Twitter",
        "Facebook",
        "Instagram",
        "Line",
        "Youtube",
        "Spotify",
        "Twitch",
        "AmazonShop",
        "GoogleMaps",
        "Chrome",
        "Firefox",
        "AngryBirds",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// The remaining 6 apps plotted in Figure 16.
pub fn fig16_apps() -> Vec<String> {
    ["Telegram", "Tiktok", "Rave", "BigoLive", "LinkedIn", "CandyCrush"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// A device populated with a working set of commercial apps, addressable by
/// name, with kill-and-relaunch handling.
pub struct AppPool {
    device: Device,
    profiles: BTreeMap<String, AppProfile>,
    pids: BTreeMap<String, Pid>,
    rotation: Vec<String>,
    next_rotation: usize,
    usage_gap_secs: u64,
}

impl AppPool {
    /// Builds a pool running `scheme` and cold-launches `apps` (named from
    /// the Table 3 catalog), using each briefly, producing the paper's
    /// "~10 background apps" pressure state.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownApp`] if an app name is not in the catalog;
    /// [`FleetError::InvalidConfig`] if the derived config is invalid.
    pub fn under_pressure(
        scheme: SchemeKind,
        apps: &[String],
        seed: u64,
    ) -> Result<Self, FleetError> {
        let mut config = DeviceConfig::pixel3(scheme);
        config.seed = seed;
        Self::with_config(config, apps)
    }

    /// Like [`AppPool::under_pressure`] with an explicit device config.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownApp`] if an app name is not in the catalog;
    /// [`FleetError::InvalidConfig`] if `config` is invalid.
    pub fn with_config(config: DeviceConfig, apps: &[String]) -> Result<Self, FleetError> {
        let all: BTreeMap<String, AppProfile> =
            catalog().into_iter().map(|a| (a.name.clone(), a)).collect();
        let mut pool = AppPool {
            device: Device::try_new(config)?,
            profiles: BTreeMap::new(),
            pids: BTreeMap::new(),
            rotation: apps.to_vec(),
            next_rotation: 0,
            usage_gap_secs: 30,
        };
        for name in apps {
            let profile =
                all.get(name).ok_or_else(|| FleetError::UnknownApp(name.clone()))?.clone();
            pool.profiles.insert(name.clone(), profile);
        }
        for name in apps {
            pool.ensure(name)?;
            pool.device.run(5);
        }
        Ok(pool)
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// The pid of `name`, cold-launching (or re-launching after an LMK
    /// kill) if needed. Returns the pid and whether a cold launch happened.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownApp`] if `name` was not in the pool's app list.
    pub fn ensure(&mut self, name: &str) -> Result<(Pid, bool), FleetError> {
        if let Some(&pid) = self.pids.get(name) {
            if self.device.try_process(pid).is_ok() {
                return Ok((pid, false));
            }
        }
        let profile = self
            .profiles
            .get(name)
            .ok_or_else(|| FleetError::UnknownApp(name.to_string()))?
            .clone();
        let (pid, _) = self.device.launch_cold(&profile);
        self.pids.insert(name.to_string(), pid);
        Ok((pid, true))
    }

    /// Brings `name` to the foreground. Returns the launch report; hot if
    /// the app was cached, cold if it had to be recreated.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownApp`] if `name` was not in the pool's app list.
    pub fn launch(&mut self, name: &str) -> Result<LaunchReport, FleetError> {
        let (pid, was_cold) = self.ensure(name)?;
        if was_cold {
            let proc = self.device.try_process(pid)?;
            return Ok(*proc.launches.last().expect("cold launch recorded"));
        }
        self.device.try_switch_to(pid)
    }

    /// Overrides the between-launches usage gap (default 30 s, the §7.2
    /// protocol). Longer gaps age the target deeper into the cache.
    pub fn set_usage_gap(&mut self, secs: u64) {
        self.usage_gap_secs = secs;
    }

    /// Measures `n` *hot* launches of `name`, interleaving the usage gap
    /// (default 30 s) of a rotating other app between launches (the §7.2
    /// protocol). Cold relaunches after LMK kills re-warm the app but are
    /// not counted. Gives up after `3 * n` attempts.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownApp`] if `name` was not in the pool's app list.
    pub fn measure_hot_launches(
        &mut self,
        name: &str,
        n: usize,
    ) -> Result<Vec<LaunchReport>, FleetError> {
        let mut reports = Vec::new();
        let mut attempts = 0;
        while reports.len() < n && attempts < 3 * n {
            attempts += 1;
            let other = self.next_other(name);
            self.launch(&other)?;
            self.device.run(self.usage_gap_secs);
            let report = self.launch(name)?;
            if report.kind == LaunchKind::Hot {
                reports.push(report);
            } else {
                // Killed meanwhile: it is warm again now; give it a moment.
                self.device.run(5);
            }
        }
        Ok(reports)
    }

    /// The next app from the usage rotation that is not `not` (advances
    /// the rotation); used by drivers that interleave launches by hand.
    pub fn next_other_app(&mut self, not: &str) -> String {
        self.next_other(not)
    }

    fn next_other(&mut self, not: &str) -> String {
        for _ in 0..self.rotation.len() {
            let candidate = self.rotation[self.next_rotation % self.rotation.len()].clone();
            self.next_rotation += 1;
            if candidate != not {
                return candidate;
            }
        }
        not.to_string()
    }
}

/// Experiment `scenario`: a compact health check of the §7.2 pressure
/// protocol itself — per scheme, how much pressure the pool builds (cached
/// apps, LMK kills) and what a probe app's hot launch costs under it.
pub struct Scenario;

impl Experiment for Scenario {
    fn id(&self) -> &'static str {
        "scenario"
    }
    fn title(&self) -> &'static str {
        "§7.2 protocol — app pool under memory pressure"
    }
    fn description(&self) -> &'static str {
        "End-to-end pressure-protocol walkthrough with per-phase device stats"
    }
    fn module(&self) -> &'static str {
        "scenario"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let launches = if ctx.quick { 3 } else { 6 };
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t =
            Table::new(["Scheme", "Cached apps", "LMK kills", "Twitter hot p50 (ms)", "Hot hits"]);
        for scheme in [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet] {
            let mut pool = AppPool::under_pressure(scheme, &fig13_apps(), ctx.seed)?;
            let reports = pool.measure_hot_launches("Twitter", launches)?;
            let median =
                Summary::from_values(reports.iter().map(|r| r.total.as_millis_f64())).median();
            t.row([
                scheme.to_string(),
                pool.device().cached_apps().to_string(),
                pool.device().kills().len().to_string(),
                format!("{median:.0}"),
                format!("{}/{launches}", reports.len()),
            ]);
        }
        out.table(t);
        out.text("paper protocol: ~10 background apps, 30 s of other-app usage between launches");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_lists_partition_the_catalog() {
        let mut all: Vec<String> = fig13_apps();
        all.extend(fig16_apps());
        all.sort();
        let mut names: Vec<String> = catalog().into_iter().map(|a| a.name).collect();
        names.sort();
        assert_eq!(all, names);
    }

    #[test]
    fn pool_builds_pressure_and_measures_hot_launches() {
        let apps: Vec<String> =
            ["Twitter", "Telegram", "Spotify", "LinkedIn"].iter().map(|s| s.to_string()).collect();
        let mut pool = AppPool::under_pressure(SchemeKind::Fleet, &apps, 7).unwrap();
        assert!(pool.device().cached_apps() >= 3);
        let reports = pool.measure_hot_launches("Twitter", 3).unwrap();
        assert_eq!(reports.len(), 3);
        for r in reports {
            assert_eq!(r.kind, LaunchKind::Hot);
            assert!(r.total.as_millis_f64() > 100.0);
        }
    }
}
