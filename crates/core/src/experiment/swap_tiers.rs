//! Tiered compressed swap: flash-only vs zram-only vs hybrid.
//!
//! Not a paper figure — an extension study of the swap backend itself.
//! Vendors back swap with zram (compressed DRAM) rather than the paper's
//! flash partition, and Ariadne-style hybrids put a zram front tier with
//! writeback ahead of flash. This sweep runs the §7.2 pressure protocol
//! over the three backends × the three runtimes and reports hot-launch
//! medians plus the tier stack's own counters (zram faults, writeback and
//! incompressible fall-through traffic, DRAM pinned by compressed slots).
//!
//! Expected ordering on the fig2 app set: zram-only faults at near-DRAM
//! speed but pins DRAM (more pressure, more kills), flash-only pays the
//! ~452× device gap on every refault, and the hybrid sits strictly between
//! — warm refaults decompress from zram, cold slots age out to flash. The
//! differential test below pins exactly that ordering.

use crate::config::DeviceConfig;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::{fig13_apps, AppPool};
use crate::params::SchemeKind;
use fleet_kernel::SwapStats;
use fleet_metrics::{Summary, Table};
use serde::Serialize;

/// Compression ratio assumed for anonymous app pages (LZ4-class).
pub const ZRAM_RATIO: f64 = 2.5;

/// Uncompressed capacity of the hybrid's zram front tier, MiB (~25% of the
/// 2 GiB swap partition, the shipping zram-writeback proportion).
pub const HYBRID_FRONT_MIB: u32 = 512;

/// One swap-backend variant of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TierVariant {
    /// The paper's flash partition, nothing else.
    FlashOnly,
    /// The whole swap space on compressed DRAM.
    ZramOnly,
    /// A zram front tier with writeback, ahead of the flash partition.
    Hybrid,
}

impl TierVariant {
    /// All variants, sweep order.
    pub fn all() -> [TierVariant; 3] {
        [TierVariant::FlashOnly, TierVariant::ZramOnly, TierVariant::Hybrid]
    }

    /// Stable label used in tables and exports.
    pub fn label(self) -> &'static str {
        match self {
            TierVariant::FlashOnly => "flash-only",
            TierVariant::ZramOnly => "zram-only",
            TierVariant::Hybrid => "hybrid",
        }
    }

    /// The device configuration this variant runs.
    ///
    /// # Errors
    ///
    /// [`FleetError::InvalidConfig`] — unreachable for the constants here,
    /// but the builder validates on principle.
    pub fn device(self, scheme: SchemeKind, seed: u64) -> Result<DeviceConfig, FleetError> {
        let builder = DeviceConfig::builder(scheme).seed(seed);
        match self {
            TierVariant::FlashOnly => builder.build(),
            TierVariant::ZramOnly => builder.zram(ZRAM_RATIO).build(),
            TierVariant::Hybrid => builder.zram_front(HYBRID_FRONT_MIB, ZRAM_RATIO).build(),
        }
    }
}

/// One scheme × backend cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct TierRow {
    /// Runtime scheme.
    pub scheme: String,
    /// Swap backend label.
    pub tier: String,
    /// Hot launches measured.
    pub launches: usize,
    /// Median hot-launch latency, ms.
    pub median_ms: f64,
    /// 90th-percentile hot-launch latency, ms.
    pub p90_ms: f64,
    /// Mean per-launch decompression stall, ms (zero on flash-only).
    pub decompress_ms: f64,
    /// Faults served from the zram tier over the whole run.
    pub faults_zram: u64,
    /// Pages the writeback daemon demoted from zram to flash.
    pub writeback_pages: u64,
    /// Warm victims that probed incompressible and fell through to flash.
    pub fallthrough_pages: u64,
    /// The stack's schema-stable per-tier counters at the end of the run.
    pub swap: SwapStats,
}

/// The launch targets: the fig2 headline apps (a heavy social app, a media
/// app, a browser), measured under the full fig13 pressure pool.
pub fn tier_apps() -> Vec<String> {
    ["Twitter", "Youtube", "Chrome"].iter().map(|s| s.to_string()).collect()
}

/// Runs the sweep: every backend variant × every scheme in `schemes`,
/// `launches` hot launches of each target app.
///
/// # Errors
///
/// Propagates pool construction and launch failures ([`FleetError`]).
pub fn measure_tiers(
    seed: u64,
    schemes: &[SchemeKind],
    launches: usize,
) -> Result<Vec<TierRow>, FleetError> {
    let mut rows = Vec::new();
    for &scheme in schemes {
        for variant in TierVariant::all() {
            let config = variant.device(scheme, seed)?;
            let mut pool = AppPool::with_config(config, &fig13_apps())?;
            let mut samples = Vec::new();
            let mut decompress = Vec::new();
            for app in tier_apps() {
                for report in pool.measure_hot_launches(&app, launches)? {
                    samples.push(report.total.as_millis_f64());
                    decompress.push(report.decompress.as_millis_f64());
                }
            }
            let stats = pool.device().mm().stats();
            let summary = Summary::from_values(samples.iter().copied());
            rows.push(TierRow {
                scheme: scheme.to_string(),
                tier: variant.label().to_string(),
                launches: samples.len(),
                median_ms: summary.median(),
                p90_ms: summary.p90(),
                decompress_ms: Summary::from_values(decompress).mean(),
                faults_zram: stats.faults_zram,
                writeback_pages: stats.zram_writeback_pages,
                fallthrough_pages: stats.zram_fallthrough_pages,
                swap: pool.device().mm().swap_stats(),
            });
        }
    }
    Ok(rows)
}

/// Experiment `swap_tiers`.
pub struct SwapTiers;

impl Experiment for SwapTiers {
    fn id(&self) -> &'static str {
        "swap_tiers"
    }
    fn title(&self) -> &'static str {
        "Extension — tiered compressed swap (flash / zram / hybrid)"
    }
    fn description(&self) -> &'static str {
        "Hot-launch latency and tier traffic across swap backends per scheme"
    }
    fn module(&self) -> &'static str {
        "swap_tiers"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let launches = if ctx.quick { 3 } else { 8 };
        let schemes = [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet];
        let rows = measure_tiers(ctx.seed, &schemes, launches)?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new([
            "Scheme",
            "Backend",
            "Hot p50 (ms)",
            "Hot p90 (ms)",
            "Decompress (ms)",
            "Zram faults",
            "Writeback",
            "Fall-through",
        ]);
        for r in &rows {
            t.row([
                r.scheme.clone(),
                r.tier.clone(),
                format!("{:.0}", r.median_ms),
                format!("{:.0}", r.p90_ms),
                format!("{:.1}", r.decompress_ms),
                r.faults_zram.to_string(),
                r.writeback_pages.to_string(),
                r.fallthrough_pages.to_string(),
            ]);
        }
        out.table(t);
        out.text(
            "hybrid = 512 MiB zram front (2.5x) with writeback ahead of the 2 GiB flash \
             partition; warm victims land in zram, cold and incompressible ones in flash",
        );
        out.text(
            "under `repro --trace` the zram share of a launch shows up as a `decompress` \
             span nested in `fault_in`",
        );
        out.export(
            "swap_tiers",
            "n/a (extension; expectation: zram-only < hybrid < flash-only medians)",
            &rows,
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medians_for(scheme: SchemeKind) -> (f64, f64, f64) {
        let rows = measure_tiers(11, &[scheme], 3).unwrap();
        let median = |variant: TierVariant| {
            let row = rows.iter().find(|r| r.tier == variant.label()).unwrap();
            assert!(row.launches > 0, "{} produced no hot launches", row.tier);
            row.median_ms
        };
        (median(TierVariant::FlashOnly), median(TierVariant::ZramOnly), median(TierVariant::Hybrid))
    }

    #[test]
    fn hybrid_median_sits_strictly_between_zram_and_flash() {
        let (flash, zram, hybrid) = medians_for(SchemeKind::Android);
        assert!(
            hybrid < flash,
            "hybrid median {hybrid} must beat flash-only {flash} (warm refaults decompress)"
        );
        assert!(
            zram < hybrid,
            "zram-only median {zram} must beat hybrid {hybrid} (every fault is near-DRAM)"
        );
    }

    #[test]
    fn hybrid_actually_uses_both_tiers() {
        let rows = measure_tiers(11, &[SchemeKind::Android], 3).unwrap();
        let hybrid = rows.iter().find(|r| r.tier == "hybrid").unwrap();
        assert!(hybrid.faults_zram > 0, "no fault was ever served from zram");
        assert!(hybrid.decompress_ms > 0.0, "zram faults must attribute decompression time");
        let front = hybrid.swap.front.expect("hybrid stack exports a front tier");
        assert!(front.pages_written > 0, "nothing was ever stored in the front tier");
        assert!(hybrid.swap.back.pages_written > 0, "the flash tier fell out of use");
        // Flash-only rows carry no front tier and no decompression.
        let flash = rows.iter().find(|r| r.tier == "flash-only").unwrap();
        assert!(flash.swap.front.is_none());
        assert_eq!(flash.decompress_ms, 0.0);
        assert_eq!(flash.faults_zram, 0);
    }
}
