//! Figure 11: app-caching capacity (§7.1).
//!
//! 11a/11b: "continuously launch one additional app and count the number of
//! remaining active apps after each launch" with the Marvin-artifact
//! synthetic apps (2048 B and 512 B objects, 180 MB footprint). The paper
//! finds Fleet ≈ Marvin ≈ 1.3× Android for large objects, but Fleet ≈ 2×
//! Marvin for small objects (Marvin cannot swap sub-threshold objects).
//!
//! 11c: the same protocol with the 18 commercial apps in round-robin, two
//! cycles, comparing Android without swap, Android with swap, and Fleet.

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::SchemeKind;
use fleet_apps::{catalog, synthetic_app};
use fleet_metrics::Table;
use serde::Serialize;

/// One scheme's capacity curve: cached apps after each launch.
#[derive(Debug, Clone, Serialize)]
pub struct CapacityCurve {
    /// Scheme name.
    pub scheme: String,
    /// Number of live apps after the i-th launch.
    pub cached_after_launch: Vec<usize>,
    /// Maximum simultaneously cached apps.
    pub max_cached: usize,
    /// Launch index (1-based) at which the first LMK kill happened, if any.
    pub first_kill_at: Option<usize>,
}

fn synthetic_capacity(
    scheme: SchemeKind,
    object_size: u32,
    max_apps: usize,
    use_secs: u64,
    seed: u64,
) -> Result<CapacityCurve, FleetError> {
    let config = DeviceConfig::builder(scheme).seed(seed).build().expect("pixel3 variant is valid");
    let mut device = Device::try_new(config)?;
    let app = synthetic_app(object_size, 180);
    let mut cached = Vec::new();
    let mut first_kill_at = None;
    for i in 0..max_apps {
        device.launch_cold(&app);
        device.run(use_secs);
        cached.push(device.cached_apps());
        if first_kill_at.is_none() && !device.kills().is_empty() {
            first_kill_at = Some(i + 1);
        }
    }
    Ok(CapacityCurve {
        scheme: scheme.to_string(),
        max_cached: cached.iter().copied().max().unwrap_or(0),
        cached_after_launch: cached,
        first_kill_at,
    })
}

/// Figure 11a: large-object (2048 B) synthetic apps.
pub fn fig11a(seed: u64, max_apps: usize, use_secs: u64) -> Result<Vec<CapacityCurve>, FleetError> {
    [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet]
        .into_iter()
        .map(|s| synthetic_capacity(s, 2048, max_apps, use_secs, seed))
        .collect()
}

/// Figure 11b: small-object (512 B) synthetic apps.
pub fn fig11b(seed: u64, max_apps: usize, use_secs: u64) -> Result<Vec<CapacityCurve>, FleetError> {
    [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet]
        .into_iter()
        .map(|s| synthetic_capacity(s, 512, max_apps, use_secs, seed))
        .collect()
}

/// One scheme's commercial-app capacity series (Figure 11c).
#[derive(Debug, Clone, Serialize)]
pub struct CommercialCapacity {
    /// Scheme name ("Android w/o swap" / "Android" / "Fleet").
    pub scheme: String,
    /// `(app_name, live_apps_after_using_it)` over the round-robin.
    pub series: Vec<(String, usize)>,
    /// Maximum simultaneously cached apps.
    pub max_cached: usize,
}

/// Figure 11c: two round-robin cycles over the commercial catalog,
/// 30 seconds of use per app.
pub fn fig11c(
    seed: u64,
    cycles: usize,
    use_secs: u64,
) -> Result<Vec<CommercialCapacity>, FleetError> {
    [SchemeKind::AndroidNoSwap, SchemeKind::Android, SchemeKind::Fleet]
        .into_iter()
        .map(|scheme| {
            let config =
                DeviceConfig::builder(scheme).seed(seed).build().expect("pixel3 variant is valid");
            let mut device = Device::try_new(config)?;
            let apps = catalog();
            let mut pids = std::collections::BTreeMap::new();
            let mut series = Vec::new();
            for _ in 0..cycles {
                for app in &apps {
                    let alive =
                        pids.get(&app.name).copied().filter(|p| device.try_process(*p).is_ok());
                    match alive {
                        Some(pid) => {
                            device.try_switch_to(pid)?;
                        }
                        None => {
                            let (pid, _) = device.launch_cold(app);
                            pids.insert(app.name.clone(), pid);
                        }
                    }
                    device.run(use_secs);
                    series.push((app.name.clone(), device.cached_apps()));
                }
            }
            Ok(CommercialCapacity {
                scheme: scheme.to_string(),
                max_cached: series.iter().map(|&(_, n)| n).max().unwrap_or(0),
                series,
            })
        })
        .collect()
}

/// Renders capacity curves as the text table Figure 11 prints.
pub fn capacity_table(curves: &[CapacityCurve]) -> Table {
    let mut t = Table::new([
        "Scheme",
        "Max cached",
        "First kill at launch #",
        "Curve (cached after each launch)",
    ]);
    for c in curves {
        let curve: Vec<String> = c.cached_after_launch.iter().map(|n| n.to_string()).collect();
        t.row([
            c.scheme.clone(),
            c.max_cached.to_string(),
            c.first_kill_at.map(|n| n.to_string()).unwrap_or_else(|| "-".to_string()),
            curve.join(","),
        ]);
    }
    t
}

/// Experiment `fig11`: the three capacity protocols (11a/11b/11c).
pub struct Fig11;

impl Experiment for Fig11 {
    fn id(&self) -> &'static str {
        "fig11"
    }
    fn title(&self) -> &'static str {
        "Figure 11 — app-caching capacity"
    }
    fn description(&self) -> &'static str {
        "How many apps each scheme keeps cached before the LMK steps in"
    }
    fn module(&self) -> &'static str {
        "caching"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig11a", "fig11b", "fig11c"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let (max_apps, use_secs) = if ctx.quick { (20, 6) } else { (28, 30) };
        let mut out = ExperimentOutput::new();

        out.section("Figure 11a — caching capacity, large-object (2048 B) synthetic apps");
        let curves = fig11a(ctx.seed, max_apps, use_secs)?;
        out.export("fig11a", "Android ≈14, Marvin ≈18, Fleet ≈18", &curves);
        out.table(capacity_table(&curves));
        out.text("paper: Android max ≈14 (kills from 11), Marvin ≈18, Fleet ≈18");

        out.section("Figure 11b — caching capacity, small-object (512 B) synthetic apps");
        let curves = fig11b(ctx.seed, max_apps, use_secs)?;
        out.export("fig11b", "Marvin ≈9, Fleet ≈18 (2x)", &curves);
        out.table(capacity_table(&curves));
        out.text("paper: Marvin collapses to ≈9; Fleet stays ≈18 (2x)");

        out.section("Figure 11c — caching capacity, commercial apps (round-robin)");
        let results =
            fig11c(ctx.seed, if ctx.quick { 1 } else { 2 }, if ctx.quick { 8 } else { 30 })?;
        let mut t = Table::new(["Scheme", "Max cached", "Paper"]);
        for r in &results {
            t.row([
                r.scheme.clone(),
                r.max_cached.to_string(),
                "Fleet 17 ≈ 1.21x Android-with-swap".to_string(),
            ]);
        }
        out.table(t);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_and_marvin_beat_android_on_large_objects() {
        let curves = fig11a(3, 24, 8).unwrap();
        let max = |name: &str| curves.iter().find(|c| c.scheme == name).unwrap().max_cached;
        let android = max("Android");
        let marvin = max("Marvin");
        let fleet = max("Fleet");
        assert!(fleet > android, "Fleet {fleet} vs Android {android}");
        assert!(marvin > android, "Marvin {marvin} vs Android {android}");
        // Fleet ≈ Marvin for large objects (both ~1.3× Android in the paper).
        let ratio = fleet as f64 / marvin as f64;
        assert!((0.75..=1.4).contains(&ratio), "Fleet/Marvin ratio {ratio}");
    }

    #[test]
    fn marvin_collapses_on_small_objects() {
        let curves = fig11b(3, 24, 8).unwrap();
        let max = |name: &str| curves.iter().find(|c| c.scheme == name).unwrap().max_cached;
        let marvin = max("Marvin");
        let fleet = max("Fleet");
        assert!(
            fleet as f64 >= 1.5 * marvin as f64,
            "Fleet {fleet} should cache ≈2× Marvin {marvin} for small objects"
        );
    }

    #[test]
    fn fleet_object_size_insensitive() {
        let large = fig11a(3, 24, 8).unwrap();
        let small = fig11b(3, 24, 8).unwrap();
        let fleet_large = large.iter().find(|c| c.scheme == "Fleet").unwrap().max_cached;
        let fleet_small = small.iter().find(|c| c.scheme == "Fleet").unwrap().max_cached;
        let diff = (fleet_large as i64 - fleet_small as i64).abs();
        assert!(diff <= 3, "Fleet large {fleet_large} vs small {fleet_small}");
    }

    #[test]
    fn commercial_capacity_ordering() {
        let results = fig11c(9, 1, 6).unwrap();
        let max = |name: &str| results.iter().find(|c| c.scheme == name).unwrap().max_cached;
        let no_swap = max("Android w/o swap");
        let android = max("Android");
        let fleet = max("Fleet");
        assert!(fleet >= android, "Fleet {fleet} vs Android {android}");
        assert!(android >= no_swap, "swap should help: {android} vs {no_swap}");
        assert!(fleet > no_swap, "Fleet {fleet} vs no-swap {no_swap}");
    }
}
