//! Figures 3, 13, 15 and 16: hot-launch performance under memory pressure
//! (§7.2 and Appendix A).
//!
//! Protocol: populate the device with commercial apps (~10 cached), then
//! for each target app alternate "use another app for 30 s" with a measured
//! hot launch, 20 times. The paper's findings: Fleet's median is 1.59× over
//! Android and 2.62× over Marvin; the 90th-percentile tail is 2.56× /
//! 4.45×; the speedup correlates with the app's Java-heap share (13n).

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::{fig13_apps, fig16_apps, AppPool};
use crate::params::SchemeKind;
use fleet_apps::profile_by_name;
use fleet_metrics::{correlation, Cdf, Summary, Table};
use serde::Serialize;
use std::collections::BTreeMap;

/// All hot-launch samples for one scheme.
#[derive(Debug, Clone, Serialize)]
pub struct HotLaunchData {
    /// Scheme name.
    pub scheme: String,
    /// Per-app launch times in milliseconds.
    pub per_app_ms: BTreeMap<String, Vec<f64>>,
}

impl HotLaunchData {
    /// Summary statistics for one app.
    pub fn summary(&self, app: &str) -> Summary {
        Summary::from_values(self.per_app_ms.get(app).cloned().unwrap_or_default())
    }
}

/// Measures `launches` hot launches per app for one scheme.
pub fn measure(
    scheme: SchemeKind,
    apps: &[String],
    launches: usize,
    seed: u64,
) -> Result<HotLaunchData, FleetError> {
    let mut pool = AppPool::under_pressure(scheme, apps, seed)?;
    let mut per_app_ms = BTreeMap::new();
    for app in apps {
        let reports = pool.measure_hot_launches(app, launches)?;
        per_app_ms.insert(app.clone(), reports.iter().map(|r| r.total.as_millis_f64()).collect());
    }
    Ok(HotLaunchData { scheme: scheme.to_string(), per_app_ms })
}

/// Runs the full §7.2 experiment: all 18 apps under Android, Marvin and
/// Fleet. Figure 13 plots the first 12 apps, Figure 16 the remaining 6.
pub fn fig13(seed: u64, launches: usize) -> Result<Vec<HotLaunchData>, FleetError> {
    let mut apps = fig13_apps();
    apps.extend(fig16_apps());
    [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet]
        .into_iter()
        .map(|scheme| measure(scheme, &apps, launches, seed))
        .collect()
}

/// Runs Figure 3: 90th-percentile tail hot-launch for Android without swap,
/// Android with swap, and Marvin (the motivation experiment, §3.1).
pub fn fig3(seed: u64, launches: usize) -> Result<Vec<HotLaunchData>, FleetError> {
    let mut apps = fig13_apps();
    apps.extend(fig16_apps());
    [SchemeKind::AndroidNoSwap, SchemeKind::Android, SchemeKind::Marvin]
        .into_iter()
        .map(|scheme| measure(scheme, &apps, launches, seed))
        .collect()
}

/// One speedup row derived from [`fig13`] data.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupRow {
    /// App name.
    pub app: String,
    /// Statistic of the Android / Marvin / Fleet samples, in ms.
    pub android_ms: f64,
    /// Marvin statistic, ms.
    pub marvin_ms: f64,
    /// Fleet statistic, ms.
    pub fleet_ms: f64,
    /// Fleet speedup over Android.
    pub speedup_vs_android: f64,
    /// Fleet speedup over Marvin.
    pub speedup_vs_marvin: f64,
    /// The app's Java-heap share in percent (Figure 13n's x-axis).
    pub java_heap_pct: f64,
}

/// Derives per-app speedups at percentile `p` (50 → Figure 13m, 90 →
/// Figure 15a, 10 → 15b) from a `[Android, Marvin, Fleet]` dataset.
///
/// # Panics
///
/// Panics if the dataset does not contain exactly those three schemes in
/// order.
pub fn speedups_at(data: &[HotLaunchData], p: f64) -> Vec<SpeedupRow> {
    assert_eq!(data.len(), 3, "expected [Android, Marvin, Fleet]");
    assert_eq!(data[0].scheme, "Android");
    assert_eq!(data[1].scheme, "Marvin");
    assert_eq!(data[2].scheme, "Fleet");
    let mut rows = Vec::new();
    for app in data[0].per_app_ms.keys() {
        let stat = |d: &HotLaunchData| d.summary(app).percentile(p);
        let android = stat(&data[0]);
        let marvin = stat(&data[1]);
        let fleet = stat(&data[2]);
        if fleet <= 0.0 {
            continue;
        }
        let profile = profile_by_name(app).expect("catalog app");
        rows.push(SpeedupRow {
            app: app.clone(),
            android_ms: android,
            marvin_ms: marvin,
            fleet_ms: fleet,
            speedup_vs_android: android / fleet,
            speedup_vs_marvin: marvin / fleet,
            java_heap_pct: profile.java_heap_percent,
        });
    }
    rows
}

/// Mean-based speedups with standard deviations (Figure 15c).
pub fn mean_speedups(data: &[HotLaunchData]) -> Vec<SpeedupRow> {
    assert_eq!(data.len(), 3, "expected [Android, Marvin, Fleet]");
    let mut rows = Vec::new();
    for app in data[0].per_app_ms.keys() {
        let stat = |d: &HotLaunchData| d.summary(app).mean();
        let android = stat(&data[0]);
        let marvin = stat(&data[1]);
        let fleet = stat(&data[2]);
        if fleet <= 0.0 {
            continue;
        }
        let profile = profile_by_name(app).expect("catalog app");
        rows.push(SpeedupRow {
            app: app.clone(),
            android_ms: android,
            marvin_ms: marvin,
            fleet_ms: fleet,
            speedup_vs_android: android / fleet,
            speedup_vs_marvin: marvin / fleet,
            java_heap_pct: profile.java_heap_percent,
        });
    }
    rows
}

/// Geometric-mean speedup over a set of rows.
pub fn geomean_speedup(rows: &[SpeedupRow], vs_marvin: bool) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = rows
        .iter()
        .map(|r| if vs_marvin { r.speedup_vs_marvin } else { r.speedup_vs_android })
        .map(|s| s.max(1e-9).ln())
        .sum();
    (log_sum / rows.len() as f64).exp()
}

/// Experiment `fig3`.
pub struct Fig3;

impl Experiment for Fig3 {
    fn id(&self) -> &'static str {
        "fig3"
    }
    fn title(&self) -> &'static str {
        "Figure 3 — 90th-percentile tail hot-launch (motivation)"
    }
    fn description(&self) -> &'static str {
        "Tail (p90) hot-launch latency as the cached-app count grows"
    }
    fn module(&self) -> &'static str {
        "hot_launch"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let data = fig3(ctx.seed, ctx.launches().min(10))?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new(["App", "w/o swap p90", "w/ swap p90", "Marvin p90 (ms)"]);
        let apps: Vec<String> = data[0].per_app_ms.keys().cloned().collect();
        for app in &apps {
            t.row([
                app.clone(),
                format!("{:.0}", data[0].summary(app).p90()),
                format!("{:.0}", data[1].summary(app).p90()),
                format!("{:.0}", data[2].summary(app).p90()),
            ]);
        }
        out.table(t);
        let agg = |d: &HotLaunchData| {
            Summary::from_values(d.per_app_ms.values().flatten().copied()).p90()
        };
        out.text(format!(
            "aggregate p90: no-swap {:.0} ms, swap {:.0} ms, Marvin {:.0} ms   \
             (paper: both swap and Marvin deteriorate tails, e.g. Instagram 147→1027 ms)",
            agg(&data[0]),
            agg(&data[1]),
            agg(&data[2])
        ));
        Ok(out)
    }
}

/// Experiment `fig13`: the §7.2 headline, rendering Figures 13 (medians,
/// 13m geomean, 13n correlation), 15 (other percentiles), the 13a–l CDF
/// summaries and Figure 16 (the remaining six apps) from one measured data
/// set — hence the `fig15`/`fig16`/`cdf` aliases.
pub struct Fig13;

impl Experiment for Fig13 {
    fn id(&self) -> &'static str {
        "fig13"
    }
    fn title(&self) -> &'static str {
        "Figure 13/15/16 — hot-launch under memory pressure"
    }
    fn description(&self) -> &'static str {
        "Hot-launch latency per app and scheme under the §7.2 pressure protocol"
    }
    fn module(&self) -> &'static str {
        "hot_launch"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["fig15", "fig16", "cdf"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let data = fig13(ctx.seed, ctx.launches())?;
        let mut out = ExperimentOutput::new();

        out.section("Figure 13 — hot-launch under memory pressure (Android / Marvin / Fleet)");
        out.export("fig13", "Fleet 1.59x vs Android, 2.62x vs Marvin (medians)", &data);
        let median_rows = speedups_at(&data, 50.0);
        let mut t = Table::new([
            "App",
            "Android p50",
            "Marvin p50",
            "Fleet p50",
            "vs Android",
            "vs Marvin",
            "Java heap %",
        ]);
        for r in &median_rows {
            t.row([
                r.app.clone(),
                format!("{:.0} ms", r.android_ms),
                format!("{:.0} ms", r.marvin_ms),
                format!("{:.0} ms", r.fleet_ms),
                format!("{:.2}x", r.speedup_vs_android),
                format!("{:.2}x", r.speedup_vs_marvin),
                format!("{:.0}", r.java_heap_pct),
            ]);
        }
        out.table(t);
        out.text(format!(
            "13m geomean median speedup: {:.2}x vs Android (paper 1.59x), {:.2}x vs Marvin (paper 2.62x)",
            geomean_speedup(&median_rows, false),
            geomean_speedup(&median_rows, true)
        ));
        let corr = correlation(
            &median_rows.iter().map(|r| r.java_heap_pct).collect::<Vec<_>>(),
            &median_rows.iter().map(|r| r.speedup_vs_android).collect::<Vec<_>>(),
        );
        out.text(format!(
            "13n correlation(speedup, java-heap %): {corr:.2}   (paper: positive correlation)"
        ));

        out.section("Figure 15 — speedup at the 90th/10th percentile and the mean");
        for (label, p, paper) in
            [("90th", 90.0, "2.56x vs Android, 4.45x vs Marvin"), ("10th", 10.0, "modest")]
        {
            let rows = speedups_at(&data, p);
            out.text(format!(
                "{label} percentile: {:.2}x vs Android, {:.2}x vs Marvin   (paper: {paper})",
                geomean_speedup(&rows, false),
                geomean_speedup(&rows, true)
            ));
        }
        let rows = mean_speedups(&data);
        out.text(format!(
            "mean: {:.2}x vs Android, {:.2}x vs Marvin",
            geomean_speedup(&rows, false),
            geomean_speedup(&rows, true)
        ));

        out.section("Figure 13a–l — hot-launch CDF curves (10-point summaries)");
        for scheme in &data {
            for (app, samples) in &scheme.per_app_ms {
                let cdf = Cdf::from_values(samples.iter().copied());
                let curve: Vec<String> = cdf
                    .curve(10)
                    .into_iter()
                    .map(|(ms, frac)| format!("{:.0}ms:{:.0}%", ms, 100.0 * frac))
                    .collect();
                out.text(format!("{:>8} {:<12} {}", scheme.scheme, app, curve.join(" ")));
            }
        }

        out.section("Figure 16 — remaining six apps (CDF summary)");
        let mut t = Table::new(["App", "Scheme", "p10", "p50", "p90 (ms)"]);
        for app in fig16_apps() {
            for d in &data {
                let s = d.summary(&app);
                t.row([
                    app.clone(),
                    d.scheme.clone(),
                    format!("{:.0}", s.p10()),
                    format!("{:.0}", s.median()),
                    format!("{:.0}", s.p90()),
                ]);
            }
        }
        out.table(t);
        out.text(
            "paper note: Candy Crush (4% Java heap) sees little benefit — Fleet targets the Java heap",
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_apps() -> Vec<String> {
        // Enough apps to create the paper's "~10 background apps" pressure.
        [
            "Twitter",
            "Facebook",
            "Instagram",
            "Youtube",
            "Tiktok",
            "Spotify",
            "Chrome",
            "GoogleMaps",
            "AmazonShop",
            "LinkedIn",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    #[test]
    fn fleet_beats_android_and_marvin_medians() {
        let apps = small_apps();
        let data: Vec<HotLaunchData> = [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet]
            .into_iter()
            .map(|s| measure(s, &apps, 4, 21).unwrap())
            .collect();
        let rows = speedups_at(&data, 50.0);
        assert!(!rows.is_empty());
        let vs_android = geomean_speedup(&rows, false);
        let vs_marvin = geomean_speedup(&rows, true);
        // Paper: 1.59× and 2.62× — require the right direction with margin.
        assert!(vs_android > 1.1, "median speedup vs Android {vs_android}");
        assert!(vs_marvin > 1.2, "median speedup vs Marvin {vs_marvin}");
    }

    #[test]
    fn tails_improve_more_than_medians() {
        let apps = small_apps();
        let data: Vec<HotLaunchData> = [SchemeKind::Android, SchemeKind::Marvin, SchemeKind::Fleet]
            .into_iter()
            .map(|s| measure(s, &apps, 4, 33).unwrap())
            .collect();
        let p50 = geomean_speedup(&speedups_at(&data, 50.0), false);
        let p90 = geomean_speedup(&speedups_at(&data, 90.0), false);
        assert!(p90 > 1.2, "tail speedup {p90}");
        // §7.2: the tail improvement (2.56×) exceeds the median one (1.59×).
        assert!(p90 >= 0.8 * p50, "p90 {p90} should not collapse vs p50 {p50}");
    }

    #[test]
    fn swap_hurts_the_tail_without_fleet() {
        // Figure 3's motivation: enabling swap slows the Android tail.
        let apps = small_apps();
        let no_swap = measure(SchemeKind::AndroidNoSwap, &apps, 4, 8).unwrap();
        let swap = measure(SchemeKind::Android, &apps, 4, 8).unwrap();
        let p90 = |d: &HotLaunchData| {
            let all: Vec<f64> = d.per_app_ms.values().flatten().copied().collect();
            Summary::from_values(all).p90()
        };
        let tail_no_swap = p90(&no_swap);
        let tail_swap = p90(&swap);
        assert!(
            tail_swap > 1.3 * tail_no_swap,
            "swap tail {tail_swap} vs no-swap tail {tail_no_swap}"
        );
    }
}
