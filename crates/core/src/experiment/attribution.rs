//! Launch attribution: where hot-launch time-to-first-frame goes.
//!
//! Not a paper figure — an observability study built on the same launch
//! accounting the tracing spans expose (DESIGN.md §10). Each hot launch
//! under the §7.2 pressure protocol is decomposed into the three addends
//! of [`crate::process::LaunchReport`]: fault-in stalls (demand faults on
//! the launch working set plus the unoverlapped prefetch excess), GC
//! pauses (launch-GC stop-the-world, its fault stalls, and Marvin's stub
//! reconciliation), and pure CPU render time. The three components sum to
//! the end-to-end latency *exactly* — the experiment asserts the
//! reconciliation rather than trusting it.

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::{fig13_apps, AppPool};
use crate::params::SchemeKind;
use fleet_metrics::Table;
use serde::Serialize;

/// Mean per-launch latency decomposition for one scheme × app cell.
#[derive(Debug, Clone, Serialize)]
pub struct AttributionRow {
    /// Scheme the pool ran.
    pub scheme: String,
    /// The launched app.
    pub app: String,
    /// Hot launches measured.
    pub launches: usize,
    /// Mean end-to-end time-to-first-frame, ms.
    pub total_ms: f64,
    /// Mean page-fault stall share, ms (launch faults + prefetch excess).
    pub fault_in_ms: f64,
    /// Mean zram decompression share, ms — a *subset* of `fault_in_ms`,
    /// nonzero only on hybrid swap stacks.
    pub decompress_ms: f64,
    /// Mean GC share, ms (launch-GC pause + stalls + stub reconciliation).
    pub gc_ms: f64,
    /// Mean CPU render share, ms (the remainder; always `total - fault_in
    /// - gc` by construction).
    pub cpu_ms: f64,
}

/// Decomposes `launches` hot launches of each app in `apps` under the
/// §7.2 pressure protocol, per scheme.
///
/// # Errors
///
/// Propagates pool construction and launch failures ([`FleetError`]).
pub fn attribute_launches(
    seed: u64,
    schemes: &[SchemeKind],
    apps: &[String],
    launches: usize,
) -> Result<Vec<AttributionRow>, FleetError> {
    let mut rows = Vec::new();
    for &scheme in schemes {
        let mut pool = AppPool::under_pressure(scheme, &fig13_apps(), seed)?;
        for app in apps {
            let reports = pool.measure_hot_launches(app, launches)?;
            let n = reports.len().max(1) as f64;
            let mut total = 0.0;
            let mut fault_in = 0.0;
            let mut decompress = 0.0;
            let mut gc = 0.0;
            for r in &reports {
                let t = r.total.as_millis_f64();
                let f = r.fault_stall.as_millis_f64();
                let d = r.decompress.as_millis_f64();
                let g = r.gc_stw.as_millis_f64();
                // The reconciliation the trace spans rely on: the launch
                // children must tile the root span exactly, and the
                // decompress sub-span must nest inside fault-in.
                debug_assert!(f + g <= t + 1e-9, "launch components exceed the total");
                debug_assert!(d <= f + 1e-9, "decompression exceeds the fault stall");
                total += t;
                fault_in += f;
                decompress += d;
                gc += g;
            }
            let (total, fault_in, gc) = (total / n, fault_in / n, gc / n);
            rows.push(AttributionRow {
                scheme: scheme.to_string(),
                app: app.clone(),
                launches: reports.len(),
                total_ms: total,
                fault_in_ms: fault_in,
                decompress_ms: decompress / n,
                gc_ms: gc,
                cpu_ms: total - fault_in - gc,
            });
        }
    }
    Ok(rows)
}

/// The apps whose launches the experiment decomposes: a heavy social app,
/// a media app, and a browser — the three launch-profile shapes.
pub fn attribution_apps() -> Vec<String> {
    ["Twitter", "Youtube", "Chrome"].iter().map(|s| s.to_string()).collect()
}

/// Experiment `launch_attribution`.
pub struct LaunchAttribution;

impl Experiment for LaunchAttribution {
    fn id(&self) -> &'static str {
        "launch_attribution"
    }
    fn title(&self) -> &'static str {
        "DESIGN.md §10 — hot-launch latency attribution (fault-in / GC / CPU)"
    }
    fn description(&self) -> &'static str {
        "Decomposes hot-launch latency into fault-in, GC, and CPU render time"
    }
    fn module(&self) -> &'static str {
        "attribution"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let launches = if ctx.quick { 3 } else { 8 };
        let schemes = [SchemeKind::Android, SchemeKind::Fleet];
        let rows = attribute_launches(ctx.seed, &schemes, &attribution_apps(), launches)?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new([
            "Scheme",
            "App",
            "Launches",
            "Total (ms)",
            "Fault-in (ms)",
            "GC (ms)",
            "CPU (ms)",
            "Fault-in %",
        ]);
        for r in &rows {
            let share = if r.total_ms > 0.0 { 100.0 * r.fault_in_ms / r.total_ms } else { 0.0 };
            t.row([
                r.scheme.clone(),
                r.app.clone(),
                r.launches.to_string(),
                format!("{:.0}", r.total_ms),
                format!("{:.0}", r.fault_in_ms),
                format!("{:.1}", r.gc_ms),
                format!("{:.0}", r.cpu_ms),
                format!("{share:.0}"),
            ]);
        }
        out.table(t);
        out.text(
            "components tile the end-to-end latency exactly; under `repro --trace` \
             the same decomposition appears as launch_hot -> cpu / fault_in / \
             gc_pause spans in the Perfetto trace",
        );
        out.export(
            "launch_attribution",
            "n/a (observability study; §7.2 attributes the gap to fault-in)",
            &rows,
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_reconcile_with_total() {
        let rows =
            attribute_launches(9, &[SchemeKind::Fleet], &["Twitter".to_string()], 2).unwrap();
        for r in &rows {
            assert!(r.launches > 0, "protocol produced no hot launches");
            let sum = r.fault_in_ms + r.gc_ms + r.cpu_ms;
            let err = (sum - r.total_ms).abs() / r.total_ms.max(1e-9);
            assert!(err < 0.01, "attribution off by {:.3}% for {}", err * 100.0, r.app);
            assert!(r.cpu_ms > 0.0, "render share cannot be zero");
        }
    }

    #[test]
    fn attribution_is_deterministic() {
        let a = attribute_launches(5, &[SchemeKind::Android], &["Chrome".to_string()], 2).unwrap();
        let b = attribute_launches(5, &[SchemeKind::Android], &["Chrome".to_string()], 2).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
