//! JSON export of experiment results.
//!
//! The paper's artifact feeds raw measurements into Jupyter notebooks; the
//! analogue here is a JSON document per experiment that any notebook or
//! plotting script can consume. Everything the drivers return is
//! serde-serialisable; this module just assembles and pretty-prints it.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A named experiment result ready for export.
#[derive(Debug, Clone, Serialize)]
pub struct ExportRecord<T: Serialize> {
    /// Experiment id (e.g. "fig13").
    pub id: String,
    /// What the paper reports, for side-by-side reading.
    pub paper_reference: String,
    /// The measured data.
    pub data: T,
}

impl<T: Serialize> ExportRecord<T> {
    /// Wraps a result with its id and paper reference.
    pub fn new(id: impl Into<String>, paper_reference: impl Into<String>, data: T) -> Self {
        ExportRecord { id: id.into(), paper_reference: paper_reference.into(), data }
    }

    /// Serialises to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on failure (which for
    /// these plain data types would indicate a bug).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Writes the record as `<dir>/<id>.json`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the directory is missing or unwritable.
    pub fn write_to_dir(&self, dir: &Path) -> std::io::Result<std::path::PathBuf> {
        let path = dir.join(format!("{}.json", self.id));
        let json = self.to_json().map_err(std::io::Error::other)?;
        let mut file = std::fs::File::create(&path)?;
        file.write_all(json.as_bytes())?;
        file.write_all(b"\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Clone, Debug)]
    struct Row {
        app: String,
        value: f64,
    }

    #[test]
    fn round_trips_through_json() {
        let record = ExportRecord::new(
            "fig_test",
            "paper: 1.59x",
            vec![Row { app: "Twitter".into(), value: 273.0 }],
        );
        let json = record.to_json().unwrap();
        assert!(json.contains("\"id\": \"fig_test\""));
        assert!(json.contains("Twitter"));
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed["data"][0]["value"], 273.0);
    }

    #[test]
    fn writes_a_file() {
        let dir = std::env::temp_dir().join("fleet-export-test");
        std::fs::create_dir_all(&dir).unwrap();
        let record = ExportRecord::new("fig_demo", "ref", vec![1, 2, 3]);
        let path = record.write_to_dir(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("fig_demo"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
