//! Figure 7: the object-size distribution (§4.3).
//!
//! "The majority of objects are significantly smaller than the page size" —
//! this is the size mismatch that makes naive GC-swap co-design hard and
//! motivates Fleet's page grouping.

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use fleet_apps::profile_by_name;
use fleet_metrics::Table;
use fleet_sim::SimRng;
use serde::Serialize;

/// The size buckets plotted on Figure 7's x-axis.
pub const SIZE_BUCKETS: [u32; 13] = [16, 24, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096, 8192];

/// One app's empirical size CDF.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// App name.
    pub app: String,
    /// `(size, cdf_percent)` pairs over [`SIZE_BUCKETS`].
    pub cdf: Vec<(u32, f64)>,
}

/// The eight apps plotted in Figure 7.
pub fn fig7_apps() -> Vec<&'static str> {
    vec![
        "Twitter",
        "Facebook",
        "Youtube",
        "Tiktok",
        "Amazon",
        "GoogleMaps",
        "CandyCrush",
        "Firefox",
    ]
}

/// Runs Figure 7: samples `n` object sizes per app and reports the CDF.
pub fn fig7(seed: u64, n: usize) -> Vec<Fig7Row> {
    // "Amazon" in the figure is the AmazonShop catalog entry.
    let names = [
        "Twitter",
        "Facebook",
        "Youtube",
        "Tiktok",
        "AmazonShop",
        "GoogleMaps",
        "CandyCrush",
        "Firefox",
    ];
    names
        .iter()
        .map(|name| {
            let profile = profile_by_name(name).expect("catalog app");
            let mut rng = SimRng::seed_from(seed ^ name.len() as u64);
            let mut sizes: Vec<u32> = (0..n).map(|_| profile.size_dist.sample(&mut rng)).collect();
            sizes.sort_unstable();
            let cdf = SIZE_BUCKETS
                .iter()
                .map(|&limit| {
                    let count = sizes.partition_point(|&s| s <= limit);
                    (limit, 100.0 * count as f64 / n as f64)
                })
                .collect();
            Fig7Row { app: name.to_string(), cdf }
        })
        .collect()
}

/// Experiment `fig7`.
pub struct Fig7;

impl Experiment for Fig7 {
    fn id(&self) -> &'static str {
        "fig7"
    }
    fn title(&self) -> &'static str {
        "Figure 7 — object-size distribution (CDF %)"
    }
    fn description(&self) -> &'static str {
        "Cumulative object-size distribution across the app heaps"
    }
    fn module(&self) -> &'static str {
        "object_sizes"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let rows = fig7(ctx.seed, if ctx.quick { 20_000 } else { 50_000 });
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut head = vec!["Size (B)".to_string()];
        head.extend(rows.iter().map(|r| r.app.clone()));
        let mut t = Table::new(head);
        for (i, &(size, _)) in rows[0].cdf.iter().enumerate() {
            let mut cells = vec![size.to_string()];
            cells.extend(rows.iter().map(|r| format!("{:.0}", r.cdf[i].1)));
            t.row(cells);
        }
        out.table(t);
        out.text("paper shape: the vast majority of objects are far below the 4096 B page size");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_objects_are_far_below_page_size() {
        let rows = fig7(1, 20_000);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            let at =
                |size: u32| row.cdf.iter().find(|&&(s, _)| s == size).map(|&(_, p)| p).unwrap();
            assert!(at(128) > 75.0, "{}: cdf(128)={}", row.app, at(128));
            assert!(at(4096) > 95.0, "{}: cdf(4096)={}", row.app, at(4096));
            // CDF is monotone.
            for w in row.cdf.windows(2) {
                assert!(w[1].1 >= w[0].1);
            }
        }
    }

    #[test]
    fn apps_differ_but_share_the_shape() {
        let rows = fig7(1, 20_000);
        let first = &rows[0].cdf;
        // Not all identical (per-app variants shift the weights)…
        assert!(rows.iter().any(|r| r.cdf != *first));
        // …but every app's median object is ≤ 48 bytes.
        for row in &rows {
            let median_bucket = row.cdf.iter().find(|&&(_, p)| p >= 50.0).unwrap().0;
            assert!(median_bucket <= 48, "{}: median bucket {median_bucket}", row.app);
        }
    }
}
