//! Fleet-scale telemetry triage (extension; DESIGN.md §15).
//!
//! Not a paper figure — the observability counterpart of the `population`
//! dashboard. Where that experiment reports *how fast* the cohort hot-
//! launches, this one reports *where the time goes* and *which devices to
//! look at*:
//!
//! 1. **Cohort span attribution** — per-scheme and per-device-class
//!    launch-latency decomposition (cpu / fault_in / decompress /
//!    gc_pause) from the [`crate::telemetry::CohortTelemetry`] fold.
//! 2. **SLO monitors** — two demo objectives over burn-rate windows: a
//!    deliberately *breaching* `hot-p99 ≤ 250 ms` (the paper-grade
//!    target a real Swam-era fleet misses) and a *passing*
//!    `hot-p50 ≤ 1500 ms`, so a quick CI run always shows one red and
//!    one green verdict.
//! 3. **Outlier drill-down** — the top-K device-days by z-score are
//!    re-simulated standalone when `--drilldown DIR` is given, writing a
//!    validated Perfetto trace + metrics JSON per outlier, and the replay
//!    must reproduce the in-cohort fingerprint bit for bit (the
//!    splitmix-split seed contract).

use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::population::cohort_devices;
use crate::params::SchemeKind;
use crate::population::{run_population, PopulationSpec};
use crate::telemetry::{
    drill_down, CohortTelemetry, DrilldownRecord, LaunchAttribution, Outlier, SloMetric, SloSpec,
    SloVerdict,
};
use fleet_metrics::Table;
use serde::Serialize;

/// The demo SLO pair every `fleet_telemetry` run arms: one objective the
/// simulated fleet misses (p99 ≤ 250 ms — tail launches under memory
/// pressure run to seconds) and one it holds (p50 ≤ 1500 ms), so the
/// verdict table always shows a breach *and* a pass. Both non-enforcing:
/// the breach is reported, the run exits cleanly.
pub fn demo_slos() -> Vec<SloSpec> {
    vec![
        SloSpec::hot_launch_ms("hot-p99-under-250ms", 9900, 250, 4),
        SloSpec::hot_launch_ms("hot-p50-under-1500ms", 5000, 1500, 4),
    ]
}

/// How many outliers a drill-down re-simulates.
pub fn drilldown_k(quick: bool) -> usize {
    if quick {
        2
    } else {
        4
    }
}

/// One row of the attribution export: a label plus the decomposition of
/// its launches into component shares and headline percentiles.
#[derive(Debug, Clone, Serialize)]
pub struct AttributionSummary {
    /// Row label ("all", a scheme name, or a device class).
    pub label: String,
    /// Hot launches folded into the row.
    pub launches: u64,
    /// CPU share of total launch time, percent.
    pub cpu_pct: f64,
    /// Page-fault stall share, percent.
    pub fault_in_pct: f64,
    /// Zram decompression share (subset of fault_in), percent.
    pub decompress_pct: f64,
    /// Launch-time GC stop-the-world share, percent.
    pub gc_pause_pct: f64,
    /// Total-launch p50, ms.
    pub total_p50_ms: f64,
    /// Total-launch p99, ms.
    pub total_p99_ms: f64,
}

impl AttributionSummary {
    fn from(label: &str, a: &LaunchAttribution) -> Self {
        AttributionSummary {
            label: label.to_string(),
            launches: a.launches(),
            cpu_pct: a.share_pct(&a.cpu_us),
            fault_in_pct: a.share_pct(&a.fault_in_us),
            decompress_pct: a.share_pct(&a.decompress_us),
            gc_pause_pct: a.share_pct(&a.gc_pause_us),
            total_p50_ms: a.total_us.quantile(0.5) as f64 / 1e3,
            total_p99_ms: a.total_us.quantile(0.99) as f64 / 1e3,
        }
    }
}

/// The export payload (`fleet_telemetry.json`): attribution rows, SLO
/// verdicts with the exit-code-relevant `slo_pass`, ranked outliers, any
/// drill-down records, and the full telemetry sub-aggregate.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryExport {
    /// Population master seed.
    pub seed: u64,
    /// Cohort size in device-days.
    pub devices: u32,
    /// Cohort-wide attribution row.
    pub overall: AttributionSummary,
    /// Per-scheme attribution rows (schemes with devices only).
    pub schemes: Vec<AttributionSummary>,
    /// Per-device-class attribution rows, name-sorted.
    pub classes: Vec<AttributionSummary>,
    /// One verdict per armed SLO, in spec order.
    pub slo_verdicts: Vec<SloVerdict>,
    /// True iff every *enforcing* SLO held (the run's exit-code verdict;
    /// demo specs are non-enforcing, so breaches report without failing).
    pub slo_pass: bool,
    /// Top-K device-days by z-score.
    pub outliers: Vec<Outlier>,
    /// Replay records when `--drilldown` was given.
    pub drilldown: Vec<DrilldownRecord>,
    /// The full commutative telemetry fold backing every row above.
    pub telemetry: CohortTelemetry,
}

fn attribution_table(rows: &[AttributionSummary]) -> Table {
    let mut t = Table::new([
        "Cohort",
        "Launches",
        "cpu %",
        "fault_in %",
        "decompress %",
        "gc_pause %",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    for r in rows {
        t.row([
            r.label.clone(),
            r.launches.to_string(),
            format!("{:.1}", r.cpu_pct),
            format!("{:.1}", r.fault_in_pct),
            format!("{:.1}", r.decompress_pct),
            format!("{:.1}", r.gc_pause_pct),
            format!("{:.0}", r.total_p50_ms),
            format!("{:.0}", r.total_p99_ms),
        ]);
    }
    t
}

fn slo_table(verdicts: &[SloVerdict]) -> Table {
    let mut t = Table::new([
        "SLO",
        "Metric",
        "Threshold",
        "Windows",
        "Breaches",
        "Worst observed",
        "Verdict",
    ]);
    for v in verdicts {
        let worst = v.breaches.iter().map(|b| b.value_milli).max();
        let unit = match v.spec.metric {
            SloMetric::HotLaunch => "ms",
            SloMetric::LmkKills => "kills/day",
        };
        t.row([
            v.spec.name.clone(),
            match v.spec.metric {
                SloMetric::HotLaunch => {
                    format!("hot_launch p{:.2}", v.spec.percentile_bp as f64 / 100.0)
                }
                SloMetric::LmkKills => "lmk_kills".to_string(),
            },
            format!("{:.1} {unit}", v.spec.threshold_milli as f64 / 1e3),
            v.windows.to_string(),
            v.breaches.len().to_string(),
            worst.map_or("-".to_string(), |w| format!("{:.1} {unit}", w as f64 / 1e3)),
            if v.pass { "PASS".to_string() } else { "BREACH".to_string() },
        ]);
    }
    t
}

fn outlier_table(outliers: &[Outlier]) -> Table {
    let mut t = Table::new([
        "Device",
        "Score",
        "z(latency)",
        "z(kills)",
        "Peak hot (ms)",
        "Kills",
        "Fingerprint",
    ]);
    for o in outliers {
        t.row([
            o.index.to_string(),
            format!("{:.2}", o.score),
            format!("{:.2}", o.z_latency),
            format!("{:.2}", o.z_kills),
            format!("{:.0}", o.peak_hot_us as f64 / 1e3),
            o.kills.to_string(),
            format!("{:016x}", o.fingerprint),
        ]);
    }
    t
}

/// Experiment `fleet_telemetry`.
pub struct FleetTelemetry;

impl Experiment for FleetTelemetry {
    fn id(&self) -> &'static str {
        "fleet_telemetry"
    }
    fn title(&self) -> &'static str {
        "Extension — fleet telemetry: attribution, SLO monitors, outlier drill-down"
    }
    fn description(&self) -> &'static str {
        "Where hot-launch time goes per scheme/class, SLO burn-rate verdicts, top-K outliers"
    }
    fn module(&self) -> &'static str {
        "fleet_telemetry"
    }
    fn aliases(&self) -> &'static [&'static str] {
        &["telemetry", "triage"]
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let devices = cohort_devices(ctx.quick);
        let mut spec = PopulationSpec::default_mix(ctx.seed, devices);
        spec.slos = demo_slos();
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let run = run_population(&spec, threads)?;
        let agg = &run.aggregate;
        let tele = &agg.telemetry;

        let overall = AttributionSummary::from("all", &tele.overall);
        let schemes: Vec<AttributionSummary> = SchemeKind::ALL
            .iter()
            .zip(&tele.schemes)
            .filter(|(_, a)| a.launches() > 0)
            .map(|(s, a)| AttributionSummary::from(&s.to_string(), a))
            .collect();
        let classes: Vec<AttributionSummary> = tele
            .classes
            .iter()
            .map(|c| AttributionSummary::from(&c.class, &c.attribution))
            .collect();

        let outliers = tele.rank_outliers(drilldown_k(ctx.quick));
        let drilled = match &ctx.drilldown {
            Some(dir) => {
                let records = drill_down(&spec, &outliers, dir)?;
                if let Some(bad) = records.iter().find(|r| !r.matched) {
                    return Err(FleetError::InvalidConfig(format!(
                        "outlier {} replay diverged: cohort fingerprint {:016x}, replay {:016x}",
                        bad.index, bad.cohort_fingerprint, bad.replayed_fingerprint
                    )));
                }
                records
            }
            None => Vec::new(),
        };

        let report = agg.slo_report();
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.text("Hot-launch latency attribution (who owns the milliseconds):".to_string());
        let mut rows = vec![overall.clone()];
        rows.extend(schemes.iter().cloned());
        out.table(attribution_table(&rows));
        out.text("Per device class:".to_string());
        out.table(attribution_table(&classes));
        out.text(format!(
            "SLO monitors over burn-rate windows of {} run-slice(s) x {} devices:",
            spec.slos.first().map_or(1, |s| s.window_slices),
            agg.slice_len,
        ));
        out.table(slo_table(&agg.slo_verdicts));
        out.text(format!(
            "Top-{} outlier device-days by z-score (re-simulate any of them with \
             `repro fleet_telemetry --drilldown DIR`):",
            outliers.len()
        ));
        out.table(outlier_table(&outliers));
        if !drilled.is_empty() {
            out.text(format!(
                "Drill-down: {} outlier device-day(s) re-simulated standalone; every \
                 replayed fingerprint matched its in-cohort row ({} artifact files).",
                drilled.len(),
                drilled.iter().map(|r| r.files.len()).sum::<usize>(),
            ));
        }
        out.text(format!(
            "{} device-days (seed {:#x}); {} of {} SLOs breached; cohort hash {:016x}",
            agg.devices,
            spec.seed,
            report.verdicts.iter().filter(|v| !v.pass).count(),
            report.verdicts.len(),
            agg.cohort_hash,
        ));

        out.export(
            "fleet_telemetry",
            "n/a (extension; fleet triage telemetry, DESIGN.md \u{a7}15)",
            &TelemetryExport {
                seed: spec.seed,
                devices,
                overall,
                schemes,
                classes,
                slo_verdicts: agg.slo_verdicts.clone(),
                slo_pass: report.enforce_failures().is_empty(),
                outliers,
                drilldown: drilled,
                telemetry: tele.clone(),
            },
        );
        let failures = report.enforce_failures();
        if !failures.is_empty() {
            return Err(FleetError::SloBreached(failures.join(", ")));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{run_device_day, sample_device, PopulationAggregate, RangeU32};

    fn tiny_spec(seed: u64, devices: u32) -> PopulationSpec {
        let mut spec = PopulationSpec::default_mix(seed, devices);
        for p in &mut spec.personas {
            p.working_set = RangeU32 { lo: 2, hi: 2 };
            p.cycles = RangeU32 { lo: 2, hi: 2 };
            p.usage_gap_secs = RangeU32 { lo: 5, hi: 5 };
        }
        spec
    }

    #[test]
    fn demo_slos_validate_and_pair_breach_with_pass() {
        let slos = demo_slos();
        assert_eq!(slos.len(), 2);
        for s in &slos {
            assert!(s.validate().is_ok());
            assert!(!s.enforce, "demo monitors must report, not fail the run");
        }
        assert!(slos[0].threshold_milli < slos[1].threshold_milli);
    }

    #[test]
    fn tables_render_attribution_slos_and_outliers() {
        let spec = tiny_spec(0xF1EE7, 6);
        let mut agg = PopulationAggregate::new(spec.devices, 2);
        for i in 0..spec.devices {
            agg.absorb(&run_device_day(&sample_device(&spec, i).unwrap()).unwrap());
        }
        agg.evaluate_slos(&demo_slos());
        let tele = &agg.telemetry;
        let rows = vec![AttributionSummary::from("all", &tele.overall)];
        let rendered = format!("{}", attribution_table(&rows));
        assert!(rendered.contains("fault_in %"));
        let slo_rendered = format!("{}", slo_table(&agg.slo_verdicts));
        assert!(slo_rendered.contains("hot-p99-under-250ms"));
        assert!(slo_rendered.contains("PASS") || slo_rendered.contains("BREACH"));
        let outliers = tele.rank_outliers(2);
        assert!(!outliers.is_empty());
        let o_rendered = format!("{}", outlier_table(&outliers));
        assert!(o_rendered.contains("z(latency)"));
    }

    #[test]
    fn attribution_rows_cover_every_hot_launch() {
        let spec = tiny_spec(0xBEEF, 5);
        let mut agg = PopulationAggregate::new(spec.devices, 2);
        for i in 0..spec.devices {
            agg.absorb(&run_device_day(&sample_device(&spec, i).unwrap()).unwrap());
        }
        let tele = &agg.telemetry;
        assert_eq!(tele.overall.launches(), agg.hot_launches);
        let scheme_total: u64 = tele.schemes.iter().map(|a| a.launches()).sum();
        let class_total: u64 = tele.classes.iter().map(|c| c.attribution.launches()).sum();
        assert_eq!(scheme_total, agg.hot_launches, "scheme rows partition the launches");
        assert_eq!(class_total, agg.hot_launches, "class rows partition the launches");
    }
}
