//! Figure 2: hot-launch vs cold-launch times on an unloaded device.
//!
//! "We repeat the launch 20 times for each test case and calculate the
//! average and standard deviation" (§2.1). The headline: hot-launch is
//! drastically faster (Twitter: 273 ms hot vs 2390 ms cold, 8.75×).

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::params::SchemeKind;
use crate::ReclaimPolicy;
use fleet_apps::catalog;
use fleet_kernel::IntegrityConfig;
use fleet_metrics::{Summary, Table};
use serde::Serialize;

/// One app's row of Figure 2.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// App name.
    pub app: String,
    /// Hot-launch sample summary (ms).
    pub hot_mean_ms: f64,
    /// Hot-launch standard deviation (ms).
    pub hot_std_ms: f64,
    /// Cold-launch sample summary (ms).
    pub cold_mean_ms: f64,
    /// Cold-launch standard deviation (ms).
    pub cold_std_ms: f64,
}

/// Runs Figure 2: `launches` hot and cold launches per app on an idle
/// device (default Android, no memory pressure).
pub fn fig2(seed: u64, launches: usize) -> Result<Vec<Fig2Row>, FleetError> {
    fig2_configured(seed, launches, ReclaimPolicy::Reactive, IntegrityConfig::default())
}

/// [`fig2`] with an explicit [`ReclaimPolicy`]. The bench harness times
/// the same workload under `Reactive` and under a `Swam` variant whose
/// daemon never fires (`idle_epochs = u32::MAX`), isolating the cost of
/// the always-on working-set tracking on the hot-launch path.
pub fn fig2_with_policy(
    seed: u64,
    launches: usize,
    policy: ReclaimPolicy,
) -> Result<Vec<Fig2Row>, FleetError> {
    fig2_configured(seed, launches, policy, IntegrityConfig::default())
}

/// [`fig2`] with an explicit [`IntegrityConfig`]. The bench harness times
/// the same workload with the layer off and with `checked()` armed over a
/// quiet fault plan, isolating the per-slot checksum bookkeeping cost on
/// the launch path.
pub fn fig2_with_integrity(
    seed: u64,
    launches: usize,
    integrity: IntegrityConfig,
) -> Result<Vec<Fig2Row>, FleetError> {
    fig2_configured(seed, launches, ReclaimPolicy::Reactive, integrity)
}

fn fig2_configured(
    seed: u64,
    launches: usize,
    policy: ReclaimPolicy,
    integrity: IntegrityConfig,
) -> Result<Vec<Fig2Row>, FleetError> {
    let mut rows = Vec::new();
    for profile in catalog() {
        let mut config = DeviceConfig::pixel3(SchemeKind::Android);
        config.seed = seed ^ profile.name.len() as u64;
        config.reclaim_policy = policy;
        config.integrity = integrity;
        let mut device = Device::try_new(config)?;

        // Cold samples: terminate and recreate each time (§2.1: "obtained
        // by explicitly terminating apps before the launch").
        let mut cold = Vec::new();
        let mut pid = None;
        for _ in 0..launches {
            if let Some(p) = pid.take() {
                device.kill(p);
            }
            let (p, report) = device.launch_cold(&profile);
            pid = Some(p);
            cold.push(report.total.as_millis_f64());
        }
        let target = pid.expect("at least one launch");

        // Hot samples: bounce against a small helper app; no pressure, so
        // nothing gets swapped and the launch sits near the render floor.
        let helper =
            catalog().into_iter().find(|a| a.name != profile.name).expect("catalog has ≥ 2 apps");
        device.launch_cold(&helper);
        device.run(2);
        let mut hot = Vec::new();
        for _ in 0..launches {
            let report = device.try_switch_to(target)?;
            hot.push(report.total.as_millis_f64());
            device.run(2);
            let (helper_pid, _) = {
                // Helper may have been killed under no-pressure? It cannot
                // be; just bring it back to the foreground.
                let helper_pid = device
                    .processes()
                    .find(|p| p.name == helper.name)
                    .map(|p| p.pid)
                    .expect("helper stays alive on an idle device");
                (helper_pid, ())
            };
            device.try_switch_to(helper_pid)?;
            device.run(2);
        }

        let hot = Summary::from_values(hot);
        let cold = Summary::from_values(cold);
        rows.push(Fig2Row {
            app: profile.name,
            hot_mean_ms: hot.mean(),
            hot_std_ms: hot.std_dev(),
            cold_mean_ms: cold.mean(),
            cold_std_ms: cold.std_dev(),
        });
    }
    Ok(rows)
}

/// Experiment `fig2`.
pub struct Fig2;

impl Experiment for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }
    fn title(&self) -> &'static str {
        "Figure 2 — hot vs cold launch times (idle device)"
    }
    fn description(&self) -> &'static str {
        "Per-app hot and cold launch latency on an otherwise idle device"
    }
    fn module(&self) -> &'static str {
        "launch_basics"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let rows = fig2(ctx.seed, ctx.launches().min(10))?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        out.export("fig2", "hot ≪ cold; Twitter 273 vs 2390 ms", &rows);
        let mut t = Table::new([
            "App",
            "Hot (ms)",
            "Cold (ms)",
            "Cold/Hot",
            "Paper (hot/cold, Twitter: 273/2390)",
        ]);
        for r in &rows {
            t.row([
                r.app.clone(),
                format!("{:.0} ± {:.0}", r.hot_mean_ms, r.hot_std_ms),
                format!("{:.0} ± {:.0}", r.cold_mean_ms, r.cold_std_ms),
                format!("{:.1}x", r.cold_mean_ms / r.hot_mean_ms),
                "hot ≪ cold for every app".to_string(),
            ]);
        }
        out.table(t);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_is_several_times_faster_than_cold() {
        let rows = fig2(1, 4).unwrap();
        assert_eq!(rows.len(), 18);
        for row in &rows {
            assert!(
                row.cold_mean_ms > 3.0 * row.hot_mean_ms,
                "{}: cold {} vs hot {}",
                row.app,
                row.cold_mean_ms,
                row.hot_mean_ms
            );
        }
        // Twitter's ratio is the paper's headline: ≈ 8.75×.
        let twitter = rows.iter().find(|r| r.app == "Twitter").unwrap();
        let ratio = twitter.cold_mean_ms / twitter.hot_mean_ms;
        assert!((4.0..14.0).contains(&ratio), "Twitter cold/hot ratio {ratio}");
    }
}
