//! §7.4: sensitivity to the background heap-size scheme.
//!
//! ART grows the heap limit to `allocated × factor` after each GC. The
//! paper sweeps the background factor between 1.1× and 2×: Fleet's caching
//! gain needs the tight 1.1× (a loose limit lets background garbage pile up
//! and blunts BGC), while Fleet's *hot-launch* time is robust across both —
//! unlike Android, which is ≈31% faster at 1.1× than at 2×.

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::AppPool;
use crate::params::SchemeKind;
use fleet_apps::synthetic_app;
use fleet_metrics::{Summary, Table};
use serde::Serialize;

/// One scheme × heap-factor cell.
#[derive(Debug, Clone, Serialize)]
pub struct SensitivityRow {
    /// Scheme name.
    pub scheme: String,
    /// Background heap-growth factor.
    pub factor: f64,
    /// Maximum cached synthetic apps.
    pub max_cached: usize,
    /// Median hot-launch time of the probe app, ms.
    pub median_hot_ms: f64,
}

/// Runs the sensitivity sweep: `{Android, Fleet} × {1.1, 2.0}`.
pub fn sensitivity(
    seed: u64,
    max_apps: usize,
    launches: usize,
) -> Result<Vec<SensitivityRow>, FleetError> {
    let mut rows = Vec::new();
    for scheme in [SchemeKind::Android, SchemeKind::Fleet] {
        for factor in [1.1, 2.0] {
            // Caching capacity with synthetic apps.
            let config = DeviceConfig::builder(scheme)
                .seed(seed)
                .heap_growth_background(factor)
                .build()
                .expect("pixel3 variant is valid");
            let mut device = Device::try_new(config)?;
            let app = synthetic_app(2048, 180);
            let mut max_cached = 0;
            for _ in 0..max_apps {
                device.launch_cold(&app);
                device.run(10);
                max_cached = max_cached.max(device.cached_apps());
            }

            // Hot-launch medians with commercial apps.
            let config = DeviceConfig::builder(scheme)
                .seed(seed ^ 0x74)
                .heap_growth_background(factor)
                .build()
                .expect("pixel3 variant is valid");
            let apps: Vec<String> = ["Twitter", "Facebook", "Youtube", "Chrome", "Spotify"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let mut pool = AppPool::with_config(config, &apps)?;
            let reports = pool.measure_hot_launches("Twitter", launches)?;
            let median =
                Summary::from_values(reports.iter().map(|r| r.total.as_millis_f64())).median();

            rows.push(SensitivityRow {
                scheme: scheme.to_string(),
                factor,
                max_cached,
                median_hot_ms: median,
            });
        }
    }
    Ok(rows)
}

/// Experiment `sensitivity`.
pub struct Sensitivity;

impl Experiment for Sensitivity {
    fn id(&self) -> &'static str {
        "sensitivity"
    }
    fn title(&self) -> &'static str {
        "§7.4 — sensitivity to the background heap-size factor"
    }
    fn description(&self) -> &'static str {
        "Hot-launch sensitivity to the background heap-growth factor"
    }
    fn module(&self) -> &'static str {
        "sensitivity"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let rows =
            sensitivity(ctx.seed, if ctx.quick { 14 } else { 24 }, if ctx.quick { 4 } else { 8 })?;
        let mut out = ExperimentOutput::new();
        out.section(self.title());
        let mut t = Table::new(["Scheme", "Factor", "Max cached", "Median hot (ms)"]);
        for r in &rows {
            t.row([
                r.scheme.clone(),
                format!("{:.1}", r.factor),
                r.max_cached.to_string(),
                format!("{:.0}", r.median_hot_ms),
            ]);
        }
        out.table(t);
        out.text(
            "paper: Fleet's caching gain needs 1.1x; Fleet's launch time is robust across factors, Android's varies ≈31%",
        );
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_needs_tight_background_heaps_for_capacity() {
        let rows = sensitivity(23, 20, 4).unwrap();
        let get = |scheme: &str, factor: f64| {
            rows.iter().find(|r| r.scheme == scheme && r.factor == factor).unwrap()
        };
        let fleet_tight = get("Fleet", 1.1);
        let fleet_loose = get("Fleet", 2.0);
        let android_tight = get("Android", 1.1);
        // §7.4: at 1.1× Fleet caches ≈20% more than Android; at 2× the gap
        // shrinks toward parity.
        assert!(
            fleet_tight.max_cached > android_tight.max_cached,
            "fleet {} vs android {}",
            fleet_tight.max_cached,
            android_tight.max_cached
        );
        assert!(
            fleet_tight.max_cached >= fleet_loose.max_cached,
            "tight {} vs loose {}",
            fleet_tight.max_cached,
            fleet_loose.max_cached
        );
    }

    #[test]
    fn fleet_hot_launch_is_robust_across_factors() {
        let rows = sensitivity(29, 12, 5).unwrap();
        let get = |scheme: &str, factor: f64| {
            rows.iter().find(|r| r.scheme == scheme && r.factor == factor).unwrap().median_hot_ms
        };
        let fleet_var = (get("Fleet", 1.1) - get("Fleet", 2.0)).abs() / get("Fleet", 1.1);
        assert!(fleet_var < 0.35, "Fleet variation across factors {fleet_var}");
        // All medians are plausible launch times.
        for row in &rows {
            assert!(row.median_hot_ms > 100.0, "{:?}", row);
        }
    }
}
