//! Ablations and extensions beyond the paper's headline results.
//!
//! * [`fleet_variants`] — knock out each of Fleet's mechanisms (BGC, the
//!   `HOT_RUNTIME` refresh, the proactive `COLD_RUNTIME` swap-out, the NRO
//!   depth) and measure what it costs. This quantifies the design choices
//!   DESIGN.md calls out.
//! * [`asap_comparison`] — the related-work claim (§8): ASAP-style
//!   prefetching speeds hot-launches but "fails to address the adverse
//!   effects of GC", so it does not recover Fleet's caching capacity.
//! * [`zram_comparison`] — vendors ship compressed-RAM swap instead of a
//!   flash partition (§2.2); how do the schemes behave on it?

use crate::config::DeviceConfig;
use crate::device::Device;
use crate::error::FleetError;
use crate::experiment::harness::{Experiment, ExperimentCtx, ExperimentOutput};
use crate::experiment::scenario::AppPool;
use crate::params::SchemeKind;
use fleet_apps::synthetic_app;
use fleet_kernel::SwapMedium;
use fleet_metrics::{Summary, Table};
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Human-readable variant name.
    pub variant: String,
    /// Median hot-launch time of the probe app, ms.
    pub median_hot_ms: f64,
    /// 90th-percentile hot-launch time, ms.
    pub p90_hot_ms: f64,
    /// Maximum cached synthetic apps.
    pub max_cached: usize,
}

fn probe_apps() -> Vec<String> {
    [
        "Twitter",
        "Facebook",
        "Instagram",
        "Youtube",
        "Tiktok",
        "Spotify",
        "Chrome",
        "GoogleMaps",
        "AmazonShop",
        "LinkedIn",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn measure_config(
    config: DeviceConfig,
    variant: &str,
    launches: usize,
    capacity_apps: usize,
) -> Result<AblationRow, FleetError> {
    // Hot-launch distribution of the probe app under pressure. A longer
    // usage gap than §7.2's 30 s ages the target deep into the cache, which
    // is where launch-page pinning and prefetching earn their keep.
    let mut pool = AppPool::with_config(config, &probe_apps())?;
    pool.set_usage_gap(120);
    let reports = pool.measure_hot_launches("Twitter", launches)?;
    let times = Summary::from_values(reports.iter().map(|r| r.total.as_millis_f64()));

    // Caching capacity with synthetic apps.
    let mut device = Device::try_new(config)?;
    let app = synthetic_app(2048, 180);
    let mut max_cached = 0;
    for _ in 0..capacity_apps {
        device.launch_cold(&app);
        device.run(10);
        max_cached = max_cached.max(device.cached_apps());
    }
    Ok(AblationRow {
        variant: variant.to_string(),
        median_hot_ms: times.median(),
        p90_hot_ms: times.p90(),
        max_cached,
    })
}

/// Knock out Fleet's mechanisms one at a time.
pub fn fleet_variants(
    seed: u64,
    launches: usize,
    capacity_apps: usize,
) -> Result<Vec<AblationRow>, FleetError> {
    let base = |seed| {
        let mut c = DeviceConfig::pixel3(SchemeKind::Fleet);
        c.seed = seed;
        c
    };
    let mut rows = Vec::new();
    rows.push(measure_config(base(seed), "Fleet (full)", launches, capacity_apps)?);
    let mut c = base(seed);
    c.fleet_disable_bgc = true;
    rows.push(measure_config(c, "Fleet w/o BGC", launches, capacity_apps)?);
    let mut c = base(seed);
    c.fleet_disable_hot_refresh = true;
    rows.push(measure_config(c, "Fleet w/o HOT_RUNTIME", launches, capacity_apps)?);
    let mut c = base(seed);
    c.fleet_disable_cold_madvise = true;
    rows.push(measure_config(c, "Fleet w/o COLD_RUNTIME", launches, capacity_apps)?);
    let mut c = base(seed);
    c.fleet.depth = 0;
    rows.push(measure_config(c, "Fleet D=0", launches, capacity_apps)?);
    let mut c = base(seed);
    c.fleet.depth = 8;
    rows.push(measure_config(c, "Fleet D=8", launches, capacity_apps)?);
    Ok(rows)
}

/// Android vs Android+ASAP-prefetch vs Fleet.
pub fn asap_comparison(
    seed: u64,
    launches: usize,
    capacity_apps: usize,
) -> Result<Vec<AblationRow>, FleetError> {
    let mut rows = Vec::new();
    let mut c = DeviceConfig::pixel3(SchemeKind::Android);
    c.seed = seed;
    rows.push(measure_config(c, "Android", launches, capacity_apps)?);
    let mut c = DeviceConfig::pixel3(SchemeKind::Android);
    c.seed = seed;
    c.prefetch_on_launch = true;
    rows.push(measure_config(c, "Android + ASAP prefetch", launches, capacity_apps)?);
    let mut c = DeviceConfig::pixel3(SchemeKind::Fleet);
    c.seed = seed;
    rows.push(measure_config(c, "Fleet", launches, capacity_apps)?);
    Ok(rows)
}

/// Flash vs zram swap for Android and Fleet.
pub fn zram_comparison(
    seed: u64,
    launches: usize,
    capacity_apps: usize,
) -> Result<Vec<AblationRow>, FleetError> {
    let mut rows = Vec::new();
    for scheme in [SchemeKind::Android, SchemeKind::Fleet] {
        for (medium, label) in [
            (SwapMedium::Flash, "flash"),
            (SwapMedium::Zram { compression_ratio: 2.8 }, "zram 2.8x"),
        ] {
            let mut c = DeviceConfig::pixel3(scheme);
            c.seed = seed;
            c.swap_medium = medium;
            rows.push(measure_config(c, &format!("{scheme} / {label}"), launches, capacity_apps)?);
        }
    }
    Ok(rows)
}

/// Renders ablation rows as the text table the extensions section prints.
pub fn ablation_table(rows: &[AblationRow]) -> Table {
    let mut t = Table::new(["Variant", "Hot p50 (ms)", "Hot p90 (ms)", "Max cached"]);
    for r in rows {
        t.row([
            r.variant.clone(),
            format!("{:.0}", r.median_hot_ms),
            format!("{:.0}", r.p90_hot_ms),
            r.max_cached.to_string(),
        ]);
    }
    t
}

/// Experiment `ablation`: mechanism knock-outs plus the ASAP and zram
/// comparisons.
pub struct Ablation;

impl Experiment for Ablation {
    fn id(&self) -> &'static str {
        "ablation"
    }
    fn title(&self) -> &'static str {
        "Extensions — ablations, ASAP prefetching, zram"
    }
    fn description(&self) -> &'static str {
        "Fleet feature ablations plus ASAP prefetch and zram swap variants"
    }
    fn module(&self) -> &'static str {
        "ablation"
    }
    fn run(&self, ctx: &ExperimentCtx) -> Result<ExperimentOutput, FleetError> {
        let (l, cap) = if ctx.quick { (4, 14) } else { (8, 22) };
        let mut out = ExperimentOutput::new();
        out.section("Extensions — Fleet mechanism ablations");
        let variants = fleet_variants(ctx.seed, l, cap)?;
        out.export("ablation_fleet", "mechanism knock-outs", &variants);
        out.table(ablation_table(&variants));
        out.text("BGC carries the caching capacity; COLD_RUNTIME buys headroom; HOT_RUNTIME is");
        out.text("precautionary at this pressure; the depth parameter D trades launch coverage");
        out.text("for launch-region footprint (see Figure 6b).");
        out.section("Extensions — ASAP-style prefetching vs Fleet (§8 related work)");
        out.table(ablation_table(&asap_comparison(ctx.seed, l, cap)?));
        out.text("paper's point: prefetching speeds launches but does not fix the GC-swap");
        out.text("conflict, so it cannot recover Fleet's caching capacity.");
        out.section("Extensions — flash vs zram (compressed-RAM) swap");
        out.table(ablation_table(&zram_comparison(ctx.seed, l, cap)?));
        out.text("zram removes the 20.3 MB/s flash penalty but eats DRAM for its store.");
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(rows: &'a [AblationRow], name: &str) -> &'a AblationRow {
        rows.iter().find(|r| r.variant == name).unwrap_or_else(|| panic!("missing {name}"))
    }

    #[test]
    fn every_fleet_mechanism_earns_its_keep() {
        let rows = fleet_variants(31, 5, 20).unwrap();
        let full = get(&rows, "Fleet (full)");
        let no_bgc = get(&rows, "Fleet w/o BGC");
        let no_hot = get(&rows, "Fleet w/o HOT_RUNTIME");
        let no_cold = get(&rows, "Fleet w/o COLD_RUNTIME");
        // BGC is the caching-capacity mechanism.
        assert!(
            full.max_cached > no_bgc.max_cached,
            "BGC should buy capacity: {} vs {}",
            full.max_cached,
            no_bgc.max_cached
        );
        // HOT_RUNTIME is precautionary in this protocol: the target's idle
        // native pool absorbs its eviction share before the launch pages
        // age out, so pinning rarely fires — but it must never *hurt*.
        assert!(
            no_hot.p90_hot_ms > 0.85 * full.p90_hot_ms,
            "pinning must not slow launches: {} vs {}",
            no_hot.p90_hot_ms,
            full.p90_hot_ms
        );
        assert!(
            no_hot.median_hot_ms > 0.85 * full.median_hot_ms,
            "pinning must not slow medians: {} vs {}",
            no_hot.median_hot_ms,
            full.median_hot_ms
        );
        // COLD_RUNTIME buys capacity headroom (proactive reclaim).
        assert!(
            full.max_cached >= no_cold.max_cached,
            "proactive swap-out should not hurt capacity: {} vs {}",
            full.max_cached,
            no_cold.max_cached
        );
    }

    #[test]
    fn asap_speeds_launches_but_not_capacity() {
        let rows = asap_comparison(37, 5, 18).unwrap();
        let android = get(&rows, "Android");
        let asap = get(&rows, "Android + ASAP prefetch");
        let fleet = get(&rows, "Fleet");
        // Prefetching helps Android's launches…
        assert!(
            asap.median_hot_ms < android.median_hot_ms,
            "ASAP should speed launches: {} vs {}",
            asap.median_hot_ms,
            android.median_hot_ms
        );
        // …but the GC-swap conflict still caps its caching capacity.
        assert!(
            fleet.max_cached > asap.max_cached,
            "prefetching must not recover capacity: fleet {} vs asap {}",
            fleet.max_cached,
            asap.max_cached
        );
    }

    #[test]
    fn zram_trades_capacity_for_latency() {
        let rows = zram_comparison(41, 4, 18).unwrap();
        let android_flash = get(&rows, "Android / flash");
        let android_zram = get(&rows, "Android / zram 2.8x");
        // Zram swap-ins are near-DRAM speed: Android's launch tail shrinks.
        assert!(
            android_zram.p90_hot_ms < android_flash.p90_hot_ms * 1.05,
            "zram should not slow launches: {} vs {}",
            android_zram.p90_hot_ms,
            android_flash.p90_hot_ms
        );
        // Every row still runs and caches a sane number of apps.
        for row in &rows {
            assert!(row.max_cached >= 5, "{}: {}", row.variant, row.max_cached);
            assert!(row.median_hot_ms > 100.0);
        }
    }
}
