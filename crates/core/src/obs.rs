//! Device-level observability plumbing (only with the `obs` feature).
//!
//! The mechanism crates buffer [`fleet_obs::ObsRecord`]s in per-component
//! [`fleet_obs::ObsLog`]s; this module owns the other half: a process-wide
//! *installer* that hands every subsequently created [`crate::Device`] a
//! shared [`ObsPipeline`]. Experiments do not need to thread the pipeline
//! through their APIs — installing it before building devices is enough,
//! exactly like `fleet::audit::install`. Without an install, the obs-enabled
//! build records nothing: component logs stay disabled and the `push`
//! closures are never invoked.
//!
//! # Examples
//!
//! ```
//! use fleet::obs::{install, shared_pipeline};
//! use fleet::{Device, DeviceConfig, SchemeKind};
//!
//! let pipeline = shared_pipeline();
//! let _guard = install(pipeline.clone());
//! let mut device = Device::new(DeviceConfig::pixel3(SchemeKind::Fleet));
//! device.run(2);
//! drop(device);
//! let trace = pipeline.lock().unwrap().trace_json();
//! fleet_obs::validate_chrome_trace(&trace).unwrap();
//! ```

pub use fleet_obs::{
    validate_chrome_trace, LatencyHistogram, MetricRegistry, ObsLog, ObsPipeline, ObsRecord,
    PlacedSpan, SpanRec, TraceSummary, Tracer, METRICS_SCHEMA_VERSION,
};

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// A pipeline shareable between devices and the harness/CLI.
pub type SharedPipeline = Arc<Mutex<ObsPipeline>>;

thread_local! {
    static INSTALLED: RefCell<Option<SharedPipeline>> = const { RefCell::new(None) };
}

/// Creates an empty [`SharedPipeline`].
pub fn shared_pipeline() -> SharedPipeline {
    Arc::new(Mutex::new(ObsPipeline::new()))
}

/// Installs `pipeline` for this thread: every [`crate::Device`] created
/// while the returned guard is alive attaches to it and streams spans and
/// metrics into it. Nested installs stack; dropping the guard restores the
/// previous pipeline.
pub fn install(pipeline: SharedPipeline) -> InstallGuard {
    let previous = INSTALLED.with(|slot| slot.borrow_mut().replace(pipeline));
    InstallGuard { previous }
}

/// The pipeline installed on this thread, if any.
pub(crate) fn current() -> Option<SharedPipeline> {
    INSTALLED.with(|slot| slot.borrow().clone())
}

/// Uninstalls the pipeline (restoring any outer install) when dropped.
#[must_use = "dropping the guard immediately uninstalls the pipeline"]
pub struct InstallGuard {
    previous: Option<SharedPipeline>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        INSTALLED.with(|slot| *slot.borrow_mut() = previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_scoped_and_stacks() {
        assert!(current().is_none());
        let outer = shared_pipeline();
        let inner = shared_pipeline();
        {
            let _a = install(outer.clone());
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
            {
                let _b = install(inner.clone());
                assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        }
        assert!(current().is_none());
    }
}
