//! Device-level flight-recorder plumbing (only with the `audit` feature).
//!
//! The mechanism crates buffer [`fleet_audit::AuditEvent`]s in per-component
//! [`fleet_audit::EventLog`]s; this module owns the other half: a process-wide
//! *installer* that hands every subsequently created [`crate::Device`] a
//! shared [`AuditPipeline`]. Experiments do not need to thread the pipeline
//! through their APIs — installing it before building devices is enough,
//! which is how the golden-trace suite records unmodified registry
//! experiments.
//!
//! # Examples
//!
//! ```
//! use fleet::audit::{install, shared_pipeline};
//! use fleet::{Device, DeviceConfig, SchemeKind};
//!
//! let pipeline = shared_pipeline();
//! let _guard = install(pipeline.clone());
//! let mut device = Device::new(DeviceConfig::pixel3(SchemeKind::Fleet));
//! device.run(1);
//! drop(device);
//! assert!(pipeline.lock().unwrap().recorder().event_count() > 0);
//! ```

pub use fleet_audit::{
    AuditEvent, AuditPipeline, Auditor, EventLog, Recorder, CHECKPOINT_INTERVAL, RING_CAPACITY,
};

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

/// A pipeline shareable between devices and the test harness.
pub type SharedPipeline = Arc<Mutex<AuditPipeline>>;

thread_local! {
    static INSTALLED: RefCell<Option<SharedPipeline>> = const { RefCell::new(None) };
}

/// Creates an empty [`SharedPipeline`].
pub fn shared_pipeline() -> SharedPipeline {
    Arc::new(Mutex::new(AuditPipeline::new()))
}

/// Installs `pipeline` for this thread: every [`crate::Device`] created
/// while the returned guard is alive attaches to it and streams its events
/// through the recorder and auditor. Nested installs stack; dropping the
/// guard restores the previous pipeline.
pub fn install(pipeline: SharedPipeline) -> InstallGuard {
    let previous = INSTALLED.with(|slot| slot.borrow_mut().replace(pipeline));
    InstallGuard { previous }
}

/// The pipeline installed on this thread, if any.
pub(crate) fn current() -> Option<SharedPipeline> {
    INSTALLED.with(|slot| slot.borrow().clone())
}

/// Uninstalls the pipeline (restoring any outer install) when dropped.
#[must_use = "dropping the guard immediately uninstalls the pipeline"]
pub struct InstallGuard {
    previous: Option<SharedPipeline>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        INSTALLED.with(|slot| *slot.borrow_mut() = previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_scoped_and_stacks() {
        assert!(current().is_none());
        let outer = shared_pipeline();
        let inner = shared_pipeline();
        {
            let _a = install(outer.clone());
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
            {
                let _b = install(inner.clone());
                assert!(Arc::ptr_eq(&current().unwrap(), &inner));
            }
            assert!(Arc::ptr_eq(&current().unwrap(), &outer));
        }
        assert!(current().is_none());
    }
}
