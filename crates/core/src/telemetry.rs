//! Fleet-scale telemetry: cohort span attribution, SLO evaluation and
//! deterministic outlier drill-down (DESIGN.md §15).
//!
//! The observability layer (§10) answers "where does hot-launch time go"
//! for *one* device; the population engine (§12) reduces a cohort to
//! summary histograms with no way to see where a bad tail comes from.
//! This module closes the gap in three pieces, all riding the population
//! fold's commutativity contract:
//!
//! * **[`CohortTelemetry`]** — per-launch latency decomposition
//!   (cpu / fault_in / decompress / gc_pause, the §10 span taxonomy)
//!   folded into integer [`LogHistogram`]s overall, per scheme and per
//!   device class, plus per-slice histograms, [`Moments`] power sums and
//!   bounded top-K outlier pools. Every field absorbs and merges
//!   commutatively, so the aggregate stays byte-identical whatever the
//!   worker-thread count.
//! * **SLO evaluation** — [`SloSpec`]s (re-exported from
//!   `fleet_obs::slo`) are evaluated post-merge over burn-rate windows of
//!   run-slices; the verdicts are a pure function of the already
//!   order-free aggregate.
//! * **[`drill_down`]** — ranks device-days by z-score
//!   ([`CohortTelemetry::rank_outliers`]) and re-simulates the top K
//!   standalone under fresh `obs`(+`audit`) pipelines, exploiting the
//!   splitmix-split seed property: the replayed day is bit-identical to
//!   the in-cohort one, and the written Perfetto trace shows exactly the
//!   device-day behind the aggregate breach.

use crate::error::FleetError;
use crate::params::SchemeKind;
use crate::population::{sample_device, DeviceDayRow, PopulationSpec};
use crate::process::LaunchReport;
use fleet_metrics::{LogHistogram, Moments};
use serde::{Deserialize, Serialize};
use std::path::Path;

pub use fleet_obs::slo::{SloBreach, SloMetric, SloReport, SloSpec, SloVerdict, SloWindowPoint};

/// Bounded size of the commutative outlier candidate pools. Large enough
/// that any sensible drill-down `k` fits; small enough that absorbing a
/// device-day stays O(1)-ish.
pub const OUTLIER_POOL: usize = 16;

// ----------------------------------------------------------- span samples

/// One hot launch's latency decomposition in microseconds, derived from
/// the [`LaunchReport`] the §10 span taxonomy also feeds: the `cpu`,
/// `fault_in`, `decompress` and `gc_pause` children of a `launch_hot`
/// root, flattened to integers so cohort folds stay commutative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchSpanSample {
    /// Total time to first frame, µs (the `launch_hot` root).
    pub total_us: u64,
    /// Pure CPU share, µs (`total − fault_in − gc_pause`).
    pub cpu_us: u64,
    /// Page-fault stall share, µs (the `fault_in` child).
    pub fault_in_us: u64,
    /// Zram decompression share, µs (depth-2 under `fault_in`; a subset
    /// of [`Self::fault_in_us`], zero on flash-only devices).
    pub decompress_us: u64,
    /// Launch-time GC stop-the-world share, µs (the `gc_pause` child).
    pub gc_pause_us: u64,
}

impl LaunchSpanSample {
    /// Flattens a launch report into the span decomposition. The same
    /// arithmetic the obs tracer uses: the children tile the root, so
    /// `cpu = total − fault_stall − gc_stw` exactly.
    pub fn from_report(r: &LaunchReport) -> Self {
        let total_us = r.total.as_micros();
        let fault_in_us = r.fault_stall.as_micros();
        let gc_pause_us = r.gc_stw.as_micros();
        LaunchSpanSample {
            total_us,
            cpu_us: total_us.saturating_sub(fault_in_us).saturating_sub(gc_pause_us),
            fault_in_us,
            decompress_us: r.decompress.as_micros(),
            gc_pause_us,
        }
    }
}

/// The cohort-level attribution bundle: one [`LogHistogram`] per span of
/// the launch family. Absorb/merge are commutative integer folds.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LaunchAttribution {
    /// Root (`launch_hot`) totals, µs.
    pub total_us: LogHistogram,
    /// `cpu` child, µs.
    pub cpu_us: LogHistogram,
    /// `fault_in` child, µs.
    pub fault_in_us: LogHistogram,
    /// `decompress` grandchild, µs.
    pub decompress_us: LogHistogram,
    /// `gc_pause` child, µs.
    pub gc_pause_us: LogHistogram,
}

impl LaunchAttribution {
    /// An empty bundle.
    pub fn new() -> Self {
        LaunchAttribution::default()
    }

    /// Folds one launch in.
    pub fn absorb(&mut self, s: &LaunchSpanSample) {
        self.total_us.record(s.total_us);
        self.cpu_us.record(s.cpu_us);
        self.fault_in_us.record(s.fault_in_us);
        self.decompress_us.record(s.decompress_us);
        self.gc_pause_us.record(s.gc_pause_us);
    }

    /// Folds another bundle in (commutative, associative).
    pub fn merge(&mut self, other: &LaunchAttribution) {
        self.total_us.merge(&other.total_us);
        self.cpu_us.merge(&other.cpu_us);
        self.fault_in_us.merge(&other.fault_in_us);
        self.decompress_us.merge(&other.decompress_us);
        self.gc_pause_us.merge(&other.gc_pause_us);
    }

    /// Launches folded in.
    pub fn launches(&self) -> u64 {
        self.total_us.count()
    }

    /// A component's share of total launch time, in percent of the summed
    /// root (0 when no launch landed).
    pub fn share_pct(&self, component: &LogHistogram) -> f64 {
        if self.total_us.sum() == 0 {
            0.0
        } else {
            component.sum() as f64 * 100.0 / self.total_us.sum() as f64
        }
    }
}

/// One device class's attribution bundle, keyed by class name. The owning
/// vector keeps itself name-sorted so insertion order (and thus thread
/// interleaving) never shows in the serialized bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassAttribution {
    /// Device class name (from the sampled [`crate::population::DeviceClass`]).
    pub class: String,
    /// The class's launch decomposition.
    pub attribution: LaunchAttribution,
}

/// Per-run-slice telemetry: the data SLO burn-rate windows evaluate over.
/// Indexed by slice ordinal like the aggregate's `SliceRow`s, so absorbing
/// is an index write, never an append — commutative by construction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceTelemetry {
    /// Slice ordinal (device indices `[slice·len, (slice+1)·len)`).
    pub slice: u32,
    /// Device-days absorbed into this slice.
    pub devices: u64,
    /// Hot-launch latency distribution of the slice, µs.
    pub hot_launch_us: LogHistogram,
    /// LMK kills across the slice.
    pub lmk_kills: u64,
}

// ----------------------------------------------------------- outlier pools

/// One device-day's outlier fingerprint: both ranking metrics plus the row
/// fingerprint, enough to drill down without re-running the cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlierCandidate {
    /// Device index within the cohort.
    pub index: u32,
    /// Worst hot-launch of the day, µs (0 when no launch stayed hot).
    pub peak_hot_us: u64,
    /// LMK kills over the day.
    pub kills: u64,
    /// The device-day's row fingerprint (replay must reproduce it).
    pub fingerprint: u64,
}

/// A bounded top-K pool under a total order (value desc, index asc).
///
/// Keeping only the K best is still a commutative fold: any element of the
/// global top K is necessarily in its own shard's top K, so merging two
/// pools and re-truncating equals the top K of the union — the argument
/// `tests/telemetry_properties.rs` exercises down to JSON bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlierPool {
    /// Capacity (fixed at construction).
    pub cap: u32,
    /// Kept candidates with their ranking value, sorted by
    /// (value desc, index asc).
    pub entries: Vec<(u64, OutlierCandidate)>,
}

impl OutlierPool {
    /// An empty pool keeping the `cap` largest values.
    pub fn new(cap: u32) -> Self {
        OutlierPool { cap, entries: Vec::new() }
    }

    fn truncate_sorted(&mut self) {
        self.entries.sort_by(|(va, ca), (vb, cb)| vb.cmp(va).then(ca.index.cmp(&cb.index)));
        self.entries.truncate(self.cap as usize);
    }

    /// Offers one candidate ranked by `value`.
    pub fn offer(&mut self, value: u64, candidate: OutlierCandidate) {
        self.entries.push((value, candidate));
        self.truncate_sorted();
    }

    /// Folds another pool in (commutative, associative).
    pub fn merge(&mut self, other: &OutlierPool) {
        assert_eq!(self.cap, other.cap, "pools must share a capacity");
        self.entries.extend(other.entries.iter().copied());
        self.truncate_sorted();
    }
}

/// A ranked outlier: the drill-down work item [`CohortTelemetry::rank_outliers`]
/// returns. Scores are derived post-merge from the folded [`Moments`], so
/// they are as thread-count-independent as the integer state they read.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Outlier {
    /// Device index within the cohort.
    pub index: u32,
    /// `max(z_latency, z_kills)` — the ranking score.
    pub score: f64,
    /// Z-score of the day's peak hot-launch against the cohort.
    pub z_latency: f64,
    /// Z-score of the day's LMK kills against the cohort.
    pub z_kills: f64,
    /// Worst hot-launch of the day, µs.
    pub peak_hot_us: u64,
    /// LMK kills over the day.
    pub kills: u64,
    /// The in-cohort row fingerprint the replay must reproduce.
    pub fingerprint: u64,
}

// ------------------------------------------------------- cohort telemetry

/// The telemetry sub-aggregate folded into every
/// [`crate::population::PopulationAggregate`]: launch attribution
/// (overall / per scheme / per class), per-slice SLO inputs, moment sums
/// and the outlier pools. Every field is a commutative integer fold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortTelemetry {
    /// Devices per slice (mirrors the owning aggregate).
    pub slice_len: u32,
    /// Cohort-wide launch decomposition.
    pub overall: LaunchAttribution,
    /// Per-scheme decomposition, indexed like [`SchemeKind::ALL`].
    pub schemes: Vec<LaunchAttribution>,
    /// Per-device-class decomposition, kept sorted by class name.
    pub classes: Vec<ClassAttribution>,
    /// Per-slice SLO inputs, one per slice ordinal.
    pub slices: Vec<SliceTelemetry>,
    /// Power sums over per-device peak hot-launch, µs.
    pub peak_hot_us: Moments,
    /// Power sums over per-device LMK kills.
    pub device_kills: Moments,
    /// Top-K device-days by peak hot-launch.
    pub latency_outliers: OutlierPool,
    /// Top-K device-days by LMK kills.
    pub kill_outliers: OutlierPool,
}

fn scheme_index(scheme: SchemeKind) -> usize {
    SchemeKind::ALL.iter().position(|&s| s == scheme).expect("scheme in ALL")
}

impl CohortTelemetry {
    /// An empty telemetry aggregate sized for `cohort_devices` devices in
    /// slices of `slice_len`.
    pub fn new(cohort_devices: u32, slice_len: u32) -> Self {
        assert!(slice_len > 0, "slice length must be positive");
        let slices = cohort_devices.div_ceil(slice_len);
        CohortTelemetry {
            slice_len,
            overall: LaunchAttribution::new(),
            schemes: vec![LaunchAttribution::new(); SchemeKind::ALL.len()],
            classes: Vec::new(),
            slices: (0..slices)
                .map(|slice| SliceTelemetry {
                    slice,
                    devices: 0,
                    hot_launch_us: LogHistogram::new(),
                    lmk_kills: 0,
                })
                .collect(),
            peak_hot_us: Moments::new(),
            device_kills: Moments::new(),
            latency_outliers: OutlierPool::new(OUTLIER_POOL as u32),
            kill_outliers: OutlierPool::new(OUTLIER_POOL as u32),
        }
    }

    fn class_mut(&mut self, name: &str) -> &mut LaunchAttribution {
        let at = match self.classes.binary_search_by(|c| c.class.as_str().cmp(name)) {
            Ok(at) => at,
            Err(at) => {
                self.classes.insert(
                    at,
                    ClassAttribution {
                        class: name.to_string(),
                        attribution: LaunchAttribution::new(),
                    },
                );
                at
            }
        };
        &mut self.classes[at].attribution
    }

    /// Folds one device-day in.
    pub fn absorb(&mut self, row: &DeviceDayRow) {
        let si = scheme_index(row.scheme);
        for span in &row.hot_spans {
            self.overall.absorb(span);
            self.schemes[si].absorb(span);
            self.class_mut(&row.class).absorb(span);
        }
        let slice = &mut self.slices[(row.index / self.slice_len) as usize];
        slice.devices += 1;
        slice.lmk_kills += row.lmk_kills;
        for &us in &row.hot_launch_us {
            slice.hot_launch_us.record(us);
        }
        let peak = row.hot_launch_us.iter().copied().max().unwrap_or(0);
        self.peak_hot_us.record(peak);
        self.device_kills.record(row.lmk_kills);
        let candidate = OutlierCandidate {
            index: row.index,
            peak_hot_us: peak,
            kills: row.lmk_kills,
            fingerprint: row.fingerprint,
        };
        self.latency_outliers.offer(peak, candidate);
        self.kill_outliers.offer(row.lmk_kills, candidate);
    }

    /// Folds another shard in (commutative with [`Self::absorb`]).
    ///
    /// # Panics
    ///
    /// Panics if the shards were sized for different cohorts.
    pub fn merge(&mut self, other: &CohortTelemetry) {
        assert_eq!(self.slice_len, other.slice_len, "shards must share a slice length");
        assert_eq!(self.slices.len(), other.slices.len(), "shards must share a cohort size");
        self.overall.merge(&other.overall);
        for (a, b) in self.schemes.iter_mut().zip(&other.schemes) {
            a.merge(b);
        }
        for class in &other.classes {
            self.class_mut(&class.class).merge(&class.attribution);
        }
        for (a, b) in self.slices.iter_mut().zip(&other.slices) {
            a.devices += b.devices;
            a.lmk_kills += b.lmk_kills;
            a.hot_launch_us.merge(&b.hot_launch_us);
        }
        self.peak_hot_us.merge(&other.peak_hot_us);
        self.device_kills.merge(&other.device_kills);
        self.latency_outliers.merge(&other.latency_outliers);
        self.kill_outliers.merge(&other.kill_outliers);
    }

    /// The burn-rate window observations for `spec`, derived from the
    /// per-slice state. Pure post-merge computation: windows chunk the
    /// slice rows in ordinal order; windows with no data are skipped.
    pub fn slo_points(&self, spec: &SloSpec) -> Vec<SloWindowPoint> {
        let window = spec.window_slices.max(1) as usize;
        self.slices
            .chunks(window)
            .filter_map(|chunk| {
                let window_start = chunk[0].slice;
                let window_end = chunk.last().expect("chunks are non-empty").slice + 1;
                let value_milli = match spec.metric {
                    SloMetric::HotLaunch => {
                        let mut hist = LogHistogram::new();
                        for s in chunk {
                            hist.merge(&s.hot_launch_us);
                        }
                        if hist.count() == 0 {
                            return None;
                        }
                        // µs *is* the milli-unit of the ms threshold.
                        hist.quantile(spec.percentile_bp as f64 / 10_000.0)
                    }
                    SloMetric::LmkKills => {
                        let devices: u64 = chunk.iter().map(|s| s.devices).sum();
                        if devices == 0 {
                            return None;
                        }
                        let kills: u64 = chunk.iter().map(|s| s.lmk_kills).sum();
                        kills.saturating_mul(1000) / devices
                    }
                };
                Some(SloWindowPoint { window_start, window_end, value_milli })
            })
            .collect()
    }

    /// Ranks the pooled candidates by z-score against the merged moments
    /// and returns the top `k` (score desc, index asc), deduplicated
    /// across the two pools. Deterministic: every input is a pure function
    /// of the order-free aggregate.
    pub fn rank_outliers(&self, k: usize) -> Vec<Outlier> {
        let mut by_index: std::collections::BTreeMap<u32, Outlier> =
            std::collections::BTreeMap::new();
        for (_, c) in self.latency_outliers.entries.iter().chain(&self.kill_outliers.entries) {
            by_index.entry(c.index).or_insert_with(|| {
                let z_latency = self.peak_hot_us.z_score(c.peak_hot_us);
                let z_kills = self.device_kills.z_score(c.kills);
                Outlier {
                    index: c.index,
                    score: z_latency.max(z_kills),
                    z_latency,
                    z_kills,
                    peak_hot_us: c.peak_hot_us,
                    kills: c.kills,
                    fingerprint: c.fingerprint,
                }
            });
        }
        let mut ranked: Vec<Outlier> = by_index.into_values().collect();
        ranked.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.index.cmp(&b.index)));
        ranked.truncate(k);
        ranked
    }

    /// Evaluates every spec against the per-slice state (post-merge).
    pub fn evaluate(&self, slos: &[SloSpec]) -> Vec<SloVerdict> {
        slos.iter().map(|s| SloVerdict::evaluate(s, self.slo_points(s))).collect()
    }
}

// ------------------------------------------------------------- drill-down

/// The outcome of re-simulating one outlier device-day standalone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrilldownRecord {
    /// Device index within the cohort.
    pub index: u32,
    /// The split per-device seed the replay used.
    pub seed: u64,
    /// Sampled hardware class.
    pub class: String,
    /// Sampled persona.
    pub persona: String,
    /// Sampled scheme.
    pub scheme: SchemeKind,
    /// The ranking score that put this day in the top K.
    pub score: f64,
    /// The in-cohort row fingerprint.
    pub cohort_fingerprint: u64,
    /// The standalone replay's row fingerprint.
    pub replayed_fingerprint: u64,
    /// True iff the replay reproduced the in-cohort row bit for bit.
    pub matched: bool,
    /// Spans in the exported trace (0 when built without `obs`).
    pub trace_spans: u64,
    /// Files written for this outlier, relative to the drill-down dir.
    pub files: Vec<String>,
}

/// Re-simulates `outliers` standalone into `dir`: per outlier a
/// `outlier_<index>.row.json` (always), plus — when built with the `obs`
/// feature — a validated `outlier_<index>.trace.json` Perfetto trace and
/// `outlier_<index>.metrics.json`, recorded under a *fresh* pipeline
/// installed around just that replay (so drill-down works from any
/// thread, including parallel experiment workers, without touching the
/// caller's pipelines). With the `audit` feature the replay also runs
/// under a fresh audit pipeline and fails on any invariant violation.
///
/// # Errors
///
/// Sampling/simulation failures ([`FleetError`]), I/O failures writing
/// the artifacts, or an invalid trace export.
pub fn drill_down(
    spec: &PopulationSpec,
    outliers: &[Outlier],
    dir: &Path,
) -> Result<Vec<DrilldownRecord>, FleetError> {
    std::fs::create_dir_all(dir)?;
    let mut records = Vec::with_capacity(outliers.len());
    for outlier in outliers {
        let plan = sample_device(spec, outlier.index)?;
        #[cfg(feature = "obs")]
        let obs_pipeline = crate::obs::shared_pipeline();
        #[cfg(feature = "audit")]
        let audit_pipeline = crate::audit::shared_pipeline();
        let row = {
            #[cfg(feature = "obs")]
            let _obs = crate::obs::install(obs_pipeline.clone());
            #[cfg(feature = "audit")]
            let _audit = crate::audit::install(audit_pipeline.clone());
            crate::population::run_device_day(&plan)?
        };
        #[cfg(feature = "audit")]
        {
            let pipe = audit_pipeline.lock().expect("audit pipeline lock");
            if pipe.auditor().violations() > 0 {
                return Err(FleetError::InvalidConfig(format!(
                    "outlier {}: replay violated {} audit invariant(s)",
                    outlier.index,
                    pipe.auditor().violations()
                )));
            }
        }
        let mut files = Vec::new();
        let row_name = format!("outlier_{}.row.json", outlier.index);
        let row_json = serde_json::to_string_pretty(&row)
            .map_err(|e| FleetError::Serde(format!("outlier {}: {e:?}", outlier.index)))?;
        std::fs::write(dir.join(&row_name), row_json)?;
        files.push(row_name);
        #[cfg(not(feature = "obs"))]
        let trace_spans = 0u64;
        #[cfg(feature = "obs")]
        let trace_spans = {
            let pipe = obs_pipeline.lock().expect("obs pipeline lock");
            let trace = pipe.trace_json();
            let metrics = pipe.metrics_json();
            drop(pipe);
            let summary = fleet_obs::validate_chrome_trace(&trace).map_err(|e| {
                FleetError::Serde(format!("outlier {}: invalid trace: {e}", outlier.index))
            })?;
            let trace_name = format!("outlier_{}.trace.json", outlier.index);
            let metrics_name = format!("outlier_{}.metrics.json", outlier.index);
            std::fs::write(dir.join(&trace_name), trace)?;
            std::fs::write(dir.join(&metrics_name), metrics)?;
            files.push(trace_name);
            files.push(metrics_name);
            summary.spans as u64
        };
        records.push(DrilldownRecord {
            index: outlier.index,
            seed: plan.seed,
            class: plan.class.clone(),
            persona: plan.persona.clone(),
            scheme: plan.config.scheme,
            score: outlier.score,
            cohort_fingerprint: outlier.fingerprint,
            replayed_fingerprint: row.fingerprint,
            matched: row.fingerprint == outlier.fingerprint,
            trace_spans,
            files,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(total: u64, fault: u64, decompress: u64, gc: u64) -> LaunchSpanSample {
        LaunchSpanSample {
            total_us: total,
            cpu_us: total - fault - gc,
            fault_in_us: fault,
            decompress_us: decompress,
            gc_pause_us: gc,
        }
    }

    fn candidate(index: u32, peak: u64, kills: u64) -> OutlierCandidate {
        OutlierCandidate { index, peak_hot_us: peak, kills, fingerprint: 0x1000 + index as u64 }
    }

    #[test]
    fn attribution_shares_reconcile() {
        let mut a = LaunchAttribution::new();
        a.absorb(&sample(1000, 400, 100, 100));
        a.absorb(&sample(3000, 1500, 0, 300));
        assert_eq!(a.launches(), 2);
        let cpu = a.share_pct(&a.cpu_us);
        let fault = a.share_pct(&a.fault_in_us);
        let gc = a.share_pct(&a.gc_pause_us);
        assert!((cpu + fault + gc - 100.0).abs() < 1e-9, "children tile the root");
        assert!(a.share_pct(&a.decompress_us) <= fault, "decompress nests under fault_in");
    }

    #[test]
    fn outlier_pool_keeps_top_k_commutatively() {
        // top-K of the union == merge of per-shard top-Ks.
        let all: Vec<OutlierCandidate> =
            (0..40).map(|i| candidate(i, ((i as u64 * 7919) % 100) * 10, 0)).collect();
        let mut whole = OutlierPool::new(8);
        for c in &all {
            whole.offer(c.peak_hot_us, *c);
        }
        let mut shards = vec![OutlierPool::new(8); 3];
        for (i, c) in all.iter().enumerate() {
            shards[(i * 2 + 1) % 3].offer(c.peak_hot_us, *c);
        }
        let mut merged = OutlierPool::new(8);
        for idx in [2, 0, 1] {
            merged.merge(&shards[idx]);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.entries.len(), 8);
        for w in merged.entries.windows(2) {
            assert!(w[0].0 >= w[1].0, "pool stays value-sorted");
        }
    }

    #[test]
    fn rank_outliers_dedupes_and_orders_by_score() {
        let mut t = CohortTelemetry::new(8, 4);
        // A background population of quiet devices plus two loud ones:
        // device 6 has the latency spike, device 3 the kill storm, and
        // device 6 is also second-worst on kills (pool overlap).
        let quiet = 100u64;
        for i in 0..8u32 {
            let (peak, kills) = match i {
                6 => (5000, 3),
                3 => (quiet, 9),
                _ => (quiet, 0),
            };
            let c = candidate(i, peak, kills);
            t.latency_outliers.offer(peak, c);
            t.kill_outliers.offer(kills, c);
            t.peak_hot_us.record(peak);
            t.device_kills.record(kills);
        }
        let ranked = t.rank_outliers(2);
        assert_eq!(ranked.len(), 2);
        let indices: Vec<u32> = ranked.iter().map(|o| o.index).collect();
        assert!(indices.contains(&6) && indices.contains(&3), "both loud devices rank");
        assert!(ranked[0].score >= ranked[1].score);
        assert!(ranked.iter().all(|o| o.score > 1.0), "loud devices are real outliers");
    }

    #[test]
    fn slo_points_window_the_slices() {
        let mut t = CohortTelemetry::new(16, 4); // 4 slices
        for (i, s) in t.slices.iter_mut().enumerate() {
            s.devices = 4;
            s.lmk_kills = i as u64; // 0,1,2,3 kills
            s.hot_launch_us.record_n(100_000 * (i as u64 + 1), 10);
        }
        let lat = SloSpec::hot_launch_ms("lat", 9900, 250, 2);
        let points = t.slo_points(&lat);
        assert_eq!(points.len(), 2, "4 slices in windows of 2");
        assert_eq!((points[0].window_start, points[0].window_end), (0, 2));
        assert!(points[0].value_milli < points[1].value_milli);
        let kills = SloSpec::lmk_kills_milli("kills", 500, 4);
        let kp = t.slo_points(&kills);
        assert_eq!(kp.len(), 1);
        // 6 kills over 16 devices = 375 milli-kills/device-day.
        assert_eq!(kp[0].value_milli, 375);
        let verdicts = t.evaluate(&[lat, kills]);
        assert_eq!(verdicts.len(), 2);
        assert!(!verdicts[0].pass, "400ms p99 window breaches a 250ms objective");
    }

    #[test]
    fn empty_windows_are_skipped_not_breached() {
        let t = CohortTelemetry::new(8, 4);
        let spec = SloSpec::hot_launch_ms("lat", 9900, 1, 1);
        assert!(t.slo_points(&spec).is_empty(), "no data, no windows");
        let verdict = &t.evaluate(std::slice::from_ref(&spec))[0];
        assert!(verdict.pass);
        assert_eq!(verdict.windows, 0);
    }
}
