//! Process ids, page keys and page state.

use serde::{Deserialize, Serialize};

/// Size of an OS page in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(pub u32);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid#{}", self.0)
    }
}

/// A page of a process's address space, identified by `(pid, page index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageKey {
    /// Owning process.
    pub pid: Pid,
    /// Page index: virtual address divided by [`PAGE_SIZE`].
    pub index: u64,
}

impl PageKey {
    /// The page covering `addr` in process `pid`.
    pub fn of_addr(pid: Pid, addr: u64) -> Self {
        PageKey { pid, index: addr / PAGE_SIZE }
    }

    /// First byte address of the page.
    pub fn base_addr(&self) -> u64 {
        self.index * PAGE_SIZE
    }
}

/// Where a mapped page currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageState {
    /// In a DRAM frame.
    Resident,
    /// Not in DRAM: anonymous pages sit in the swap partition, file-backed
    /// pages were simply dropped (their backing file is the copy).
    Swapped,
}

/// What backs a page. The distinction drives both eviction cost (file pages
/// are dropped for free, anonymous pages need a swap slot) and fault cost
/// (file reads stream at full flash bandwidth with readahead; swap-ins crawl
/// at the paper's measured 20.3 MB/s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// Anonymous memory (Java heap, malloc, graphics buffers).
    Anon,
    /// File-backed memory (code, resources, mmapped assets).
    File,
}

/// Iterates the page indices spanned by `[base, base + len)`.
///
/// Returns an empty iterator when `len == 0`.
pub fn pages_in_range(base: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = base / PAGE_SIZE;
    let last = if len == 0 { first } else { (base + len - 1) / PAGE_SIZE + 1 };
    let end = if len == 0 { first } else { last };
    first..end
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_key_of_addr() {
        let k = PageKey::of_addr(Pid(3), 8192 + 17);
        assert_eq!(k.index, 2);
        assert_eq!(k.base_addr(), 8192);
        assert_eq!(k.pid, Pid(3));
    }

    #[test]
    fn range_iteration() {
        assert_eq!(pages_in_range(0, 4096).collect::<Vec<_>>(), vec![0]);
        assert_eq!(pages_in_range(0, 4097).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(pages_in_range(4095, 2).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(pages_in_range(100, 0).count(), 0);
        assert_eq!(pages_in_range(8192, 8192).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn display() {
        assert_eq!(Pid(7).to_string(), "pid#7");
    }
}
