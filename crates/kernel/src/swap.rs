//! The flash-based swap device.
//!
//! §3.2 of the paper measures the Pixel 3's storage with tinymembench and
//! FIO: DRAM reads at 9182.7 MB/s versus 20.3 MB/s from the flash swap
//! partition — a ~452× gap. Those two constants are the defaults here and
//! drive every page-fault latency in the simulation.

use crate::fault::{FaultPlan, ReadFault};
use crate::page::PAGE_SIZE;
use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// What backs the swap space.
///
/// The paper evaluates a flash partition (§6), but mainstream vendors also
/// ship compressed-RAM swap ("RAM plus", "memory expansion" — the zram
/// devices of §2.2's citations). Zram trades DRAM for capacity: swapped
/// pages still occupy `1/compression_ratio` of a frame, but come back at
/// memcpy-plus-decompress speed instead of flash speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SwapMedium {
    /// A flash block device (the paper's 2 GB partition).
    Flash,
    /// Compressed RAM with the given compression ratio (typically ~2.8x
    /// with LZ4 on app heaps).
    Zram {
        /// Bytes of logical swap stored per byte of DRAM consumed.
        compression_ratio: f64,
    },
}

/// Swap device parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwapConfig {
    /// Device capacity in bytes (the paper uses a 2 GB partition, §6).
    pub capacity_bytes: u64,
    /// Sequential read bandwidth in bytes/second (paper: 20.3 MB/s).
    pub read_bw: f64,
    /// Write bandwidth in bytes/second (flash writes are slower; 15 MB/s).
    pub write_bw: f64,
    /// Fixed per-operation latency (request setup + flash access).
    pub op_latency: SimDuration,
    /// What backs the space.
    pub medium: SwapMedium,
}

impl Default for SwapConfig {
    fn default() -> Self {
        SwapConfig {
            capacity_bytes: 2 * 1024 * 1024 * 1024,
            read_bw: 20.3e6,
            write_bw: 15.0e6,
            op_latency: SimDuration::from_micros(80),
            medium: SwapMedium::Flash,
        }
    }
}

impl SwapConfig {
    /// A zram device: `capacity_bytes` of logical space at LZ4-class speed,
    /// consuming DRAM at `1/compression_ratio` per stored page.
    ///
    /// # Errors
    ///
    /// Returns a message when `compression_ratio` is not greater than 1
    /// (zram below 1:1 compression is pointless) or the config is otherwise
    /// invalid.
    pub fn try_zram(capacity_bytes: u64, compression_ratio: f64) -> Result<Self, String> {
        SwapConfig::builder().capacity_bytes(capacity_bytes).zram(compression_ratio).build()
    }

    /// Starts a builder with the flash defaults, consistent with
    /// `DeviceConfig::builder()`.
    pub fn builder() -> SwapConfigBuilder {
        SwapConfigBuilder { config: SwapConfig::default() }
    }

    /// Checks the configuration is physically meaningful.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first invalid field: a zram compression
    /// ratio not above 1, a non-positive bandwidth, or zero capacity.
    pub fn validate(&self) -> Result<(), String> {
        if let SwapMedium::Zram { compression_ratio } = self.medium {
            if !compression_ratio.is_finite() || compression_ratio <= 1.0 {
                return Err(format!(
                    "zram compression_ratio {compression_ratio} must be > 1 \
                     (below 1:1 compression is pointless)"
                ));
            }
        }
        if !self.read_bw.is_finite() || self.read_bw <= 0.0 {
            return Err(format!("swap read_bw {} must be positive", self.read_bw));
        }
        if !self.write_bw.is_finite() || self.write_bw <= 0.0 {
            return Err(format!("swap write_bw {} must be positive", self.write_bw));
        }
        if self.capacity_bytes == 0 {
            return Err("swap capacity_bytes must be non-zero".to_string());
        }
        Ok(())
    }
}

/// Builder for [`SwapConfig`], consistent with `DeviceConfig::builder()`:
/// starts from the flash defaults, validates on [`SwapConfigBuilder::build`]
/// instead of panicking.
///
/// # Examples
///
/// ```
/// use fleet_kernel::SwapConfig;
///
/// let zram = SwapConfig::builder()
///     .capacity_bytes(512 * 1024 * 1024)
///     .zram(2.8)
///     .build()
///     .expect("valid zram tier");
/// assert!(SwapConfig::builder().zram(0.9).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SwapConfigBuilder {
    config: SwapConfig,
}

impl SwapConfigBuilder {
    /// Device capacity in bytes.
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.config.capacity_bytes = bytes;
        self
    }

    /// Sequential read bandwidth in bytes/second.
    pub fn read_bw(mut self, bw: f64) -> Self {
        self.config.read_bw = bw;
        self
    }

    /// Write bandwidth in bytes/second.
    pub fn write_bw(mut self, bw: f64) -> Self {
        self.config.write_bw = bw;
        self
    }

    /// Fixed per-operation latency.
    pub fn op_latency(mut self, latency: SimDuration) -> Self {
        self.config.op_latency = latency;
        self
    }

    /// Backs the space with flash (the default).
    pub fn flash(mut self) -> Self {
        self.config.medium = SwapMedium::Flash;
        self
    }

    /// Backs the space with compressed RAM at the given ratio, switching
    /// the speed constants to LZ4-class defaults (override with the
    /// bandwidth/latency setters afterwards if needed).
    pub fn zram(mut self, compression_ratio: f64) -> Self {
        self.config.medium = SwapMedium::Zram { compression_ratio };
        self.config.read_bw = 1.2e9;
        self.config.write_bw = 0.8e9;
        self.config.op_latency = SimDuration::from_micros(4);
        self
    }

    /// Sets the backing medium directly.
    pub fn medium(mut self, medium: SwapMedium) -> Self {
        self.config.medium = medium;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`SwapConfig::validate`] failure.
    pub fn build(self) -> Result<SwapConfig, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// One completed swap operation: how much moved, what it cost, and how much
/// of that cost was injected degradation (latency spikes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwapOp {
    /// Pages transferred.
    pub pages: u64,
    /// Total stall charged to the caller (transfer + any spike).
    pub latency: SimDuration,
    /// The injected-spike share of `latency` (zero on a clean op).
    pub degraded: SimDuration,
}

/// Why a swap operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapError {
    /// A transient I/O error: the same operation may succeed on retry.
    TransientIo,
    /// A permanent media error: retrying cannot help. For a file-backed
    /// page the caller refaults from the original file; for an anonymous
    /// page the data is lost and the owning process must die.
    PermanentIo,
    /// No slot is free — either the device is genuinely full or an injected
    /// exhaustion window refused the reservation.
    Full,
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::TransientIo => write!(f, "transient swap I/O error"),
            SwapError::PermanentIo => write!(f, "permanent swap I/O error"),
            SwapError::Full => write!(f, "swap device full"),
        }
    }
}

impl std::error::Error for SwapError {}

/// The swap partition: a capacity-limited store with asymmetric read/write
/// cost.
///
/// # Examples
///
/// ```
/// use fleet_kernel::{SwapConfig, SwapDevice};
///
/// let mut swap = SwapDevice::new(SwapConfig::default());
/// assert!(swap.reserve_page());
/// let fault = swap.read_pages(1);
/// assert!(fault.as_micros() > 100); // ~280 µs for 4 KiB at 20.3 MB/s
/// ```
#[derive(Debug, Clone)]
pub struct SwapDevice {
    config: SwapConfig,
    used_pages: u64,
    total_pages_written: u64,
    total_pages_read: u64,
    /// Deterministic fault schedule; a quiet default plan until one is
    /// installed, so plain devices never inject anything.
    fault: FaultPlan,
    /// Zram only: stored pages that failed compression and occupy a full
    /// frame each. Always `<= used_pages`.
    raw_pages: u64,
    /// Failed fallible operations (injected read/write errors and injected
    /// reservation refusals; genuine capacity exhaustion is not an error).
    io_errors: u64,
    /// Slots permanently removed from service after a detected corruption
    /// (DESIGN.md §14). Quarantined slots count against capacity but hold
    /// no page: `used_pages + quarantined_pages <= capacity_pages`.
    quarantined_pages: u64,
}

/// Schema-stable per-tier counters, returned by [`SwapDevice::tier_stats`]
/// and aggregated into `SwapStats` by the tier stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierStats {
    /// Pages currently stored in the tier.
    pub stored_pages: u64,
    /// Stored pages held raw after a compression failure (zram only).
    pub incompressible_pages: u64,
    /// Total pages ever written to the tier.
    pub pages_written: u64,
    /// Total pages ever read back from the tier.
    pub pages_read: u64,
    /// Failed fallible operations (injected I/O errors and refusals).
    pub io_errors: u64,
    /// DRAM frames the stored pages consume (zero for flash).
    pub frames_consumed: u64,
    /// Slots quarantined after a detected corruption (removed from
    /// capacity for the rest of the run; zero unless the integrity layer
    /// is armed).
    pub quarantined_pages: u64,
}

impl SwapDevice {
    /// Creates an empty swap device (quiet fault plan: nothing injected).
    pub fn new(config: SwapConfig) -> Self {
        SwapDevice {
            config,
            used_pages: 0,
            total_pages_written: 0,
            total_pages_read: 0,
            fault: FaultPlan::default(),
            raw_pages: 0,
            io_errors: 0,
            quarantined_pages: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &SwapConfig {
        &self.config
    }

    /// Installs (arms) a fault plan. Replacing the plan mid-run resets its
    /// stream position.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// True when an armed (non-quiet) fault plan can inject faults. The
    /// degradation machinery in the memory manager and device layers is
    /// gated on this so quiet runs stay bit-identical to fault-free builds.
    pub fn fault_active(&self) -> bool {
        !self.fault.is_quiet()
    }

    /// The installed fault plan (decision stream for callers that roll
    /// per-page fates, e.g. the memory manager's fault-in path).
    pub fn fault_plan_mut(&mut self) -> &mut FaultPlan {
        &mut self.fault
    }

    /// Capacity in pages.
    pub fn capacity_pages(&self) -> u64 {
        self.config.capacity_bytes / PAGE_SIZE
    }

    /// Pages currently stored.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Free page slots (quarantined slots are permanently out of service).
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages() - self.used_pages - self.quarantined_pages
    }

    /// True when no slot is free.
    pub fn is_full(&self) -> bool {
        self.used_pages + self.quarantined_pages >= self.capacity_pages()
    }

    /// Reserves a slot for one page being swapped out. Returns false when
    /// the device is full (the page then cannot be evicted).
    pub fn reserve_page(&mut self) -> bool {
        if self.is_full() {
            return false;
        }
        self.used_pages += 1;
        self.total_pages_written += 1;
        true
    }

    /// Reserves a slot through the fault plan: an armed plan may refuse the
    /// reservation (injected exhaustion window) or store the page raw on a
    /// zram device (compression failure).
    ///
    /// # Errors
    ///
    /// [`SwapError::Full`] when no slot is free or the reservation was
    /// refused by an injected exhaustion window.
    pub fn try_reserve(&mut self) -> Result<(), SwapError> {
        if self.is_full() {
            return Err(SwapError::Full);
        }
        if self.fault.reserve_fault() {
            self.io_errors += 1;
            return Err(SwapError::Full);
        }
        let raw =
            matches!(self.config.medium, SwapMedium::Zram { .. }) && self.fault.compress_fault();
        let reserved = self.reserve_page();
        debug_assert!(reserved, "fullness checked above");
        if raw {
            self.raw_pages += 1;
        }
        Ok(())
    }

    /// Whether the next page stored on this device would fail compression
    /// and sit raw (draws the fate from the fault plan; always false for
    /// flash media and quiet plans). The tier stack calls this *before*
    /// reserving so incompressible pages can fall through to the flash tier
    /// instead of pinning a full DRAM frame.
    pub fn next_store_incompressible(&mut self) -> bool {
        matches!(self.config.medium, SwapMedium::Zram { .. }) && self.fault.compress_fault()
    }

    /// Reserves a slot with an externally-decided compressibility fate
    /// (tier-stack use: the stack draws the fate once via
    /// [`SwapDevice::next_store_incompressible`] and routes the page).
    ///
    /// # Errors
    ///
    /// [`SwapError::Full`] when no slot is free or the reservation was
    /// refused by an injected exhaustion window.
    pub fn try_reserve_decided(&mut self, raw: bool) -> Result<(), SwapError> {
        if self.is_full() {
            return Err(SwapError::Full);
        }
        if self.fault.reserve_fault() {
            self.io_errors += 1;
            return Err(SwapError::Full);
        }
        let reserved = self.reserve_page();
        debug_assert!(reserved, "fullness checked above");
        if raw {
            self.raw_pages += 1;
        }
        Ok(())
    }

    /// Decides the fate of one write-back through the fault plan (quiet
    /// plans never fail). On error the caller must leave the victim page
    /// resident.
    ///
    /// # Errors
    ///
    /// [`SwapError::TransientIo`] when the injected write-back fails.
    pub fn try_write(&mut self, n: u64) -> Result<SwapOp, SwapError> {
        if self.fault.write_fault() {
            self.io_errors += 1;
            return Err(SwapError::TransientIo);
        }
        Ok(SwapOp { pages: n, latency: self.write_cost(n), degraded: SimDuration::ZERO })
    }

    /// Reads `n` pages through the fault plan: an armed plan may fail the
    /// operation or stretch it with a device-internal GC pause.
    ///
    /// # Errors
    ///
    /// [`SwapError::TransientIo`] (retry may help) or
    /// [`SwapError::PermanentIo`] (it will not).
    pub fn try_read(&mut self, n: u64) -> Result<SwapOp, SwapError> {
        if n == 0 {
            return Ok(SwapOp::default());
        }
        match self.fault.read_fault() {
            Some(ReadFault::Permanent) => {
                self.io_errors += 1;
                Err(SwapError::PermanentIo)
            }
            Some(ReadFault::Transient) => {
                self.io_errors += 1;
                Err(SwapError::TransientIo)
            }
            Some(ReadFault::Spike(extra)) => {
                Ok(SwapOp { pages: n, latency: self.read_pages(n) + extra, degraded: extra })
            }
            None => {
                Ok(SwapOp { pages: n, latency: self.read_pages(n), degraded: SimDuration::ZERO })
            }
        }
    }

    /// Releases a slot (page faulted back in or unmapped while swapped).
    ///
    /// # Panics
    ///
    /// Panics if the device is empty.
    pub fn release_page(&mut self) {
        assert!(self.used_pages > 0, "releasing a page from an empty swap device");
        self.used_pages -= 1;
        // Raw-stored pages are not tracked per slot; clamping keeps the
        // count consistent (releases are attributed to compressed slots
        // first, a deterministic approximation documented in DESIGN.md §9).
        self.raw_pages = self.raw_pages.min(self.used_pages);
    }

    /// Releases a slot into quarantine: the stored page is gone (corruption
    /// detected, DESIGN.md §14) and the slot is never handed out again —
    /// capacity shrinks by one for the rest of the run.
    ///
    /// # Panics
    ///
    /// Panics if the device is empty.
    pub fn release_page_quarantined(&mut self) {
        self.release_page();
        self.quarantined_pages += 1;
    }

    /// Slots quarantined so far (zero unless the integrity layer is armed).
    pub fn quarantined_pages(&self) -> u64 {
        self.quarantined_pages
    }

    /// Latency of reading `n` pages back from the device (one operation:
    /// a single setup cost plus bandwidth-limited transfer). This is the
    /// cost a faulting thread stalls for.
    pub fn read_pages(&mut self, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.total_pages_read += n;
        let transfer = (n * PAGE_SIZE) as f64 / self.config.read_bw;
        self.config.op_latency + SimDuration::from_secs_f64(transfer)
    }

    /// Latency of writing `n` pages out (charged to kswapd, not mutators).
    pub fn write_cost(&self, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        let transfer = (n * PAGE_SIZE) as f64 / self.config.write_bw;
        self.config.op_latency + SimDuration::from_secs_f64(transfer)
    }

    /// Total pages ever written to the device.
    pub fn total_pages_written(&self) -> u64 {
        self.total_pages_written
    }

    /// Total pages ever read from the device.
    pub fn total_pages_read(&self) -> u64 {
        self.total_pages_read
    }

    /// Total bytes moved in either direction (for the power model).
    pub fn total_bytes_moved(&self) -> u64 {
        (self.total_pages_written + self.total_pages_read) * PAGE_SIZE
    }

    /// Zram only: stored pages that failed compression and occupy a full
    /// frame each.
    pub fn raw_pages(&self) -> u64 {
        self.raw_pages
    }

    /// Failed fallible operations so far (injected I/O errors and injected
    /// reservation refusals).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// The schema-stable counter snapshot for this device as one tier.
    pub fn tier_stats(&self) -> TierStats {
        TierStats {
            stored_pages: self.used_pages,
            incompressible_pages: self.raw_pages,
            pages_written: self.total_pages_written,
            pages_read: self.total_pages_read,
            io_errors: self.io_errors,
            frames_consumed: self.frames_consumed(),
            quarantined_pages: self.quarantined_pages,
        }
    }

    /// DRAM frames consumed by the stored pages: zero for flash, the
    /// compressed size for zram. Incompressible pages (injected compression
    /// failures) are charged a full frame each.
    pub fn frames_consumed(&self) -> u64 {
        match self.config.medium {
            SwapMedium::Flash => 0,
            SwapMedium::Zram { compression_ratio } => {
                let compressed = self.used_pages - self.raw_pages;
                (compressed as f64 / compression_ratio).ceil() as u64 + self.raw_pages
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_accounting() {
        let mut swap =
            SwapDevice::new(SwapConfig { capacity_bytes: 3 * PAGE_SIZE, ..SwapConfig::default() });
        assert_eq!(swap.capacity_pages(), 3);
        assert!(swap.reserve_page());
        assert!(swap.reserve_page());
        assert!(swap.reserve_page());
        assert!(swap.is_full());
        assert!(!swap.reserve_page());
        swap.release_page();
        assert_eq!(swap.free_pages(), 1);
        assert!(swap.reserve_page());
    }

    #[test]
    fn read_latency_matches_bandwidth() {
        let mut swap = SwapDevice::new(SwapConfig::default());
        let one = swap.read_pages(1);
        // 4096 B / 20.3 MB/s ≈ 201 µs + 80 µs op latency.
        let expect_us = 4096.0 / 20.3e6 * 1e6 + 80.0;
        assert!((one.as_micros() as f64 - expect_us).abs() < 2.0, "{one}");
        // Batched read amortises the op latency.
        let ten = swap.read_pages(10);
        assert!(ten < one * 10);
        assert_eq!(swap.total_pages_read(), 11);
    }

    #[test]
    fn zero_page_ops_are_free() {
        let mut swap = SwapDevice::new(SwapConfig::default());
        assert_eq!(swap.read_pages(0), SimDuration::ZERO);
        assert_eq!(swap.write_cost(0), SimDuration::ZERO);
    }

    #[test]
    fn dram_to_swap_gap_is_about_452x() {
        // Sanity-check the paper's constants: 9182.7 / 20.3 ≈ 452.
        let gap: f64 = 9182.7 / 20.3;
        assert!((gap - 452.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty swap")]
    fn release_from_empty_panics() {
        SwapDevice::new(SwapConfig::default()).release_page();
    }

    #[test]
    fn zram_reads_are_orders_of_magnitude_faster() {
        let mut flash = SwapDevice::new(SwapConfig::default());
        let mut zram = SwapDevice::new(SwapConfig::try_zram(1024 * 1024 * 1024, 2.8).unwrap());
        let f = flash.read_pages(100);
        let z = zram.read_pages(100);
        assert!(f.as_nanos() > 50 * z.as_nanos(), "flash {f} vs zram {z}");
    }

    #[test]
    fn zram_consumes_dram_flash_does_not() {
        let mut flash = SwapDevice::new(SwapConfig::default());
        let mut zram = SwapDevice::new(SwapConfig::try_zram(1024 * 1024 * 1024, 2.0).unwrap());
        for _ in 0..100 {
            assert!(flash.reserve_page());
            assert!(zram.reserve_page());
        }
        assert_eq!(flash.frames_consumed(), 0);
        assert_eq!(zram.frames_consumed(), 50);
        zram.release_page();
        assert_eq!(zram.frames_consumed(), 50); // ceil(99/2)
    }

    #[test]
    fn zram_ratio_must_exceed_one() {
        let err = SwapConfig::try_zram(1024, 0.9).unwrap_err();
        assert!(err.contains("pointless"), "{err}");
        assert!(SwapConfig::try_zram(1024, 1.0).is_err());
        assert!(SwapConfig::try_zram(1024, f64::NAN).is_err());
        assert!(SwapConfig::try_zram(1024, 2.8).is_ok());
    }

    #[test]
    fn builder_validates_instead_of_panicking() {
        let cfg = SwapConfig::builder()
            .capacity_bytes(8 * PAGE_SIZE)
            .zram(2.0)
            .build()
            .expect("valid zram config");
        assert_eq!(cfg.capacity_bytes, 8 * PAGE_SIZE);
        assert_eq!(cfg.medium, SwapMedium::Zram { compression_ratio: 2.0 });
        assert_eq!(cfg.op_latency, SimDuration::from_micros(4));
        assert!(SwapConfig::builder().capacity_bytes(0).build().is_err());
        assert!(SwapConfig::builder().read_bw(0.0).build().is_err());
        assert!(SwapConfig::builder().write_bw(-1.0).build().is_err());
        // Defaults alone are valid flash.
        let flash = SwapConfig::builder().build().unwrap();
        assert_eq!(flash, SwapConfig::default());
    }

    #[test]
    fn tier_stats_snapshot_counters() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut swap = SwapDevice::new(SwapConfig::default());
        assert!(swap.try_reserve().is_ok());
        let _ = swap.read_pages(3);
        swap.install_fault_plan(FaultPlan::new(
            5,
            FaultConfig { write_error_rate: 1.0, ..FaultConfig::default() },
        ));
        assert!(swap.try_write(1).is_err());
        let stats = swap.tier_stats();
        assert_eq!(stats.stored_pages, 1);
        assert_eq!(stats.pages_written, 1);
        assert_eq!(stats.pages_read, 3);
        assert_eq!(stats.io_errors, 1);
        assert_eq!(stats.frames_consumed, 0);
        assert_eq!(stats.incompressible_pages, 0);
    }

    #[test]
    fn decided_reservation_routes_raw_externally() {
        let mut zram = SwapDevice::new(SwapConfig::try_zram(1024 * 1024, 2.0).unwrap());
        // Quiet plan: the probe never marks a page incompressible.
        assert!(!zram.next_store_incompressible());
        zram.try_reserve_decided(false).unwrap();
        assert_eq!(zram.raw_pages(), 0);
        zram.try_reserve_decided(true).unwrap();
        assert_eq!(zram.raw_pages(), 1);
        assert_eq!(zram.used_pages(), 2);
    }

    #[test]
    fn quiet_try_ops_match_infallible_ops() {
        let mut a = SwapDevice::new(SwapConfig::default());
        let mut b = SwapDevice::new(SwapConfig::default());
        assert!(a.try_reserve().is_ok());
        assert!(b.reserve_page());
        assert_eq!(a.used_pages(), b.used_pages());
        let op = a.try_read(5).expect("quiet reads never fail");
        assert_eq!(op.latency, b.read_pages(5));
        assert_eq!(op.degraded, SimDuration::ZERO);
        let w = a.try_write(3).expect("quiet writes never fail");
        assert_eq!(w.latency, b.write_cost(3));
    }

    #[test]
    fn armed_plan_injects_read_errors_and_spikes() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut swap = SwapDevice::new(SwapConfig::default());
        swap.install_fault_plan(FaultPlan::new(
            1,
            FaultConfig { read_transient_rate: 1.0, ..FaultConfig::default() },
        ));
        assert!(swap.fault_active());
        assert_eq!(swap.try_read(1), Err(SwapError::TransientIo));

        swap.install_fault_plan(FaultPlan::new(
            1,
            FaultConfig { latency_spike_rate: 1.0, ..FaultConfig::default() },
        ));
        let clean = SwapDevice::new(SwapConfig::default()).read_pages(1);
        let op = swap.try_read(1).expect("spikes still succeed");
        assert_eq!(op.latency, clean + op.degraded);
        assert!(op.degraded > SimDuration::ZERO);
    }

    #[test]
    fn injected_exhaustion_refuses_despite_capacity() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut swap = SwapDevice::new(SwapConfig::default());
        swap.install_fault_plan(FaultPlan::new(
            2,
            FaultConfig { slot_exhaustion_rate: 1.0, ..FaultConfig::default() },
        ));
        assert_eq!(swap.try_reserve(), Err(SwapError::Full));
        assert_eq!(swap.used_pages(), 0);
        assert!(!swap.is_full());
    }

    #[test]
    fn quarantined_slots_shrink_capacity_permanently() {
        let mut swap =
            SwapDevice::new(SwapConfig { capacity_bytes: 3 * PAGE_SIZE, ..SwapConfig::default() });
        assert!(swap.reserve_page());
        assert!(swap.reserve_page());
        swap.release_page_quarantined();
        assert_eq!(swap.quarantined_pages(), 1);
        assert_eq!(swap.used_pages(), 1);
        // Capacity 3, one used, one quarantined: exactly one slot left.
        assert_eq!(swap.free_pages(), 1);
        assert!(swap.reserve_page());
        assert!(swap.is_full());
        assert!(!swap.reserve_page(), "a quarantined slot is never reused");
        assert_eq!(swap.tier_stats().quarantined_pages, 1);
    }

    #[test]
    fn incompressible_pages_consume_full_frames() {
        use crate::fault::{FaultConfig, FaultPlan};
        let mut zram = SwapDevice::new(SwapConfig::try_zram(1024 * 1024 * 1024, 2.0).unwrap());
        zram.install_fault_plan(FaultPlan::new(
            3,
            FaultConfig { compress_fail_rate: 1.0, ..FaultConfig::default() },
        ));
        for _ in 0..10 {
            zram.try_reserve().expect("capacity remains");
        }
        assert_eq!(zram.raw_pages(), 10);
        assert_eq!(zram.frames_consumed(), 10); // raw: no 2:1 benefit
        zram.release_page();
        assert_eq!(zram.raw_pages(), 9);
    }
}
