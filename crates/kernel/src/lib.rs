//! Linux memory-subsystem model for the Fleet reproduction.
//!
//! The paper's kernel side consists of: the page-granularity LRU swap
//! mechanism ("the swap mechanism offloads the least-recently-used pages to
//! the swap partition", §2.2), a flash swap partition ~452× slower than DRAM
//! (§3.2), watermark-driven reclaim, the `madvise` system call extended with
//! Fleet's `COLD_RUNTIME`/`HOT_RUNTIME` options (§5.3.2), and the low-memory
//! killer that terminates cached apps under pressure (§3.2 "may induce
//! terminations of cached apps").
//!
//! This crate models all of that at page granularity:
//!
//! * [`page`] — process ids, page keys and access kinds,
//! * [`lru`] — a second-chance LRU over all mapped pages,
//! * [`swap`] — the swap device with the paper's measured bandwidths,
//! * [`tier`] — the tiered swap stack (an optional zram front tier with
//!   hotness-aware placement, in front of the flash tier),
//! * [`mm`] — the memory manager tying frames, LRU, swap, reclaim and
//!   the madvise extensions together,
//! * [`lmk`] — the low-memory-killer victim policy and vocabulary types
//!   (kill execution lives in [`reclaim`]),
//! * [`reclaim`] — the unified reclaim surface: [`ReclaimPolicy`]
//!   (reactive vs SWAM-style proactive), [`KillPolicy`] (coldest-first vs
//!   WSS-weighted oom scoring) and the [`ReclaimDriver`] that owns the
//!   daemon tick,
//! * [`fault`] — deterministic fault injection (I/O errors, latency
//!   spikes, slot exhaustion, zram compression failures, silent slot
//!   corruption, torn writebacks) for the degradation paths; quiet by
//!   default,
//! * [`integrity`] — the data-integrity layer: per-slot FNV-1a checksums,
//!   slot quarantine and runtime tier retirement policy; off by default.
//!
//! # Examples
//!
//! ```
//! use fleet_kernel::{AccessKind, MemoryManager, MmConfig, Pid};
//!
//! let mut mm = MemoryManager::new(MmConfig::small_test());
//! let pid = Pid(1);
//! mm.map_range(pid, 0, 64 * 4096).unwrap();
//! let outcome = mm.access(pid, 0, 128, AccessKind::Mutator);
//! assert_eq!(outcome.faulted_pages, 0); // freshly mapped pages are resident
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod integrity;
pub mod lmk;
pub mod lru;
pub mod mm;
pub mod page;
pub mod reclaim;
pub mod swap;
pub mod tier;

pub use fault::{retry_backoff, FaultConfig, FaultPlan, ReadFault, FAULT_RETRY_MAX};
pub use integrity::IntegrityConfig;
pub use lmk::{LmkCandidate, LmkOutcome};
pub use lru::{LruHandle, LruQueue};
pub use mm::{
    AccessKind, AccessOutcome, Advice, KernelStats, MemoryManager, MmConfig, MmError, ScrubReport,
    WssSnapshot,
};
#[doc(hidden)]
pub use mm::{PageEntry, PageTable};
pub use page::{PageKey, PageKind, PageState, Pid, PAGE_SIZE};
pub use reclaim::{KillPolicy, ReclaimDriver, ReclaimPolicy, SwamParams};
pub use swap::{
    SwapConfig, SwapConfigBuilder, SwapDevice, SwapError, SwapMedium, SwapOp, TierStats,
};
pub use tier::{SwapStack, SwapStats, SwapTier};

// Send audit: population-scale cohort runs (fleet::population) move whole
// per-device kernel states onto worker threads, each worker owning its
// devices outright. Every stateful type in the mm stack must therefore be
// `Send`; these compile-time assertions turn an accidental Rc/RefCell (or a
// raw pointer without an explicit impl) anywhere in the state into a build
// error instead of a runtime surprise.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<MemoryManager>();
    assert_send::<SwapStack>();
    assert_send::<SwapDevice>();
    assert_send::<FaultPlan>();
    assert_send::<PageTable>();
    assert_send::<LruQueue>();
    assert_send::<ReclaimDriver>();
    assert_send::<KernelStats>();
};
