//! The low-memory-killer victim policy.
//!
//! Android's lmkd terminates cached (background) apps when reclaim cannot
//! keep up — "Android starts to kill apps when there are 11 cached apps"
//! (§7.1). The policy here mirrors lmkd's oom-score ordering at the
//! granularity the experiments need: the foreground app is never killed;
//! among background apps, the one least recently in the foreground dies
//! first; pinned system processes are exempt.
//!
//! The execution surface of this module is deprecated: kill ordering is
//! now a [`crate::reclaim::KillPolicy`] variant and kill execution lives
//! in [`crate::reclaim::ReclaimDriver`], which also owns the reclaim
//! daemon tick. [`choose_victim`], [`Lmkd::kill_one`] and
//! [`Lmkd::escalate`] remain as one-release shims over the same logic
//! (`KillPolicy::ColdestFirst` is bit-identical); [`LmkCandidate`] and
//! [`LmkOutcome`] stay as the shared vocabulary types.

use crate::mm::{MemoryManager, MmError};
use crate::page::Pid;
use fleet_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One process as seen by the low-memory killer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LmkCandidate {
    /// The process.
    pub pid: Pid,
    /// True for the current foreground app (never killed).
    pub foreground: bool,
    /// When the app was last in the foreground; older means colder.
    pub last_foreground: SimTime,
    /// True for processes exempt from killing (system services).
    pub pinned: bool,
}

/// Picks the kill victim: the background, unpinned process that has been out
/// of the foreground the longest. Ties break on the lower pid for
/// determinism. Returns `None` when no process is killable.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use fleet_kernel::{choose_victim, LmkCandidate, Pid};
/// use fleet_sim::SimTime;
///
/// let procs = [
///     LmkCandidate { pid: Pid(1), foreground: true, last_foreground: SimTime::from_secs(90), pinned: false },
///     LmkCandidate { pid: Pid(2), foreground: false, last_foreground: SimTime::from_secs(10), pinned: false },
///     LmkCandidate { pid: Pid(3), foreground: false, last_foreground: SimTime::from_secs(50), pinned: false },
/// ];
/// assert_eq!(choose_victim(&procs), Some(Pid(2)));
/// ```
#[deprecated(note = "use `KillPolicy::ColdestFirst.choose(..)` via `ReclaimDriver` instead")]
pub fn choose_victim(candidates: &[LmkCandidate]) -> Option<Pid> {
    coldest_victim(candidates)
}

/// The coldest-first oom-score order shared by the deprecated
/// [`choose_victim`] shim and `KillPolicy::ColdestFirst`: the background,
/// unpinned process least recently in the foreground, ties on lower pid.
pub(crate) fn coldest_victim(candidates: &[LmkCandidate]) -> Option<Pid> {
    candidates
        .iter()
        .filter(|c| !c.foreground && !c.pinned)
        .min_by_key(|c| (c.last_foreground, c.pid))
        .map(|c| c.pid)
}

/// What one [`Lmkd::escalate`] round freed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LmkOutcome {
    /// Victims killed, in kill order (coldest first).
    pub killed: Vec<Pid>,
    /// DRAM frames freed by those kills.
    pub freed_frames: u64,
}

/// The stateful low-memory-killer driver.
///
/// [`choose_victim`] is the pure policy; `Lmkd` is the daemon around it: it
/// executes kills against the [`MemoryManager`] (unmapping every page of
/// the victim), keeps a log of kills for the device layer to reap, and —
/// the part the stateless function could not do — *escalates*: one victim
/// may free too little, so [`Lmkd::escalate`] keeps killing in oom-score
/// order until the free-frame target is met or nothing killable remains,
/// at which point it surfaces [`MmError::OutOfMemory`] instead of looping
/// forever.
///
/// # Examples
///
/// ```
/// # #![allow(deprecated)]
/// use fleet_kernel::{Lmkd, LmkCandidate, MemoryManager, MmConfig, Pid};
/// use fleet_sim::SimTime;
///
/// let mut mm = MemoryManager::new(MmConfig::small_test());
/// mm.map_range(Pid(2), 0, 32 * 4096).unwrap();
/// let mut lmkd = Lmkd::new();
/// let candidates = [LmkCandidate {
///     pid: Pid(2),
///     foreground: false,
///     last_foreground: SimTime::ZERO,
///     pinned: false,
/// }];
/// let target = mm.frames_capacity();
/// let out = lmkd.escalate(&mut mm, &candidates, target).unwrap();
/// assert_eq!(out.killed, vec![Pid(2)]);
/// assert_eq!(out.freed_frames, 32);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Lmkd {
    /// Kills not yet reaped by the device layer (which owns the process
    /// table and must drop its side of each victim).
    kill_log: Vec<Pid>,
    total_kills: u64,
    escalations: u64,
}

impl Lmkd {
    /// A fresh driver with an empty kill log.
    pub fn new() -> Self {
        Lmkd::default()
    }

    /// Kills the single coldest killable candidate, unmapping all its
    /// pages. Returns the victim and the frames freed, or `None` when
    /// nothing is killable. This is the legacy one-kill-per-stall policy;
    /// reclaim-stall paths use [`Lmkd::escalate`] instead.
    #[deprecated(note = "use `ReclaimDriver::kill_one` (with `KillPolicy::ColdestFirst`) instead")]
    pub fn kill_one(
        &mut self,
        mm: &mut MemoryManager,
        candidates: &[LmkCandidate],
    ) -> Option<(Pid, u64)> {
        let victim = coldest_victim(candidates)?;
        let freed = self.execute(mm, victim);
        Some((victim, freed))
    }

    /// Escalating kill round: terminates candidates in oom-score order
    /// (coldest `last_foreground` first) until `mm.free_frames()` reaches
    /// `target_free_frames`. A single victim freeing too little does not
    /// end the round — the next victim dies — so the watermark is either
    /// met or every killable process is gone.
    ///
    /// Kills performed before a failure stay in the kill log (see
    /// [`Lmkd::drain_kills`]); the caller must still reap them.
    ///
    /// # Errors
    ///
    /// [`MmError::OutOfMemory`] when no killable candidate remains and the
    /// target is still unmet.
    #[deprecated(note = "use `ReclaimDriver::escalate` (with `KillPolicy::ColdestFirst`) instead")]
    pub fn escalate(
        &mut self,
        mm: &mut MemoryManager,
        candidates: &[LmkCandidate],
        target_free_frames: u64,
    ) -> Result<LmkOutcome, MmError> {
        self.escalations += 1;
        let mut remaining: Vec<LmkCandidate> = candidates.to_vec();
        let mut out = LmkOutcome::default();
        while mm.free_frames() < target_free_frames {
            let Some(victim) = coldest_victim(&remaining) else {
                return Err(MmError::OutOfMemory);
            };
            remaining.retain(|c| c.pid != victim);
            let freed = self.execute(mm, victim);
            out.killed.push(victim);
            out.freed_frames += freed;
        }
        Ok(out)
    }

    /// Unmaps the victim and records the kill.
    fn execute(&mut self, mm: &mut MemoryManager, victim: Pid) -> u64 {
        let freed = mm.unmap_process(victim);
        mm.note_lmk_kill(victim, freed);
        self.kill_log.push(victim);
        self.total_kills += 1;
        freed
    }

    /// Takes the kills the device layer has not yet reaped (process-table
    /// removal, kill records, audit `ProcessKill`).
    pub fn drain_kills(&mut self) -> Vec<Pid> {
        std::mem::take(&mut self.kill_log)
    }

    /// Total kills executed over the driver's lifetime.
    pub fn total_kills(&self) -> u64 {
        self.total_kills
    }

    /// Escalation rounds started over the driver's lifetime.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }
}

#[cfg(test)]
mod tests {
    // The deprecated shims must keep their exact legacy behaviour for one
    // release; these tests exercise them on purpose.
    #![allow(deprecated)]
    use super::*;

    fn cand(pid: u32, fg: bool, last: u64) -> LmkCandidate {
        LmkCandidate {
            pid: Pid(pid),
            foreground: fg,
            last_foreground: SimTime::from_secs(last),
            pinned: false,
        }
    }

    #[test]
    fn picks_coldest_background_app() {
        let procs = [cand(1, false, 30), cand(2, false, 5), cand(3, false, 60)];
        assert_eq!(choose_victim(&procs), Some(Pid(2)));
    }

    #[test]
    fn never_kills_foreground() {
        let procs = [cand(1, true, 0), cand(2, false, 100)];
        assert_eq!(choose_victim(&procs), Some(Pid(2)));
        let only_fg = [cand(1, true, 0)];
        assert_eq!(choose_victim(&only_fg), None);
    }

    #[test]
    fn pinned_processes_are_exempt() {
        let mut system = cand(1, false, 0);
        system.pinned = true;
        let procs = [system, cand(2, false, 50)];
        assert_eq!(choose_victim(&procs), Some(Pid(2)));
    }

    #[test]
    fn ties_break_on_pid() {
        let procs = [cand(9, false, 10), cand(3, false, 10)];
        assert_eq!(choose_victim(&procs), Some(Pid(3)));
    }

    #[test]
    fn empty_list_has_no_victim() {
        assert_eq!(choose_victim(&[]), None);
    }

    use crate::mm::{MemoryManager, MmConfig};
    use crate::page::PAGE_SIZE;
    use crate::swap::SwapConfig;

    fn small_mm(frames: u64) -> MemoryManager {
        MemoryManager::new(MmConfig {
            dram_bytes: frames * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: 0, ..SwapConfig::default() },
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            ..MmConfig::small_test()
        })
    }

    #[test]
    fn escalate_kills_until_watermark_met() {
        let mut mm = small_mm(16);
        mm.map_range(Pid(1), 0, 6 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(2), 0, 6 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(3), 0, 4 * PAGE_SIZE).unwrap();
        let candidates = [cand(1, false, 10), cand(2, false, 20), cand(3, false, 30)];
        let mut lmkd = Lmkd::new();
        // free = 0; target 10 needs two victims (6 + 6 >= 10): the coldest
        // two die, the third survives.
        let out = lmkd.escalate(&mut mm, &candidates, 10).unwrap();
        assert_eq!(out.killed, vec![Pid(1), Pid(2)]);
        assert_eq!(out.freed_frames, 12);
        assert!(mm.free_frames() >= 10);
        assert_eq!(mm.process_mem(Pid(3)).resident, 4);
        assert_eq!(lmkd.drain_kills(), vec![Pid(1), Pid(2)]);
        assert_eq!(lmkd.total_kills(), 2);
        mm.validate();
    }

    /// Regression: a single small victim used to satisfy the old
    /// one-kill-per-stall policy even when it freed almost nothing, leaving
    /// the caller to loop (or panic) forever. Escalation must keep going and
    /// surface `OutOfMemory` once nothing killable remains.
    #[test]
    fn escalate_single_small_victim_surfaces_oom() {
        let mut mm = small_mm(16);
        mm.map_range(Pid(1), 0, 15 * PAGE_SIZE).unwrap(); // the hog (protected)
        mm.map_range(Pid(2), 0, PAGE_SIZE).unwrap(); // one tiny cached app
        let candidates = [cand(1, true, 100), cand(2, false, 5)];
        let mut lmkd = Lmkd::new();
        let err = lmkd.escalate(&mut mm, &candidates, 8);
        assert_eq!(err, Err(MmError::OutOfMemory));
        // The small victim did die (and must still be reaped)…
        assert_eq!(lmkd.drain_kills(), vec![Pid(2)]);
        assert_eq!(mm.process_mem(Pid(2)).resident, 0);
        // …but the hog survived and the target is honestly unmet.
        assert_eq!(mm.process_mem(Pid(1)).resident, 15);
        assert!(mm.free_frames() < 8);
        mm.validate();
    }

    #[test]
    fn escalate_is_a_no_op_above_target() {
        let mut mm = small_mm(16);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        let candidates = [cand(1, false, 5)];
        let mut lmkd = Lmkd::new();
        let out = lmkd.escalate(&mut mm, &candidates, 4).unwrap();
        assert!(out.killed.is_empty());
        assert_eq!(lmkd.drain_kills(), Vec::<Pid>::new());
        assert_eq!(mm.process_mem(Pid(1)).resident, 2);
    }

    #[test]
    fn kill_one_matches_choose_victim_order() {
        let mut mm = small_mm(8);
        mm.map_range(Pid(4), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(7), 0, 3 * PAGE_SIZE).unwrap();
        let candidates = [cand(4, false, 40), cand(7, false, 4)];
        let mut lmkd = Lmkd::new();
        let (victim, freed) = lmkd.kill_one(&mut mm, &candidates).unwrap();
        assert_eq!(victim, Pid(7)); // colder last_foreground dies first
        assert_eq!(freed, 3);
        assert_eq!(lmkd.kill_one(&mut mm, &[]), None);
    }
}
