//! The low-memory-killer victim policy.
//!
//! Android's lmkd terminates cached (background) apps when reclaim cannot
//! keep up — "Android starts to kill apps when there are 11 cached apps"
//! (§7.1). The policy here mirrors lmkd's oom-score ordering at the
//! granularity the experiments need: the foreground app is never killed;
//! among background apps, the one least recently in the foreground dies
//! first; pinned system processes are exempt.
//!
//! Kill *ordering* is a [`crate::reclaim::KillPolicy`] variant
//! (`ColdestFirst` wraps [`coldest_victim`]) and kill *execution* lives in
//! [`crate::reclaim::ReclaimDriver`], which also owns the reclaim daemon
//! tick. The deprecated one-release shims this module used to carry
//! (`choose_victim`, `Lmkd::kill_one`, `Lmkd::escalate`) have been removed;
//! [`LmkCandidate`] and [`LmkOutcome`] remain as the shared vocabulary
//! types.

use crate::page::Pid;
use fleet_sim::SimTime;
use serde::{Deserialize, Serialize};

/// One process as seen by the low-memory killer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LmkCandidate {
    /// The process.
    pub pid: Pid,
    /// True for the current foreground app (never killed).
    pub foreground: bool,
    /// When the app was last in the foreground; older means colder.
    pub last_foreground: SimTime,
    /// True for processes exempt from killing (system services).
    pub pinned: bool,
}

/// The coldest-first oom-score order behind `KillPolicy::ColdestFirst`: the
/// background, unpinned process least recently in the foreground, ties on
/// lower pid. Returns `None` when no process is killable.
pub(crate) fn coldest_victim(candidates: &[LmkCandidate]) -> Option<Pid> {
    candidates
        .iter()
        .filter(|c| !c.foreground && !c.pinned)
        .min_by_key(|c| (c.last_foreground, c.pid))
        .map(|c| c.pid)
}

/// What one `ReclaimDriver::escalate` round freed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LmkOutcome {
    /// Victims killed, in kill order (coldest first).
    pub killed: Vec<Pid>,
    /// DRAM frames freed by those kills.
    pub freed_frames: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(pid: u32, fg: bool, last: u64) -> LmkCandidate {
        LmkCandidate {
            pid: Pid(pid),
            foreground: fg,
            last_foreground: SimTime::from_secs(last),
            pinned: false,
        }
    }

    #[test]
    fn picks_coldest_background_app() {
        let procs = [cand(1, false, 30), cand(2, false, 5), cand(3, false, 60)];
        assert_eq!(coldest_victim(&procs), Some(Pid(2)));
    }

    #[test]
    fn never_kills_foreground() {
        let procs = [cand(1, true, 0), cand(2, false, 100)];
        assert_eq!(coldest_victim(&procs), Some(Pid(2)));
        let only_fg = [cand(1, true, 0)];
        assert_eq!(coldest_victim(&only_fg), None);
    }

    #[test]
    fn pinned_processes_are_exempt() {
        let mut system = cand(1, false, 0);
        system.pinned = true;
        let procs = [system, cand(2, false, 50)];
        assert_eq!(coldest_victim(&procs), Some(Pid(2)));
    }

    #[test]
    fn ties_break_on_pid() {
        let procs = [cand(9, false, 10), cand(3, false, 10)];
        assert_eq!(coldest_victim(&procs), Some(Pid(3)));
    }

    #[test]
    fn empty_list_has_no_victim() {
        assert_eq!(coldest_victim(&[]), None);
    }
}
