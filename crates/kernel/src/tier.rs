//! The tiered swap stack: an optional zram tier in front of flash.
//!
//! Mainstream vendors ship compressed-RAM swap in front of the flash
//! partition, and Ariadne-style co-design places pages across that
//! hierarchy by hotness: warm pages that will likely refault soon go to
//! zram (memcpy-plus-decompress speed, but each stored page pins
//! `1/compression_ratio` of a DRAM frame), cold pages go straight to flash,
//! and aging zram slots are written back to flash by a background daemon so
//! the compressed pool tracks the warm set instead of filling with garbage.
//!
//! [`SwapStack`] composes two [`SwapDevice`]s — a front (zram) tier and a
//! back (flash) tier — behind the aggregate accessors the rest of the
//! system already uses (`used_pages`, `frames_consumed`, …). A stack
//! without a front tier behaves bit-identically to the bare back device:
//! every aggregate is a pass-through and no tier-routing code draws from
//! any fault stream, which is what keeps the default flash-only
//! configuration on the golden traces.
//!
//! Placement policy itself lives in the memory manager (it owns the LRU
//! second-chance state that classifies victims); this module owns the
//! capacity/counter accounting and the per-tier fault-plan arming.

use crate::fault::FaultPlan;
use crate::swap::{SwapConfig, SwapDevice, TierStats};
use serde::{Deserialize, Serialize};

/// Stream salt for the front tier's forked fault plan, so the two tiers
/// never replay correlated schedules.
const FRONT_PLAN_SALT: u64 = 0x5A4A_F207_7132_A001;

/// Which tier of the stack a page lives in (its placement role).
///
/// In a hybrid stack the front tier is zram and the back tier is flash; a
/// single-device configuration (flash-only, or the whole swap space backed
/// by zram) has only a back tier and never reports placements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwapTier {
    /// The DRAM-resident compressed front tier.
    Zram,
    /// The flash back tier.
    Flash,
}

impl SwapTier {
    /// Stable lowercase name (used in audit events and exports).
    pub fn as_str(self) -> &'static str {
        match self {
            SwapTier::Zram => "zram",
            SwapTier::Flash => "flash",
        }
    }
}

/// Schema-stable snapshot of every swap counter, per tier, from one
/// accessor ([`SwapStack::stats`]). Replaces the ad-hoc per-counter getters
/// as the export surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapStats {
    /// The zram front tier, when configured.
    pub front: Option<TierStats>,
    /// The back tier (flash, or zram in a zram-only configuration).
    pub back: TierStats,
    /// Pages the writeback daemon has demoted front → back.
    pub writeback_pages: u64,
    /// True once the front tier was retired at runtime (quarantine
    /// saturation, DESIGN.md §14): no new front stores, existing slots
    /// drain via writeback.
    pub front_retired: bool,
}

/// A two-tier swap hierarchy: an optional zram front in front of the
/// backing device.
///
/// # Examples
///
/// ```
/// use fleet_kernel::{SwapConfig, SwapStack};
///
/// let front = SwapConfig::try_zram(64 * 4096, 2.0).unwrap();
/// let mut stack = SwapStack::with_front(front, SwapConfig::default());
/// assert!(stack.has_front());
/// stack.front_mut().unwrap().reserve_page();
/// assert_eq!(stack.used_pages(), 1);
/// assert_eq!(stack.frames_consumed(), 1); // ceil(1 / 2.0)
/// ```
#[derive(Debug, Clone)]
pub struct SwapStack {
    front: Option<SwapDevice>,
    back: SwapDevice,
    writeback_pages: u64,
    /// Set when quarantine saturation retires the front tier mid-run: the
    /// device object stays (its remaining slots drain through reads and
    /// writeback) but no new page is ever placed there.
    front_retired: bool,
}

impl SwapStack {
    /// A single-tier stack over the backing device (flash-only default, or
    /// a zram-only configuration where the whole space is compressed RAM).
    pub fn new(back: SwapConfig) -> Self {
        SwapStack {
            front: None,
            back: SwapDevice::new(back),
            writeback_pages: 0,
            front_retired: false,
        }
    }

    /// A hybrid stack: a zram front tier in front of the backing device.
    pub fn with_front(front: SwapConfig, back: SwapConfig) -> Self {
        SwapStack {
            front: Some(SwapDevice::new(front)),
            back: SwapDevice::new(back),
            writeback_pages: 0,
            front_retired: false,
        }
    }

    /// True when a zram front tier is configured (retired or not).
    pub fn has_front(&self) -> bool {
        self.front.is_some()
    }

    /// True when the front tier is configured and still accepting stores.
    /// Placement policy must route new pages through this, not
    /// [`SwapStack::has_front`], so a retired front drains instead of
    /// refilling.
    pub fn has_active_front(&self) -> bool {
        self.front.is_some() && !self.front_retired
    }

    /// Retires the front tier at runtime (quarantine saturation): the
    /// device falls back to flash-only placement mid-run. Remaining front
    /// slots stay readable and drain through the writeback daemon.
    /// Idempotent; a no-op on a stack without a front tier.
    pub fn retire_front(&mut self) {
        if self.front.is_some() {
            self.front_retired = true;
        }
    }

    /// True once [`SwapStack::retire_front`] has fired.
    pub fn front_retired(&self) -> bool {
        self.front_retired
    }

    /// The front (zram) tier, when configured.
    pub fn front(&self) -> Option<&SwapDevice> {
        self.front.as_ref()
    }

    /// Mutable access to the front tier.
    pub fn front_mut(&mut self) -> Option<&mut SwapDevice> {
        self.front.as_mut()
    }

    /// The back tier.
    pub fn back(&self) -> &SwapDevice {
        &self.back
    }

    /// Mutable access to the back tier.
    pub fn back_mut(&mut self) -> &mut SwapDevice {
        &mut self.back
    }

    /// Mutable access to the device holding `tier`.
    ///
    /// # Panics
    ///
    /// Panics when asked for the zram tier of a stack without one.
    pub fn tier_mut(&mut self, tier: SwapTier) -> &mut SwapDevice {
        match tier {
            SwapTier::Zram => self.front.as_mut().expect("stack has no zram tier"),
            SwapTier::Flash => &mut self.back,
        }
    }

    /// Arms the stack: the back tier gets `plan` exactly as a single device
    /// would, and the front tier (if any) gets an independent fork of it so
    /// the hybrid schedules stay uncorrelated but deterministic.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        if let Some(front) = self.front.as_mut() {
            front.install_fault_plan(plan.fork(FRONT_PLAN_SALT));
        }
        self.back.install_fault_plan(plan);
    }

    /// True when any tier has an armed (non-quiet) fault plan.
    pub fn fault_active(&self) -> bool {
        self.back.fault_active() || self.front.as_ref().is_some_and(|f| f.fault_active())
    }

    /// Records `n` pages demoted front → back by the writeback daemon.
    pub fn note_writeback(&mut self, n: u64) {
        self.writeback_pages += n;
    }

    /// Pages the writeback daemon has demoted front → back so far.
    pub fn writeback_pages(&self) -> u64 {
        self.writeback_pages
    }

    // ------------------------------------------------------------ aggregates

    /// Pages currently stored across all tiers.
    pub fn used_pages(&self) -> u64 {
        self.back.used_pages() + self.front.as_ref().map_or(0, |f| f.used_pages())
    }

    /// Total capacity in pages across all tiers.
    pub fn capacity_pages(&self) -> u64 {
        self.back.capacity_pages() + self.front.as_ref().map_or(0, |f| f.capacity_pages())
    }

    /// Free page slots across all tiers.
    pub fn free_pages(&self) -> u64 {
        self.capacity_pages() - self.used_pages()
    }

    /// True when no tier has a free slot.
    pub fn is_full(&self) -> bool {
        self.back.is_full() && self.front.as_ref().is_none_or(|f| f.is_full())
    }

    /// DRAM frames consumed by stored pages across all tiers (the zram
    /// tier's compressed footprint; zero for flash).
    pub fn frames_consumed(&self) -> u64 {
        self.back.frames_consumed() + self.front.as_ref().map_or(0, |f| f.frames_consumed())
    }

    /// Total pages ever written across all tiers (writeback demotions count
    /// once per tier touched, as on real hardware).
    pub fn total_pages_written(&self) -> u64 {
        self.back.total_pages_written() + self.front.as_ref().map_or(0, |f| f.total_pages_written())
    }

    /// Total pages ever read across all tiers.
    pub fn total_pages_read(&self) -> u64 {
        self.back.total_pages_read() + self.front.as_ref().map_or(0, |f| f.total_pages_read())
    }

    /// Total bytes moved in either direction across all tiers (for the
    /// power model).
    pub fn total_bytes_moved(&self) -> u64 {
        self.back.total_bytes_moved() + self.front.as_ref().map_or(0, |f| f.total_bytes_moved())
    }

    /// The consolidated schema-stable counter snapshot.
    pub fn stats(&self) -> SwapStats {
        SwapStats {
            front: self.front.as_ref().map(|f| f.tier_stats()),
            back: self.back.tier_stats(),
            writeback_pages: self.writeback_pages,
            front_retired: self.front_retired,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use crate::page::PAGE_SIZE;

    fn hybrid() -> SwapStack {
        let front = SwapConfig::try_zram(16 * PAGE_SIZE, 2.0).unwrap();
        let back = SwapConfig { capacity_bytes: 64 * PAGE_SIZE, ..SwapConfig::default() };
        SwapStack::with_front(front, back)
    }

    #[test]
    fn single_tier_stack_passes_through() {
        let mut stack = SwapStack::new(SwapConfig::default());
        assert!(!stack.has_front());
        assert!(stack.back_mut().reserve_page());
        assert_eq!(stack.used_pages(), 1);
        assert_eq!(stack.frames_consumed(), 0);
        assert_eq!(stack.capacity_pages(), stack.back().capacity_pages());
        let stats = stack.stats();
        assert!(stats.front.is_none());
        assert_eq!(stats.back.stored_pages, 1);
        assert_eq!(stats.writeback_pages, 0);
    }

    #[test]
    fn aggregates_sum_both_tiers() {
        let mut stack = hybrid();
        assert_eq!(stack.capacity_pages(), 80);
        stack.front_mut().unwrap().reserve_page();
        stack.front_mut().unwrap().reserve_page();
        stack.back_mut().reserve_page();
        assert_eq!(stack.used_pages(), 3);
        assert_eq!(stack.free_pages(), 77);
        assert_eq!(stack.frames_consumed(), 1); // ceil(2 / 2.0) + 0
        assert!(!stack.is_full());
        let stats = stack.stats();
        assert_eq!(stats.front.unwrap().stored_pages, 2);
        assert_eq!(stats.back.stored_pages, 1);
    }

    #[test]
    fn full_requires_every_tier_full() {
        let mut stack = hybrid();
        for _ in 0..16 {
            assert!(stack.front_mut().unwrap().reserve_page());
        }
        assert!(!stack.is_full(), "back tier still has slots");
        for _ in 0..64 {
            assert!(stack.back_mut().reserve_page());
        }
        assert!(stack.is_full());
    }

    #[test]
    fn arming_forks_an_independent_front_plan() {
        let mut stack = hybrid();
        let plan = FaultPlan::new(9, FaultConfig::flaky_flash(0.5));
        stack.install_fault_plan(plan.clone());
        assert!(stack.fault_active());
        let mut front_faults = 0;
        let mut agree = 0;
        for _ in 0..256 {
            let f = stack.front_mut().unwrap().fault_plan_mut().read_fault();
            let b = stack.back_mut().fault_plan_mut().read_fault();
            if f.is_some() {
                front_faults += 1;
            }
            if f == b {
                agree += 1;
            }
        }
        assert!(front_faults > 0, "front plan must be armed");
        assert!(agree < 256, "tiers must not replay the same schedule");
        // Quiet plans stay quiet on both tiers.
        let mut quiet = hybrid();
        quiet.install_fault_plan(FaultPlan::default());
        assert!(!quiet.fault_active());
    }

    #[test]
    fn writeback_counter_accumulates() {
        let mut stack = hybrid();
        stack.note_writeback(3);
        stack.note_writeback(2);
        assert_eq!(stack.writeback_pages(), 5);
        assert_eq!(stack.stats().writeback_pages, 5);
    }

    #[test]
    fn retiring_the_front_stops_new_stores_but_keeps_it_draining() {
        let mut stack = hybrid();
        stack.front_mut().unwrap().reserve_page();
        assert!(stack.has_active_front());
        stack.retire_front();
        assert!(stack.front_retired());
        assert!(!stack.has_active_front());
        assert!(stack.has_front(), "retired front still drains");
        assert_eq!(stack.front().unwrap().used_pages(), 1);
        assert!(stack.stats().front_retired);
        // Idempotent, and a no-op without a front tier.
        stack.retire_front();
        let mut flat = SwapStack::new(SwapConfig::default());
        flat.retire_front();
        assert!(!flat.front_retired());
    }

    #[test]
    fn tier_names_are_stable() {
        assert_eq!(SwapTier::Zram.as_str(), "zram");
        assert_eq!(SwapTier::Flash.as_str(), "flash");
    }
}
