//! The unified reclaim policy surface: proactive reclaim + OOMK co-design.
//!
//! Before this module the reclaim surface was scattered: the device layer
//! hand-ticked [`MemoryManager::kswapd`], [`MemoryManager::zram_writeback`]
//! and a stateful `Lmkd` escalation driver separately, and the victim
//! policy was a free function. SWAM (PAPERS.md) argues the pieces belong together:
//! per-process working-set estimation, *proactive* swap-out of idle
//! background apps ahead of pressure, dynamic swap-target sizing, and a
//! kill policy that can weight oom-scores by working-set size. This module
//! fronts all of it:
//!
//! * [`ReclaimPolicy`] — `Reactive` (the historical watermark-driven
//!   behaviour, bit-identical event streams) or `Swam` (adds the
//!   working-set tracker and the proactive daemon, tuned by
//!   [`SwamParams`]),
//! * [`KillPolicy`] — `ColdestFirst` (lmkd's classic
//!   least-recently-foreground order) or `WssWeighted` (kill the app with
//!   the most resident memory *outside* its working set, freeing the most
//!   while hurting a relaunch the least),
//! * [`ReclaimDriver`] — the daemon: owns one deterministic tick order
//!   (kswapd scan, zram writeback, WSS epoch advance, proactive swap-out)
//!   and executes kills/escalations under the configured [`KillPolicy`].
//!
//! The driver replaced the old `choose_victim` / `Lmkd::kill_one` /
//! `Lmkd::escalate` split; those shims rode one release as deprecated and
//! are gone — only the victim-order function and the vocabulary types
//! survive in [`crate::lmk`].
//!
//! # Examples
//!
//! ```
//! use fleet_kernel::{KillPolicy, MemoryManager, MmConfig, ReclaimDriver, ReclaimPolicy};
//!
//! let mut mm = MemoryManager::new(MmConfig::small_test());
//! let mut driver = ReclaimDriver::new(ReclaimPolicy::swam(), KillPolicy::WssWeighted);
//! driver.attach(&mut mm); // enables working-set tracking for Swam
//! driver.tick(&mut mm, &[]); // kswapd + writeback + proactive pass
//! assert_eq!(driver.total_kills(), 0);
//! ```

use crate::lmk::{coldest_victim, LmkCandidate, LmkOutcome};
use crate::mm::{MemoryManager, MmError};
use crate::page::Pid;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the SWAM-style proactive reclaim daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwamParams {
    /// An app must have spent this many consecutive reclaim epochs (device
    /// ticks) in the background before the daemon considers it idle and
    /// starts swapping its cold pages out. Apps keep mutating in the
    /// background, so idleness is a fore/background property, not a
    /// zero-touch one; the working-set estimate decides *which* pages are
    /// cold.
    pub idle_epochs: u32,
    /// Upper bound on pages proactively swapped out of one app per tick, so
    /// a single tick never monopolises the swap device.
    pub batch_pages: u64,
    /// Dynamic swap-target sizing: when an app crosses the idle threshold
    /// the daemon grants it a one-shot swap-out quota of its cold bulk,
    /// capped at `swap_room / headroom_div` where `swap_room` is the back
    /// tier's free capacity at that moment. A bigger divisor leaves more
    /// swap for reactive reclaim and kills the quota sooner.
    pub headroom_div: u64,
    /// Pages an app is never proactively shrunk below, so a relaunch always
    /// finds a warm core resident.
    pub min_resident_pages: u64,
}

impl Default for SwamParams {
    fn default() -> Self {
        SwamParams { idle_epochs: 2, batch_pages: 256, headroom_div: 4, min_resident_pages: 512 }
    }
}

impl SwamParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.batch_pages == 0 {
            return Err("swam batch_pages must be positive".into());
        }
        if self.headroom_div == 0 {
            return Err("swam headroom_div must be positive".into());
        }
        Ok(())
    }
}

/// Which reclaim policy drives the kernel's daemon tick.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ReclaimPolicy {
    /// The historical behaviour: watermark-driven kswapd, zram writeback,
    /// kills only under pressure. Event streams are bit-identical to the
    /// pre-driver hand-ticked sequence.
    #[default]
    Reactive,
    /// SWAM-style proactive reclaim: decayed per-process working-set
    /// tracking, idle-app swap-out ahead of pressure, and a dynamically
    /// sized swap target.
    Swam(SwamParams),
}

impl ReclaimPolicy {
    /// The Swam policy at its default tuning.
    pub fn swam() -> Self {
        ReclaimPolicy::Swam(SwamParams::default())
    }

    /// True for the proactive (Swam) variant.
    pub fn is_swam(&self) -> bool {
        matches!(self, ReclaimPolicy::Swam(_))
    }

    /// Validates the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ReclaimPolicy::Reactive => Ok(()),
            ReclaimPolicy::Swam(p) => p.validate(),
        }
    }
}

/// How the driver orders kill victims when memory must be freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KillPolicy {
    /// lmkd's classic oom-score order: the background, unpinned app least
    /// recently in the foreground dies first (ties break on lower pid).
    #[default]
    ColdestFirst,
    /// WSS-weighted oom-score: among background, unpinned apps, kill the
    /// one with the most resident pages *outside* its tracked working set —
    /// the kill that frees the most memory while evicting the least warm
    /// state. Ties break coldest-first, then on lower pid. Without
    /// working-set tracking every estimate reads zero and the score
    /// degenerates to "largest resident app".
    WssWeighted,
}

impl KillPolicy {
    /// Picks the kill victim among `candidates` under this policy, or
    /// `None` when nothing is killable (foreground and pinned processes
    /// are always exempt).
    pub fn choose(&self, mm: &MemoryManager, candidates: &[LmkCandidate]) -> Option<Pid> {
        match self {
            KillPolicy::ColdestFirst => coldest_victim(candidates),
            KillPolicy::WssWeighted => candidates
                .iter()
                .filter(|c| !c.foreground && !c.pinned)
                .max_by_key(|c| {
                    let resident = mm.process_mem(c.pid).resident;
                    let cold = resident.saturating_sub(mm.wss_estimate(c.pid));
                    (cold, std::cmp::Reverse(c.last_foreground), std::cmp::Reverse(c.pid))
                })
                .map(|c| c.pid),
        }
    }
}

/// One app's standing with the proactive daemon: how many consecutive
/// ticks it has been background, and how many pages of its current idle
/// spell's drain quota remain. The quota is granted once, when the app
/// crosses the idle threshold, so an idle spell drains an app's cold bulk
/// exactly once instead of chasing every page the app re-touches — the
/// churn guard that keeps the daemon from thrashing against background
/// mutators.
#[derive(Debug, Clone, Copy, Default)]
struct IdleState {
    epochs: u32,
    quota: u64,
}

/// The reclaim daemon: one deterministic tick over every reclaim mechanism,
/// plus policy-driven kill execution. Replaces the hand-ticked
/// kswapd/writeback/lmkd trio the device layer used to sequence itself.
#[derive(Debug, Clone)]
pub struct ReclaimDriver {
    policy: ReclaimPolicy,
    kill_policy: KillPolicy,
    /// Kills not yet reaped by the device layer (which owns the process
    /// table and must drop its side of each victim).
    kill_log: Vec<Pid>,
    /// Per-pid idle clock and one-shot drain quota (Swam only; reset on
    /// foreground, dropped when the pid leaves the candidate set).
    idle: std::collections::BTreeMap<Pid, IdleState>,
    total_kills: u64,
    escalations: u64,
    proactive_pages: u64,
}

impl ReclaimDriver {
    /// A fresh driver with an empty kill log.
    pub fn new(policy: ReclaimPolicy, kill_policy: KillPolicy) -> Self {
        ReclaimDriver {
            policy,
            kill_policy,
            kill_log: Vec::new(),
            idle: std::collections::BTreeMap::new(),
            total_kills: 0,
            escalations: 0,
            proactive_pages: 0,
        }
    }

    /// The active reclaim policy.
    pub fn policy(&self) -> ReclaimPolicy {
        self.policy
    }

    /// The active kill policy.
    pub fn kill_policy(&self) -> KillPolicy {
        self.kill_policy
    }

    /// Arms the kernel side of the policy: Swam enables the observe-only
    /// working-set tracker (Reactive leaves the kernel untouched, so the
    /// legacy paths stay bit-identical). Call once after construction.
    pub fn attach(&self, mm: &mut MemoryManager) {
        if self.policy.is_swam() {
            mm.enable_wss_tracking();
        }
    }

    /// One reclaim-daemon tick, in one deterministic order: the kswapd
    /// watermark scan, the zram writeback pass
    /// ([`MemoryManager::reclaim_tick`] — the legacy hand-ticked pair),
    /// then under Swam the working-set epoch advance and the proactive
    /// swap-out pass over idle background apps. Kill decisions stay with
    /// the caller (see [`ReclaimDriver::kill_one`] and
    /// [`ReclaimDriver::escalate`]) so the device layer can flush its audit
    /// ordering barrier before a victim's pages are unmapped.
    pub fn tick(&mut self, mm: &mut MemoryManager, candidates: &[LmkCandidate]) {
        mm.reclaim_tick();
        self.scrub_pass(mm);
        if let ReclaimPolicy::Swam(params) = self.policy {
            self.proactive_pass(mm, candidates, params);
        }
    }

    /// The background integrity scrubber's turn: one
    /// [`MemoryManager::scrub_tick`] step over cold slots (a no-op unless
    /// the integrity layer and its scrubber are enabled). Runs after the
    /// reclaim pair so a freshly-demoted slot is scrubbable the same tick.
    fn scrub_pass(&mut self, mm: &mut MemoryManager) {
        #[cfg(feature = "obs")]
        let cpu_before = mm.stats().kswapd_cpu_nanos;
        let Some(report) = mm.scrub_tick() else { return };
        let _ = &report;
        #[cfg(feature = "obs")]
        if mm.obs_log_mut().is_enabled() {
            let dur = mm.stats().kswapd_cpu_nanos - cpu_before;
            let (scanned, detected) = (report.scanned, report.detected);
            mm.obs_log_mut().push(move |_| {
                fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                    pid: 0,
                    name: "scrub",
                    cat: "kernel",
                    depth: 0,
                    rel_start: 0,
                    dur,
                    args: vec![("scanned", scanned), ("detected", detected)],
                })
            });
            if detected > 0 {
                mm.obs_log_mut().push(move |_| fleet_obs::ObsRecord::Counter {
                    name: "kernel.corruptions_detected",
                    delta: detected,
                });
            }
        }
    }

    /// The Swam proactive pass: advance the WSS epoch, size the dynamic
    /// swap target from the idle apps' cold bulk, and swap the coldest
    /// pages of the idlest background apps out ahead of pressure.
    fn proactive_pass(
        &mut self,
        mm: &mut MemoryManager,
        candidates: &[LmkCandidate],
        params: SwamParams,
    ) {
        let samples = mm.wss_epoch();
        #[cfg(feature = "obs")]
        let cpu_before = mm.stats().kswapd_cpu_nanos;
        // Advance the fore/background idle clocks: one epoch per tick in
        // the background, reset the moment an app reaches the foreground,
        // forgotten when a pid leaves the candidate set (kill or unmap).
        self.idle.retain(|pid, _| candidates.iter().any(|c| c.pid == *pid));
        for c in candidates {
            if c.foreground || c.pinned {
                self.idle.remove(&c.pid);
                continue;
            }
            let state = self.idle.entry(c.pid).or_default();
            state.epochs += 1;
            // Crossing the idle threshold grants the one-shot drain quota:
            // the app's resident bulk outside its tracked working set
            // (never below the warm-core floor), sized against the swap
            // room actually free right now — the dynamically resized swap
            // target.
            if state.epochs == params.idle_epochs {
                let estimate = samples.iter().find(|s| s.pid == c.pid).map_or(0, |s| s.estimate);
                let resident = mm.process_mem(c.pid).resident;
                let cold = resident.saturating_sub(estimate.max(params.min_resident_pages));
                let swap_room =
                    mm.swap().back().capacity_pages().saturating_sub(mm.swap().back().used_pages());
                state.quota = cold.min(swap_room / params.headroom_div.max(1));
            }
        }
        // Drain granted quotas, coldest app first (oldest last_foreground;
        // ties on lower pid), at most `batch_pages` per app per tick so one
        // tick never monopolises the swap device.
        let mut order: Vec<(fleet_sim::SimTime, Pid)> = candidates
            .iter()
            .filter(|c| {
                self.idle.get(&c.pid).is_some_and(|s| s.epochs >= params.idle_epochs && s.quota > 0)
            })
            .map(|c| (c.last_foreground, c.pid))
            .collect();
        order.sort();
        let mut moved = 0u64;
        for (_, pid) in order {
            let state = self.idle.get_mut(&pid).expect("filtered above");
            let batch = state.quota.min(params.batch_pages);
            let out = mm.proactive_swap_out(pid, batch);
            moved += out;
            state.quota = if out < batch {
                // LRU ran dry or the swap partition filled: this spell is
                // done, do not retry every tick.
                0
            } else {
                state.quota - out
            };
        }
        self.proactive_pages += moved;
        #[cfg(feature = "obs")]
        if moved > 0 {
            let dur = mm.stats().kswapd_cpu_nanos - cpu_before;
            let free = mm.free_frames();
            mm.obs_log_mut().push(move |_| {
                fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                    pid: 0,
                    name: "proactive_reclaim",
                    cat: "kernel",
                    depth: 0,
                    rel_start: 0,
                    dur,
                    args: vec![("reclaimed", moved), ("free_frames", free)],
                })
            });
            mm.obs_log_mut().push(move |_| fleet_obs::ObsRecord::Counter {
                name: "kernel.proactive_swapout_pages",
                delta: moved,
            });
        }
    }

    /// Kills the single best victim under the kill policy, unmapping all
    /// its pages. Returns the victim and the frames freed, or `None` when
    /// nothing is killable.
    pub fn kill_one(
        &mut self,
        mm: &mut MemoryManager,
        candidates: &[LmkCandidate],
    ) -> Option<(Pid, u64)> {
        let victim = self.kill_policy.choose(mm, candidates)?;
        let freed = self.execute(mm, victim);
        Some((victim, freed))
    }

    /// Escalating kill round: terminates candidates in policy order until
    /// `mm.free_frames()` reaches `target_free_frames`. Kills performed
    /// before a failure stay in the kill log; the caller must still reap
    /// them via [`ReclaimDriver::drain_kills`].
    ///
    /// # Errors
    ///
    /// [`MmError::OutOfMemory`] when no killable candidate remains and the
    /// target is still unmet.
    pub fn escalate(
        &mut self,
        mm: &mut MemoryManager,
        candidates: &[LmkCandidate],
        target_free_frames: u64,
    ) -> Result<LmkOutcome, MmError> {
        self.escalations += 1;
        let mut remaining: Vec<LmkCandidate> = candidates.to_vec();
        let mut out = LmkOutcome::default();
        while mm.free_frames() < target_free_frames {
            let Some(victim) = self.kill_policy.choose(mm, &remaining) else {
                return Err(MmError::OutOfMemory);
            };
            remaining.retain(|c| c.pid != victim);
            let freed = self.execute(mm, victim);
            out.killed.push(victim);
            out.freed_frames += freed;
        }
        Ok(out)
    }

    /// Unmaps the victim and records the kill.
    fn execute(&mut self, mm: &mut MemoryManager, victim: Pid) -> u64 {
        let freed = mm.unmap_process(victim);
        mm.note_lmk_kill(victim, freed);
        self.kill_log.push(victim);
        self.total_kills += 1;
        freed
    }

    /// Takes the kills the device layer has not yet reaped (process-table
    /// removal, kill records, audit `ProcessKill`).
    pub fn drain_kills(&mut self) -> Vec<Pid> {
        std::mem::take(&mut self.kill_log)
    }

    /// Total kills executed over the driver's lifetime.
    pub fn total_kills(&self) -> u64 {
        self.total_kills
    }

    /// Escalation rounds started over the driver's lifetime.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Pages the proactive daemon has swapped out over its lifetime.
    pub fn proactive_pages(&self) -> u64 {
        self.proactive_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm::MmConfig;
    use crate::page::PAGE_SIZE;
    use crate::swap::SwapConfig;
    use fleet_sim::SimTime;

    fn cand(pid: u32, fg: bool, last: u64) -> LmkCandidate {
        LmkCandidate {
            pid: Pid(pid),
            foreground: fg,
            last_foreground: SimTime::from_secs(last),
            pinned: false,
        }
    }

    fn small_mm(frames: u64, swap_pages: u64) -> MemoryManager {
        MemoryManager::new(MmConfig {
            dram_bytes: frames * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: swap_pages * PAGE_SIZE, ..SwapConfig::default() },
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            ..MmConfig::small_test()
        })
    }

    #[test]
    fn coldest_first_matches_legacy_choice() {
        let mm = small_mm(16, 16);
        let procs = [cand(1, false, 30), cand(2, false, 5), cand(3, true, 0)];
        assert_eq!(KillPolicy::ColdestFirst.choose(&mm, &procs), Some(Pid(2)));
        assert_eq!(KillPolicy::ColdestFirst.choose(&mm, &[cand(3, true, 0)]), None);
    }

    #[test]
    fn wss_weighted_kills_the_most_cold_bulk() {
        let mut mm = small_mm(64, 64);
        mm.enable_wss_tracking();
        // Pid 1: big but entirely warm. Pid 2: smaller but all cold.
        mm.map_range(Pid(1), 0, 20 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(2), 0, 12 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 20 * PAGE_SIZE, crate::mm::AccessKind::Mutator);
        mm.wss_epoch(); // pid 1 estimate ≈ 20, pid 2 estimate 0
        let procs = [cand(1, false, 10), cand(2, false, 20)];
        assert_eq!(KillPolicy::WssWeighted.choose(&mm, &procs), Some(Pid(2)));
    }

    #[test]
    fn driver_escalates_like_lmkd() {
        let mut mm = small_mm(16, 0);
        mm.map_range(Pid(1), 0, 6 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(2), 0, 6 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(3), 0, 4 * PAGE_SIZE).unwrap();
        let candidates = [cand(1, false, 10), cand(2, false, 20), cand(3, false, 30)];
        let mut driver = ReclaimDriver::new(ReclaimPolicy::Reactive, KillPolicy::ColdestFirst);
        let out = driver.escalate(&mut mm, &candidates, 10).unwrap();
        assert_eq!(out.killed, vec![Pid(1), Pid(2)]);
        assert_eq!(out.freed_frames, 12);
        assert_eq!(driver.drain_kills(), vec![Pid(1), Pid(2)]);
        assert_eq!(driver.total_kills(), 2);
        assert_eq!(driver.escalations(), 1);
        mm.validate();
    }

    #[test]
    fn reactive_tick_equals_hand_ticked_daemons() {
        let build = || {
            let mut mm = MemoryManager::new(MmConfig::small_test());
            mm.map_range(Pid(1), 0, 300 * PAGE_SIZE).unwrap();
            mm.access(Pid(1), 0, 40 * PAGE_SIZE, crate::mm::AccessKind::Mutator);
            mm
        };
        let mut a = build();
        let mut b = build();
        let mut driver = ReclaimDriver::new(ReclaimPolicy::Reactive, KillPolicy::ColdestFirst);
        driver.tick(&mut a, &[]);
        b.kswapd();
        b.zram_writeback();
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.free_frames(), b.free_frames());
        a.validate();
    }

    #[test]
    fn swam_tick_swaps_idle_apps_ahead_of_pressure() {
        let mut mm = small_mm(256, 256);
        let params = SwamParams { idle_epochs: 1, min_resident_pages: 8, ..SwamParams::default() };
        let mut driver = ReclaimDriver::new(ReclaimPolicy::Swam(params), KillPolicy::WssWeighted);
        driver.attach(&mut mm);
        mm.map_range(Pid(1), 0, 200 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(2), 0, 40 * PAGE_SIZE).unwrap();
        // Pid 2 stays busy; pid 1 goes idle.
        let candidates = [cand(1, false, 0), cand(2, true, 100)];
        for _ in 0..4 {
            mm.access(Pid(2), 0, 40 * PAGE_SIZE, crate::mm::AccessKind::Mutator);
            driver.tick(&mut mm, &candidates);
        }
        assert!(driver.proactive_pages() > 0, "idle app should be proactively swapped");
        assert!(mm.process_mem(Pid(1)).swapped > 0);
        assert!(mm.process_mem(Pid(1)).resident >= 8, "warm core must stay resident");
        assert_eq!(mm.process_mem(Pid(2)).swapped, 0, "busy foreground app untouched");
        assert!(mm.stats().proactive_swapout_pages > 0);
        mm.validate();
    }

    #[test]
    fn reactive_never_touches_wss_or_proactive_counters() {
        let mut mm = small_mm(64, 64);
        let mut driver = ReclaimDriver::new(ReclaimPolicy::Reactive, KillPolicy::ColdestFirst);
        driver.attach(&mut mm);
        mm.map_range(Pid(1), 0, 32 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 32 * PAGE_SIZE, crate::mm::AccessKind::Mutator);
        driver.tick(&mut mm, &[cand(1, false, 0)]);
        assert!(!mm.wss_tracking_enabled());
        assert_eq!(mm.wss_estimate(Pid(1)), 0);
        assert_eq!(driver.proactive_pages(), 0);
        assert_eq!(mm.stats().proactive_swapout_pages, 0);
    }
}
