//! Swap data-integrity layer: per-slot checksums, quarantine and tier
//! retirement policy (DESIGN.md §14).
//!
//! Real mobile flash and zram do not guarantee that a swapped page comes
//! back byte-for-byte: media wear and compressed-pool corruption return
//! *wrong* bytes with a successful completion status. The integrity layer
//! closes the loop end to end:
//!
//! * every slot store computes an FNV-1a checksum ([`slot_checksum`]) over
//!   the stored copy's identity token; a silently-corrupted store records a
//!   token that no longer matches,
//! * every fault-in, every zram→flash writeback (verify-before-retire) and
//!   the background scrubber recompute and compare — a mismatch is a
//!   *detection*, and detection is a deterministic comparison, never a
//!   second random draw,
//! * detections feed the recovery ladder in
//!   [`mm`](crate::mm::MemoryManager): corrupt file page →
//!   discard-and-refault; corrupt anon page → SIGBUS with
//!   conservation-preserving accounting; each detected slot → quarantine
//!   (permanently removed from the tier's capacity); quarantine saturation
//!   ([`IntegrityConfig::quarantine_threshold`]) → runtime tier retirement
//!   (a zram front falls back to flash-only mid-run; a retired flash back
//!   tier puts the device in degraded mode — no further swap stores).
//!
//! The layer is **off by default** and completely invisible when off: no
//! checksum is computed, no draw is consumed, no event is emitted — an
//! integrity-off run is bit-identical to a build that predates this module
//! (the golden-trace gate relies on this).

use serde::{Deserialize, Serialize};

/// Knobs for the integrity layer. Constructed via the `DeviceConfig`
/// builder's `integrity(...)` setter in the core crate, or directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrityConfig {
    /// Master switch. Off (the default) skips every checksum, draw and
    /// event — bit-identical to a build without the integrity layer.
    pub enabled: bool,
    /// Quarantined slots a tier tolerates before it is retired at runtime
    /// (front tier: fall back to flash-only; back tier: device degraded
    /// mode).
    pub quarantine_threshold: u32,
    /// Cold slots the background scrubber verifies per scrub pass. Zero
    /// disables the scrubber (detection then happens at fault-in and
    /// writeback only).
    pub scrub_batch_pages: u32,
    /// Reclaim ticks between scrub passes.
    pub scrub_interval_ticks: u32,
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig {
            enabled: false,
            quarantine_threshold: 16,
            scrub_batch_pages: 64,
            scrub_interval_ticks: 4,
        }
    }
}

impl IntegrityConfig {
    /// The standard armed configuration: checksums on with the default
    /// quarantine and scrubber policy.
    pub fn checked() -> Self {
        IntegrityConfig { enabled: true, ..IntegrityConfig::default() }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        if self.quarantine_threshold == 0 {
            return Err("integrity quarantine threshold must be at least 1 slot".into());
        }
        if self.scrub_interval_ticks == 0 {
            return Err("integrity scrub interval must be at least 1 tick".into());
        }
        Ok(())
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The token a silent corruption flips into the stored copy: the recomputed
/// checksum can never equal the stored one, so verification detects every
/// injected corruption and nothing else (provably zero false positives).
pub const CORRUPTION_FLIP: u64 = 0xBAD0_DA7A_0000_0001;

/// FNV-1a checksum over a stored slot's identity token `(pid, page index,
/// store sequence)`. The sequence number distinguishes successive stores of
/// the same page, so a stale verify can never alias a fresh store.
pub fn slot_checksum(pid: u32, index: u64, seq: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for chunk in [pid as u64, index, seq] {
        for byte in chunk.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let config = IntegrityConfig::default();
        assert!(!config.enabled);
        assert!(config.validate().is_ok());
        assert!(IntegrityConfig::checked().enabled);
        assert!(IntegrityConfig::checked().validate().is_ok());
    }

    #[test]
    fn validation_only_bites_when_enabled() {
        let off = IntegrityConfig { quarantine_threshold: 0, ..IntegrityConfig::default() };
        assert!(off.validate().is_ok(), "disabled configs are never rejected");
        let on = IntegrityConfig { quarantine_threshold: 0, ..IntegrityConfig::checked() };
        assert!(on.validate().is_err());
        let on = IntegrityConfig { scrub_interval_ticks: 0, ..IntegrityConfig::checked() };
        assert!(on.validate().is_err());
        // A zero scrub batch is legal: it just turns the scrubber off.
        let on = IntegrityConfig { scrub_batch_pages: 0, ..IntegrityConfig::checked() };
        assert!(on.validate().is_ok());
    }

    #[test]
    fn checksums_are_stable_distinct_and_corruption_flips_them() {
        assert_eq!(slot_checksum(1, 2, 3), slot_checksum(1, 2, 3));
        assert_ne!(slot_checksum(1, 2, 3), slot_checksum(1, 2, 4));
        assert_ne!(slot_checksum(1, 2, 3), slot_checksum(1, 3, 3));
        assert_ne!(slot_checksum(2, 2, 3), slot_checksum(1, 2, 3));
        let clean = slot_checksum(7, 42, 9);
        assert_ne!(clean ^ CORRUPTION_FLIP, clean, "a corrupted store can never verify");
    }
}
