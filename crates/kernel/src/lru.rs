//! A second-chance LRU over mapped pages.
//!
//! Linux keeps pages on active/inactive lists; reclaim scans the inactive
//! tail and gives referenced pages a second chance by rotating them back.
//! We model the same behaviour with a recency stamp plus an *active* bit:
//!
//! * an access restamps the page to the MRU end and sets the bit,
//! * eviction pops the LRU end; pages with the bit set are demoted
//!   (bit cleared, restamped) instead of evicted — the second chance,
//! * `madvise(HOT_RUNTIME)` maps to [`LruQueue::promote`], which is exactly
//!   how Fleet keeps launch pages resident (§5.3.2 "move these pages to a
//!   highly used position in the LRU queue").

use crate::page::PageKey;
use std::collections::{BTreeMap, HashMap};

/// A deterministic second-chance LRU queue of pages.
///
/// # Examples
///
/// ```
/// use fleet_kernel::{LruQueue, PageKey, Pid};
///
/// let mut lru = LruQueue::new();
/// let a = PageKey { pid: Pid(1), index: 0 };
/// let b = PageKey { pid: Pid(1), index: 1 };
/// lru.insert(a);
/// lru.insert(b);
/// lru.touch(a); // a becomes the most recently used
/// assert_eq!(lru.pop_coldest(), Some(b));
/// ```
#[derive(Debug, Clone)]
pub struct LruQueue {
    by_stamp: BTreeMap<u64, PageKey>,
    stamps: HashMap<PageKey, u64>,
    active: HashMap<PageKey, bool>,
    next_stamp: u64,
    cold_stamp: u64,
}

impl Default for LruQueue {
    fn default() -> Self {
        LruQueue::new()
    }
}

impl LruQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LruQueue {
            by_stamp: BTreeMap::new(),
            stamps: HashMap::new(),
            active: HashMap::new(),
            // Ordinary stamps count up from the middle of the space;
            // `reinsert_cold` hands out stamps counting down, so re-inserted
            // pages sort colder than everything else.
            next_stamp: 1 << 33,
            cold_stamp: (1 << 33) - 1,
        }
    }

    /// Re-inserts a page at the *cold* end (colder than every tracked
    /// page), used when reclaim skipped it and must put it back without
    /// rejuvenating it.
    pub fn reinsert_cold(&mut self, key: PageKey) {
        if let Some(old) = self.stamps.remove(&key) {
            self.by_stamp.remove(&old);
        }
        let stamp = self.cold_stamp;
        self.cold_stamp -= 1;
        self.stamps.insert(key, stamp);
        self.by_stamp.insert(stamp, key);
        self.active.insert(key, false);
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    /// True when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    /// True if the page is tracked.
    pub fn contains(&self, key: PageKey) -> bool {
        self.stamps.contains_key(&key)
    }

    fn restamp(&mut self, key: PageKey) {
        if let Some(old) = self.stamps.remove(&key) {
            self.by_stamp.remove(&old);
        }
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.stamps.insert(key, stamp);
        self.by_stamp.insert(stamp, key);
    }

    /// Starts tracking a page at the MRU end (fresh pages are hot).
    pub fn insert(&mut self, key: PageKey) {
        self.restamp(key);
        self.active.insert(key, false);
    }

    /// Records an access: restamp to MRU and set the referenced bit.
    ///
    /// No-op if the page is not tracked (e.g. currently swapped out).
    pub fn touch(&mut self, key: PageKey) {
        if self.stamps.contains_key(&key) {
            self.restamp(key);
            self.active.insert(key, true);
        }
    }

    /// `madvise(HOT_RUNTIME)`: force the page to the MRU end with the
    /// referenced bit set, making it survive the next reclaim scans.
    pub fn promote(&mut self, key: PageKey) {
        self.touch(key);
    }

    /// Stops tracking a page (evicted, unmapped or being swapped out).
    pub fn remove(&mut self, key: PageKey) {
        if let Some(stamp) = self.stamps.remove(&key) {
            self.by_stamp.remove(&stamp);
            self.active.remove(&key);
        }
    }

    /// Pops the eviction victim: the coldest page without the referenced
    /// bit. Referenced pages encountered on the way get their second chance
    /// (bit cleared, rotated to the MRU end). Returns `None` when empty.
    pub fn pop_coldest(&mut self) -> Option<PageKey> {
        // Each page can be rotated at most once per call sequence because
        // rotation clears its bit; bound the scan to avoid infinite loops.
        let mut budget = self.stamps.len() * 2 + 1;
        while budget > 0 {
            budget -= 1;
            let (&stamp, &key) = self.by_stamp.iter().next()?;
            if self.active.get(&key).copied().unwrap_or(false) {
                // Second chance: demote to MRU with the bit cleared.
                self.by_stamp.remove(&stamp);
                self.stamps.remove(&key);
                let new_stamp = self.next_stamp;
                self.next_stamp += 1;
                self.stamps.insert(key, new_stamp);
                self.by_stamp.insert(new_stamp, key);
                self.active.insert(key, false);
            } else {
                self.remove(key);
                return Some(key);
            }
        }
        None
    }

    /// Removes every page belonging to `pid`, returning how many were
    /// dropped (process exit).
    pub fn remove_process(&mut self, pid: crate::page::Pid) -> usize {
        let victims: Vec<PageKey> = self.stamps.keys().filter(|k| k.pid == pid).copied().collect();
        let n = victims.len();
        for key in victims {
            self.remove(key);
        }
        n
    }

    /// The coldest page without popping it (for inspection/tests).
    pub fn peek_coldest(&self) -> Option<PageKey> {
        self.by_stamp.values().next().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Pid;

    fn key(i: u64) -> PageKey {
        PageKey { pid: Pid(0), index: i }
    }

    #[test]
    fn eviction_follows_recency() {
        let mut lru = LruQueue::new();
        for i in 0..5 {
            lru.insert(key(i));
        }
        assert_eq!(lru.pop_coldest(), Some(key(0)));
        assert_eq!(lru.pop_coldest(), Some(key(1)));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn touch_gives_second_chance() {
        let mut lru = LruQueue::new();
        lru.insert(key(0));
        lru.insert(key(1));
        lru.touch(key(0)); // referenced: survives one reclaim scan
                           // key(0) was restamped past key(1), so key(1) is the plain victim.
        assert_eq!(lru.pop_coldest(), Some(key(1)));
        // Now key(0) has its bit set: first pop rotates it, then evicts it.
        assert_eq!(lru.pop_coldest(), Some(key(0)));
        assert!(lru.is_empty());
    }

    #[test]
    fn second_chance_rotation_order() {
        let mut lru = LruQueue::new();
        lru.insert(key(0));
        lru.insert(key(1));
        lru.insert(key(2));
        lru.touch(key(0)); // 0 hot, order now: 1, 2, 0*
        assert_eq!(lru.pop_coldest(), Some(key(1)));
        assert_eq!(lru.pop_coldest(), Some(key(2)));
        assert_eq!(lru.pop_coldest(), Some(key(0)));
        assert_eq!(lru.pop_coldest(), None);
    }

    #[test]
    fn promote_keeps_launch_pages_resident() {
        let mut lru = LruQueue::new();
        lru.insert(key(0)); // launch page
        for i in 1..10 {
            lru.insert(key(i));
        }
        lru.promote(key(0));
        // Nine evictions should all pick other pages.
        for _ in 0..9 {
            assert_ne!(lru.pop_coldest(), Some(key(0)));
        }
        assert_eq!(lru.pop_coldest(), Some(key(0)));
    }

    #[test]
    fn remove_process_drops_only_that_pid() {
        let mut lru = LruQueue::new();
        lru.insert(PageKey { pid: Pid(1), index: 0 });
        lru.insert(PageKey { pid: Pid(2), index: 0 });
        lru.insert(PageKey { pid: Pid(1), index: 1 });
        assert_eq!(lru.remove_process(Pid(1)), 2);
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(PageKey { pid: Pid(2), index: 0 }));
    }

    #[test]
    fn touch_ignores_untracked_pages() {
        let mut lru = LruQueue::new();
        lru.touch(key(9));
        assert!(lru.is_empty());
        assert_eq!(lru.pop_coldest(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut lru = LruQueue::new();
        lru.insert(key(5));
        assert_eq!(lru.peek_coldest(), Some(key(5)));
        assert_eq!(lru.len(), 1);
    }
}
