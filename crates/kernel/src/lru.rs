//! A second-chance LRU over mapped pages.
//!
//! Linux keeps pages on active/inactive lists; reclaim scans the inactive
//! tail and gives referenced pages a second chance by rotating them back.
//! We model the same behaviour with an *intrusive doubly-linked list* over a
//! slab arena of page nodes plus an *active* bit per node — the same shape
//! as the kernel's `struct page` LRU links:
//!
//! * an access unlinks the node and relinks it at the MRU end, setting the
//!   bit — three pointer writes, no hashing, no allocation,
//! * eviction pops the LRU end; pages with the bit set are demoted
//!   (bit cleared, relinked at the MRU end) instead of evicted — the second
//!   chance,
//! * `madvise(HOT_RUNTIME)` maps to [`LruQueue::promote`], which is exactly
//!   how Fleet keeps launch pages resident (§5.3.2 "move these pages to a
//!   highly used position in the LRU queue").
//!
//! Every operation is O(1) when addressed by [`LruHandle`] — the handle the
//! memory manager stores in its page-table entries. The key-addressed
//! methods ([`LruQueue::touch`], [`LruQueue::remove`], …) are a
//! compatibility surface for tests and small standalone uses; they locate
//! the node by walking the slab and are O(n).
//!
//! The previous map-based implementation (a `BTreeMap` recency index plus
//! two hash maps — 2–3 map operations per page access) is preserved
//! verbatim as [`reference::MapLruQueue`]: the differential proptests drive
//! both implementations through identical op sequences, and `fleet-bench`
//! times it as the committed baseline in `BENCH_kernel.json`.

use crate::page::{PageKey, Pid};

const NIL: u32 = u32::MAX;

/// An O(1) handle to a page's node in a [`LruQueue`] slab.
///
/// Handed out by [`LruQueue::insert`]/[`LruQueue::reinsert_cold`] and stored
/// by the memory manager in its page-table entries. A handle is valid until
/// the node is removed or popped; using it afterwards is a logic error
/// (checked by `debug_assert!`s and by [`LruQueue::key_of`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LruHandle(u32);

impl LruHandle {
    /// The raw slab index (for compact storage in page-table entries).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a handle from [`LruHandle::raw`].
    pub fn from_raw(raw: u32) -> Self {
        LruHandle(raw)
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: PageKey,
    prev: u32,
    next: u32,
    active: bool,
    /// Sticky referenced-history bit: set the first time the node survives a
    /// reclaim scan via second-chance rotation, never cleared while tracked.
    /// Eviction reads it to classify the victim hot/cold for tier placement.
    rotated: bool,
    in_use: bool,
}

/// A deterministic second-chance LRU queue of pages (intrusive linked list
/// over a slab arena; freed nodes are recycled through a free list).
///
/// # Examples
///
/// ```
/// use fleet_kernel::{LruQueue, PageKey, Pid};
///
/// let mut lru = LruQueue::new();
/// let a = PageKey { pid: Pid(1), index: 0 };
/// let b = PageKey { pid: Pid(1), index: 1 };
/// lru.insert(a);
/// lru.insert(b);
/// lru.touch(a); // a becomes the most recently used
/// assert_eq!(lru.pop_coldest(), Some(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LruQueue {
    nodes: Vec<Node>,
    /// Head of the free list, threaded through `Node::next`.
    free: u32,
    /// Coldest end (eviction scans from here).
    head: u32,
    /// Hottest (MRU) end.
    tail: u32,
    len: usize,
}

impl LruQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LruQueue { nodes: Vec::new(), free: NIL, head: NIL, tail: NIL, len: 0 }
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    // ------------------------------------------------------------ slab plumbing

    fn alloc_node(&mut self, key: PageKey) -> u32 {
        if self.free != NIL {
            let idx = self.free;
            self.free = self.nodes[idx as usize].next;
            self.nodes[idx as usize] =
                Node { key, prev: NIL, next: NIL, active: false, rotated: false, in_use: true };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "LRU slab full");
            self.nodes.push(Node {
                key,
                prev: NIL,
                next: NIL,
                active: false,
                rotated: false,
                in_use: true,
            });
            idx
        }
    }

    fn free_node(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.in_use = false;
        node.prev = NIL;
        node.next = self.free;
        self.free = idx;
    }

    fn link_tail(&mut self, idx: u32) {
        self.nodes[idx as usize].prev = self.tail;
        self.nodes[idx as usize].next = NIL;
        if self.tail != NIL {
            self.nodes[self.tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    fn link_head(&mut self, idx: u32) {
        self.nodes[idx as usize].next = self.head;
        self.nodes[idx as usize].prev = NIL;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn unlink(&mut self, idx: u32) {
        let Node { prev, next, .. } = self.nodes[idx as usize];
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    // ------------------------------------------------------------- handle API

    /// Starts tracking a page at the MRU end (fresh pages are hot),
    /// returning its O(1) handle.
    ///
    /// The caller must know the page is not already tracked (the memory
    /// manager's page table does); for re-insert-or-move semantics use
    /// [`LruQueue::insert`].
    pub fn push_hot(&mut self, key: PageKey) -> LruHandle {
        let idx = self.alloc_node(key);
        self.link_tail(idx);
        self.len += 1;
        LruHandle(idx)
    }

    /// Starts tracking a page at the *cold* end (colder than every tracked
    /// page), returning its O(1) handle. Used when reclaim skipped a page
    /// and must put it back without rejuvenating it.
    pub fn push_cold(&mut self, key: PageKey) -> LruHandle {
        let idx = self.alloc_node(key);
        self.link_head(idx);
        self.len += 1;
        LruHandle(idx)
    }

    /// Records an access through a handle: relink at MRU and set the
    /// referenced bit.
    pub fn touch_handle(&mut self, handle: LruHandle) {
        debug_assert!(self.nodes[handle.0 as usize].in_use, "touch of a freed LRU node");
        self.unlink(handle.0);
        self.link_tail(handle.0);
        self.nodes[handle.0 as usize].active = true;
    }

    /// `madvise(HOT_RUNTIME)` through a handle: force the page to the MRU
    /// end with the referenced bit set.
    pub fn promote_handle(&mut self, handle: LruHandle) {
        self.touch_handle(handle);
    }

    /// Stops tracking a page through its handle, returning its key.
    pub fn remove_handle(&mut self, handle: LruHandle) -> PageKey {
        debug_assert!(self.nodes[handle.0 as usize].in_use, "remove of a freed LRU node");
        self.unlink(handle.0);
        self.free_node(handle.0);
        self.len -= 1;
        self.nodes[handle.0 as usize].key
    }

    /// The key behind a handle, or `None` if the node is not in use
    /// (used by the memory manager's `validate`).
    pub fn key_of(&self, handle: LruHandle) -> Option<PageKey> {
        let node = self.nodes.get(handle.0 as usize)?;
        node.in_use.then_some(node.key)
    }

    /// The handle currently tracking `key`, if any. O(n): walks the slab;
    /// meant for tests and validation, not hot paths (the memory manager
    /// stores handles in its page table instead).
    pub fn handle_of(&self, key: PageKey) -> Option<LruHandle> {
        self.nodes.iter().position(|n| n.in_use && n.key == key).map(|idx| LruHandle(idx as u32))
    }

    // -------------------------------------------------- key-addressed compat

    /// Starts tracking a page at the MRU end; if the page is already
    /// tracked it is moved there and its referenced bit cleared. O(n) when
    /// the page may already be present — hot paths use [`LruQueue::push_hot`]
    /// with the returned handle instead.
    pub fn insert(&mut self, key: PageKey) -> LruHandle {
        if let Some(h) = self.handle_of(key) {
            self.unlink(h.0);
            self.link_tail(h.0);
            self.nodes[h.0 as usize].active = false;
            h
        } else {
            self.push_hot(key)
        }
    }

    /// Re-inserts a page at the cold end (see [`LruQueue::push_cold`]),
    /// removing any existing node for it first.
    pub fn reinsert_cold(&mut self, key: PageKey) -> LruHandle {
        if let Some(h) = self.handle_of(key) {
            self.remove_handle(h);
        }
        self.push_cold(key)
    }

    /// Records an access: relink at MRU and set the referenced bit.
    ///
    /// No-op if the page is not tracked (e.g. currently swapped out).
    pub fn touch(&mut self, key: PageKey) {
        if let Some(h) = self.handle_of(key) {
            self.touch_handle(h);
        }
    }

    /// `madvise(HOT_RUNTIME)`: force the page to the MRU end with the
    /// referenced bit set, making it survive the next reclaim scans.
    pub fn promote(&mut self, key: PageKey) {
        self.touch(key);
    }

    /// Stops tracking a page (evicted, unmapped or being swapped out).
    /// No-op if the page is not tracked.
    pub fn remove(&mut self, key: PageKey) {
        if let Some(h) = self.handle_of(key) {
            self.remove_handle(h);
        }
    }

    /// True if the page is tracked. O(n); see [`LruQueue::handle_of`].
    pub fn contains(&self, key: PageKey) -> bool {
        self.handle_of(key).is_some()
    }

    // --------------------------------------------------------------- eviction

    /// Pops the eviction victim: the coldest page without the referenced
    /// bit. Referenced pages encountered on the way get their second chance
    /// (bit cleared, rotated to the MRU end). Returns `None` when empty.
    ///
    /// Terminates without a scan budget: every rotation clears a bit, so at
    /// most `len` rotations precede the pop.
    pub fn pop_coldest(&mut self) -> Option<PageKey> {
        self.pop_coldest_classified().map(|(key, _)| key)
    }

    /// [`LruQueue::pop_coldest`] plus the victim's hotness class: `true`
    /// when the page ever earned a second chance (its referenced bit was
    /// seen by a reclaim scan), `false` for never-referenced cold pages.
    /// Pop order is identical to `pop_coldest`.
    pub fn pop_coldest_classified(&mut self) -> Option<(PageKey, bool)> {
        loop {
            let idx = self.head;
            if idx == NIL {
                return None;
            }
            if self.nodes[idx as usize].active {
                // Second chance: demote to MRU with the bit cleared.
                self.unlink(idx);
                self.link_tail(idx);
                self.nodes[idx as usize].active = false;
                self.nodes[idx as usize].rotated = true;
            } else {
                let warm = self.nodes[idx as usize].rotated;
                return Some((self.remove_handle(LruHandle(idx)), warm));
            }
        }
    }

    /// The coldest page without popping it (for inspection/tests).
    pub fn peek_coldest(&self) -> Option<PageKey> {
        (self.head != NIL).then(|| self.nodes[self.head as usize].key)
    }

    /// Removes every page belonging to `pid`, returning how many were
    /// dropped (process exit).
    pub fn remove_process(&mut self, pid: Pid) -> usize {
        let mut victims: Vec<u32> = Vec::new();
        let mut idx = self.head;
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            if node.key.pid == pid {
                victims.push(idx);
            }
            idx = node.next;
        }
        let n = victims.len();
        for idx in victims {
            self.remove_handle(LruHandle(idx));
        }
        n
    }

    /// Iterates tracked pages from coldest to hottest (for validation and
    /// debugging).
    pub fn iter(&self) -> impl Iterator<Item = PageKey> + '_ {
        let mut idx = self.head;
        std::iter::from_fn(move || {
            if idx == NIL {
                return None;
            }
            let node = &self.nodes[idx as usize];
            idx = node.next;
            Some(node.key)
        })
    }
}

/// The pre-rewrite map-based LRU, kept as a behavioural reference.
///
/// The original `BTreeMap`-stamp implementation of the second-chance
/// LRU, preserved verbatim. It exists for two consumers only:
///
/// * the differential proptests, which drive it and [`LruQueue`]
///   through identical random op sequences and assert identical pop
///   order, and
/// * `fleet-bench`, which times it as the committed `baseline_ops_per_sec`
///   in `BENCH_kernel.json`.
///
/// It is not part of the supported API surface.
#[doc(hidden)]
pub mod reference {
    use crate::page::PageKey;
    use std::collections::{BTreeMap, HashMap};

    /// A deterministic second-chance LRU queue of pages (map-based).
    #[derive(Debug, Clone)]
    pub struct MapLruQueue {
        by_stamp: BTreeMap<u64, PageKey>,
        stamps: HashMap<PageKey, u64>,
        active: HashMap<PageKey, bool>,
        next_stamp: u64,
        cold_stamp: u64,
    }

    impl Default for MapLruQueue {
        fn default() -> Self {
            MapLruQueue::new()
        }
    }

    impl MapLruQueue {
        /// Creates an empty queue.
        pub fn new() -> Self {
            MapLruQueue {
                by_stamp: BTreeMap::new(),
                stamps: HashMap::new(),
                active: HashMap::new(),
                // Ordinary stamps count up from the middle of the space;
                // `reinsert_cold` hands out stamps counting down, so
                // re-inserted pages sort colder than everything else.
                next_stamp: 1 << 33,
                cold_stamp: (1 << 33) - 1,
            }
        }

        /// Re-inserts a page at the *cold* end.
        pub fn reinsert_cold(&mut self, key: PageKey) {
            if let Some(old) = self.stamps.remove(&key) {
                self.by_stamp.remove(&old);
            }
            let stamp = self.cold_stamp;
            self.cold_stamp -= 1;
            self.stamps.insert(key, stamp);
            self.by_stamp.insert(stamp, key);
            self.active.insert(key, false);
        }

        /// Number of pages tracked.
        pub fn len(&self) -> usize {
            self.stamps.len()
        }

        /// True when no pages are tracked.
        pub fn is_empty(&self) -> bool {
            self.stamps.is_empty()
        }

        /// True if the page is tracked.
        pub fn contains(&self, key: PageKey) -> bool {
            self.stamps.contains_key(&key)
        }

        fn restamp(&mut self, key: PageKey) {
            if let Some(old) = self.stamps.remove(&key) {
                self.by_stamp.remove(&old);
            }
            let stamp = self.next_stamp;
            self.next_stamp += 1;
            self.stamps.insert(key, stamp);
            self.by_stamp.insert(stamp, key);
        }

        /// Starts tracking a page at the MRU end.
        pub fn insert(&mut self, key: PageKey) {
            self.restamp(key);
            self.active.insert(key, false);
        }

        /// Records an access: restamp to MRU and set the referenced bit.
        pub fn touch(&mut self, key: PageKey) {
            if self.stamps.contains_key(&key) {
                self.restamp(key);
                self.active.insert(key, true);
            }
        }

        /// `madvise(HOT_RUNTIME)`: see [`MapLruQueue::touch`].
        pub fn promote(&mut self, key: PageKey) {
            self.touch(key);
        }

        /// Stops tracking a page.
        pub fn remove(&mut self, key: PageKey) {
            if let Some(stamp) = self.stamps.remove(&key) {
                self.by_stamp.remove(&stamp);
                self.active.remove(&key);
            }
        }

        /// Pops the eviction victim with second-chance rotation.
        pub fn pop_coldest(&mut self) -> Option<PageKey> {
            let mut budget = self.stamps.len() * 2 + 1;
            while budget > 0 {
                budget -= 1;
                let (&stamp, &key) = self.by_stamp.iter().next()?;
                if self.active.get(&key).copied().unwrap_or(false) {
                    self.by_stamp.remove(&stamp);
                    self.stamps.remove(&key);
                    let new_stamp = self.next_stamp;
                    self.next_stamp += 1;
                    self.stamps.insert(key, new_stamp);
                    self.by_stamp.insert(new_stamp, key);
                    self.active.insert(key, false);
                } else {
                    self.remove(key);
                    return Some(key);
                }
            }
            None
        }

        /// The coldest page without popping it.
        pub fn peek_coldest(&self) -> Option<PageKey> {
            self.by_stamp.values().next().copied()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Pid;

    fn key(i: u64) -> PageKey {
        PageKey { pid: Pid(0), index: i }
    }

    #[test]
    fn eviction_follows_recency() {
        let mut lru = LruQueue::new();
        for i in 0..5 {
            lru.insert(key(i));
        }
        assert_eq!(lru.pop_coldest(), Some(key(0)));
        assert_eq!(lru.pop_coldest(), Some(key(1)));
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn touch_gives_second_chance() {
        let mut lru = LruQueue::new();
        lru.insert(key(0));
        lru.insert(key(1));
        lru.touch(key(0)); // referenced: survives one reclaim scan
                           // key(0) was relinked past key(1), so key(1) is the plain victim.
        assert_eq!(lru.pop_coldest(), Some(key(1)));
        // Now key(0) has its bit set: first pop rotates it, then evicts it.
        assert_eq!(lru.pop_coldest(), Some(key(0)));
        assert!(lru.is_empty());
    }

    #[test]
    fn second_chance_rotation_order() {
        let mut lru = LruQueue::new();
        lru.insert(key(0));
        lru.insert(key(1));
        lru.insert(key(2));
        lru.touch(key(0)); // 0 hot, order now: 1, 2, 0*
        assert_eq!(lru.pop_coldest(), Some(key(1)));
        assert_eq!(lru.pop_coldest(), Some(key(2)));
        assert_eq!(lru.pop_coldest(), Some(key(0)));
        assert_eq!(lru.pop_coldest(), None);
    }

    #[test]
    fn promote_keeps_launch_pages_resident() {
        let mut lru = LruQueue::new();
        lru.insert(key(0)); // launch page
        for i in 1..10 {
            lru.insert(key(i));
        }
        lru.promote(key(0));
        // Nine evictions should all pick other pages.
        for _ in 0..9 {
            assert_ne!(lru.pop_coldest(), Some(key(0)));
        }
        assert_eq!(lru.pop_coldest(), Some(key(0)));
    }

    #[test]
    fn remove_process_drops_only_that_pid() {
        let mut lru = LruQueue::new();
        lru.insert(PageKey { pid: Pid(1), index: 0 });
        lru.insert(PageKey { pid: Pid(2), index: 0 });
        lru.insert(PageKey { pid: Pid(1), index: 1 });
        assert_eq!(lru.remove_process(Pid(1)), 2);
        assert_eq!(lru.len(), 1);
        assert!(lru.contains(PageKey { pid: Pid(2), index: 0 }));
    }

    #[test]
    fn touch_ignores_untracked_pages() {
        let mut lru = LruQueue::new();
        lru.touch(key(9));
        assert!(lru.is_empty());
        assert_eq!(lru.pop_coldest(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut lru = LruQueue::new();
        lru.insert(key(5));
        assert_eq!(lru.peek_coldest(), Some(key(5)));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn handles_survive_unrelated_churn() {
        let mut lru = LruQueue::new();
        let ha = lru.push_hot(key(0));
        for i in 1..8 {
            lru.push_hot(key(i));
        }
        // Pop a few cold pages; key(0) is coldest so protect it first.
        lru.promote_handle(ha);
        assert_eq!(lru.pop_coldest(), Some(key(1)));
        assert_eq!(lru.pop_coldest(), Some(key(2)));
        assert_eq!(lru.key_of(ha), Some(key(0)));
        assert_eq!(lru.remove_handle(ha), key(0));
        assert_eq!(lru.key_of(ha), None);
        assert_eq!(lru.len(), 5);
    }

    #[test]
    fn slab_recycles_freed_nodes() {
        let mut lru = LruQueue::new();
        for round in 0..4u64 {
            for i in 0..16 {
                lru.push_hot(key(round * 16 + i));
            }
            while lru.pop_coldest().is_some() {}
        }
        // Four full drain cycles over 16 pages must not grow the slab past
        // one generation of nodes.
        assert!(lru.nodes.len() <= 16, "slab grew to {}", lru.nodes.len());
    }

    #[test]
    fn push_cold_orders_before_everything() {
        let mut lru = LruQueue::new();
        lru.insert(key(1));
        lru.insert(key(2));
        lru.push_cold(key(3));
        lru.push_cold(key(4)); // colder still
        assert_eq!(lru.pop_coldest(), Some(key(4)));
        assert_eq!(lru.pop_coldest(), Some(key(3)));
        assert_eq!(lru.pop_coldest(), Some(key(1)));
    }

    #[test]
    fn classified_pop_reports_second_chance_history() {
        let mut lru = LruQueue::new();
        lru.insert(key(0));
        lru.insert(key(1));
        lru.touch(key(0)); // 0 referenced; order: 1, 0*
        assert_eq!(lru.pop_coldest_classified(), Some((key(1), false)));
        // key(0)'s bit is consumed by a rotation, marking it warm.
        assert_eq!(lru.pop_coldest_classified(), Some((key(0), true)));
        assert_eq!(lru.pop_coldest_classified(), None);
    }

    #[test]
    fn iter_walks_cold_to_hot() {
        let mut lru = LruQueue::new();
        lru.insert(key(0));
        lru.insert(key(1));
        lru.insert(key(2));
        lru.touch(key(0));
        let order: Vec<u64> = lru.iter().map(|k| k.index).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }
}
