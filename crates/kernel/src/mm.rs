//! The memory manager: frames, residency, faults, reclaim and madvise.
//!
//! This is the kernel half of the paper's "two-layer memory management"
//! (§2.2). It owns the DRAM frame budget, the global page LRU, and the swap
//! device, and implements:
//!
//! * demand paging — [`MemoryManager::access`] faults swapped pages back in
//!   at flash latency (the §3.2 hot-launch stall mechanism),
//! * watermark reclaim — [`MemoryManager::kswapd`] pushes cold pages out
//!   when free memory is low,
//! * Fleet's madvise extensions — [`MemoryManager::madvise_cold`]
//!   (`COLD_RUNTIME`: actively swap a range out) and
//!   [`MemoryManager::madvise_hot`] (`HOT_RUNTIME`: pin launch pages to the
//!   hot end of the LRU), §5.3.2,
//! * out-of-memory signalling — operations return [`MmError::OutOfMemory`]
//!   when neither frames nor swap slots are available, at which point the
//!   device layer invokes the low-memory killer.

use crate::lru::LruQueue;
use crate::page::{pages_in_range, PageKey, PageKind, PageState, Pid, PAGE_SIZE};
use crate::swap::{SwapConfig, SwapDevice};
use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Emits a flight-recorder event; compiled to nothing without the `audit`
/// feature, so emission sites cost zero in normal builds.
#[cfg(feature = "audit")]
macro_rules! audit {
    ($self:ident, $ev:expr) => {
        $self.audit.push(|_| $ev)
    };
}
#[cfg(not(feature = "audit"))]
macro_rules! audit {
    ($self:ident, $ev:expr) => {};
}

/// Who is touching memory; GC-kind accesses are the ones that "offset the
/// effects of swapping" in Figure 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Application threads.
    Mutator,
    /// The garbage-collector thread.
    Gc,
    /// Accesses on the hot-launch critical path.
    Launch,
}

impl AccessKind {
    /// Canonical name used in flight-recorder events.
    pub fn audit_name(self) -> &'static str {
        match self {
            AccessKind::Mutator => "mutator",
            AccessKind::Gc => "gc",
            AccessKind::Launch => "launch",
        }
    }
}

/// Result of an [`MemoryManager::access`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Stall time experienced by the accessing thread.
    pub latency: SimDuration,
    /// Pages that had to be faulted in from swap.
    pub faulted_pages: u64,
    /// Total pages touched (resident + faulted).
    pub touched_pages: u64,
    /// True when the access ran out of frames mid-way: the pages faulted
    /// before the failure are counted above and their state changes stand;
    /// the rest of the range was not touched. The caller should free memory
    /// (LMK) and retry the access.
    pub oom: bool,
}

impl AccessOutcome {
    /// Combines two outcomes (e.g. across several ranges of one operation).
    pub fn merge(&mut self, other: AccessOutcome) {
        self.latency += other.latency;
        self.faulted_pages += other.faulted_pages;
        self.touched_pages += other.touched_pages;
        self.oom |= other.oom;
    }
}

/// Errors from memory-manager operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmError {
    /// No DRAM frame and no swap slot could be found; the caller should
    /// kill a cached process and retry (the low-memory-killer path).
    OutOfMemory,
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::OutOfMemory => write!(f, "out of memory: no free frame and swap is full"),
        }
    }
}

impl std::error::Error for MmError {}

/// Memory-manager parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmConfig {
    /// DRAM available for app pages, in bytes (Pixel 3: 4 GB minus the
    /// system reserve; the device layer decides the exact figure).
    pub dram_bytes: u64,
    /// Swap device parameters.
    pub swap: SwapConfig,
    /// kswapd wakes below this many free frames…
    pub low_watermark_frames: u64,
    /// …and reclaims until this many frames are free.
    pub high_watermark_frames: u64,
    /// DRAM access cost per touched page (4 KiB / 9182.7 MB/s ≈ 0.45 µs).
    pub dram_page_cost: SimDuration,
    /// Sequential read bandwidth for re-reading dropped *file-backed* pages
    /// (readahead from flash, bytes/s). Far faster than the swap path.
    pub file_read_bw: f64,
    /// Reclaim balance, after Linux's `vm.swappiness` (0–200 here): the
    /// share of evictions that target anonymous memory while the file cache
    /// is above its floor. 50 ⇒ one eviction in four goes to anon.
    pub swappiness: u32,
}

impl Default for MmConfig {
    fn default() -> Self {
        let dram_bytes: u64 = 4 * 1024 * 1024 * 1024;
        let frames = dram_bytes / PAGE_SIZE;
        MmConfig {
            dram_bytes,
            swap: SwapConfig::default(),
            low_watermark_frames: frames / 32,
            high_watermark_frames: frames / 16,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
        }
    }
}

impl MmConfig {
    /// A tiny configuration for unit tests and doc examples: 1 MiB of DRAM
    /// (256 frames) and 1 MiB of swap.
    pub fn small_test() -> Self {
        MmConfig {
            dram_bytes: 1024 * 1024,
            swap: SwapConfig { capacity_bytes: 1024 * 1024, ..SwapConfig::default() },
            low_watermark_frames: 8,
            high_watermark_frames: 16,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
        }
    }
}

/// Aggregate kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Page faults served from swap, total.
    pub faults: u64,
    /// Faults caused by mutator accesses.
    pub faults_mutator: u64,
    /// Faults caused by the GC thread — the §3.2 conflict.
    pub faults_gc: u64,
    /// Faults on the hot-launch critical path.
    pub faults_launch: u64,
    /// Pages pushed to swap (reclaim + madvise).
    pub pages_swapped_out: u64,
    /// File-backed pages dropped by reclaim (no swap slot needed).
    pub pages_dropped_file: u64,
    /// Faults served by re-reading a file-backed page.
    pub faults_file: u64,
    /// Total stall time of faulting threads.
    pub fault_stall_nanos: u64,
    /// CPU time spent in kswapd/reclaim.
    pub kswapd_cpu_nanos: u64,
}

/// Per-process residency snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProcessMem {
    /// Pages in DRAM.
    pub resident: u64,
    /// Pages in swap.
    pub swapped: u64,
}

/// The kernel memory manager.
///
/// # Examples
///
/// ```
/// use fleet_kernel::{AccessKind, MemoryManager, MmConfig, Pid};
///
/// let mut mm = MemoryManager::new(MmConfig::small_test());
/// mm.map_range(Pid(1), 0, 16 * 4096).unwrap();
/// let out = mm.access(Pid(1), 0, 4096, AccessKind::Mutator);
/// assert_eq!(out.touched_pages, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryManager {
    config: MmConfig,
    frames_capacity: u64,
    states: HashMap<PageKey, PageState>,
    kinds: HashMap<PageKey, PageKind>,
    pid_pages: HashMap<Pid, HashSet<u64>>,
    /// Pages excluded from LRU eviction (Marvin manages its Java heap
    /// itself; the kernel must keep its hands off). Pinned pages can still
    /// be swapped *explicitly* via `madvise_cold`.
    pinned: HashSet<PageKey>,
    resident_count: u64,
    /// Per-process LRUs of resident anonymous pages. Android places every
    /// app in its own memory cgroup; reclaim scans cgroups proportionally
    /// to their size rather than by perfect global recency.
    anon_lrus: BTreeMap<Pid, LruQueue>,
    /// LRU of resident file-backed pages (the global file list).
    file_lru: LruQueue,
    /// Monotonic eviction counter driving the anon/file balance and the
    /// proportional cgroup pick.
    eviction_seq: u64,
    swap: SwapDevice,
    stats: KernelStats,
    /// Flight-recorder buffer (see `crates/audit`); disabled by default.
    #[cfg(feature = "audit")]
    audit: fleet_audit::EventLog,
}

impl MemoryManager {
    /// Creates a memory manager with no pages mapped.
    pub fn new(config: MmConfig) -> Self {
        let frames_capacity = config.dram_bytes / PAGE_SIZE;
        MemoryManager {
            config,
            frames_capacity,
            states: HashMap::new(),
            kinds: HashMap::new(),
            pid_pages: HashMap::new(),
            pinned: HashSet::new(),
            resident_count: 0,
            anon_lrus: BTreeMap::new(),
            file_lru: LruQueue::new(),
            eviction_seq: 0,
            swap: SwapDevice::new(config.swap),
            stats: KernelStats::default(),
            #[cfg(feature = "audit")]
            audit: fleet_audit::EventLog::default(),
        }
    }

    /// The flight-recorder buffer (drained by the device layer).
    #[cfg(feature = "audit")]
    pub fn audit_log_mut(&mut self) -> &mut fleet_audit::EventLog {
        &mut self.audit
    }

    /// Read-only view of the flight-recorder buffer.
    #[cfg(feature = "audit")]
    pub fn audit_log(&self) -> &fleet_audit::EventLog {
        &self.audit
    }

    /// The configuration.
    pub fn config(&self) -> &MmConfig {
        &self.config
    }

    /// Total DRAM frames.
    pub fn frames_capacity(&self) -> u64 {
        self.frames_capacity
    }

    /// Frames currently free. Zram-backed swap consumes DRAM for its
    /// compressed store, so its footprint is subtracted too.
    pub fn free_frames(&self) -> u64 {
        self.frames_capacity
            .saturating_sub(self.resident_count)
            .saturating_sub(self.swap.frames_consumed())
    }

    /// Frames currently holding pages.
    pub fn used_frames(&self) -> u64 {
        self.resident_count
    }

    /// The swap device.
    pub fn swap(&self) -> &SwapDevice {
        &self.swap
    }

    /// Aggregate counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Per-process residency counts.
    pub fn process_mem(&self, pid: Pid) -> ProcessMem {
        let mut mem = ProcessMem::default();
        if let Some(pages) = self.pid_pages.get(&pid) {
            for &index in pages {
                match self.states[&PageKey { pid, index }] {
                    PageState::Resident => mem.resident += 1,
                    PageState::Swapped => mem.swapped += 1,
                }
            }
        }
        mem
    }

    /// The state of one page, if mapped.
    pub fn page_state(&self, key: PageKey) -> Option<PageState> {
        self.states.get(&key).copied()
    }

    /// True if the page covering `addr` is mapped and resident.
    pub fn is_resident(&self, pid: Pid, addr: u64) -> bool {
        self.page_state(PageKey::of_addr(pid, addr)) == Some(PageState::Resident)
    }

    // ------------------------------------------------------------- map/unmap

    /// Maps `[base, base + len)` for `pid`. New pages start resident (they
    /// are written as they are allocated).
    ///
    /// Already-mapped pages in the range are left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`MmError::OutOfMemory`] when a frame cannot be found even
    /// after evicting; pages mapped before the failure stay mapped.
    pub fn map_range(&mut self, pid: Pid, base: u64, len: u64) -> Result<(), MmError> {
        self.map_range_kind(pid, base, len, PageKind::Anon)
    }

    /// Maps `[base, base + len)` with an explicit page kind (anonymous or
    /// file-backed).
    ///
    /// # Errors
    ///
    /// Returns [`MmError::OutOfMemory`] when a frame cannot be found even
    /// after evicting; pages mapped before the failure stay mapped.
    pub fn map_range_kind(
        &mut self,
        pid: Pid,
        base: u64,
        len: u64,
        kind: PageKind,
    ) -> Result<(), MmError> {
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            if self.states.contains_key(&key) {
                continue;
            }
            self.take_frame()?;
            self.states.insert(key, PageState::Resident);
            self.kinds.insert(key, kind);
            self.resident_count += 1;
            self.queue_insert(key);
            self.pid_pages.entry(pid).or_default().insert(index);
            audit!(
                self,
                fleet_audit::AuditEvent::PageMapped {
                    pid: pid.0,
                    page: index,
                    file: kind == PageKind::File,
                }
            );
        }
        Ok(())
    }

    fn kind_of(&self, key: PageKey) -> PageKind {
        self.kinds.get(&key).copied().unwrap_or(PageKind::Anon)
    }

    fn queue_mut(&mut self, key: PageKey) -> &mut LruQueue {
        match self.kind_of(key) {
            PageKind::Anon => self.anon_lrus.entry(key.pid).or_default(),
            PageKind::File => &mut self.file_lru,
        }
    }

    fn queue_insert(&mut self, key: PageKey) {
        self.queue_mut(key).insert(key);
    }

    fn queue_touch(&mut self, key: PageKey) {
        self.queue_mut(key).touch(key);
    }

    fn queue_remove(&mut self, key: PageKey) {
        self.queue_mut(key).remove(key);
    }

    fn anon_resident_total(&self) -> u64 {
        self.anon_lrus.values().map(|q| q.len() as u64).sum()
    }

    /// Latency of re-reading `n` dropped file-backed pages (readahead).
    fn file_read_cost(&mut self, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.stats.faults_file += n;
        let transfer = (n * PAGE_SIZE) as f64 / self.config.file_read_bw;
        SimDuration::from_micros(100) + SimDuration::from_secs_f64(transfer)
    }

    /// Unmaps `[base, base + len)` for `pid`, releasing frames and swap
    /// slots. Unmapped pages in the range are ignored.
    pub fn unmap_range(&mut self, pid: Pid, base: u64, len: u64) {
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            self.unmap_page(key);
        }
    }

    fn unmap_page(&mut self, key: PageKey) {
        let Some(state) = self.states.remove(&key) else {
            return;
        };
        self.pinned.remove(&key);
        let kind = self.kinds.remove(&key).unwrap_or(PageKind::Anon);
        audit!(
            self,
            fleet_audit::AuditEvent::PageUnmapped {
                pid: key.pid.0,
                page: key.index,
                resident: state == PageState::Resident,
                file: kind == PageKind::File,
            }
        );
        match state {
            PageState::Resident => {
                self.resident_count -= 1;
                match kind {
                    PageKind::Anon => {
                        if let Some(q) = self.anon_lrus.get_mut(&key.pid) {
                            q.remove(key);
                        }
                    }
                    PageKind::File => self.file_lru.remove(key),
                }
            }
            // Only anonymous pages hold swap slots; file pages were dropped.
            PageState::Swapped => {
                if kind == PageKind::Anon {
                    self.swap.release_page();
                }
            }
        }
        if let Some(pages) = self.pid_pages.get_mut(&key.pid) {
            pages.remove(&key.index);
        }
    }

    /// Unmaps every page of `pid` (process killed). Returns freed frames.
    pub fn unmap_process(&mut self, pid: Pid) -> u64 {
        let mut indexes: Vec<u64> =
            self.pid_pages.remove(&pid).map(|s| s.into_iter().collect()).unwrap_or_default();
        // The per-pid index set is a HashSet; fix the order so the audit
        // event stream (and thus the golden-trace hash) is deterministic.
        indexes.sort_unstable();
        let before = self.free_frames();
        for index in indexes {
            self.unmap_page(PageKey { pid, index });
        }
        self.anon_lrus.remove(&pid);
        self.free_frames() - before
    }

    // ---------------------------------------------------------------- access

    /// Touches `[addr, addr + len)` of `pid`: resident pages cost DRAM time
    /// and refresh their LRU position; swapped pages fault in at flash
    /// latency.
    ///
    /// When faulting needs a frame and none can be made free, the access
    /// stops early with [`AccessOutcome::oom`] set. The pages faulted before
    /// the failure keep their new state and are fully accounted; the caller
    /// should free memory (kill a process) and retry the access, merging the
    /// outcomes.
    pub fn access(&mut self, pid: Pid, addr: u64, len: u64, kind: AccessKind) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        let mut anon_faults = 0u64;
        let mut file_faults = 0u64;
        for index in pages_in_range(addr, len.max(1)) {
            let key = PageKey { pid, index };
            match self.states.get(&key) {
                None => continue, // unmapped (e.g. native memory not modelled here)
                Some(PageState::Resident) => {
                    self.queue_touch(key);
                    outcome.touched_pages += 1;
                    outcome.latency += self.config.dram_page_cost;
                }
                Some(PageState::Swapped) => {
                    if self.take_frame().is_err() {
                        outcome.oom = true;
                        break;
                    }
                    let file = self.kind_of(key) == PageKind::File;
                    if file {
                        file_faults += 1;
                    } else {
                        self.swap.release_page();
                        anon_faults += 1;
                    }
                    self.states.insert(key, PageState::Resident);
                    self.resident_count += 1;
                    if !self.pinned.contains(&key) {
                        self.queue_insert(key);
                        self.queue_touch(key);
                    }
                    outcome.touched_pages += 1;
                    audit!(
                        self,
                        fleet_audit::AuditEvent::PageFault {
                            pid: pid.0,
                            page: index,
                            file,
                            kind: kind.audit_name(),
                        }
                    );
                }
            }
        }
        if anon_faults + file_faults > 0 {
            let stall = self.swap.read_pages(anon_faults) + self.file_read_cost(file_faults);
            outcome.latency += stall;
            outcome.faulted_pages = anon_faults + file_faults;
            self.stats.faults += anon_faults + file_faults;
            self.stats.fault_stall_nanos += stall.as_nanos();
            match kind {
                AccessKind::Mutator => self.stats.faults_mutator += anon_faults + file_faults,
                AccessKind::Gc => self.stats.faults_gc += anon_faults + file_faults,
                AccessKind::Launch => self.stats.faults_launch += anon_faults + file_faults,
            }
        }
        outcome
    }

    /// Finds a free frame, evicting the coldest page if necessary.
    fn take_frame(&mut self) -> Result<(), MmError> {
        if self.free_frames() > 0 {
            return Ok(());
        }
        self.evict_one().map(|_| ())
    }

    /// Evicts one page. Policy mirrors Linux reclaim balance (swappiness):
    /// mostly drop file-backed pages (they are free to reclaim), but under
    /// sustained pressure every fourth eviction swaps an anonymous page —
    /// a continuously-streaming foreground therefore steadily pushes idle
    /// apps' heaps out to swap. Anonymous victims are chosen per-cgroup,
    /// proportionally to each process's resident anon size (Android's
    /// memcg reclaim), then coldest-first within that process. When the
    /// file cache is below its floor (an eighth of DRAM) anon goes first;
    /// when swap is full or absent, only file pages can go.
    fn evict_one(&mut self) -> Result<PageKey, MmError> {
        self.eviction_seq += 1;
        let file_floor = self.frames_capacity / 8;
        let file_resident = self.file_lru.len() as u64;
        let anon_possible = !self.swap.is_full() && self.anon_resident_total() > 0;
        // swappiness / 200 of evictions go to anon (default 50 ⇒ 1 in 4),
        // spread evenly over the eviction sequence.
        let sw = self.config.swappiness.clamp(0, 200) as u64;
        let anon_turn =
            sw > 0 && (self.eviction_seq * sw) / 200 != ((self.eviction_seq - 1) * sw) / 200;
        let prefer_file = !self.file_lru.is_empty()
            && (!anon_possible || (file_resident > file_floor && !anon_turn));
        let order: [PageKind; 2] = if prefer_file {
            [PageKind::File, PageKind::Anon]
        } else {
            [PageKind::Anon, PageKind::File]
        };
        for kind in order {
            match kind {
                PageKind::File => {
                    if let Some(victim) = self.file_lru.pop_coldest() {
                        self.states.insert(victim, PageState::Swapped);
                        self.resident_count -= 1;
                        self.stats.pages_dropped_file += 1;
                        audit!(
                            self,
                            fleet_audit::AuditEvent::SwapOut {
                                pid: victim.pid.0,
                                page: victim.index,
                                file: true,
                                advised: false,
                            }
                        );
                        return Ok(victim);
                    }
                }
                PageKind::Anon => {
                    if self.swap.is_full() {
                        continue;
                    }
                    if let Some(victim) = self.pop_anon_proportional() {
                        let reserved = self.swap.reserve_page();
                        debug_assert!(reserved, "swap fullness checked above");
                        self.states.insert(victim, PageState::Swapped);
                        self.resident_count -= 1;
                        self.stats.pages_swapped_out += 1;
                        self.stats.kswapd_cpu_nanos += self.swap.write_cost(1).as_nanos();
                        audit!(
                            self,
                            fleet_audit::AuditEvent::SwapOut {
                                pid: victim.pid.0,
                                page: victim.index,
                                file: false,
                                advised: false,
                            }
                        );
                        return Ok(victim);
                    }
                }
            }
        }
        Err(MmError::OutOfMemory)
    }

    /// Picks an anon victim: a process chosen proportionally to its
    /// resident anon size (deterministic: driven by the eviction counter),
    /// then that process's coldest page.
    fn pop_anon_proportional(&mut self) -> Option<PageKey> {
        let total = self.anon_resident_total();
        if total == 0 {
            return None;
        }
        // A multiplicative hash spreads consecutive eviction sequence
        // numbers across the [0, total) range deterministically.
        let target = self.eviction_seq.wrapping_mul(0x9e3779b97f4a7c15) % total;
        let mut acc = 0u64;
        let mut chosen: Option<Pid> = None;
        for (&pid, q) in &self.anon_lrus {
            acc += q.len() as u64;
            if target < acc {
                chosen = Some(pid);
                break;
            }
        }
        let start = chosen?;
        // Pop from the chosen process; fall back to later (then earlier)
        // processes if its queue yields nothing.
        let pids: Vec<Pid> = self.anon_lrus.keys().copied().collect();
        let start_idx = pids.iter().position(|&p| p == start).unwrap_or(0);
        for offset in 0..pids.len() {
            let pid = pids[(start_idx + offset) % pids.len()];
            if let Some(q) = self.anon_lrus.get_mut(&pid) {
                if let Some(victim) = q.pop_coldest() {
                    return Some(victim);
                }
            }
        }
        None
    }

    // --------------------------------------------------------------- reclaim

    /// Background reclaim: if free frames are below the low watermark,
    /// evict cold pages until the high watermark is met, swap space runs
    /// out, or nothing is evictable. Returns the number of pages reclaimed.
    pub fn kswapd(&mut self) -> u64 {
        if self.free_frames() >= self.config.low_watermark_frames {
            return 0;
        }
        let mut reclaimed = 0;
        while self.free_frames() < self.config.high_watermark_frames {
            match self.evict_one() {
                Ok(_) => reclaimed += 1,
                Err(_) => break,
            }
        }
        reclaimed
    }

    /// True when free memory is below the low watermark even though kswapd
    /// has run — the signal the device layer uses to consider an LMK kill.
    pub fn under_pressure(&self) -> bool {
        self.free_frames() < self.config.low_watermark_frames
    }

    // ------------------------------------------------------------- pinning

    /// Excludes the mapped pages of `[base, base + len)` from LRU eviction
    /// (Marvin's runtime-managed Java heap). Pinned pages can still be
    /// swapped explicitly with [`MemoryManager::madvise_cold`]. Returns the
    /// number of pages pinned.
    pub fn pin_range(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut pinned = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            if self.states.contains_key(&key) && self.pinned.insert(key) {
                self.queue_remove(key);
                pinned += 1;
                audit!(self, fleet_audit::AuditEvent::PagePinned { pid: pid.0, page: index });
            }
        }
        pinned
    }

    /// Returns pinned pages of a range to kernel LRU control. Returns the
    /// number of pages unpinned.
    pub fn unpin_range(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut unpinned = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            if self.pinned.remove(&key) {
                if self.states.get(&key) == Some(&PageState::Resident) {
                    self.queue_insert(key);
                }
                unpinned += 1;
                audit!(self, fleet_audit::AuditEvent::PageUnpinned { pid: pid.0, page: index });
            }
        }
        unpinned
    }

    /// True if the page covering `addr` is pinned.
    pub fn is_pinned(&self, pid: Pid, addr: u64) -> bool {
        self.pinned.contains(&PageKey::of_addr(pid, addr))
    }

    // --------------------------------------------------------------- madvise

    /// `madvise(COLD_RUNTIME)` (§5.3.2): actively swaps the resident pages
    /// of `[base, base + len)` out, ahead of memory pressure. Stops early if
    /// swap fills up. Returns the number of pages swapped out.
    pub fn madvise_cold(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut moved = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            if self.states.get(&key) == Some(&PageState::Resident) {
                let file = self.kind_of(key) == PageKind::File;
                if file {
                    self.stats.pages_dropped_file += 1;
                } else {
                    if self.swap.is_full() || !self.swap.reserve_page() {
                        break;
                    }
                    self.stats.pages_swapped_out += 1;
                    self.stats.kswapd_cpu_nanos += self.swap.write_cost(1).as_nanos();
                }
                self.queue_remove(key);
                self.states.insert(key, PageState::Swapped);
                self.resident_count -= 1;
                moved += 1;
                audit!(
                    self,
                    fleet_audit::AuditEvent::SwapOut {
                        pid: pid.0,
                        page: index,
                        file,
                        advised: true,
                    }
                );
            }
        }
        moved
    }

    /// `madvise(HOT_RUNTIME)` (§5.3.2): rotates the resident pages of
    /// `[base, base + len)` to the hot end of the LRU so reclaim will not
    /// pick them. Swapped pages are left where they are. Returns the number
    /// of pages promoted.
    pub fn madvise_hot(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut promoted = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            if self.states.get(&key) == Some(&PageState::Resident) {
                self.queue_mut(key).promote(key);
                promoted += 1;
                audit!(self, fleet_audit::AuditEvent::LruPromote { pid: pid.0, page: index });
            }
        }
        promoted
    }

    /// Prefetches swapped pages of several ranges back into DRAM in one
    /// batched operation (ASAP-style prepaging: the whole set is issued as
    /// one queued I/O, paying the setup latency once). Returns
    /// `(pages, latency)`; stops early (without error) when memory runs out.
    pub fn prefetch_many(&mut self, pid: Pid, ranges: &[(u64, u64)]) -> (u64, SimDuration) {
        let mut anon = 0u64;
        let mut file = 0u64;
        'outer: for &(base, len) in ranges {
            for index in pages_in_range(base, len) {
                let key = PageKey { pid, index };
                if self.states.get(&key) == Some(&PageState::Swapped) {
                    if self.take_frame().is_err() {
                        break 'outer;
                    }
                    let is_file = self.kind_of(key) == PageKind::File;
                    if is_file {
                        file += 1;
                    } else {
                        self.swap.release_page();
                        anon += 1;
                    }
                    self.states.insert(key, PageState::Resident);
                    self.resident_count += 1;
                    if !self.pinned.contains(&key) {
                        self.queue_insert(key);
                    }
                    audit!(
                        self,
                        fleet_audit::AuditEvent::PagePrefetched {
                            pid: pid.0,
                            page: index,
                            file: is_file,
                        }
                    );
                }
            }
        }
        let latency = self.swap.read_pages(anon) + self.file_read_cost(file);
        (anon + file, latency)
    }

    /// Prefetches swapped pages of a range back into DRAM (used by the
    /// ASAP-style prefetch extension). Returns `(pages, latency)`.
    ///
    /// # Errors
    ///
    /// Returns [`MmError::OutOfMemory`] when frames run out mid-prefetch.
    pub fn prefetch(
        &mut self,
        pid: Pid,
        base: u64,
        len: u64,
    ) -> Result<(u64, SimDuration), MmError> {
        let mut batch = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            if self.states.get(&key) == Some(&PageState::Swapped) {
                self.take_frame()?;
                let file = self.kind_of(key) == PageKind::File;
                if !file {
                    self.swap.release_page();
                }
                self.states.insert(key, PageState::Resident);
                self.resident_count += 1;
                if !self.pinned.contains(&key) {
                    self.queue_insert(key);
                }
                batch += 1;
                audit!(
                    self,
                    fleet_audit::AuditEvent::PagePrefetched { pid: pid.0, page: index, file }
                );
            }
        }
        let latency = self.swap.read_pages(batch);
        Ok((batch, latency))
    }

    // ------------------------------------------------------------ validation

    /// Checks the memory manager's internal bookkeeping for consistency and
    /// panics on the first inconsistency found. Used by the invariant test
    /// suites after every operation; always compiled (no feature gate) so
    /// plain tests can call it too.
    ///
    /// Invariants checked:
    ///
    /// * `resident_count` equals the number of pages in `Resident` state,
    /// * swap slot usage equals the number of swapped *anonymous* pages
    ///   (file pages are dropped, not swapped),
    /// * resident pages plus the zram store fit in DRAM,
    /// * every resident non-pinned page sits in exactly its proper LRU
    ///   queue, and the queues hold nothing else,
    /// * pinned and swapped pages are on no queue,
    /// * the per-pid page sets agree with the page-state table,
    /// * every mapped page has a recorded kind.
    pub fn validate(&self) {
        let resident = self.states.values().filter(|&&s| s == PageState::Resident).count() as u64;
        assert_eq!(
            resident, self.resident_count,
            "resident_count {} disagrees with page states ({resident} resident)",
            self.resident_count
        );
        let swapped_anon = self
            .states
            .iter()
            .filter(|&(&k, &s)| s == PageState::Swapped && self.kind_of(k) == PageKind::Anon)
            .count() as u64;
        assert_eq!(
            swapped_anon,
            self.swap.used_pages(),
            "swap device uses {} slots but {swapped_anon} anon pages are swapped",
            self.swap.used_pages()
        );
        assert!(
            self.resident_count + self.swap.frames_consumed() <= self.frames_capacity,
            "resident {} + zram {} exceed DRAM {}",
            self.resident_count,
            self.swap.frames_consumed(),
            self.frames_capacity
        );
        let mut queued = 0u64;
        for (&key, &state) in &self.states {
            assert!(self.kinds.contains_key(&key), "page {key:?} has no kind");
            assert!(
                self.pid_pages.get(&key.pid).is_some_and(|p| p.contains(&key.index)),
                "page {key:?} missing from its pid set"
            );
            let in_queue = match self.kind_of(key) {
                PageKind::Anon => self.anon_lrus.get(&key.pid).is_some_and(|q| q.contains(key)),
                PageKind::File => self.file_lru.contains(key),
            };
            let should_queue = state == PageState::Resident && !self.pinned.contains(&key);
            assert_eq!(
                in_queue,
                should_queue,
                "page {key:?} (state {state:?}, pinned {}) queue membership wrong",
                self.pinned.contains(&key)
            );
            if in_queue {
                queued += 1;
            }
        }
        let queue_total = self.anon_resident_total() + self.file_lru.len() as u64;
        assert_eq!(
            queue_total, queued,
            "LRU queues hold {queue_total} pages but only {queued} mapped pages belong there"
        );
        for (pid, pages) in &self.pid_pages {
            for &index in pages {
                assert!(
                    self.states.contains_key(&PageKey { pid: *pid, index }),
                    "pid {pid} set lists unmapped page {index}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm_with_frames(frames: u64, swap_pages: u64) -> MemoryManager {
        MemoryManager::new(MmConfig {
            dram_bytes: frames * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: swap_pages * PAGE_SIZE, ..SwapConfig::default() },
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
        })
    }

    #[test]
    fn map_and_access_resident() {
        let mut mm = mm_with_frames(8, 8);
        mm.map_range(Pid(1), 0, 3 * PAGE_SIZE).unwrap();
        assert_eq!(mm.used_frames(), 3);
        let out = mm.access(Pid(1), 0, 2 * PAGE_SIZE, AccessKind::Mutator);
        assert_eq!(out.touched_pages, 2);
        assert_eq!(out.faulted_pages, 0);
        assert_eq!(mm.stats().faults, 0);
    }

    #[test]
    fn mapping_past_dram_evicts_lru() {
        let mut mm = mm_with_frames(2, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        // Third page forces the eviction of page 0 (the coldest).
        mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(mm.used_frames(), 2);
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Swapped));
        assert_eq!(mm.stats().pages_swapped_out, 1);
    }

    #[test]
    fn fault_brings_page_back_at_flash_latency() {
        let mut mm = mm_with_frames(2, 4);
        mm.map_range(Pid(1), 0, 3 * PAGE_SIZE).unwrap(); // page 0 swapped
        let out = mm.access(Pid(1), 0, 1, AccessKind::Launch);
        assert_eq!(out.faulted_pages, 1);
        assert!(
            out.latency > SimDuration::from_micros(200),
            "flash fault should be slow: {}",
            out.latency
        );
        assert_eq!(mm.stats().faults_launch, 1);
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Resident));
    }

    #[test]
    fn oom_when_swap_full_and_no_frames() {
        let mut mm = mm_with_frames(2, 1);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap(); // swap now holds 1 page (full)
        let err = mm.map_range(Pid(1), 3 * PAGE_SIZE, PAGE_SIZE);
        assert_eq!(err, Err(MmError::OutOfMemory));
        // Killing the process frees everything and mapping succeeds again.
        let freed = mm.unmap_process(Pid(1));
        assert_eq!(freed, 2);
        assert_eq!(mm.swap().used_pages(), 0);
        mm.map_range(Pid(2), 0, 2 * PAGE_SIZE).unwrap();
    }

    #[test]
    fn unmap_releases_swap_slots() {
        let mut mm = mm_with_frames(1, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap(); // page 0 swapped out
        assert_eq!(mm.swap().used_pages(), 1);
        mm.unmap_range(Pid(1), 0, 2 * PAGE_SIZE);
        assert_eq!(mm.swap().used_pages(), 0);
        assert_eq!(mm.used_frames(), 0);
    }

    #[test]
    fn gc_faults_are_attributed() {
        let mut mm = mm_with_frames(1, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 1, AccessKind::Gc);
        assert_eq!(mm.stats().faults_gc, 1);
        assert_eq!(mm.stats().faults_mutator, 0);
    }

    #[test]
    fn madvise_cold_swaps_out_range() {
        let mut mm = mm_with_frames(8, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        let moved = mm.madvise_cold(Pid(1), 0, 4 * PAGE_SIZE);
        assert_eq!(moved, 4);
        assert_eq!(mm.used_frames(), 0);
        assert_eq!(mm.process_mem(Pid(1)).swapped, 4);
    }

    #[test]
    fn madvise_cold_stops_when_swap_full() {
        let mut mm = mm_with_frames(8, 2);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        let moved = mm.madvise_cold(Pid(1), 0, 4 * PAGE_SIZE);
        assert_eq!(moved, 2);
        assert_eq!(mm.process_mem(Pid(1)).resident, 2);
    }

    #[test]
    fn madvise_hot_protects_pages_from_eviction() {
        let mut mm = mm_with_frames(4, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        // Promote page 0, then map two more pages forcing evictions.
        assert_eq!(mm.madvise_hot(Pid(1), 0, PAGE_SIZE), 1);
        mm.map_range(Pid(1), 4 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Resident));
        // Pages 1 and 2 (cold, unreferenced) went instead.
        assert_eq!(mm.process_mem(Pid(1)).swapped, 2);
    }

    #[test]
    fn kswapd_restores_watermark() {
        let mut mm = MemoryManager::new(MmConfig {
            dram_bytes: 10 * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: 20 * PAGE_SIZE, ..SwapConfig::default() },
            low_watermark_frames: 2,
            high_watermark_frames: 4,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
        });
        mm.map_range(Pid(1), 0, 9 * PAGE_SIZE).unwrap(); // 1 free < low
        assert!(mm.under_pressure());
        let reclaimed = mm.kswapd();
        assert_eq!(reclaimed, 3); // free goes 1 → 4
        assert!(!mm.under_pressure());
        assert_eq!(mm.kswapd(), 0); // already satisfied
    }

    #[test]
    fn prefetch_restores_range() {
        let mut mm = mm_with_frames(4, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.madvise_cold(Pid(1), 0, 2 * PAGE_SIZE);
        let (pages, latency) = mm.prefetch(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        assert_eq!(pages, 2);
        assert!(latency > SimDuration::ZERO);
        assert_eq!(mm.process_mem(Pid(1)).swapped, 0);
    }

    #[test]
    fn double_map_is_idempotent() {
        let mut mm = mm_with_frames(4, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        assert_eq!(mm.used_frames(), 2);
    }

    #[test]
    fn swappiness_steers_the_anon_file_balance() {
        let run = |swappiness: u32| {
            let mut mm = MemoryManager::new(MmConfig {
                dram_bytes: 64 * PAGE_SIZE,
                swap: SwapConfig { capacity_bytes: 256 * PAGE_SIZE, ..SwapConfig::default() },
                low_watermark_frames: 0,
                high_watermark_frames: 0,
                swappiness,
                ..MmConfig::default()
            });
            // Half anon, half file, then heavy extra file demand.
            mm.map_range_kind(Pid(1), 0, 32 * PAGE_SIZE, PageKind::Anon).unwrap();
            mm.map_range_kind(Pid(2), 0, 32 * PAGE_SIZE, PageKind::File).unwrap();
            mm.map_range_kind(Pid(3), 0, 64 * PAGE_SIZE, PageKind::File).unwrap();
            mm.stats().pages_swapped_out
        };
        let low = run(0);
        let mid = run(50);
        let high = run(200);
        assert_eq!(low, 0, "swappiness 0 must never swap anon while file is droppable");
        assert!(high > mid, "higher swappiness swaps more anon: {high} vs {mid}");
        assert!(mid > 0, "default swappiness swaps some anon under sustained demand");
    }

    #[test]
    fn access_to_unmapped_range_is_free() {
        let mut mm = mm_with_frames(4, 4);
        let out = mm.access(Pid(1), 0, PAGE_SIZE, AccessKind::Mutator);
        assert_eq!(out.touched_pages, 0);
        assert_eq!(out.latency, SimDuration::ZERO);
    }

    #[test]
    fn access_oom_keeps_partial_progress() {
        let mut mm = mm_with_frames(2, 2);
        // Fill DRAM and swap: 2 resident + 2 swapped, nothing evictable left
        // once swap is full.
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        assert_eq!(mm.swap().used_pages(), 2);
        // Touching all four pages must fault two back in; each fault evicts
        // another page into the (full) swap, so the second fault cannot find
        // a frame and the access stops early with the oom flag.
        let out = mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator);
        assert!(out.oom, "exhausted memory must set the oom flag");
        assert!(out.touched_pages < 4, "oom access must stop early, touched {}", out.touched_pages);
        // Partial progress is fully accounted: counters still balance.
        mm.validate();
        // Freeing memory lets a retry finish the range.
        mm.unmap_range(Pid(1), 0, 2 * PAGE_SIZE);
        let retry = mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator);
        assert!(!retry.oom);
        mm.validate();
    }

    #[test]
    fn validate_accepts_all_page_states() {
        let mut mm = mm_with_frames(4, 8);
        mm.map_range(Pid(1), 0, 3 * PAGE_SIZE).unwrap();
        mm.map_range_kind(Pid(2), 0, 2 * PAGE_SIZE, PageKind::File).unwrap();
        mm.validate();
        mm.madvise_cold(Pid(1), 0, PAGE_SIZE); // one swapped anon page
        mm.madvise_cold(Pid(2), 0, PAGE_SIZE); // one dropped file page
        mm.pin_range(Pid(1), PAGE_SIZE, PAGE_SIZE); // one pinned page
        mm.validate();
        mm.unmap_process(Pid(1));
        mm.unmap_process(Pid(2));
        mm.validate();
        assert_eq!(mm.used_frames(), 0);
    }
}
