//! The memory manager: frames, residency, faults, reclaim and madvise.
//!
//! This is the kernel half of the paper's "two-layer memory management"
//! (§2.2). It owns the DRAM frame budget, the global page LRU, and the swap
//! device, and implements:
//!
//! * demand paging — [`MemoryManager::access`] faults swapped pages back in
//!   at flash latency (the §3.2 hot-launch stall mechanism),
//! * watermark reclaim — [`MemoryManager::kswapd`] pushes cold pages out
//!   when free memory is low,
//! * Fleet's madvise extensions — [`MemoryManager::madvise`] with
//!   [`Advice::ColdRuntime`] (`COLD_RUNTIME`: actively swap a range out)
//!   and [`Advice::HotRuntime`] (`HOT_RUNTIME`: pin launch pages to the hot
//!   end of the LRU), §5.3.2,
//! * out-of-memory signalling — operations return [`MmError::OutOfMemory`]
//!   when neither frames nor swap slots are available, at which point the
//!   device layer invokes the low-memory killer.
//!
//! # Data layout
//!
//! Page metadata lives in real-page-table-shaped structures rather than
//! maps: each process owns a [`PageTable`] — a short sorted list of address
//! segments, each a directory of 512-page chunks holding one 8-byte
//! [`PageEntry`] (`flags` + LRU node handle) per page. A page lookup is a
//! couple of compares plus two array indexes; no hashing, no tree walk.
//! The entry stores the page's [`LruHandle`], so every LRU operation on the
//! access/fault/reclaim paths is O(1) pointer surgery in the intrusive
//! [`LruQueue`] slab.

use crate::fault::{retry_backoff, FaultPlan, ReadFault, FAULT_RETRY_MAX};
use crate::integrity::{slot_checksum, IntegrityConfig, CORRUPTION_FLIP};
use crate::lru::{LruHandle, LruQueue};
use crate::page::{pages_in_range, PageKey, PageKind, PageState, Pid, PAGE_SIZE};
use crate::swap::{SwapConfig, SwapDevice, SwapError};
use crate::tier::{SwapStack, SwapStats, SwapTier};
use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Emits a flight-recorder event; compiled to nothing without the `audit`
/// feature, so emission sites cost zero in normal builds.
#[cfg(feature = "audit")]
macro_rules! audit {
    ($self:ident, $ev:expr) => {
        $self.audit.push(|_| $ev)
    };
}
#[cfg(not(feature = "audit"))]
macro_rules! audit {
    ($self:ident, $ev:expr) => {};
}

/// Builds a child span of a `fault_service` span for one degradation event
/// (retry chain, discard-and-refault, fatal loss) at `rel` nanos into the
/// access, lasting `dur`.
#[cfg(feature = "obs")]
fn fault_child(
    name: &'static str,
    rel: u64,
    dur: SimDuration,
    page: u64,
    retries: u64,
) -> fleet_obs::SpanRec {
    fleet_obs::SpanRec {
        pid: 0,
        name,
        cat: "kernel",
        depth: 1,
        rel_start: rel,
        dur: dur.as_nanos(),
        args: vec![("page", page), ("retries", retries)],
    }
}

/// Who is touching memory; GC-kind accesses are the ones that "offset the
/// effects of swapping" in Figure 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Application threads.
    Mutator,
    /// The garbage-collector thread.
    Gc,
    /// Accesses on the hot-launch critical path.
    Launch,
}

impl AccessKind {
    /// Canonical name used in flight-recorder events.
    pub fn audit_name(self) -> &'static str {
        match self {
            AccessKind::Mutator => "mutator",
            AccessKind::Gc => "gc",
            AccessKind::Launch => "launch",
        }
    }
}

/// Advice passed to [`MemoryManager::madvise`] — the paper's two new
/// `madvise` options (§5.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Advice {
    /// `COLD_RUNTIME`: the range will not be needed soon; actively swap its
    /// resident pages out ahead of memory pressure.
    ColdRuntime,
    /// `HOT_RUNTIME`: the range is about to be (or being) used on a launch
    /// critical path; rotate its resident pages to the hot end of the LRU
    /// so reclaim will not pick them.
    HotRuntime,
}

/// Result of an [`MemoryManager::access`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Stall time experienced by the accessing thread.
    pub latency: SimDuration,
    /// Pages that had to be faulted in from swap.
    pub faulted_pages: u64,
    /// Total pages touched (resident + faulted).
    pub touched_pages: u64,
    /// True when the access ran out of frames mid-way: the pages faulted
    /// before the failure are counted above and their state changes stand;
    /// the rest of the range was not touched. The caller should free memory
    /// (LMK) and retry the access.
    pub oom: bool,
    /// Bounded retries performed against transient swap I/O errors
    /// (injected by an armed [`FaultPlan`]; always zero on quiet devices).
    pub retries: u64,
    /// The injected share of `latency`: retry backoff, device-internal GC
    /// pauses and discard-and-refault penalties. Already included in
    /// `latency`; reported separately so callers can attribute degradation.
    pub degraded_latency: SimDuration,
    /// True when a permanent swap read error lost an anonymous page of this
    /// process. The page's data is gone; the access stopped early and the
    /// caller must kill the process (the SIGBUS path) rather than retry.
    pub killed: bool,
    /// The zram-decompression share of `latency`: stall spent reading pages
    /// back from the compressed front tier. Already included in `latency`;
    /// reported separately so launch attribution can show where hybrid swap
    /// wins come from. Always zero without a zram front tier.
    pub decompress_latency: SimDuration,
}

impl AccessOutcome {
    /// Combines two outcomes (e.g. across several ranges of one operation).
    pub fn merge(&mut self, other: AccessOutcome) {
        self.latency += other.latency;
        self.faulted_pages += other.faulted_pages;
        self.touched_pages += other.touched_pages;
        self.oom |= other.oom;
        self.retries += other.retries;
        self.degraded_latency += other.degraded_latency;
        self.killed |= other.killed;
        self.decompress_latency += other.decompress_latency;
    }
}

/// Errors from memory-manager operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmError {
    /// No DRAM frame and no swap slot could be found; the caller should
    /// kill a cached process and retry (the low-memory-killer path).
    OutOfMemory,
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::OutOfMemory => write!(f, "out of memory: no free frame and swap is full"),
        }
    }
}

impl std::error::Error for MmError {}

/// Memory-manager parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmConfig {
    /// DRAM available for app pages, in bytes (Pixel 3: 4 GB minus the
    /// system reserve; the device layer decides the exact figure).
    pub dram_bytes: u64,
    /// Back-tier swap device parameters (flash by default; a zram-only
    /// configuration makes this the zram device).
    pub swap: SwapConfig,
    /// Optional zram front tier placed in front of `swap`, forming a hybrid
    /// [`SwapStack`]: warm victims are compressed into DRAM, cold ones go
    /// to the back tier, and a writeback daemon demotes aging zram slots.
    /// `None` (the default) keeps the single-device behaviour bit-for-bit.
    pub zram: Option<SwapConfig>,
    /// kswapd wakes below this many free frames…
    pub low_watermark_frames: u64,
    /// …and reclaims until this many frames are free.
    pub high_watermark_frames: u64,
    /// DRAM access cost per touched page (4 KiB / 9182.7 MB/s ≈ 0.45 µs).
    pub dram_page_cost: SimDuration,
    /// Sequential read bandwidth for re-reading dropped *file-backed* pages
    /// (readahead from flash, bytes/s). Far faster than the swap path.
    pub file_read_bw: f64,
    /// Reclaim balance, after Linux's `vm.swappiness` (0–200 here): the
    /// share of evictions that target anonymous memory while the file cache
    /// is above its floor. 50 ⇒ one eviction in four goes to anon.
    pub swappiness: u32,
    /// Swap data-integrity layer (per-slot checksums, quarantine, tier
    /// retirement — DESIGN.md §14). Off by default and bit-invisible when
    /// off: no checksum, no draw, no event.
    pub integrity: IntegrityConfig,
}

impl Default for MmConfig {
    fn default() -> Self {
        let dram_bytes: u64 = 4 * 1024 * 1024 * 1024;
        let frames = dram_bytes / PAGE_SIZE;
        MmConfig {
            dram_bytes,
            swap: SwapConfig::default(),
            zram: None,
            low_watermark_frames: frames / 32,
            high_watermark_frames: frames / 16,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity: IntegrityConfig::default(),
        }
    }
}

impl MmConfig {
    /// A tiny configuration for unit tests and doc examples: 1 MiB of DRAM
    /// (256 frames) and 1 MiB of swap.
    pub fn small_test() -> Self {
        MmConfig {
            dram_bytes: 1024 * 1024,
            swap: SwapConfig { capacity_bytes: 1024 * 1024, ..SwapConfig::default() },
            zram: None,
            low_watermark_frames: 8,
            high_watermark_frames: 16,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity: IntegrityConfig::default(),
        }
    }
}

/// Aggregate kernel counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelStats {
    /// Page faults served from swap, total.
    pub faults: u64,
    /// Faults caused by mutator accesses.
    pub faults_mutator: u64,
    /// Faults caused by the GC thread — the §3.2 conflict.
    pub faults_gc: u64,
    /// Faults on the hot-launch critical path.
    pub faults_launch: u64,
    /// Pages pushed to swap (reclaim + madvise).
    pub pages_swapped_out: u64,
    /// File-backed pages dropped by reclaim (no swap slot needed).
    pub pages_dropped_file: u64,
    /// Faults served by re-reading a file-backed page.
    pub faults_file: u64,
    /// Total stall time of faulting threads.
    pub fault_stall_nanos: u64,
    /// CPU time spent in kswapd/reclaim.
    pub kswapd_cpu_nanos: u64,
    /// Bounded retries of transient swap I/O errors (fault injection).
    pub fault_retries: u64,
    /// Swap read operations that failed past the retry budget.
    pub swap_read_errors: u64,
    /// Swap write-backs that failed; the victim page stayed resident.
    pub swap_write_errors: u64,
    /// Anonymous pages lost to permanent read errors (owner killed).
    pub pages_lost: u64,
    /// Faults served from the zram front tier (hybrid swap only).
    pub faults_zram: u64,
    /// Pages placed into the zram front tier on swap-out (hybrid only).
    pub pages_swapped_zram: u64,
    /// Pages the writeback daemon demoted zram → flash (hybrid only).
    pub zram_writeback_pages: u64,
    /// Warm victims that proved incompressible and fell through to the
    /// flash tier instead of pinning a full DRAM frame (hybrid only).
    pub zram_fallthrough_pages: u64,
    /// Decompression share of fault stall: nanos spent reading pages back
    /// from the zram front tier (hybrid only).
    pub decompress_stall_nanos: u64,
    /// Pages the proactive reclaim daemon swapped out of idle background
    /// apps ahead of pressure (Swam reclaim policy only).
    pub proactive_swapout_pages: u64,
    /// Working-set epochs advanced by the proactive daemon (Swam only).
    pub wss_epochs: u64,
    /// Silent corruptions injected into stored slots (integrity layer
    /// armed with a corruption plan only).
    pub corruptions_injected: u64,
    /// Corruptions found by checksum verification (fault-in, writeback,
    /// scrub or unmap). Each injected corruption is detected at most once.
    pub corruptions_detected: u64,
    /// Slots permanently quarantined after a detection.
    pub slots_quarantined: u64,
    /// Tiers retired at runtime by quarantine saturation (0, 1 or 2).
    pub tiers_retired: u64,
    /// Background scrubber passes completed.
    pub scrub_passes: u64,
    /// Cold slots the scrubber has verified, total.
    pub scrub_pages_scanned: u64,
}

/// Per-process residency snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProcessMem {
    /// Pages in DRAM.
    pub resident: u64,
    /// Pages in swap.
    pub swapped: u64,
}

// ------------------------------------------------------------- page tables

/// Page-entry flag: the page is mapped (the entry is live).
const PE_MAPPED: u8 = 1;
/// Page-entry flag: the page is in DRAM (else it is in swap).
const PE_RESIDENT: u8 = 1 << 1;
/// Page-entry flag: the page is file-backed (else anonymous).
const PE_FILE: u8 = 1 << 2;
/// Page-entry flag: the page is excluded from LRU eviction.
const PE_PINNED: u8 = 1 << 3;
/// Page-entry flag: the (swapped, anonymous) page lives in the zram front
/// tier rather than the back tier. For zram pages the entry's `node` holds
/// the page's handle in the writeback FIFO instead of an LRU handle.
const PE_ZRAM: u8 = 1 << 4;

/// "No LRU node": the page is not on any queue (swapped or pinned).
const NO_NODE: u32 = u32::MAX;

/// One page's metadata: state flags plus its LRU node handle. 8 bytes —
/// 512 entries pack into one 4 KiB chunk, so walking a range of pages is a
/// linear scan of one array.
///
/// Public only for `fleet-bench`'s page-table microbenchmark; not part of
/// the supported API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEntry {
    flags: u8,
    /// Raw [`LruHandle`] of the page's node, or [`NO_NODE`].
    node: u32,
}

impl PageEntry {
    const EMPTY: PageEntry = PageEntry { flags: 0, node: NO_NODE };

    pub fn is_mapped(self) -> bool {
        self.flags & PE_MAPPED != 0
    }
    pub fn is_resident(self) -> bool {
        self.flags & PE_RESIDENT != 0
    }
    pub fn is_file(self) -> bool {
        self.flags & PE_FILE != 0
    }
    pub fn is_pinned(self) -> bool {
        self.flags & PE_PINNED != 0
    }
    pub fn is_zram(self) -> bool {
        self.flags & PE_ZRAM != 0
    }
}

/// Pages per chunk: 512 × 4 KiB = 2 MiB of address space per chunk, the
/// same span as one x86-64 last-level page-table page.
const CHUNK_PAGES: u64 = 512;

/// Adjacent-segment slack: a new chunk this close to an existing segment
/// extends it instead of opening a new one, keeping the segment list short
/// (heap, native and file mappings land in one segment each).
const SLACK_CHUNKS: u64 = 64;

/// A 2 MiB-aligned block of 512 page entries.
#[derive(Debug, Clone)]
struct Chunk {
    entries: Box<[PageEntry; CHUNK_PAGES as usize]>,
    /// Mapped entries in this chunk; the chunk is freed when it hits zero,
    /// so long-dead address ranges do not pin memory.
    mapped: u32,
}

impl Chunk {
    fn new() -> Chunk {
        Chunk { entries: Box::new([PageEntry::EMPTY; CHUNK_PAGES as usize]), mapped: 0 }
    }
}

/// A contiguous run of chunk slots starting at `first_chunk`.
#[derive(Debug, Clone)]
struct Segment {
    first_chunk: u64,
    chunks: Vec<Option<Chunk>>,
}

impl Segment {
    /// One past the last chunk index covered by this segment.
    fn end(&self) -> u64 {
        self.first_chunk + self.chunks.len() as u64
    }
}

/// One process's page table: a sorted list of non-overlapping segments.
/// Fleet processes have three widely separated address areas (Java heap
/// near 0, native at 2⁴⁰, file mappings at 2⁴¹), so the list stays at a
/// handful of entries and lookup is a couple of compares.
///
/// Public only for `fleet-bench`'s page-table microbenchmark; not part of
/// the supported API surface.
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct PageTable {
    segs: Vec<Segment>,
    mapped: u64,
    resident: u64,
    swapped: u64,
}

impl PageTable {
    /// The entry for `page`, if mapped.
    pub fn entry(&self, page: u64) -> Option<PageEntry> {
        let c = page / CHUNK_PAGES;
        for seg in &self.segs {
            if c < seg.first_chunk {
                return None;
            }
            let off = (c - seg.first_chunk) as usize;
            if off < seg.chunks.len() {
                let e = seg.chunks[off].as_ref()?.entries[(page % CHUNK_PAGES) as usize];
                return e.is_mapped().then_some(e);
            }
        }
        None
    }

    /// Mutable access to the entry for `page`, if mapped.
    fn entry_mut(&mut self, page: u64) -> Option<&mut PageEntry> {
        let c = page / CHUNK_PAGES;
        for seg in &mut self.segs {
            if c < seg.first_chunk {
                return None;
            }
            let off = (c - seg.first_chunk) as usize;
            if off < seg.chunks.len() {
                let e = &mut seg.chunks[off].as_mut()?.entries[(page % CHUNK_PAGES) as usize];
                return e.is_mapped().then_some(e);
            }
        }
        None
    }

    /// Index of a segment covering chunk `c`, creating or extending
    /// segments as needed (list stays sorted and non-overlapping).
    fn seg_index_for(&mut self, c: u64) -> usize {
        for (i, s) in self.segs.iter().enumerate() {
            if c >= s.first_chunk && c < s.end() {
                return i;
            }
        }
        let insert_at = self.segs.iter().position(|s| s.first_chunk > c).unwrap_or(self.segs.len());
        // Small gap after the predecessor: grow it forward.
        if insert_at > 0 {
            let limit = self.segs.get(insert_at).map(|s| s.first_chunk).unwrap_or(u64::MAX);
            let prev = &mut self.segs[insert_at - 1];
            if c - prev.end() <= SLACK_CHUNKS && c < limit {
                let new_len = (c - prev.first_chunk + 1) as usize;
                prev.chunks.resize_with(new_len, || None);
                return insert_at - 1;
            }
        }
        // Small gap before the successor: grow it backward.
        if insert_at < self.segs.len() {
            let next = &mut self.segs[insert_at];
            let gap = (next.first_chunk - c) as usize;
            if gap as u64 <= SLACK_CHUNKS {
                let mut chunks = Vec::with_capacity(next.chunks.len() + gap);
                chunks.resize_with(gap, || None);
                chunks.append(&mut next.chunks);
                next.chunks = chunks;
                next.first_chunk = c;
                return insert_at;
            }
        }
        self.segs.insert(insert_at, Segment { first_chunk: c, chunks: vec![None] });
        insert_at
    }

    /// Maps `page` (must not be mapped) as resident, with the given kind
    /// and LRU node.
    pub fn map(&mut self, page: u64, file: bool, node: u32) {
        let c = page / CHUNK_PAGES;
        let i = self.seg_index_for(c);
        let off = (c - self.segs[i].first_chunk) as usize;
        let chunk = self.segs[i].chunks[off].get_or_insert_with(Chunk::new);
        let e = &mut chunk.entries[(page % CHUNK_PAGES) as usize];
        debug_assert!(!e.is_mapped(), "double map of page {page}");
        *e = PageEntry { flags: PE_MAPPED | PE_RESIDENT | if file { PE_FILE } else { 0 }, node };
        chunk.mapped += 1;
        self.mapped += 1;
        self.resident += 1;
    }

    /// Unmaps `page`, returning its last entry; frees the chunk when it
    /// holds no other mapped pages.
    pub fn unmap(&mut self, page: u64) -> Option<PageEntry> {
        let c = page / CHUNK_PAGES;
        for seg in &mut self.segs {
            if c < seg.first_chunk {
                return None;
            }
            let off = (c - seg.first_chunk) as usize;
            if off < seg.chunks.len() {
                let slot = &mut seg.chunks[off];
                let chunk = slot.as_mut()?;
                let e = chunk.entries[(page % CHUNK_PAGES) as usize];
                if !e.is_mapped() {
                    return None;
                }
                chunk.entries[(page % CHUNK_PAGES) as usize] = PageEntry::EMPTY;
                chunk.mapped -= 1;
                if chunk.mapped == 0 {
                    *slot = None;
                }
                self.mapped -= 1;
                if e.is_resident() {
                    self.resident -= 1;
                } else {
                    self.swapped -= 1;
                }
                return Some(e);
            }
        }
        None
    }

    /// Flips a mapped page to `Swapped` and clears its LRU node.
    pub fn set_swapped(&mut self, page: u64) {
        let e = match self.entry_mut(page) {
            Some(e) => e,
            None => panic!("page-table invariant violated: set_swapped on unmapped page {page}"),
        };
        debug_assert!(e.is_resident());
        e.flags &= !PE_RESIDENT;
        e.node = NO_NODE;
        self.resident -= 1;
        self.swapped += 1;
    }

    /// Flips a mapped page to `Resident` with the given LRU node.
    pub fn set_resident(&mut self, page: u64, node: u32) {
        let e = match self.entry_mut(page) {
            Some(e) => e,
            None => panic!("page-table invariant violated: set_resident on unmapped page {page}"),
        };
        debug_assert!(!e.is_resident());
        e.flags |= PE_RESIDENT;
        e.node = node;
        self.resident += 1;
        self.swapped -= 1;
    }

    /// Mapped pages in ascending page-index order.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (u64, PageEntry)> + '_ {
        self.segs.iter().flat_map(|seg| {
            seg.chunks
                .iter()
                .enumerate()
                .filter_map(move |(ci, c)| {
                    c.as_ref().map(move |c| (seg.first_chunk + ci as u64, c))
                })
                .flat_map(|(chunk_idx, chunk)| {
                    chunk.entries.iter().enumerate().filter_map(move |(off, &e)| {
                        e.is_mapped().then_some((chunk_idx * CHUNK_PAGES + off as u64, e))
                    })
                })
        })
    }
}

/// A tiny sorted-vector map keyed by pid. Devices run at most a few dozen
/// processes, so binary search over a contiguous array beats both hashing
/// and a pointer-chasing tree — and iteration is ascending-pid, matching
/// the determinism contract of the former `BTreeMap<Pid, _>` exactly
/// (including the page-cache sentinel pid `u32::MAX` sorting last).
#[derive(Debug, Clone)]
struct PidMap<T> {
    entries: Vec<(u32, T)>,
}

impl<T> Default for PidMap<T> {
    fn default() -> Self {
        PidMap { entries: Vec::new() }
    }
}

impl<T> PidMap<T> {
    fn get(&self, pid: Pid) -> Option<&T> {
        self.entries.binary_search_by_key(&pid.0, |e| e.0).ok().map(|i| &self.entries[i].1)
    }

    fn get_mut(&mut self, pid: Pid) -> Option<&mut T> {
        self.entries.binary_search_by_key(&pid.0, |e| e.0).ok().map(|i| &mut self.entries[i].1)
    }

    fn get_or_insert_with(&mut self, pid: Pid, make: impl FnOnce() -> T) -> &mut T {
        let i = match self.entries.binary_search_by_key(&pid.0, |e| e.0) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (pid.0, make()));
                i
            }
        };
        &mut self.entries[i].1
    }

    fn remove(&mut self, pid: Pid) -> Option<T> {
        self.entries.binary_search_by_key(&pid.0, |e| e.0).ok().map(|i| self.entries.remove(i).1)
    }

    /// Entries in ascending-pid order.
    fn iter(&self) -> impl Iterator<Item = (Pid, &T)> {
        self.entries.iter().map(|(p, t)| (Pid(*p), t))
    }
}

/// Decayed per-process working-set estimate, fed by the access path when
/// tracking is enabled (the Swam reclaim policy). Observe-only by
/// construction: updating it draws no RNG, writes no clock and perturbs no
/// LRU state, so enabling it cannot move any event stream.
#[derive(Debug, Clone, Copy, Default)]
struct WssEntry {
    /// Page touches recorded since the last epoch advance (an upper bound
    /// on unique pages: repeated touches across access calls count again).
    touched: u64,
    /// Decayed estimate, capped at the process's mapped page count.
    estimate: u64,
    /// Consecutive epochs with zero touches.
    idle_epochs: u32,
}

/// One process's working-set sample at an epoch advance (see
/// [`MemoryManager::wss_epoch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WssSnapshot {
    /// The sampled process.
    pub pid: Pid,
    /// Decayed working-set estimate in pages, capped at the mapped count.
    pub estimate: u64,
    /// Consecutive epochs the process has gone without touching a page.
    pub idle_epochs: u32,
}

/// One stored slot's integrity record: the checksum computed (and possibly
/// silently flipped by an injected corruption) at store time, plus the
/// store sequence number it was computed over. The copy is corrupt iff
/// `stored != slot_checksum(pid, index, seq)` — a deterministic comparison,
/// so detection can never fire on a clean slot (zero false positives).
#[derive(Debug, Clone, Copy)]
struct SlotRecord {
    /// Store sequence number the checksum covers.
    seq: u64,
    /// The checksum as stored (clean, or clean ^ [`CORRUPTION_FLIP`]).
    stored: u64,
    /// The corruption has been detected (and reported) already; repeat
    /// verifications stay silent so every injection is detected exactly
    /// once.
    detected: bool,
}

impl SlotRecord {
    fn corrupt(&self, key: PageKey) -> bool {
        self.stored != slot_checksum(key.pid.0, key.index, self.seq)
    }
}

/// Runtime state of the integrity layer (DESIGN.md §14). Empty and inert
/// when the layer is disabled.
#[derive(Debug, Clone)]
struct IntegrityState {
    config: IntegrityConfig,
    /// One record per swapped anonymous page (both tiers), keyed by page.
    slots: BTreeMap<PageKey, SlotRecord>,
    /// Monotonic store counter feeding [`slot_checksum`].
    store_seq: u64,
    /// Resume point of the background scrubber's cyclic scan.
    scrub_cursor: Option<PageKey>,
    /// Reclaim ticks since the last scrub pass.
    ticks_since_scrub: u32,
    /// The back tier was retired (quarantine saturation): device degraded
    /// mode — no further swap stores at all.
    degraded: bool,
}

impl IntegrityState {
    fn new(config: IntegrityConfig) -> Self {
        IntegrityState {
            config,
            slots: BTreeMap::new(),
            store_seq: 0,
            scrub_cursor: None,
            ticks_since_scrub: 0,
            degraded: false,
        }
    }
}

/// What one background scrub pass covered (see
/// [`MemoryManager::scrub_tick`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Cold slots verified this pass.
    pub scanned: u64,
    /// Corruptions found (each reported via its own detection event).
    pub detected: u64,
}

/// Outcome of one fault-injection roll on the swap-read path (see
/// [`MemoryManager::access`] and the prefetch paths). `Ok` may still carry
/// degradation: retry backoff and injected latency spikes.
enum ReadRoll {
    /// The read (eventually) succeeds after `retries` bounded retries,
    /// absorbing `extra` injected latency.
    Ok { retries: u32, extra: SimDuration },
    /// The read failed past the retry budget (or permanently); `retries`
    /// and `extra` account for the attempts made before giving up.
    Failed { retries: u32, extra: SimDuration },
}

/// The kernel memory manager.
///
/// # Examples
///
/// ```
/// use fleet_kernel::{AccessKind, MemoryManager, MmConfig, Pid};
///
/// let mut mm = MemoryManager::new(MmConfig::small_test());
/// mm.map_range(Pid(1), 0, 16 * 4096).unwrap();
/// let out = mm.access(Pid(1), 0, 4096, AccessKind::Mutator);
/// assert_eq!(out.touched_pages, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryManager {
    config: MmConfig,
    frames_capacity: u64,
    /// Per-process page tables; an entry is dropped wholesale when the
    /// process is unmapped.
    tables: PidMap<PageTable>,
    resident_count: u64,
    /// Per-process LRUs of resident anonymous pages. Android places every
    /// app in its own memory cgroup; reclaim scans cgroups proportionally
    /// to their size rather than by perfect global recency. An entry
    /// appears when the process maps its first anon page and disappears
    /// when the process is unmapped — reclaim iterates in ascending-pid
    /// order, exactly like the former `BTreeMap<Pid, LruQueue>`.
    anon_lrus: PidMap<LruQueue>,
    /// LRU of resident file-backed pages (the global file list).
    file_lru: LruQueue,
    /// Monotonic eviction counter driving the anon/file balance and the
    /// proportional cgroup pick.
    eviction_seq: u64,
    swap: SwapStack,
    /// Writeback FIFO over zram-resident pages, in store order: nothing
    /// touches entries after insertion, so `pop_coldest` yields the oldest
    /// zram slot — the writeback daemon's demotion order. Empty without a
    /// front tier. A zram page's entry stores its FIFO handle in `node`.
    zram_fifo: LruQueue,
    /// Per-process working-set estimates; populated only when
    /// [`MemoryManager::enable_wss_tracking`] has armed the tracker.
    wss: PidMap<WssEntry>,
    wss_enabled: bool,
    /// Swap data-integrity layer: slot checksums, quarantine and tier
    /// retirement. Inert (empty, no draws, no events) unless enabled in
    /// [`MmConfig::integrity`].
    integrity: IntegrityState,
    stats: KernelStats,
    /// Flight-recorder buffer (see `crates/audit`); disabled by default.
    #[cfg(feature = "audit")]
    audit: fleet_audit::EventLog,
    /// Observability record buffer (see `crates/obs`); disabled by default.
    #[cfg(feature = "obs")]
    obs: fleet_obs::ObsLog,
}

impl MemoryManager {
    /// Creates a memory manager with no pages mapped.
    pub fn new(config: MmConfig) -> Self {
        let frames_capacity = config.dram_bytes / PAGE_SIZE;
        MemoryManager {
            config,
            frames_capacity,
            tables: PidMap::default(),
            resident_count: 0,
            anon_lrus: PidMap::default(),
            file_lru: LruQueue::new(),
            eviction_seq: 0,
            swap: match config.zram {
                Some(front) => SwapStack::with_front(front, config.swap),
                None => SwapStack::new(config.swap),
            },
            zram_fifo: LruQueue::new(),
            wss: PidMap::default(),
            wss_enabled: false,
            integrity: IntegrityState::new(config.integrity),
            stats: KernelStats::default(),
            #[cfg(feature = "audit")]
            audit: fleet_audit::EventLog::default(),
            #[cfg(feature = "obs")]
            obs: fleet_obs::ObsLog::default(),
        }
    }

    /// The flight-recorder buffer (drained by the device layer).
    #[cfg(feature = "audit")]
    pub fn audit_log_mut(&mut self) -> &mut fleet_audit::EventLog {
        &mut self.audit
    }

    /// Read-only view of the flight-recorder buffer.
    #[cfg(feature = "audit")]
    pub fn audit_log(&self) -> &fleet_audit::EventLog {
        &self.audit
    }

    /// The observability record buffer (drained by the device layer).
    #[cfg(feature = "obs")]
    pub fn obs_log_mut(&mut self) -> &mut fleet_obs::ObsLog {
        &mut self.obs
    }

    /// Read-only view of the observability record buffer.
    #[cfg(feature = "obs")]
    pub fn obs_log(&self) -> &fleet_obs::ObsLog {
        &self.obs
    }

    /// The configuration.
    pub fn config(&self) -> &MmConfig {
        &self.config
    }

    /// Total DRAM frames.
    pub fn frames_capacity(&self) -> u64 {
        self.frames_capacity
    }

    /// Frames currently free. Zram-backed swap consumes DRAM for its
    /// compressed store, so its footprint is subtracted too.
    pub fn free_frames(&self) -> u64 {
        self.frames_capacity
            .saturating_sub(self.resident_count)
            .saturating_sub(self.swap.frames_consumed())
    }

    /// Frames currently holding pages.
    pub fn used_frames(&self) -> u64 {
        self.resident_count
    }

    /// The swap stack (single back device by default, zram + flash when a
    /// front tier is configured).
    pub fn swap(&self) -> &SwapStack {
        &self.swap
    }

    /// The consolidated per-tier swap counter snapshot.
    pub fn swap_stats(&self) -> SwapStats {
        self.swap.stats()
    }

    /// Installs a fault plan on the swap stack: the back tier gets `plan`
    /// exactly as a single device would, the front tier (if any) an
    /// independent fork. With the default (quiet) plan every operation
    /// behaves exactly as before; an armed plan activates the degradation
    /// paths (bounded retries, discard-and-refault, write-back fallback,
    /// loss reporting).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.swap.install_fault_plan(plan);
    }

    /// True when an armed (non-quiet) fault plan is installed.
    pub fn fault_active(&self) -> bool {
        self.swap.fault_active()
    }

    /// Records an LMK kill executed by the [`crate::ReclaimDriver`]. Only
    /// emits an audit event on fault-active devices so quiet golden traces
    /// are untouched (their kills are recorded by the device layer).
    pub(crate) fn note_lmk_kill(&mut self, _pid: Pid, _freed_pages: u64) {
        #[cfg(feature = "audit")]
        if self.swap.fault_active() {
            audit!(
                self,
                fleet_audit::AuditEvent::LmkKill { pid: _pid.0, freed_pages: _freed_pages }
            );
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Per-process residency counts.
    pub fn process_mem(&self, pid: Pid) -> ProcessMem {
        self.table(pid)
            .map(|t| ProcessMem { resident: t.resident, swapped: t.swapped })
            .unwrap_or_default()
    }

    /// The state of one page, if mapped.
    pub fn page_state(&self, key: PageKey) -> Option<PageState> {
        let e = self.entry(key)?;
        Some(if e.is_resident() { PageState::Resident } else { PageState::Swapped })
    }

    /// True if the page covering `addr` is mapped and resident.
    pub fn is_resident(&self, pid: Pid, addr: u64) -> bool {
        self.page_state(PageKey::of_addr(pid, addr)) == Some(PageState::Resident)
    }

    // ----------------------------------------------------- table/queue access

    fn table(&self, pid: Pid) -> Option<&PageTable> {
        self.tables.get(pid)
    }

    fn table_mut(&mut self, pid: Pid) -> Option<&mut PageTable> {
        self.tables.get_mut(pid)
    }

    fn table_mut_or_create(&mut self, pid: Pid) -> &mut PageTable {
        self.tables.get_or_insert_with(pid, PageTable::default)
    }

    fn entry(&self, key: PageKey) -> Option<PageEntry> {
        self.table(key.pid)?.entry(key.index)
    }

    /// The anon LRU of `pid`, created on first use (mirrors cgroup
    /// creation: the entry appears when the process first maps anon
    /// memory).
    fn anon_queue_mut(&mut self, pid: Pid) -> &mut LruQueue {
        self.anon_lrus.get_or_insert_with(pid, LruQueue::new)
    }

    /// The anon LRU that must already exist (the page's handle points into
    /// it).
    fn anon_queue_existing(&mut self, pid: Pid) -> &mut LruQueue {
        match self.anon_lrus.get_mut(pid) {
            Some(q) => q,
            None => panic!(
                "mm invariant violated: pid {} has a queued anon page but no anon LRU",
                pid.0
            ),
        }
    }

    /// Fault-path lookup of a page table that *must* exist: the caller holds
    /// a [`PageEntry`] proving the page is mapped, so a missing table is a
    /// structural bug, never a recoverable condition. Panics with pid/page
    /// context instead of a bare `expect`.
    #[track_caller]
    fn table_expect(&mut self, pid: Pid, page: u64, op: &'static str) -> &mut PageTable {
        match self.tables.get_mut(pid) {
            Some(t) => t,
            None => panic!(
                "mm invariant violated during {op}: pid {} page {page} is mapped but has no table",
                pid.0
            ),
        }
    }

    /// Fault-path lookup of a page entry that *must* exist (same contract as
    /// [`MemoryManager::table_expect`], one level deeper).
    #[track_caller]
    fn entry_expect(&mut self, pid: Pid, page: u64, op: &'static str) -> &mut PageEntry {
        match self.tables.get_mut(pid).and_then(|t| t.entry_mut(page)) {
            Some(e) => e,
            None => panic!(
                "mm invariant violated during {op}: pid {} page {page} vanished mid-operation",
                pid.0
            ),
        }
    }

    /// Detaches a queued page from its LRU via the O(1) handle stored in
    /// its page entry. No-op when the page is on no queue.
    fn queue_remove_entry(&mut self, key: PageKey, e: PageEntry) {
        if e.node == NO_NODE {
            return;
        }
        let h = LruHandle::from_raw(e.node);
        if e.is_file() {
            self.file_lru.remove_handle(h);
        } else {
            self.anon_queue_existing(key.pid).remove_handle(h);
        }
    }

    /// Inserts a resident page at the hot end of its LRU, returning the raw
    /// node handle to store in its page entry.
    fn queue_push(&mut self, key: PageKey, file: bool) -> u32 {
        let h = if file {
            self.file_lru.push_hot(key)
        } else {
            self.anon_queue_mut(key.pid).push_hot(key)
        };
        h.raw()
    }

    fn anon_resident_total(&self) -> u64 {
        self.anon_lrus.iter().map(|(_, q)| q.len() as u64).sum()
    }

    /// The front (zram) tier that *must* exist: the caller holds a page
    /// entry with the zram flag set, so a missing front tier is a
    /// structural bug, never a recoverable condition.
    #[track_caller]
    fn front_expect(&mut self, op: &'static str) -> &mut SwapDevice {
        match self.swap.front_mut() {
            Some(f) => f,
            None => {
                panic!("mm invariant violated during {op}: zram-tagged page but no front tier")
            }
        }
    }

    /// Tags a freshly swapped-out page as zram-resident and enrolls it in
    /// the writeback FIFO (its entry's `node` stores the FIFO handle).
    fn note_zram_store(&mut self, victim: PageKey) {
        let raw = self.zram_fifo.push_hot(victim).raw();
        let em = self.entry_expect(victim.pid, victim.index, "zram store");
        em.flags |= PE_ZRAM;
        em.node = raw;
    }

    /// Releases a zram page's front-tier slot and FIFO node (fault-in,
    /// prefetch). The entry goes back to plain swapped state; the caller
    /// flips it resident afterwards.
    fn release_zram_slot(&mut self, key: PageKey, node_raw: u32) {
        self.zram_fifo.remove_handle(LruHandle::from_raw(node_raw));
        self.front_expect("zram slot release").release_page();
        let em = self.entry_expect(key.pid, key.index, "zram slot release");
        em.flags &= !PE_ZRAM;
        em.node = NO_NODE;
    }

    /// Which tier a swapped page's slot lives in.
    fn tier_of(e: PageEntry) -> SwapTier {
        if e.is_zram() {
            SwapTier::Zram
        } else {
            SwapTier::Flash
        }
    }

    // -------------------------------------------------------- data integrity

    /// True when the integrity layer (checksums, quarantine, retirement) is
    /// armed on this device.
    pub fn integrity_enabled(&self) -> bool {
        self.integrity.config.enabled
    }

    /// True once quarantine saturation has retired the back tier: device
    /// degraded mode — no further swap stores at all; pressure falls back
    /// to file drops and LMK kills.
    pub fn degraded(&self) -> bool {
        self.integrity.degraded
    }

    /// Store-time checksum bookkeeping for one anon page entering `tier`:
    /// computes the slot checksum and rolls the tier's silent-corruption
    /// fate (a corrupt store records a checksum that can never verify).
    /// No-op unless the integrity layer is enabled.
    fn integrity_note_store(&mut self, key: PageKey, tier: SwapTier) {
        if !self.integrity.config.enabled {
            return;
        }
        self.integrity.store_seq += 1;
        let seq = self.integrity.store_seq;
        let clean = slot_checksum(key.pid.0, key.index, seq);
        let corrupt = self.swap.tier_mut(tier).fault_plan_mut().store_corrupt_fault();
        let stored = if corrupt {
            self.stats.corruptions_injected += 1;
            clean ^ CORRUPTION_FLIP
        } else {
            clean
        };
        self.integrity.slots.insert(key, SlotRecord { seq, stored, detected: false });
    }

    /// Drops the slot record of a page leaving swap through a clean path
    /// (successful fault-in, prefetch). No-op when the layer is disabled.
    fn integrity_note_release(&mut self, key: PageKey) {
        if self.integrity.config.enabled {
            self.integrity.slots.remove(&key);
        }
    }

    /// Fault-in verification: true when `key`'s stored copy is corrupt, in
    /// which case the detection is reported (once per slot — repeats stay
    /// silent) and the caller must take the SIGBUS path. Detection is a
    /// checksum comparison, never a draw, so it cannot move any schedule.
    fn integrity_verify_fault(&mut self, key: PageKey, _tier: SwapTier) -> bool {
        if !self.integrity.config.enabled {
            return false;
        }
        let Some(rec) = self.integrity.slots.get_mut(&key) else {
            return false;
        };
        if !rec.corrupt(key) {
            return false;
        }
        if !rec.detected {
            rec.detected = true;
            self.stats.corruptions_detected += 1;
            self.stats.pages_lost += 1;
            audit!(
                self,
                fleet_audit::AuditEvent::CorruptionDetected {
                    pid: key.pid.0,
                    page: key.index,
                    tier: _tier.as_str(),
                    source: "fault",
                }
            );
        }
        true
    }

    /// Reports a corruption found outside the fault path (`scrub` or
    /// `unmap`) exactly once. Returns true when this call was the first
    /// detection.
    fn integrity_detect(&mut self, key: PageKey, _tier: SwapTier, _source: &'static str) -> bool {
        let Some(rec) = self.integrity.slots.get_mut(&key) else {
            return false;
        };
        if !rec.corrupt(key) || rec.detected {
            return false;
        }
        rec.detected = true;
        self.stats.corruptions_detected += 1;
        audit!(
            self,
            fleet_audit::AuditEvent::CorruptionDetected {
                pid: key.pid.0,
                page: key.index,
                tier: _tier.as_str(),
                source: _source,
            }
        );
        true
    }

    /// Quarantines one slot of `tier` (the device must have released it via
    /// [`SwapDevice::release_page_quarantined`] already, or the caller does
    /// so right before): reports the quarantine and retires the tier when
    /// its quarantine count saturates the threshold.
    fn integrity_note_quarantine(&mut self, _key: PageKey, tier: SwapTier) {
        self.stats.slots_quarantined += 1;
        audit!(
            self,
            fleet_audit::AuditEvent::SlotQuarantined {
                pid: _key.pid.0,
                page: _key.index,
                tier: tier.as_str(),
            }
        );
        let threshold = u64::from(self.integrity.config.quarantine_threshold);
        match tier {
            SwapTier::Zram => {
                if !self.swap.front_retired()
                    && self.swap.front().is_some_and(|f| f.quarantined_pages() >= threshold)
                {
                    let _q = self.swap.front().map_or(0, |f| f.quarantined_pages());
                    self.swap.retire_front();
                    self.stats.tiers_retired += 1;
                    audit!(
                        self,
                        fleet_audit::AuditEvent::TierRetired { tier: "zram", quarantined: _q }
                    );
                }
            }
            SwapTier::Flash => {
                if !self.integrity.degraded && self.swap.back().quarantined_pages() >= threshold {
                    let _q = self.swap.back().quarantined_pages();
                    self.integrity.degraded = true;
                    self.stats.tiers_retired += 1;
                    audit!(
                        self,
                        fleet_audit::AuditEvent::TierRetired { tier: "flash", quarantined: _q }
                    );
                }
            }
        }
    }

    /// One background scrubber step, ticked by the reclaim driver: every
    /// [`IntegrityConfig::scrub_interval_ticks`] reclaim ticks, verifies up
    /// to [`IntegrityConfig::scrub_batch_pages`] cold slots in cyclic page
    /// order. A corruption found here is reported immediately (`scrub`
    /// source); recovery happens at the page's next access or unmap, with
    /// no second report. Returns `None` on ticks where no pass is due (or
    /// the layer/scrubber is off).
    pub fn scrub_tick(&mut self) -> Option<ScrubReport> {
        if !self.integrity.config.enabled || self.integrity.config.scrub_batch_pages == 0 {
            return None;
        }
        self.integrity.ticks_since_scrub += 1;
        if self.integrity.ticks_since_scrub < self.integrity.config.scrub_interval_ticks {
            return None;
        }
        self.integrity.ticks_since_scrub = 0;
        let batch = self.integrity.config.scrub_batch_pages as usize;
        let mut keys: Vec<PageKey> = match self.integrity.scrub_cursor {
            Some(cursor) => self
                .integrity
                .slots
                .range((Bound::Excluded(cursor), Bound::Unbounded))
                .map(|(k, _)| *k)
                .take(batch)
                .collect(),
            None => self.integrity.slots.keys().copied().take(batch).collect(),
        };
        if keys.len() < batch {
            // Wrap around to the start of the slot map (without re-scanning
            // a slot twice in one pass).
            let missing = batch - keys.len();
            for k in self.integrity.slots.keys().copied().take(missing) {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
        self.integrity.scrub_cursor = keys.last().copied().or(self.integrity.scrub_cursor);
        let scanned = keys.len() as u64;
        let mut detected = 0u64;
        for key in keys {
            let tier = match self.entry(key) {
                Some(e) if !e.is_resident() => Self::tier_of(e),
                _ => continue,
            };
            if self.integrity_detect(key, tier, "scrub") {
                detected += 1;
            }
        }
        self.stats.scrub_passes += 1;
        self.stats.scrub_pages_scanned += scanned;
        audit!(self, fleet_audit::AuditEvent::ScrubPass { scanned, detected });
        Some(ScrubReport { scanned, detected })
    }

    /// Latency of re-reading `n` dropped file-backed pages (readahead).
    fn file_read_cost(&mut self, n: u64) -> SimDuration {
        if n == 0 {
            return SimDuration::ZERO;
        }
        self.stats.faults_file += n;
        let transfer = (n * PAGE_SIZE) as f64 / self.config.file_read_bw;
        SimDuration::from_micros(100) + SimDuration::from_secs_f64(transfer)
    }

    // ------------------------------------------------------------- map/unmap

    /// Maps `[base, base + len)` for `pid`. New pages start resident (they
    /// are written as they are allocated).
    ///
    /// Already-mapped pages in the range are left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`MmError::OutOfMemory`] when a frame cannot be found even
    /// after evicting; pages mapped before the failure stay mapped.
    pub fn map_range(&mut self, pid: Pid, base: u64, len: u64) -> Result<(), MmError> {
        self.map_range_kind(pid, base, len, PageKind::Anon)
    }

    /// Maps `[base, base + len)` with an explicit page kind (anonymous or
    /// file-backed).
    ///
    /// # Errors
    ///
    /// Returns [`MmError::OutOfMemory`] when a frame cannot be found even
    /// after evicting; pages mapped before the failure stay mapped.
    pub fn map_range_kind(
        &mut self,
        pid: Pid,
        base: u64,
        len: u64,
        kind: PageKind,
    ) -> Result<(), MmError> {
        let file = kind == PageKind::File;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            if self.entry(key).is_some() {
                continue;
            }
            self.take_frame()?;
            let node = self.queue_push(key, file);
            self.table_mut_or_create(pid).map(index, file, node);
            self.resident_count += 1;
            audit!(self, fleet_audit::AuditEvent::PageMapped { pid: pid.0, page: index, file });
        }
        Ok(())
    }

    /// Unmaps `[base, base + len)` for `pid`, releasing frames and swap
    /// slots. Unmapped pages in the range are ignored.
    pub fn unmap_range(&mut self, pid: Pid, base: u64, len: u64) {
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            self.unmap_page(key);
        }
    }

    fn unmap_page(&mut self, key: PageKey) {
        let Some(e) = self.table_mut(key.pid).and_then(|t| t.unmap(key.index)) else {
            return;
        };
        audit!(
            self,
            fleet_audit::AuditEvent::PageUnmapped {
                pid: key.pid.0,
                page: key.index,
                resident: e.is_resident(),
                file: e.is_file(),
            }
        );
        if e.is_resident() {
            self.resident_count -= 1;
            self.queue_remove_entry(key, e);
        } else if !e.is_file() {
            // Only anonymous pages hold swap slots; file pages were dropped.
            let tier = Self::tier_of(e);
            let quarantine = self.integrity.config.enabled
                && self.integrity.slots.get(&key).is_some_and(|r| r.corrupt(key));
            if quarantine {
                // Slot discarded with a bad copy inside: last chance to
                // catch a corruption the run never read back.
                self.integrity_detect(key, tier, "unmap");
            }
            if e.is_zram() {
                self.zram_fifo.remove_handle(LruHandle::from_raw(e.node));
                let front = self.front_expect("unmap of a zram page");
                if quarantine {
                    front.release_page_quarantined();
                } else {
                    front.release_page();
                }
            } else if quarantine {
                self.swap.back_mut().release_page_quarantined();
            } else {
                self.swap.back_mut().release_page();
            }
            if quarantine {
                self.integrity_note_quarantine(key, tier);
            }
            self.integrity_note_release(key);
        }
    }

    /// Unmaps every page of `pid` (process killed). Returns freed frames.
    pub fn unmap_process(&mut self, pid: Pid) -> u64 {
        // Page tables iterate in ascending page order, so the audit event
        // stream (and thus the golden-trace hash) is deterministic.
        let indexes: Vec<u64> =
            self.table(pid).map(|t| t.iter_mapped().map(|(i, _)| i).collect()).unwrap_or_default();
        let before = self.free_frames();
        for index in indexes {
            self.unmap_page(PageKey { pid, index });
        }
        self.tables.remove(pid);
        self.anon_lrus.remove(pid);
        self.wss.remove(pid);
        self.free_frames() - before
    }

    // ---------------------------------------------------------------- access

    /// Touches `[addr, addr + len)` of `pid`: resident pages cost DRAM time
    /// and refresh their LRU position; swapped pages fault in at flash
    /// latency.
    ///
    /// When faulting needs a frame and none can be made free, the access
    /// stops early with [`AccessOutcome::oom`] set. The pages faulted before
    /// the failure keep their new state and are fully accounted; the caller
    /// should free memory (kill a process) and retry the access, merging the
    /// outcomes.
    pub fn access(&mut self, pid: Pid, addr: u64, len: u64, kind: AccessKind) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        let mut anon_faults = 0u64;
        let mut zram_faults = 0u64;
        let mut file_faults = 0u64;
        // Degradation events inside this access become children of one
        // "fault_service" span; buffered here because the parent's duration
        // is only known once the batched stall is added at the end.
        #[cfg(feature = "obs")]
        let obs_on = self.obs.is_enabled();
        #[cfg(feature = "obs")]
        let mut obs_children: Vec<fleet_obs::SpanRec> = Vec::new();
        for index in pages_in_range(addr, len.max(1)) {
            let key = PageKey { pid, index };
            let Some(e) = self.entry(key) else {
                continue; // unmapped (e.g. native memory not modelled here)
            };
            if e.is_resident() {
                if e.node != NO_NODE {
                    let h = LruHandle::from_raw(e.node);
                    if e.is_file() {
                        self.file_lru.touch_handle(h);
                    } else {
                        self.anon_queue_existing(pid).touch_handle(h);
                    }
                }
                outcome.touched_pages += 1;
                outcome.latency += self.config.dram_page_cost;
            } else {
                let file = e.is_file();
                if !file && self.integrity_verify_fault(key, Self::tier_of(e)) {
                    // Checksum mismatch on the stored copy: the data is
                    // gone. SIGBUS-analog — stop the access; the caller
                    // kills the process, and the poisoned slot is
                    // quarantined by `unmap_process`.
                    outcome.killed = true;
                    break;
                }
                if file
                    && self.integrity.config.enabled
                    && self.swap.back_mut().fault_plan_mut().store_corrupt_fault()
                {
                    // A corrupted file read caught by its checksum: discard
                    // the bad copy and re-read from the file — one wasted
                    // read, never data loss.
                    let penalty = self.file_read_cost(1);
                    self.stats.corruptions_injected += 1;
                    self.stats.corruptions_detected += 1;
                    outcome.degraded_latency += penalty;
                    outcome.latency += penalty;
                    audit!(
                        self,
                        fleet_audit::AuditEvent::CorruptionDetected {
                            pid: pid.0,
                            page: index,
                            tier: "flash",
                            source: "fault",
                        }
                    );
                }
                if self.swap.fault_active() {
                    #[cfg(feature = "obs")]
                    let obs_rel = outcome.latency.as_nanos();
                    match self.roll_read_fault(pid, index, Self::tier_of(e)) {
                        ReadRoll::Ok { retries, extra } => {
                            outcome.retries += retries as u64;
                            outcome.degraded_latency += extra;
                            outcome.latency += extra;
                            #[cfg(feature = "obs")]
                            if obs_on && retries > 0 {
                                obs_children.push(fault_child(
                                    "fault_retry",
                                    obs_rel,
                                    extra,
                                    index,
                                    retries as u64,
                                ));
                            }
                        }
                        ReadRoll::Failed { retries, extra, .. } if file => {
                            // Discard-and-refault: the failing copy of a
                            // clean file page is dropped and re-read from
                            // its file — one wasted read plus backoff, but
                            // never data loss.
                            let penalty =
                                extra + self.file_read_cost(1) + retry_backoff(retries + 1);
                            outcome.retries += (retries + 1) as u64;
                            outcome.degraded_latency += penalty;
                            outcome.latency += penalty;
                            #[cfg(feature = "obs")]
                            if obs_on {
                                obs_children.push(fault_child(
                                    "fault_refault",
                                    obs_rel,
                                    penalty,
                                    index,
                                    (retries + 1) as u64,
                                ));
                            }
                        }
                        ReadRoll::Failed { retries, extra, .. } => {
                            // Permanent loss of an anonymous page: the data
                            // is gone. Stop the access and report the
                            // SIGBUS-analog; the caller kills the process,
                            // which releases the poisoned slot via
                            // `unmap_process`.
                            outcome.retries += retries as u64;
                            outcome.degraded_latency += extra;
                            outcome.latency += extra;
                            outcome.killed = true;
                            self.stats.pages_lost += 1;
                            #[cfg(feature = "obs")]
                            if obs_on {
                                obs_children.push(fault_child(
                                    "fault_fatal",
                                    obs_rel,
                                    extra,
                                    index,
                                    retries as u64,
                                ));
                            }
                            break;
                        }
                    }
                }
                if self.take_frame().is_err() {
                    outcome.oom = true;
                    break;
                }
                if file {
                    file_faults += 1;
                } else if e.is_zram() {
                    self.release_zram_slot(key, e.node);
                    self.integrity_note_release(key);
                    zram_faults += 1;
                } else {
                    self.swap.back_mut().release_page();
                    self.integrity_note_release(key);
                    anon_faults += 1;
                }
                let node = if e.is_pinned() {
                    NO_NODE
                } else {
                    let raw = self.queue_push(key, file);
                    // A faulting access is an access: set the referenced bit.
                    let h = LruHandle::from_raw(raw);
                    if file {
                        self.file_lru.touch_handle(h);
                    } else {
                        self.anon_queue_existing(pid).touch_handle(h);
                    }
                    raw
                };
                self.table_expect(pid, index, "fault-in").set_resident(index, node);
                self.resident_count += 1;
                outcome.touched_pages += 1;
                audit!(
                    self,
                    fleet_audit::AuditEvent::PageFault {
                        pid: pid.0,
                        page: index,
                        file,
                        kind: kind.audit_name(),
                    }
                );
            }
        }
        if anon_faults + zram_faults + file_faults > 0 {
            let faults = anon_faults + zram_faults + file_faults;
            // One batched read per tier touched: the zram share is pure
            // memcpy-plus-decompress and reported separately so launch
            // attribution can show it.
            let decompress = if zram_faults > 0 {
                self.front_expect("zram fault read").read_pages(zram_faults)
            } else {
                SimDuration::ZERO
            };
            #[cfg(feature = "obs")]
            let batch_rel = outcome.latency.as_nanos();
            let stall = decompress
                + self.swap.back_mut().read_pages(anon_faults)
                + self.file_read_cost(file_faults);
            outcome.latency += stall;
            // The batched tier reads become one child span under
            // `fault_service`: this is the fault_in slice of the launch
            // attribution, broken out by tier.
            #[cfg(feature = "obs")]
            if obs_on {
                obs_children.push(fleet_obs::SpanRec {
                    pid: 0,
                    name: "fault_batch",
                    cat: "kernel",
                    depth: 1,
                    rel_start: batch_rel,
                    dur: stall.as_nanos(),
                    args: vec![
                        ("pages", faults),
                        ("anon", anon_faults),
                        ("zram", zram_faults),
                        ("file", file_faults),
                    ],
                });
            }
            outcome.faulted_pages = faults;
            outcome.decompress_latency += decompress;
            self.stats.faults += faults;
            self.stats.faults_zram += zram_faults;
            self.stats.fault_stall_nanos += stall.as_nanos();
            self.stats.decompress_stall_nanos += decompress.as_nanos();
            match kind {
                AccessKind::Mutator => self.stats.faults_mutator += faults,
                AccessKind::Gc => self.stats.faults_gc += faults,
                AccessKind::Launch => self.stats.faults_launch += faults,
            }
        }
        #[cfg(feature = "obs")]
        if obs_on && (outcome.faulted_pages > 0 || !obs_children.is_empty()) {
            let dur = outcome.latency.as_nanos();
            let (pages, retries) = (outcome.faulted_pages, outcome.retries);
            self.obs.push(move |_| {
                fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                    pid: 0,
                    name: "fault_service",
                    cat: "kernel",
                    depth: 0,
                    rel_start: 0,
                    dur,
                    args: vec![
                        ("pid", u64::from(pid.0)),
                        ("pages", pages),
                        ("retries", retries),
                        ("kind", kind as u64),
                    ],
                })
            });
            for child in obs_children {
                self.obs.push(move |_| fleet_obs::ObsRecord::Span(child));
            }
            self.obs.push(move |_| fleet_obs::ObsRecord::Latency {
                name: "kernel.fault_service_ns",
                nanos: dur,
            });
        }
        // Feed the working-set tracker (Swam reclaim policy): a pure counter
        // bump, so it cannot perturb any event stream. GC traversal is
        // excluded — a collector touching the whole heap is exactly the
        // working-set inflation the paper's co-design exists to discount,
        // and counting it would hide every app's cold bulk from the
        // proactive daemon.
        if self.wss_enabled && outcome.touched_pages > 0 && kind != AccessKind::Gc {
            self.wss.get_or_insert_with(pid, WssEntry::default).touched += outcome.touched_pages;
        }
        outcome
    }

    /// Finds a free frame, evicting the coldest page if necessary.
    fn take_frame(&mut self) -> Result<(), MmError> {
        if self.free_frames() > 0 {
            return Ok(());
        }
        self.evict_one()?;
        // An eviction may not net a frame: a zram store of an
        // incompressible page (armed fault plan) consumes a full raw frame,
        // and any zram tier (front or back) charges a fraction of a frame
        // per compressed page. Keep evicting until a frame is actually
        // free. Quiet flash-only devices never take this loop (their
        // frames_consumed is always zero — single-eviction legacy
        // behaviour, bit-identical golden traces).
        while (self.swap.has_front() || self.swap.frames_consumed() > 0 || self.swap.fault_active())
            && self.free_frames() == 0
        {
            self.evict_one()?;
        }
        Ok(())
    }

    /// Flips an evicted page to `Swapped` in its table, clearing its LRU
    /// node (the queue pop already detached it).
    fn mark_swapped_out(&mut self, victim: PageKey) {
        self.table_expect(victim.pid, victim.index, "eviction").set_swapped(victim.index);
        self.resident_count -= 1;
    }

    /// Evicts one page. Policy mirrors Linux reclaim balance (swappiness):
    /// mostly drop file-backed pages (they are free to reclaim), but under
    /// sustained pressure every fourth eviction swaps an anonymous page —
    /// a continuously-streaming foreground therefore steadily pushes idle
    /// apps' heaps out to swap. Anonymous victims are chosen per-cgroup,
    /// proportionally to each process's resident anon size (Android's
    /// memcg reclaim), then coldest-first within that process. When the
    /// file cache is below its floor (an eighth of DRAM) anon goes first;
    /// when swap is full or absent, only file pages can go.
    fn evict_one(&mut self) -> Result<PageKey, MmError> {
        self.eviction_seq += 1;
        let file_floor = self.frames_capacity / 8;
        let file_resident = self.file_lru.len() as u64;
        let anon_possible =
            !self.swap.is_full() && !self.integrity.degraded && self.anon_resident_total() > 0;
        // swappiness / 200 of evictions go to anon (default 50 ⇒ 1 in 4),
        // spread evenly over the eviction sequence.
        let sw = self.config.swappiness.clamp(0, 200) as u64;
        let anon_turn =
            sw > 0 && (self.eviction_seq * sw) / 200 != ((self.eviction_seq - 1) * sw) / 200;
        let prefer_file = !self.file_lru.is_empty()
            && (!anon_possible || (file_resident > file_floor && !anon_turn));
        let order: [PageKind; 2] = if prefer_file {
            [PageKind::File, PageKind::Anon]
        } else {
            [PageKind::Anon, PageKind::File]
        };
        for kind in order {
            match kind {
                PageKind::File => {
                    if let Some(victim) = self.file_lru.pop_coldest() {
                        self.mark_swapped_out(victim);
                        self.stats.pages_dropped_file += 1;
                        audit!(
                            self,
                            fleet_audit::AuditEvent::SwapOut {
                                pid: victim.pid.0,
                                page: victim.index,
                                file: true,
                                advised: false,
                            }
                        );
                        return Ok(victim);
                    }
                }
                PageKind::Anon => {
                    if self.swap.is_full() || self.integrity.degraded {
                        continue;
                    }
                    if let Some((victim, warm)) = self.pop_anon_proportional() {
                        match self.swap_out_anon(victim, warm) {
                            Ok(()) => return Ok(victim),
                            // Write-back failed (injected): the victim was
                            // re-queued resident; fall through to the file
                            // list so reclaim still makes progress.
                            Err(()) => continue,
                        }
                    }
                }
            }
        }
        Err(MmError::OutOfMemory)
    }

    /// Reserves a slot and writes one anon victim back to swap, placing it
    /// by hotness on a hybrid stack: warm victims (pages that earned a
    /// second chance in the LRU) go to the zram front tier, cold ones to
    /// the back tier, and warm-but-incompressible pages fall through to
    /// the back tier instead of pinning a full DRAM frame. On an injected
    /// write error or slot-exhaustion window the victim is re-queued at
    /// the hot end (the failed write-back touched it) and the caller falls
    /// back to the file list — at most one failed roll per
    /// [`MemoryManager::evict_one`] call, so reclaim cannot spin. Quiet
    /// single-tier devices always take the success path, byte-identical to
    /// the legacy `reserve_page` + `write_cost` sequence.
    fn swap_out_anon(&mut self, victim: PageKey, warm: bool) -> Result<(), ()> {
        let mut tier = SwapTier::Flash;
        if warm && self.swap.has_active_front() {
            let front = self.front_expect("tier placement");
            if front.is_full() {
                // Warm but no room up front: the writeback daemon is behind.
            } else if front.next_store_incompressible() {
                self.stats.zram_fallthrough_pages += 1;
            } else {
                tier = SwapTier::Zram;
            }
        }
        let dev = self.swap.tier_mut(tier);
        // The zram placement already drew the page's compressibility fate
        // via the probe above, so the front tier reserves with the decided
        // fate; the back tier draws its own (legacy single-device order).
        let reserved = match tier {
            SwapTier::Zram => dev.try_reserve_decided(false),
            SwapTier::Flash => dev.try_reserve(),
        };
        let written = reserved.and_then(|()| match dev.try_write(1) {
            Ok(op) => Ok(op),
            Err(e) => {
                dev.release_page();
                Err(e)
            }
        });
        match written {
            Ok(op) => {
                self.mark_swapped_out(victim);
                self.stats.pages_swapped_out += 1;
                self.stats.kswapd_cpu_nanos += op.latency.as_nanos();
                audit!(
                    self,
                    fleet_audit::AuditEvent::SwapOut {
                        pid: victim.pid.0,
                        page: victim.index,
                        file: false,
                        advised: false,
                    }
                );
                if tier == SwapTier::Zram {
                    self.note_zram_store(victim);
                    self.stats.pages_swapped_zram += 1;
                }
                // Tier placement is only recorded on hybrid stacks, so the
                // single-tier (golden) event stream is untouched.
                if self.swap.has_front() {
                    audit!(
                        self,
                        fleet_audit::AuditEvent::SwapTierStore {
                            pid: victim.pid.0,
                            page: victim.index,
                            tier: tier.as_str(),
                        }
                    );
                }
                self.integrity_note_store(victim, tier);
                Ok(())
            }
            Err(err) => {
                self.stats.swap_write_errors += 1;
                let op = if err == SwapError::Full { "reserve" } else { "write" };
                let _ = op;
                audit!(
                    self,
                    fleet_audit::AuditEvent::SwapIoError {
                        pid: victim.pid.0,
                        page: victim.index,
                        op,
                        transient: true,
                    }
                );
                // The pop detached the victim; it is still resident, so put
                // it back on its queue and repair the handle in its entry.
                let raw = self.queue_push(victim, false);
                self.entry_expect(victim.pid, victim.index, "failed write-back").node = raw;
                Err(())
            }
        }
    }

    /// Rolls the fate of one swap read under an armed fault plan: transient
    /// errors retry with deterministic backoff up to [`FAULT_RETRY_MAX`]
    /// times; an error that persists past the budget (or a permanent one)
    /// is reported as `Failed` and the caller decides the disposition
    /// (discard-and-refault, skip, or kill). Device-internal GC pauses
    /// surface as extra latency on the `Ok` path. The roll draws from the
    /// fault plan of the tier holding the page, so hybrid tiers degrade
    /// independently (flash-only stacks draw from the back plan, exactly
    /// the legacy stream).
    fn roll_read_fault(&mut self, _pid: Pid, _index: u64, tier: SwapTier) -> ReadRoll {
        let mut retries = 0u32;
        let mut extra = SimDuration::ZERO;
        loop {
            match self.swap.tier_mut(tier).fault_plan_mut().read_fault() {
                None => return ReadRoll::Ok { retries, extra },
                Some(ReadFault::Spike(d)) => return ReadRoll::Ok { retries, extra: extra + d },
                Some(ReadFault::Transient) if retries < FAULT_RETRY_MAX => {
                    retries += 1;
                    extra += retry_backoff(retries);
                    self.stats.fault_retries += 1;
                    audit!(
                        self,
                        fleet_audit::AuditEvent::FaultRetry {
                            pid: _pid.0,
                            page: _index,
                            attempt: retries,
                        }
                    );
                }
                Some(other) => {
                    let _transient = other == ReadFault::Transient;
                    self.stats.swap_read_errors += 1;
                    audit!(
                        self,
                        fleet_audit::AuditEvent::SwapIoError {
                            pid: _pid.0,
                            page: _index,
                            op: "read",
                            transient: _transient,
                        }
                    );
                    return ReadRoll::Failed { retries, extra };
                }
            }
        }
    }

    /// Picks an anon victim: a process chosen proportionally to its
    /// resident anon size (deterministic: driven by the eviction counter),
    /// then that process's coldest page. The returned flag is the victim's
    /// second-chance history — true means the page was referenced while on
    /// the inactive end (warm), the signal hotness-aware tier placement
    /// keys on.
    fn pop_anon_proportional(&mut self) -> Option<(PageKey, bool)> {
        let total = self.anon_resident_total();
        if total == 0 {
            return None;
        }
        // A multiplicative hash spreads consecutive eviction sequence
        // numbers across the [0, total) range deterministically.
        let target = self.eviction_seq.wrapping_mul(0x9e3779b97f4a7c15) % total;
        let mut acc = 0u64;
        let mut chosen: Option<Pid> = None;
        for (pid, q) in self.anon_lrus.iter() {
            acc += q.len() as u64;
            if target < acc {
                chosen = Some(pid);
                break;
            }
        }
        let start = chosen?;
        // Pop from the chosen process; fall back to later (then earlier)
        // processes if its queue yields nothing.
        let pids: Vec<Pid> = self.anon_lrus.iter().map(|(p, _)| p).collect();
        let start_idx = pids.iter().position(|&p| p == start).unwrap_or(0);
        for offset in 0..pids.len() {
            let pid = pids[(start_idx + offset) % pids.len()];
            if let Some(q) = self.anon_lrus.get_mut(pid) {
                if let Some(victim) = q.pop_coldest_classified() {
                    return Some(victim);
                }
            }
        }
        None
    }

    // --------------------------------------------------------------- reclaim

    /// Background reclaim: if free frames are below the low watermark,
    /// evict cold pages until the high watermark is met, swap space runs
    /// out, or nothing is evictable. Returns the number of pages reclaimed.
    pub fn kswapd(&mut self) -> u64 {
        if self.free_frames() >= self.config.low_watermark_frames {
            return 0;
        }
        #[cfg(feature = "obs")]
        let cpu_before = self.stats.kswapd_cpu_nanos;
        let mut reclaimed = 0;
        while self.free_frames() < self.config.high_watermark_frames {
            match self.evict_one() {
                Ok(_) => reclaimed += 1,
                Err(_) => break,
            }
        }
        #[cfg(feature = "obs")]
        if self.obs.is_enabled() && reclaimed > 0 {
            let dur = self.stats.kswapd_cpu_nanos - cpu_before;
            let free = self.free_frames();
            self.obs.push(move |_| {
                fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                    pid: 0,
                    name: "kswapd_pass",
                    cat: "kernel",
                    depth: 0,
                    rel_start: 0,
                    dur,
                    args: vec![("reclaimed", reclaimed), ("free_frames", free)],
                })
            });
            self.obs.push(move |_| fleet_obs::ObsRecord::Counter {
                name: "kernel.kswapd_reclaimed_pages",
                delta: reclaimed,
            });
        }
        reclaimed
    }

    /// True when free memory is below the low watermark even though kswapd
    /// has run — the signal the device layer uses to consider an LMK kill.
    pub fn under_pressure(&self) -> bool {
        self.free_frames() < self.config.low_watermark_frames
    }

    /// The zram writeback daemon: demotes the oldest zram slots to the back
    /// tier when the front tier runs hot, so the compressed pool keeps
    /// tracking the warm set instead of filling with aging pages. Ticked by
    /// the device layer alongside kswapd; a strict no-op (zero cost, zero
    /// events) without a front tier. Returns pages demoted this tick.
    ///
    /// Policy: when the front tier is above 7/8 of its capacity, demote
    /// FIFO-oldest slots until it is back under 3/4, bounded per tick so
    /// one tick never monopolises kswapd. A back-tier reservation or write
    /// failure (genuine fullness or an injected fault) stops the tick; the
    /// page stays in zram, at the cold end of the FIFO, and is retried on a
    /// later tick.
    pub fn zram_writeback(&mut self) -> u64 {
        /// Upper bound on demotions per tick (one flash write burst).
        const WRITEBACK_BATCH: u64 = 64;
        let Some(front) = self.swap.front() else { return 0 };
        let capacity = front.capacity_pages();
        let high = capacity - capacity / 8;
        let target = capacity - capacity / 4;
        if front.used_pages() < high {
            return 0;
        }
        let mut moved = 0u64;
        while moved < WRITEBACK_BATCH && self.swap.front().is_some_and(|f| f.used_pages() > target)
        {
            if self.swap.back().is_full() || self.integrity.degraded {
                break; // nowhere to demote to; not an error
            }
            let Some(victim) = self.zram_fifo.pop_coldest() else { break };
            // Verify-before-retire, read side: a corrupt zram copy must not
            // be propagated to flash. Detect it, park it back at the cold
            // end (recovery happens at the next access or unmap) and stop
            // this tick — the daemon must not spin on a poisoned slot.
            if self.integrity.config.enabled
                && self.integrity.slots.get(&victim).is_some_and(|r| r.corrupt(victim))
            {
                self.integrity_detect(victim, SwapTier::Zram, "writeback");
                let raw = self.zram_fifo.push_cold(victim).raw();
                self.entry_expect(victim.pid, victim.index, "corrupt writeback").node = raw;
                break;
            }
            let back = self.swap.back_mut();
            let written = back.try_reserve().and_then(|()| match back.try_write(1) {
                Ok(op) => Ok(op),
                Err(e) => {
                    back.release_page();
                    Err(e)
                }
            });
            match written {
                Ok(op)
                    if self.integrity.config.enabled
                        && self.swap.back_mut().fault_plan_mut().torn_writeback_fault() =>
                {
                    // Verify-before-retire, write side: the flash copy came
                    // back torn, so the new slot is quarantined on the spot
                    // and the intact zram copy stays where it was (cold end,
                    // retried next tick). The write was issued, so its cost
                    // is still kswapd's.
                    self.stats.corruptions_injected += 1;
                    self.stats.corruptions_detected += 1;
                    self.stats.kswapd_cpu_nanos += op.latency.as_nanos();
                    audit!(
                        self,
                        fleet_audit::AuditEvent::CorruptionDetected {
                            pid: victim.pid.0,
                            page: victim.index,
                            tier: "flash",
                            source: "writeback",
                        }
                    );
                    self.swap.back_mut().release_page_quarantined();
                    self.integrity_note_quarantine(victim, SwapTier::Flash);
                    let raw = self.zram_fifo.push_cold(victim).raw();
                    self.entry_expect(victim.pid, victim.index, "torn writeback").node = raw;
                    break;
                }
                Ok(op) => {
                    // Demotion decompresses the page out of the front tier
                    // and writes it to the back tier; both costs are
                    // kswapd's, not any mutator's.
                    let read = self.front_expect("writeback demotion").read_pages(1);
                    self.front_expect("writeback demotion").release_page();
                    self.stats.kswapd_cpu_nanos += (read + op.latency).as_nanos();
                    self.stats.zram_writeback_pages += 1;
                    let em = self.entry_expect(victim.pid, victim.index, "writeback demotion");
                    em.flags &= !PE_ZRAM;
                    em.node = NO_NODE;
                    moved += 1;
                    audit!(
                        self,
                        fleet_audit::AuditEvent::SwapWriteback {
                            pid: victim.pid.0,
                            page: victim.index,
                        }
                    );
                }
                Err(_) => {
                    // Back tier refused (full or injected): the page stays
                    // in zram. Re-enroll it at the cold end so FIFO order
                    // is preserved for the retry.
                    self.stats.swap_write_errors += 1;
                    let raw = self.zram_fifo.push_cold(victim).raw();
                    self.entry_expect(victim.pid, victim.index, "failed writeback").node = raw;
                    break;
                }
            }
        }
        if moved > 0 {
            self.swap.note_writeback(moved);
        }
        moved
    }

    /// One kernel reclaim-daemon tick: the kswapd watermark scan followed
    /// by the zram writeback pass — the exact pair (and order) the device
    /// layer used to hand-tick, collapsed behind one entry point. Policy
    /// extensions (the Swam proactive pass) layer on top in
    /// `ReclaimDriver::tick`, which calls this first; kill escalation stays
    /// with the caller so its audit ordering barrier is preserved. Returns
    /// the pages kswapd reclaimed.
    pub fn reclaim_tick(&mut self) -> u64 {
        let reclaimed = self.kswapd();
        self.zram_writeback();
        reclaimed
    }

    // -------------------------------------------------- working-set tracking

    /// Arms the observe-only per-process working-set tracker (the Swam
    /// reclaim policy). Tracking draws no RNG, writes no clock and perturbs
    /// no LRU state; while it stays disarmed every access takes a single
    /// always-false branch, keeping legacy event streams bit-identical.
    pub fn enable_wss_tracking(&mut self) {
        self.wss_enabled = true;
    }

    /// True when working-set tracking is armed.
    pub fn wss_tracking_enabled(&self) -> bool {
        self.wss_enabled
    }

    /// The decayed working-set estimate of `pid` in pages (zero when the
    /// tracker is disarmed or the process has never been sampled).
    pub fn wss_estimate(&self, pid: Pid) -> u64 {
        self.wss.get(pid).map_or(0, |e| e.estimate)
    }

    /// Advances the working-set epoch: folds each process's touches since
    /// the last epoch into its decayed estimate
    /// (`estimate = touched + estimate / 2`, capped at the mapped page
    /// count), updates idle-epoch counters and returns the snapshots in
    /// ascending-pid order. Emits a `WssSample` audit event per process
    /// with a non-zero estimate. No-op (empty vec) while the tracker is
    /// disarmed.
    pub fn wss_epoch(&mut self) -> Vec<WssSnapshot> {
        if !self.wss_enabled {
            return Vec::new();
        }
        self.stats.wss_epochs += 1;
        let mut out = Vec::new();
        // Every process with a page table is sampled — a fully idle app
        // (zero touches, so no tracker entry of its own yet) is precisely
        // the proactive daemon's target and must still age its idle count.
        let pids: Vec<(Pid, u64)> = self.tables.iter().map(|(p, t)| (p, t.mapped)).collect();
        for (pid, mapped) in pids {
            let e = self.wss.get_or_insert_with(pid, WssEntry::default);
            e.estimate = (e.touched + e.estimate / 2).min(mapped);
            if e.touched == 0 {
                e.idle_epochs = e.idle_epochs.saturating_add(1);
            } else {
                e.idle_epochs = 0;
            }
            e.touched = 0;
            if e.estimate > 0 {
                audit!(self, fleet_audit::AuditEvent::WssSample { pid: pid.0, pages: e.estimate });
            }
            out.push(WssSnapshot { pid, estimate: e.estimate, idle_epochs: e.idle_epochs });
        }
        out
    }

    /// Proactively swaps up to `max_pages` of `pid`'s coldest resident
    /// anonymous pages out to the back tier, ahead of any watermark
    /// pressure (the Swam daemon's idle-app pass). Pinned pages are never
    /// taken (they are not enrolled in the anon LRU), file pages live on
    /// the file LRU and are untouched, and the write cost is charged to
    /// kswapd like any reclaim. Stops early when the back tier has no free
    /// slot. Returns the pages moved.
    pub fn proactive_swap_out(&mut self, pid: Pid, max_pages: u64) -> u64 {
        if self.integrity.degraded {
            return 0; // the back tier is retired; nothing to store to
        }
        let mut moved = 0u64;
        while moved < max_pages {
            let Some(victim) = self.anon_lrus.get_mut(pid).and_then(|q| q.pop_coldest()) else {
                break;
            };
            let back = self.swap.back_mut();
            if back.is_full() || !back.reserve_page() {
                // No slot: re-enroll the victim at the cold end (it stays
                // the next candidate) and stop this pass.
                let raw = self.anon_queue_existing(pid).push_cold(victim).raw();
                self.entry_expect(pid, victim.index, "proactive swap-out").node = raw;
                break;
            }
            self.stats.pages_swapped_out += 1;
            self.stats.proactive_swapout_pages += 1;
            self.stats.kswapd_cpu_nanos += self.swap.back().write_cost(1).as_nanos();
            self.mark_swapped_out(victim);
            moved += 1;
            audit!(
                self,
                fleet_audit::AuditEvent::ProactiveSwapOut { pid: pid.0, page: victim.index }
            );
            self.integrity_note_store(victim, SwapTier::Flash);
        }
        moved
    }

    // ------------------------------------------------------------- pinning

    /// Excludes the mapped pages of `[base, base + len)` from LRU eviction
    /// (Marvin's runtime-managed Java heap). Pinned pages can still be
    /// swapped explicitly with [`Advice::ColdRuntime`]. Returns the number
    /// of pages pinned.
    pub fn pin_range(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut pinned = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            let Some(e) = self.entry(key) else { continue };
            if e.is_pinned() {
                continue;
            }
            self.queue_remove_entry(key, e);
            let em = self.entry_expect(pid, index, "pin");
            em.flags |= PE_PINNED;
            em.node = NO_NODE;
            pinned += 1;
            audit!(self, fleet_audit::AuditEvent::PagePinned { pid: pid.0, page: index });
        }
        pinned
    }

    /// Returns pinned pages of a range to kernel LRU control. Returns the
    /// number of pages unpinned.
    pub fn unpin_range(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut unpinned = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            let Some(e) = self.entry(key) else { continue };
            if !e.is_pinned() {
                continue;
            }
            let node = if e.is_resident() { self.queue_push(key, e.is_file()) } else { NO_NODE };
            let em = self.entry_expect(pid, index, "unpin");
            em.flags &= !PE_PINNED;
            em.node = node;
            unpinned += 1;
            audit!(self, fleet_audit::AuditEvent::PageUnpinned { pid: pid.0, page: index });
        }
        unpinned
    }

    /// True if the page covering `addr` is pinned.
    pub fn is_pinned(&self, pid: Pid, addr: u64) -> bool {
        self.entry(PageKey::of_addr(pid, addr)).is_some_and(|e| e.is_pinned())
    }

    // --------------------------------------------------------------- madvise

    /// Fleet's extended `madvise` system call (§5.3.2) over
    /// `[base, base + len)`:
    ///
    /// * [`Advice::ColdRuntime`] actively swaps the range's resident pages
    ///   out ahead of memory pressure, stopping early if swap fills up;
    /// * [`Advice::HotRuntime`] rotates the range's resident pages to the
    ///   hot end of the LRU so reclaim will not pick them; swapped pages
    ///   are left where they are.
    ///
    /// Returns the number of pages affected.
    pub fn madvise(&mut self, pid: Pid, base: u64, len: u64, advice: Advice) -> u64 {
        match advice {
            Advice::ColdRuntime => self.madvise_cold_impl(pid, base, len),
            Advice::HotRuntime => self.madvise_hot_impl(pid, base, len),
        }
    }

    fn madvise_cold_impl(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut moved = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            let Some(e) = self.entry(key) else { continue };
            if !e.is_resident() {
                continue;
            }
            let file = e.is_file();
            if file {
                self.stats.pages_dropped_file += 1;
            } else {
                // Advised-cold pages are cold by definition: always the
                // back tier, never zram (identical to the single-device
                // path on a flash-only stack).
                if self.integrity.degraded {
                    break; // back tier retired: same disposition as full
                }
                let back = self.swap.back_mut();
                if back.is_full() || !back.reserve_page() {
                    break;
                }
                self.stats.pages_swapped_out += 1;
                self.stats.kswapd_cpu_nanos += self.swap.back().write_cost(1).as_nanos();
            }
            self.queue_remove_entry(key, e);
            self.table_expect(pid, index, "madvise(COLD_RUNTIME)").set_swapped(index);
            self.resident_count -= 1;
            moved += 1;
            audit!(
                self,
                fleet_audit::AuditEvent::SwapOut { pid: pid.0, page: index, file, advised: true }
            );
            if !file {
                self.integrity_note_store(key, SwapTier::Flash);
            }
        }
        moved
    }

    fn madvise_hot_impl(&mut self, pid: Pid, base: u64, len: u64) -> u64 {
        let mut promoted = 0;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            let Some(e) = self.entry(key) else { continue };
            if !e.is_resident() {
                continue;
            }
            if e.node != NO_NODE {
                let h = LruHandle::from_raw(e.node);
                if e.is_file() {
                    self.file_lru.promote_handle(h);
                } else {
                    self.anon_queue_existing(pid).promote_handle(h);
                }
            }
            promoted += 1;
            audit!(self, fleet_audit::AuditEvent::LruPromote { pid: pid.0, page: index });
        }
        promoted
    }

    /// Prefetches swapped pages of several ranges back into DRAM in one
    /// batched operation (ASAP-style prepaging: the whole set is issued as
    /// one queued I/O, paying the setup latency once). Returns
    /// `(pages, latency)`; stops early (without error) when memory runs out.
    pub fn prefetch_many(&mut self, pid: Pid, ranges: &[(u64, u64)]) -> (u64, SimDuration) {
        let mut anon = 0u64;
        let mut zram = 0u64;
        let mut file = 0u64;
        let mut degraded = SimDuration::ZERO;
        'outer: for &(base, len) in ranges {
            for index in pages_in_range(base, len) {
                let key = PageKey { pid, index };
                let Some(e) = self.entry(key) else { continue };
                if e.is_resident() {
                    continue;
                }
                if !e.is_file()
                    && self.integrity.config.enabled
                    && self.integrity.slots.get(&key).is_some_and(|r| r.corrupt(key))
                {
                    // Advisory read: the checksum catches the bad copy
                    // before it lands in DRAM. Skip the page; the SIGBUS
                    // disposition waits for a demand fault.
                    self.integrity_detect(key, Self::tier_of(e), "fault");
                    continue;
                }
                if self.swap.fault_active() {
                    match self.roll_read_fault(pid, index, Self::tier_of(e)) {
                        ReadRoll::Ok { extra, .. } => degraded += extra,
                        // Prefetch is advisory: an unreadable page is simply
                        // skipped (it stays swapped and will be handled by
                        // the demand-fault path later).
                        ReadRoll::Failed { extra, .. } => {
                            degraded += extra;
                            continue;
                        }
                    }
                }
                if self.take_frame().is_err() {
                    break 'outer;
                }
                let is_file = e.is_file();
                if is_file {
                    file += 1;
                } else if e.is_zram() {
                    self.release_zram_slot(key, e.node);
                    zram += 1;
                } else {
                    self.swap.back_mut().release_page();
                    anon += 1;
                }
                self.integrity_note_release(key);
                let node = if e.is_pinned() { NO_NODE } else { self.queue_push(key, is_file) };
                self.table_expect(pid, index, "prefetch").set_resident(index, node);
                self.resident_count += 1;
                audit!(
                    self,
                    fleet_audit::AuditEvent::PagePrefetched {
                        pid: pid.0,
                        page: index,
                        file: is_file,
                    }
                );
            }
        }
        let decompress = if zram > 0 {
            self.front_expect("zram prefetch read").read_pages(zram)
        } else {
            SimDuration::ZERO
        };
        self.stats.faults_zram += zram;
        self.stats.decompress_stall_nanos += decompress.as_nanos();
        let latency = decompress
            + self.swap.back_mut().read_pages(anon)
            + self.file_read_cost(file)
            + degraded;
        let anon = anon + zram;
        #[cfg(feature = "obs")]
        if self.obs.is_enabled() && anon + file > 0 {
            let (pages, dur) = (anon + file, latency.as_nanos());
            self.obs.push(move |_| {
                fleet_obs::ObsRecord::Span(fleet_obs::SpanRec {
                    pid: 0,
                    name: "prefetch",
                    cat: "kernel",
                    depth: 0,
                    rel_start: 0,
                    dur,
                    args: vec![("pid", u64::from(pid.0)), ("pages", pages)],
                })
            });
        }
        (anon + file, latency)
    }

    /// Prefetches swapped pages of a range back into DRAM (used by the
    /// ASAP-style prefetch extension). Returns `(pages, latency)`.
    ///
    /// # Errors
    ///
    /// Returns [`MmError::OutOfMemory`] when frames run out mid-prefetch.
    pub fn prefetch(
        &mut self,
        pid: Pid,
        base: u64,
        len: u64,
    ) -> Result<(u64, SimDuration), MmError> {
        let mut batch = 0;
        let mut zram = 0u64;
        let mut degraded = SimDuration::ZERO;
        for index in pages_in_range(base, len) {
            let key = PageKey { pid, index };
            let Some(e) = self.entry(key) else { continue };
            if e.is_resident() {
                continue;
            }
            if !e.is_file()
                && self.integrity.config.enabled
                && self.integrity.slots.get(&key).is_some_and(|r| r.corrupt(key))
            {
                // Advisory: skip the corrupt copy, leave recovery to the
                // demand-fault path.
                self.integrity_detect(key, Self::tier_of(e), "fault");
                continue;
            }
            if self.swap.fault_active() {
                match self.roll_read_fault(pid, index, Self::tier_of(e)) {
                    ReadRoll::Ok { extra, .. } => degraded += extra,
                    // Advisory: skip unreadable pages, never fail the batch.
                    ReadRoll::Failed { extra, .. } => {
                        degraded += extra;
                        continue;
                    }
                }
            }
            self.take_frame()?;
            let file = e.is_file();
            if !file {
                if e.is_zram() {
                    self.release_zram_slot(key, e.node);
                    zram += 1;
                } else {
                    self.swap.back_mut().release_page();
                }
                self.integrity_note_release(key);
            }
            let node = if e.is_pinned() { NO_NODE } else { self.queue_push(key, file) };
            self.table_expect(pid, index, "prefetch").set_resident(index, node);
            self.resident_count += 1;
            batch += 1;
            audit!(self, fleet_audit::AuditEvent::PagePrefetched { pid: pid.0, page: index, file });
        }
        let decompress = if zram > 0 {
            self.front_expect("zram prefetch read").read_pages(zram)
        } else {
            SimDuration::ZERO
        };
        self.stats.faults_zram += zram;
        self.stats.decompress_stall_nanos += decompress.as_nanos();
        let latency = decompress + self.swap.back_mut().read_pages(batch - zram) + degraded;
        Ok((batch, latency))
    }

    // ------------------------------------------------------------ validation

    /// Checks the memory manager's internal bookkeeping for consistency and
    /// panics on the first inconsistency found. Used by the invariant test
    /// suites after every operation; always compiled (no feature gate) so
    /// plain tests can call it too.
    ///
    /// Invariants checked:
    ///
    /// * `resident_count` and the per-table resident/swapped/mapped
    ///   counters equal recounts over the page tables,
    /// * tier slot conservation: every swapped anonymous page holds exactly
    ///   one slot in exactly one tier — zram-tagged pages account for the
    ///   front tier's slots one-for-one, the rest for the back tier's
    ///   (file pages are dropped, not swapped, and hold no slot),
    /// * every zram-tagged page is enrolled in the writeback FIFO (via the
    ///   handle in its entry) and the FIFO holds nothing else,
    /// * resident pages plus the compressed zram store fit in DRAM,
    /// * every resident non-pinned page holds an LRU handle that resolves
    ///   back to it in exactly its proper queue, and the queues hold
    ///   nothing else,
    /// * pinned and flash-swapped pages are on no queue.
    pub fn validate(&self) {
        let mut resident = 0u64;
        let mut swapped_back = 0u64;
        let mut swapped_zram = 0u64;
        let mut queued = 0u64;
        for (pid, table) in self.tables.iter() {
            let (mut t_mapped, mut t_res, mut t_swap) = (0u64, 0u64, 0u64);
            for (index, e) in table.iter_mapped() {
                let key = PageKey { pid, index };
                t_mapped += 1;
                if e.is_resident() {
                    assert!(!e.is_zram(), "resident page {key:?} still carries the zram tag");
                    resident += 1;
                    t_res += 1;
                } else {
                    t_swap += 1;
                    if e.is_zram() {
                        assert!(!e.is_file(), "file page {key:?} tagged zram");
                        swapped_zram += 1;
                    } else if !e.is_file() {
                        swapped_back += 1;
                    }
                }
                if !e.is_resident() && e.is_zram() {
                    // Zram pages park their writeback-FIFO handle in `node`.
                    assert_ne!(e.node, NO_NODE, "zram page {key:?} missing its FIFO handle");
                    let q_key = self.zram_fifo.key_of(LruHandle::from_raw(e.node));
                    assert_eq!(
                        q_key,
                        Some(key),
                        "zram page {key:?} FIFO handle does not resolve to it"
                    );
                    continue;
                }
                let should_queue = e.is_resident() && !e.is_pinned();
                let in_queue = e.node != NO_NODE;
                assert_eq!(
                    in_queue,
                    should_queue,
                    "page {key:?} (resident {}, pinned {}) queue membership wrong",
                    e.is_resident(),
                    e.is_pinned()
                );
                if in_queue {
                    let h = LruHandle::from_raw(e.node);
                    let q_key = if e.is_file() {
                        self.file_lru.key_of(h)
                    } else {
                        self.anon_lrus.get(pid).and_then(|q| q.key_of(h))
                    };
                    assert_eq!(q_key, Some(key), "page {key:?} LRU handle does not resolve to it");
                    queued += 1;
                }
            }
            assert_eq!(t_mapped, table.mapped, "mapped counter wrong for pid {pid:?}");
            assert_eq!(t_res, table.resident, "resident counter wrong for pid {pid:?}");
            assert_eq!(t_swap, table.swapped, "swapped counter wrong for pid {pid:?}");
        }
        assert_eq!(
            resident, self.resident_count,
            "resident_count {} disagrees with page tables ({resident} resident)",
            self.resident_count
        );
        assert_eq!(
            swapped_back,
            self.swap.back().used_pages(),
            "back tier uses {} slots but {swapped_back} anon pages are swapped there",
            self.swap.back().used_pages()
        );
        let front_used = self.swap.front().map_or(0, |f| f.used_pages());
        assert_eq!(
            swapped_zram, front_used,
            "zram tier uses {front_used} slots but {swapped_zram} pages carry the zram tag"
        );
        assert_eq!(
            swapped_zram,
            self.zram_fifo.len() as u64,
            "writeback FIFO holds {} pages but {swapped_zram} pages carry the zram tag",
            self.zram_fifo.len()
        );
        assert!(
            self.resident_count + self.swap.frames_consumed() <= self.frames_capacity,
            "resident {} + zram {} exceed DRAM {}",
            self.resident_count,
            self.swap.frames_consumed(),
            self.frames_capacity
        );
        let queue_total = self.anon_resident_total() + self.file_lru.len() as u64;
        assert_eq!(
            queue_total, queued,
            "LRU queues hold {queue_total} pages but only {queued} mapped pages belong there"
        );
        if self.integrity.config.enabled {
            // Checksum bookkeeping conserves pages: exactly one slot record
            // per swapped anon page, each resolving to a live swapped entry.
            assert_eq!(
                self.integrity.slots.len() as u64,
                swapped_back + swapped_zram,
                "integrity records {} but {} anon pages are swapped",
                self.integrity.slots.len(),
                swapped_back + swapped_zram
            );
            for &key in self.integrity.slots.keys() {
                let e = self.entry(key).expect("slot record for an unmapped page");
                assert!(
                    !e.is_resident() && !e.is_file(),
                    "slot record for {key:?}, which is not a swapped anon page"
                );
            }
        } else {
            assert!(
                self.integrity.slots.is_empty(),
                "the disabled integrity layer must keep no slot records"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm_with_frames(frames: u64, swap_pages: u64) -> MemoryManager {
        MemoryManager::new(MmConfig {
            dram_bytes: frames * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: swap_pages * PAGE_SIZE, ..SwapConfig::default() },
            zram: None,
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity: IntegrityConfig::default(),
        })
    }

    #[test]
    fn map_and_access_resident() {
        let mut mm = mm_with_frames(8, 8);
        mm.map_range(Pid(1), 0, 3 * PAGE_SIZE).unwrap();
        assert_eq!(mm.used_frames(), 3);
        let out = mm.access(Pid(1), 0, 2 * PAGE_SIZE, AccessKind::Mutator);
        assert_eq!(out.touched_pages, 2);
        assert_eq!(out.faulted_pages, 0);
        assert_eq!(mm.stats().faults, 0);
    }

    #[test]
    fn mapping_past_dram_evicts_lru() {
        let mut mm = mm_with_frames(2, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        // Third page forces the eviction of page 0 (the coldest).
        mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap();
        assert_eq!(mm.used_frames(), 2);
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Swapped));
        assert_eq!(mm.stats().pages_swapped_out, 1);
    }

    #[test]
    fn fault_brings_page_back_at_flash_latency() {
        let mut mm = mm_with_frames(2, 4);
        mm.map_range(Pid(1), 0, 3 * PAGE_SIZE).unwrap(); // page 0 swapped
        let out = mm.access(Pid(1), 0, 1, AccessKind::Launch);
        assert_eq!(out.faulted_pages, 1);
        assert!(
            out.latency > SimDuration::from_micros(200),
            "flash fault should be slow: {}",
            out.latency
        );
        assert_eq!(mm.stats().faults_launch, 1);
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Resident));
    }

    #[test]
    fn oom_when_swap_full_and_no_frames() {
        let mut mm = mm_with_frames(2, 1);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap(); // swap now holds 1 page (full)
        let err = mm.map_range(Pid(1), 3 * PAGE_SIZE, PAGE_SIZE);
        assert_eq!(err, Err(MmError::OutOfMemory));
        // Killing the process frees everything and mapping succeeds again.
        let freed = mm.unmap_process(Pid(1));
        assert_eq!(freed, 2);
        assert_eq!(mm.swap().used_pages(), 0);
        mm.map_range(Pid(2), 0, 2 * PAGE_SIZE).unwrap();
    }

    #[test]
    fn unmap_releases_swap_slots() {
        let mut mm = mm_with_frames(1, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap(); // page 0 swapped out
        assert_eq!(mm.swap().used_pages(), 1);
        mm.unmap_range(Pid(1), 0, 2 * PAGE_SIZE);
        assert_eq!(mm.swap().used_pages(), 0);
        assert_eq!(mm.used_frames(), 0);
    }

    #[test]
    fn gc_faults_are_attributed() {
        let mut mm = mm_with_frames(1, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 1, AccessKind::Gc);
        assert_eq!(mm.stats().faults_gc, 1);
        assert_eq!(mm.stats().faults_mutator, 0);
    }

    #[test]
    fn madvise_cold_swaps_out_range() {
        let mut mm = mm_with_frames(8, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        let moved = mm.madvise(Pid(1), 0, 4 * PAGE_SIZE, Advice::ColdRuntime);
        assert_eq!(moved, 4);
        assert_eq!(mm.used_frames(), 0);
        assert_eq!(mm.process_mem(Pid(1)).swapped, 4);
    }

    #[test]
    fn madvise_cold_stops_when_swap_full() {
        let mut mm = mm_with_frames(8, 2);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        let moved = mm.madvise(Pid(1), 0, 4 * PAGE_SIZE, Advice::ColdRuntime);
        assert_eq!(moved, 2);
        assert_eq!(mm.process_mem(Pid(1)).resident, 2);
    }

    #[test]
    fn madvise_hot_protects_pages_from_eviction() {
        let mut mm = mm_with_frames(4, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        // Promote page 0, then map two more pages forcing evictions.
        assert_eq!(mm.madvise(Pid(1), 0, PAGE_SIZE, Advice::HotRuntime), 1);
        mm.map_range(Pid(1), 4 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Resident));
        // Pages 1 and 2 (cold, unreferenced) went instead.
        assert_eq!(mm.process_mem(Pid(1)).swapped, 2);
    }

    #[test]
    fn kswapd_restores_watermark() {
        let mut mm = MemoryManager::new(MmConfig {
            dram_bytes: 10 * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: 20 * PAGE_SIZE, ..SwapConfig::default() },
            zram: None,
            low_watermark_frames: 2,
            high_watermark_frames: 4,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity: IntegrityConfig::default(),
        });
        mm.map_range(Pid(1), 0, 9 * PAGE_SIZE).unwrap(); // 1 free < low
        assert!(mm.under_pressure());
        let reclaimed = mm.kswapd();
        assert_eq!(reclaimed, 3); // free goes 1 → 4
        assert!(!mm.under_pressure());
        assert_eq!(mm.kswapd(), 0); // already satisfied
    }

    #[test]
    fn prefetch_restores_range() {
        let mut mm = mm_with_frames(4, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.madvise(Pid(1), 0, 2 * PAGE_SIZE, Advice::ColdRuntime);
        let (pages, latency) = mm.prefetch(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        assert_eq!(pages, 2);
        assert!(latency > SimDuration::ZERO);
        assert_eq!(mm.process_mem(Pid(1)).swapped, 0);
    }

    #[test]
    fn double_map_is_idempotent() {
        let mut mm = mm_with_frames(4, 4);
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        assert_eq!(mm.used_frames(), 2);
    }

    #[test]
    fn swappiness_steers_the_anon_file_balance() {
        let run = |swappiness: u32| {
            let mut mm = MemoryManager::new(MmConfig {
                dram_bytes: 64 * PAGE_SIZE,
                swap: SwapConfig { capacity_bytes: 256 * PAGE_SIZE, ..SwapConfig::default() },
                low_watermark_frames: 0,
                high_watermark_frames: 0,
                swappiness,
                ..MmConfig::default()
            });
            // Half anon, half file, then heavy extra file demand.
            mm.map_range_kind(Pid(1), 0, 32 * PAGE_SIZE, PageKind::Anon).unwrap();
            mm.map_range_kind(Pid(2), 0, 32 * PAGE_SIZE, PageKind::File).unwrap();
            mm.map_range_kind(Pid(3), 0, 64 * PAGE_SIZE, PageKind::File).unwrap();
            mm.stats().pages_swapped_out
        };
        let low = run(0);
        let mid = run(50);
        let high = run(200);
        assert_eq!(low, 0, "swappiness 0 must never swap anon while file is droppable");
        assert!(high > mid, "higher swappiness swaps more anon: {high} vs {mid}");
        assert!(mid > 0, "default swappiness swaps some anon under sustained demand");
    }

    #[test]
    fn access_to_unmapped_range_is_free() {
        let mut mm = mm_with_frames(4, 4);
        let out = mm.access(Pid(1), 0, PAGE_SIZE, AccessKind::Mutator);
        assert_eq!(out.touched_pages, 0);
        assert_eq!(out.latency, SimDuration::ZERO);
    }

    #[test]
    fn access_oom_keeps_partial_progress() {
        let mut mm = mm_with_frames(2, 2);
        // Fill DRAM and swap: 2 resident + 2 swapped, nothing evictable left
        // once swap is full.
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        assert_eq!(mm.swap().used_pages(), 2);
        // Touching all four pages must fault two back in; each fault evicts
        // another page into the (full) swap, so the second fault cannot find
        // a frame and the access stops early with the oom flag.
        let out = mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator);
        assert!(out.oom, "exhausted memory must set the oom flag");
        assert!(out.touched_pages < 4, "oom access must stop early, touched {}", out.touched_pages);
        // Partial progress is fully accounted: counters still balance.
        mm.validate();
        // Freeing memory lets a retry finish the range.
        mm.unmap_range(Pid(1), 0, 2 * PAGE_SIZE);
        let retry = mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator);
        assert!(!retry.oom);
        mm.validate();
    }

    #[test]
    fn validate_accepts_all_page_states() {
        let mut mm = mm_with_frames(4, 8);
        mm.map_range(Pid(1), 0, 3 * PAGE_SIZE).unwrap();
        mm.map_range_kind(Pid(2), 0, 2 * PAGE_SIZE, PageKind::File).unwrap();
        mm.validate();
        mm.madvise(Pid(1), 0, PAGE_SIZE, Advice::ColdRuntime); // one swapped anon page
        mm.madvise(Pid(2), 0, PAGE_SIZE, Advice::ColdRuntime); // one dropped file page
        mm.pin_range(Pid(1), PAGE_SIZE, PAGE_SIZE); // one pinned page
        mm.validate();
        mm.unmap_process(Pid(1));
        mm.unmap_process(Pid(2));
        mm.validate();
        assert_eq!(mm.used_frames(), 0);
    }

    #[test]
    fn page_tables_cover_distant_address_areas() {
        // Java heap near 0, native at 2^40, file at 2^41: three segments,
        // all resolvable, no interference.
        let mut mm = mm_with_frames(64, 64);
        let native = 1u64 << 40;
        let file = 1u64 << 41;
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), native, 4 * PAGE_SIZE).unwrap();
        mm.map_range_kind(Pid(1), file, 4 * PAGE_SIZE, PageKind::File).unwrap();
        mm.validate();
        assert!(mm.is_resident(Pid(1), 0));
        assert!(mm.is_resident(Pid(1), native));
        assert!(mm.is_resident(Pid(1), file));
        assert_eq!(mm.process_mem(Pid(1)).resident, 12);
        mm.unmap_range(Pid(1), native, 4 * PAGE_SIZE);
        mm.validate();
        assert!(!mm.is_resident(Pid(1), native));
        assert_eq!(mm.process_mem(Pid(1)).resident, 8);
    }

    // ----------------------------------------------------- fault injection

    use crate::fault::FaultConfig;

    fn arm(mm: &mut MemoryManager, seed: u64, config: FaultConfig) {
        mm.install_fault_plan(FaultPlan::new(seed, config));
    }

    #[test]
    fn quiet_plan_changes_nothing() {
        let scenario = |mm: &mut MemoryManager| {
            mm.map_range(Pid(1), 0, 6 * PAGE_SIZE).unwrap();
            mm.access(Pid(1), 0, 6 * PAGE_SIZE, AccessKind::Launch)
        };
        let mut plain = mm_with_frames(4, 8);
        let mut quiet = mm_with_frames(4, 8);
        quiet.install_fault_plan(FaultPlan::default());
        assert!(!quiet.fault_active());
        let a = scenario(&mut plain);
        let b = scenario(&mut quiet);
        assert_eq!(a, b);
        assert_eq!(plain.stats(), quiet.stats());
        assert_eq!(b.retries, 0);
        assert_eq!(b.degraded_latency, SimDuration::ZERO);
    }

    #[test]
    fn transient_read_errors_exhaust_the_retry_budget() {
        let mut mm = mm_with_frames(2, 8);
        mm.map_range(Pid(1), 0, 3 * PAGE_SIZE).unwrap(); // page 0 swapped
        arm(&mut mm, 7, FaultConfig { read_transient_rate: 1.0, ..FaultConfig::default() });
        let out = mm.access(Pid(1), 0, 1, AccessKind::Launch);
        // Every roll is transient: FAULT_RETRY_MAX bounded retries, then the
        // anon page is declared lost and the owner must die — no spin.
        assert_eq!(out.retries, FAULT_RETRY_MAX as u64);
        assert!(out.killed, "unreadable anon page must report the kill");
        assert!(!out.oom);
        assert!(out.degraded_latency > SimDuration::ZERO);
        assert_eq!(mm.stats().fault_retries, FAULT_RETRY_MAX as u64);
        assert_eq!(mm.stats().swap_read_errors, 1);
        assert_eq!(mm.stats().pages_lost, 1);
        // The page stays swapped (slot retained) until the kill unmaps it.
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Swapped));
        mm.validate();
        assert_eq!(mm.unmap_process(Pid(1)), 2);
        assert_eq!(mm.swap().used_pages(), 0);
        mm.validate();
    }

    #[test]
    fn permanent_read_error_on_file_page_discards_and_refaults() {
        let mut mm = mm_with_frames(8, 8);
        mm.map_range_kind(Pid(1), 0, 2 * PAGE_SIZE, PageKind::File).unwrap();
        mm.madvise(Pid(1), 0, PAGE_SIZE, Advice::ColdRuntime); // drop page 0
        arm(&mut mm, 11, FaultConfig { read_permanent_rate: 1.0, ..FaultConfig::default() });
        let out = mm.access(Pid(1), 0, 1, AccessKind::Launch);
        // Clean file page: the failing copy is discarded and re-read from
        // the file — degraded, but never lost and never fatal.
        assert!(!out.killed);
        assert_eq!(out.faulted_pages, 1);
        assert!(out.retries >= 1);
        assert!(out.degraded_latency > SimDuration::ZERO);
        assert_eq!(mm.stats().swap_read_errors, 1);
        assert_eq!(mm.stats().pages_lost, 0);
        assert_eq!(mm.page_state(PageKey { pid: Pid(1), index: 0 }), Some(PageState::Resident));
        mm.validate();
    }

    #[test]
    fn latency_spikes_degrade_but_never_fail() {
        let spike = SimDuration::from_millis(30);
        let mut mm = mm_with_frames(2, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap(); // pages 0,1 swapped
        arm(
            &mut mm,
            13,
            FaultConfig { latency_spike_rate: 1.0, latency_spike: spike, ..FaultConfig::default() },
        );
        let out = mm.access(Pid(1), 0, 2 * PAGE_SIZE, AccessKind::Launch);
        assert!(!out.killed && !out.oom);
        assert_eq!(out.faulted_pages, 2);
        assert_eq!(out.retries, 0);
        // One spike per faulted page, fully accounted inside latency.
        assert_eq!(out.degraded_latency, spike * 2);
        assert!(out.latency > out.degraded_latency);
        mm.validate();
    }

    #[test]
    fn write_back_failures_leave_no_page_lost() {
        let mut mm = mm_with_frames(4, 16);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        arm(&mut mm, 17, FaultConfig { write_error_rate: 1.0, ..FaultConfig::default() });
        // Every anon write-back fails and there are no file pages to fall
        // back on: the mapping attempt surfaces OOM instead of spinning or
        // corrupting state, and every already-mapped page survives.
        let err = mm.map_range(Pid(2), 0, PAGE_SIZE);
        assert_eq!(err, Err(MmError::OutOfMemory));
        assert!(mm.stats().swap_write_errors >= 1);
        assert_eq!(mm.stats().pages_swapped_out, 0);
        assert_eq!(mm.process_mem(Pid(1)).resident, 4);
        mm.validate();
    }

    #[test]
    fn incompressible_zram_pressure_stays_consistent() {
        let mut mm = MemoryManager::new(MmConfig {
            dram_bytes: 4 * PAGE_SIZE,
            swap: SwapConfig::try_zram(16 * PAGE_SIZE, 2.0).unwrap(),
            zram: None,
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 200, // always prefer anon so zram is exercised
            integrity: IntegrityConfig::default(),
        });
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        arm(&mut mm, 19, FaultConfig { compress_fail_rate: 1.0, ..FaultConfig::default() });
        // Every store is incompressible (net-zero eviction). take_frame must
        // keep evicting until it either frees a frame or honestly reports
        // OOM — and the books must balance either way.
        let _ = mm.map_range(Pid(1), 4 * PAGE_SIZE, PAGE_SIZE);
        mm.validate();
    }

    #[test]
    fn prefetch_skips_unreadable_pages() {
        let mut mm = mm_with_frames(8, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.madvise(Pid(1), 0, 2 * PAGE_SIZE, Advice::ColdRuntime);
        arm(&mut mm, 23, FaultConfig { read_permanent_rate: 1.0, ..FaultConfig::default() });
        let (pages, _latency) = mm.prefetch_many(Pid(1), &[(0, 4 * PAGE_SIZE)]);
        // Advisory path: both swapped pages are unreadable and skipped; the
        // demand-fault path deals with them later.
        assert_eq!(pages, 0);
        assert_eq!(mm.process_mem(Pid(1)).swapped, 2);
        assert_eq!(mm.stats().swap_read_errors, 2);
        mm.validate();
    }

    // ------------------------------------------------------- hybrid tiers

    /// A hybrid stack: `zram_pages` of front tier (2:1) ahead of
    /// `flash_pages` of back tier.
    fn hybrid_mm(frames: u64, zram_pages: u64, flash_pages: u64) -> MemoryManager {
        MemoryManager::new(MmConfig {
            dram_bytes: frames * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: flash_pages * PAGE_SIZE, ..SwapConfig::default() },
            zram: Some(SwapConfig::try_zram(zram_pages * PAGE_SIZE, 2.0).unwrap()),
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity: IntegrityConfig::default(),
        })
    }

    #[test]
    fn warm_victims_go_to_zram_cold_to_flash() {
        // Warm case: pages referenced before eviction earn a second chance,
        // so their eventual eviction places them in the zram front tier.
        let mut mm = hybrid_mm(4, 8, 16);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator); // referenced
        mm.map_range(Pid(1), 4 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap(); // forces evictions
        assert!(mm.stats().pages_swapped_zram > 0, "warm victims must land in zram");
        assert_eq!(mm.swap().back().used_pages(), 0, "no warm victim may hit flash");
        mm.validate();

        // Cold case: never-referenced pages are evicted on their first pop
        // and go straight to the back tier.
        let mut cold = hybrid_mm(4, 8, 16);
        cold.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        cold.map_range(Pid(1), 4 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        assert_eq!(cold.stats().pages_swapped_zram, 0, "cold victims must skip zram");
        assert!(cold.swap().back().used_pages() > 0);
        assert_eq!(cold.swap().front().unwrap().used_pages(), 0);
        cold.validate();
    }

    #[test]
    fn zram_fault_in_is_fast_and_attributed() {
        let mut mm = hybrid_mm(4, 8, 16);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator);
        mm.map_range(Pid(1), 4 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        let zram_used = mm.swap().front().unwrap().used_pages();
        assert!(zram_used > 0);
        // Fault the first evicted page back in: served by zram, slot freed,
        // and the stall is attributed to decompression.
        let out = mm.access(Pid(1), 0, 1, AccessKind::Launch);
        assert_eq!(out.faulted_pages, 1);
        assert!(out.decompress_latency > SimDuration::ZERO);
        assert_eq!(out.decompress_latency, out.latency, "the whole stall is decompression");
        assert!(
            out.latency < SimDuration::from_micros(100),
            "zram fault must be far below flash latency: {}",
            out.latency
        );
        assert_eq!(mm.stats().faults_zram, 1);
        assert_eq!(mm.swap().front().unwrap().used_pages(), zram_used - 1);
        mm.validate();
    }

    #[test]
    fn writeback_daemon_demotes_oldest_zram_slots() {
        let mut mm = hybrid_mm(8, 8, 16);
        mm.map_range(Pid(1), 0, 8 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 8 * PAGE_SIZE, AccessKind::Mutator); // all warm
        mm.map_range(Pid(1), 8 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap(); // fills zram
        let front_used = mm.swap().front().unwrap().used_pages();
        assert_eq!(front_used, 8, "the eight warm victims fill the front tier");
        // Above the 7/8 high mark: the daemon demotes down to 3/4.
        let moved = mm.zram_writeback();
        assert_eq!(moved, 2);
        assert_eq!(mm.swap().front().unwrap().used_pages(), 6);
        assert_eq!(mm.swap().back().used_pages(), 2);
        assert_eq!(mm.swap().writeback_pages(), 2);
        assert_eq!(mm.stats().zram_writeback_pages, 2);
        mm.validate();
        // FIFO order: the demoted pages are the oldest stores (pages 0, 1);
        // they now fault from flash (no decompression), while a still-zram
        // page decompresses.
        let demoted = mm.access(Pid(1), 0, 1, AccessKind::Mutator);
        assert_eq!(demoted.faulted_pages, 1);
        assert_eq!(demoted.decompress_latency, SimDuration::ZERO);
        let kept = mm.access(Pid(1), 4 * PAGE_SIZE, 1, AccessKind::Mutator);
        assert_eq!(kept.faulted_pages, 1);
        assert!(kept.decompress_latency > SimDuration::ZERO);
        mm.validate();
        // Below the high mark nothing moves.
        assert_eq!(mm.zram_writeback(), 0);
    }

    #[test]
    fn flash_only_stack_never_ticks_writeback() {
        let mut mm = mm_with_frames(2, 8);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        assert_eq!(mm.zram_writeback(), 0);
        assert_eq!(mm.stats().zram_writeback_pages, 0);
        assert_eq!(mm.stats().pages_swapped_zram, 0);
        assert_eq!(mm.stats().faults_zram, 0);
        assert!(mm.swap_stats().front.is_none());
        mm.validate();
    }

    #[test]
    fn incompressible_warm_pages_fall_through_to_flash() {
        let mut mm = hybrid_mm(4, 8, 16);
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator); // all warm
        arm(&mut mm, 29, FaultConfig { compress_fail_rate: 1.0, ..FaultConfig::default() });
        mm.map_range(Pid(1), 4 * PAGE_SIZE, 2 * PAGE_SIZE).unwrap();
        // Every warm victim probes incompressible and falls through: the
        // front tier stays empty instead of pinning raw frames.
        assert!(mm.stats().zram_fallthrough_pages > 0);
        assert_eq!(mm.swap().front().unwrap().used_pages(), 0);
        assert!(mm.swap().back().used_pages() > 0);
        assert_eq!(mm.swap().front().unwrap().raw_pages(), 0);
        mm.validate();
    }

    #[test]
    fn empty_chunks_are_freed_under_address_churn() {
        // Map and fully unmap many widely spaced ranges; the table must not
        // accumulate chunks for dead address space.
        let mut mm = mm_with_frames(16, 16);
        for i in 0..64u64 {
            let base = i * 4 * 1024 * 1024; // a fresh 2 MiB chunk every time
            mm.map_range(Pid(1), base, 2 * PAGE_SIZE).unwrap();
            mm.unmap_range(Pid(1), base, 2 * PAGE_SIZE);
        }
        mm.validate();
        let table = mm.table(Pid(1)).unwrap();
        let live_chunks: usize =
            table.segs.iter().map(|s| s.chunks.iter().filter(|c| c.is_some()).count()).sum();
        assert_eq!(live_chunks, 0, "fully unmapped chunks must be freed");
        assert_eq!(mm.process_mem(Pid(1)), ProcessMem::default());
    }

    // --------------------------------------------------------- data integrity

    fn mm_with_integrity(
        frames: u64,
        swap_pages: u64,
        integrity: IntegrityConfig,
    ) -> MemoryManager {
        MemoryManager::new(MmConfig {
            dram_bytes: frames * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: swap_pages * PAGE_SIZE, ..SwapConfig::default() },
            zram: None,
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity,
        })
    }

    #[test]
    fn corrupt_anon_store_kills_at_fault_and_quarantines_at_unmap() {
        let mut mm = mm_with_integrity(2, 8, IntegrityConfig::checked());
        arm(&mut mm, 31, FaultConfig { corruption_rate: 1.0, ..FaultConfig::default() });
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap(); // evicts one page, corruptly
        assert_eq!(mm.stats().corruptions_injected, 1);
        let out = mm.access(Pid(1), 0, PAGE_SIZE, AccessKind::Mutator);
        assert!(out.killed, "a corrupt anon slot is a SIGBUS");
        assert_eq!(mm.stats().corruptions_detected, 1);
        assert_eq!(mm.stats().pages_lost, 1);
        // Repeat access still dies but detects nothing new (exactly once).
        assert!(mm.access(Pid(1), 0, PAGE_SIZE, AccessKind::Mutator).killed);
        assert_eq!(mm.stats().corruptions_detected, 1);
        // The kill path unmaps the process; the poisoned slot is quarantined
        // and its capacity is permanently gone.
        mm.unmap_process(Pid(1));
        assert_eq!(mm.stats().slots_quarantined, 1);
        assert_eq!(mm.swap().back().quarantined_pages(), 1);
        assert_eq!(mm.swap().back().used_pages(), 0);
        mm.validate();
    }

    #[test]
    fn integrity_off_ignores_armed_corruption_plans() {
        let scenario = |mm: &mut MemoryManager| {
            mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
            mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap();
            let out = mm.access(Pid(1), 0, 2 * PAGE_SIZE, AccessKind::Launch);
            assert!(!out.killed, "without checksums a silent corruption stays silent");
            out.latency
        };
        let mut plain = mm_with_frames(2, 8);
        let base_latency = scenario(&mut plain);
        let mut armed = mm_with_frames(2, 8);
        arm(&mut armed, 41, FaultConfig::silent_corruption(1.0));
        let armed_latency = scenario(&mut armed);
        assert_eq!(armed.stats().corruptions_injected, 0, "disabled layer must not draw");
        assert_eq!(base_latency, armed_latency);
        assert_eq!(format!("{:?}", plain.stats()), format!("{:?}", armed.stats()));
        armed.validate();
    }

    #[test]
    fn quarantine_saturation_retires_the_back_tier() {
        let integrity = IntegrityConfig { quarantine_threshold: 1, ..IntegrityConfig::checked() };
        let mut mm = mm_with_integrity(2, 8, integrity);
        arm(&mut mm, 33, FaultConfig { corruption_rate: 1.0, ..FaultConfig::default() });
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap();
        assert!(mm.access(Pid(1), 0, 3 * PAGE_SIZE, AccessKind::Mutator).killed);
        mm.unmap_process(Pid(1));
        assert!(mm.degraded(), "one quarantined slot saturates a threshold of 1");
        assert_eq!(mm.stats().tiers_retired, 1);
        // Degraded mode: no further anon swap stores through any path.
        mm.map_range(Pid(2), 0, 2 * PAGE_SIZE).unwrap();
        assert_eq!(mm.proactive_swap_out(Pid(2), 8), 0);
        assert_eq!(mm.madvise(Pid(2), 0, PAGE_SIZE, Advice::ColdRuntime), 0);
        assert!(
            mm.map_range(Pid(2), 2 * PAGE_SIZE, PAGE_SIZE).is_err(),
            "no file pages and no usable swap must report an honest OOM"
        );
        mm.validate();
    }

    #[test]
    fn scrubber_detects_cold_corruption_and_defers_recovery() {
        let integrity = IntegrityConfig {
            scrub_interval_ticks: 1,
            scrub_batch_pages: 8,
            ..IntegrityConfig::checked()
        };
        let mut mm = mm_with_integrity(2, 8, integrity);
        arm(&mut mm, 57, FaultConfig { corruption_rate: 1.0, ..FaultConfig::default() });
        mm.map_range(Pid(1), 0, 2 * PAGE_SIZE).unwrap();
        mm.map_range(Pid(1), 2 * PAGE_SIZE, PAGE_SIZE).unwrap(); // one corrupt store
        let report = mm.scrub_tick().expect("due after one tick at interval 1");
        assert_eq!(report.scanned, 1);
        assert_eq!(report.detected, 1);
        assert_eq!(mm.stats().scrub_passes, 1);
        assert_eq!(mm.stats().scrub_pages_scanned, 1);
        // Recovery is deferred to the next access, with no second detection.
        assert!(mm.access(Pid(1), 0, 3 * PAGE_SIZE, AccessKind::Mutator).killed);
        assert_eq!(mm.stats().corruptions_detected, 1);
        mm.validate();
    }

    #[test]
    fn corrupt_file_read_discards_and_refaults() {
        let mut mm = mm_with_integrity(4, 8, IntegrityConfig::checked());
        arm(&mut mm, 63, FaultConfig { corruption_rate: 1.0, ..FaultConfig::default() });
        mm.map_range_kind(Pid(1), 0, 2 * PAGE_SIZE, PageKind::File).unwrap();
        mm.madvise(Pid(1), 0, 2 * PAGE_SIZE, Advice::ColdRuntime); // drop both
        let out = mm.access(Pid(1), 0, 2 * PAGE_SIZE, AccessKind::Mutator);
        // File pages never die: each corrupt read is discarded and re-read
        // at one extra file read's cost.
        assert!(!out.killed);
        assert_eq!(out.faulted_pages, 2);
        assert_eq!(mm.stats().corruptions_injected, 2);
        assert_eq!(mm.stats().corruptions_detected, 2);
        assert_eq!(mm.stats().pages_lost, 0);
        assert!(out.degraded_latency > SimDuration::ZERO);
        mm.validate();
    }

    #[test]
    fn front_retirement_falls_back_to_flash_only() {
        let integrity = IntegrityConfig { quarantine_threshold: 1, ..IntegrityConfig::checked() };
        let mut mm = MemoryManager::new(MmConfig {
            dram_bytes: 4 * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: 16 * PAGE_SIZE, ..SwapConfig::default() },
            zram: Some(SwapConfig::try_zram(8 * PAGE_SIZE, 2.0).unwrap()),
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity,
        });
        arm(&mut mm, 61, FaultConfig { corruption_rate: 1.0, ..FaultConfig::default() });
        mm.map_range(Pid(1), 0, 4 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator); // all warm
                                                                  // One new page needs a whole frame; each zram store only nets half
                                                                  // a frame back (2:1 compression), so two warm pages are evicted —
                                                                  // both stored corrupt.
        mm.map_range(Pid(2), 0, PAGE_SIZE).unwrap();
        assert_eq!(mm.swap().front().unwrap().used_pages(), 2);
        assert!(mm.access(Pid(1), 0, 4 * PAGE_SIZE, AccessKind::Mutator).killed);
        mm.unmap_process(Pid(1));
        assert!(mm.swap().front_retired(), "one zram quarantine saturates a threshold of 1");
        assert_eq!(mm.stats().tiers_retired, 1, "retirement happens exactly once");
        assert!(!mm.degraded(), "the back tier still serves");
        assert_eq!(mm.swap().front().unwrap().quarantined_pages(), 2);
        // New warm victims bypass the retired front and land on flash.
        mm.unmap_process(Pid(2));
        mm.map_range(Pid(3), 0, 4 * PAGE_SIZE).unwrap();
        mm.access(Pid(3), 0, 4 * PAGE_SIZE, AccessKind::Mutator); // warm
        mm.map_range(Pid(3), 4 * PAGE_SIZE, PAGE_SIZE).unwrap(); // forces one eviction
        assert_eq!(mm.swap().front().unwrap().used_pages(), 0, "retired front takes no stores");
        assert_eq!(mm.swap().back().used_pages(), 1, "warm victims fall back to flash");
        mm.validate();
    }

    #[test]
    fn torn_writeback_quarantines_the_flash_slot() {
        let mut mm = MemoryManager::new(MmConfig {
            dram_bytes: 8 * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: 16 * PAGE_SIZE, ..SwapConfig::default() },
            zram: Some(SwapConfig::try_zram(8 * PAGE_SIZE, 4.0).unwrap()),
            low_watermark_frames: 0,
            high_watermark_frames: 0,
            dram_page_cost: SimDuration::from_nanos(450),
            file_read_bw: 300.0e6,
            swappiness: 50,
            integrity: IntegrityConfig::checked(),
        });
        arm(&mut mm, 67, FaultConfig { torn_writeback_rate: 1.0, ..FaultConfig::default() });
        // Grow the zram front to its writeback high watermark (7 of 8):
        // keep every page warm so each eviction lands in zram.
        mm.map_range(Pid(1), 0, 8 * PAGE_SIZE).unwrap();
        mm.access(Pid(1), 0, 8 * PAGE_SIZE, AccessKind::Mutator);
        let mut next = 8u64;
        while mm.swap().front().unwrap().used_pages() < 7 {
            assert!(next < 64, "front tier never reached its high watermark");
            mm.map_range(Pid(1), next * PAGE_SIZE, PAGE_SIZE).unwrap();
            mm.access(Pid(1), next * PAGE_SIZE, PAGE_SIZE, AccessKind::Mutator);
            next += 1;
        }
        let moved = mm.zram_writeback();
        // Verify-before-retire: the torn flash copy never retires the zram
        // original — the new slot is quarantined, the page stays put.
        assert_eq!(moved, 0);
        assert_eq!(mm.stats().corruptions_injected, 1);
        assert_eq!(mm.stats().corruptions_detected, 1);
        assert_eq!(mm.stats().slots_quarantined, 1);
        assert_eq!(mm.swap().back().quarantined_pages(), 1);
        assert_eq!(mm.swap().back().used_pages(), 0);
        assert_eq!(mm.swap().front().unwrap().used_pages(), 7);
        assert_eq!(mm.stats().zram_writeback_pages, 0);
        mm.validate();
    }
}
