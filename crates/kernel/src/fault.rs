//! Deterministic fault injection for the swap/reclaim stack.
//!
//! The real systems Fleet co-designs against are defined by their failure
//! behaviour: flash controllers stall for device-internal GC, NAND blocks
//! go bad, zram meets incompressible pages, and swap partitions fill at the
//! worst moment. This module models those hazards as a seeded, schedule-
//! driven [`FaultPlan`]: every potentially-failing swap operation draws one
//! `splitmix64` value from the plan's private stream and compares it against
//! thresholds precomputed from the configured rates. The stream is
//! completely independent of the simulation's `SimRng`, so
//!
//! * the same `(seed, FaultConfig)` pair always produces the same fault
//!   schedule, byte for byte, regardless of build flags or host, and
//! * [`FaultConfig::default`] (all rates zero) injects nothing and the
//!   quiet fast path never advances any state — runs without faults are
//!   bit-identical to builds that predate this module (the golden-trace
//!   gate relies on this).
//!
//! The taxonomy (DESIGN.md §9):
//!
//! | fault                      | knob                    | recovery                                    |
//! |----------------------------|-------------------------|---------------------------------------------|
//! | transient read I/O error   | `read_transient_rate`   | bounded retry with deterministic backoff    |
//! | permanent read I/O error   | `read_permanent_rate`   | file: discard-and-refault; anon: kill owner |
//! | flash latency spike        | `latency_spike_rate`    | absorb; reported as degraded latency        |
//! | write-back I/O error       | `write_error_rate`      | victim stays resident; reclaim escalates    |
//! | swap-slot exhaustion       | `slot_exhaustion_rate`  | eviction falls to file pages; LMK escalates |
//! | zram compression failure   | `compress_fail_rate`    | page stored raw (full frame consumed)       |
//! | silent slot corruption     | `corruption_rate`       | checksum mismatch at fault-in/scrub; file: discard-and-refault, anon: SIGBUS + quarantine (DESIGN.md §14) |
//! | torn zram→flash writeback  | `torn_writeback_rate`   | verify-before-retire: flash slot quarantined, page stays in zram |
//!
//! The last two are *silent* faults: the device reports success and returns
//! wrong bytes. They are only observable through the integrity layer's
//! checksums (DESIGN.md §14), so their draws happen at store/writeback time
//! and detection is a deterministic checksum comparison — never a second
//! random draw.

use fleet_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Bounded-retry budget for transient read errors: a faulting thread
/// re-issues the read at most this many times before escalating (file pages
/// fall back to a refault from the original file; anonymous pages are lost
/// and their owner is killed).
pub const FAULT_RETRY_MAX: u32 = 3;

/// Deterministic exponential backoff before retry `attempt` (1-based):
/// 500 µs, 1 ms, 2 ms, … capped at 32 ms. Mirrors the kernel's fixed
/// bio-retry pacing rather than randomized jitter so event streams stay
/// reproducible.
pub fn retry_backoff(attempt: u32) -> SimDuration {
    let shift = attempt.saturating_sub(1).min(6);
    SimDuration::from_micros(500u64 << shift)
}

/// Injection rates for every modelled hazard. All rates are per-operation
/// probabilities in `[0, 1]`; the default is all-zero (a quiet plan).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a swap read fails transiently (succeeds on retry).
    pub read_transient_rate: f64,
    /// Probability that a swap read fails permanently (media error; retry
    /// cannot help).
    pub read_permanent_rate: f64,
    /// Probability that a swap write-back fails (the victim page stays
    /// resident and reclaim must look elsewhere).
    pub write_error_rate: f64,
    /// Probability that a swap read hits a device-internal GC pause.
    pub latency_spike_rate: f64,
    /// Extra stall charged when a latency spike fires.
    pub latency_spike: SimDuration,
    /// Probability that a slot reservation is refused even though capacity
    /// remains (fragmentation/allocator stall window).
    pub slot_exhaustion_rate: f64,
    /// Zram only: probability that a page is incompressible and is stored
    /// raw, consuming a full DRAM frame instead of `1/ratio`.
    pub compress_fail_rate: f64,
    /// Probability that a stored slot is silently corrupted (the device
    /// reports success but returns wrong bytes). Only observable when the
    /// integrity layer's checksums are enabled.
    pub corruption_rate: f64,
    /// Probability that a zram→flash writeback is torn (the flash copy is
    /// wrong even though the write reported success). Caught by
    /// verify-before-retire when integrity is enabled.
    pub torn_writeback_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            read_transient_rate: 0.0,
            read_permanent_rate: 0.0,
            write_error_rate: 0.0,
            latency_spike_rate: 0.0,
            latency_spike: Self::default_spike(),
            slot_exhaustion_rate: 0.0,
            compress_fail_rate: 0.0,
            corruption_rate: 0.0,
            torn_writeback_rate: 0.0,
        }
    }
}

impl FaultConfig {
    fn default_spike() -> SimDuration {
        // §3.2-class flash: a device-internal GC pause is tens of ms.
        SimDuration::from_millis(30)
    }

    /// Every injection rate as a `(field name, value)` pair, in declaration
    /// order. This is the single enumeration [`Self::is_quiet`] and
    /// [`Self::validate`] iterate, so a new hazard knob cannot be silently
    /// skipped by either — adding a field here makes a mis-typed value fail
    /// validation loudly and makes a nonzero value arm the plan.
    pub fn rates(&self) -> [(&'static str, f64); 8] {
        [
            ("read_transient_rate", self.read_transient_rate),
            ("read_permanent_rate", self.read_permanent_rate),
            ("write_error_rate", self.write_error_rate),
            ("latency_spike_rate", self.latency_spike_rate),
            ("slot_exhaustion_rate", self.slot_exhaustion_rate),
            ("compress_fail_rate", self.compress_fail_rate),
            ("corruption_rate", self.corruption_rate),
            ("torn_writeback_rate", self.torn_writeback_rate),
        ]
    }

    /// True when every rate is zero — the plan will never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.rates().iter().all(|&(_, rate)| rate == 0.0)
    }

    /// Checks every rate is a probability.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first out-of-range rate.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in self.rates() {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("fault rate {name} = {rate} is not in [0, 1]"));
            }
        }
        Ok(())
    }

    /// A convenience preset: a flaky flash device where every *detected*
    /// hazard fires at a rate proportional to `intensity` (itself a
    /// probability). Used by the `resilience` experiment sweep. The silent
    /// hazards default to zero so armed resilience sweeps replay the exact
    /// schedules they did before the integrity layer existed; arm them with
    /// [`Self::silent_corruption`] or by setting the fields directly.
    pub fn flaky_flash(intensity: f64) -> Self {
        FaultConfig {
            read_transient_rate: intensity,
            read_permanent_rate: intensity / 50.0,
            write_error_rate: intensity / 2.0,
            latency_spike_rate: intensity,
            latency_spike: Self::default_spike(),
            slot_exhaustion_rate: intensity / 4.0,
            compress_fail_rate: intensity,
            corruption_rate: 0.0,
            torn_writeback_rate: 0.0,
        }
    }

    /// A convenience preset: a device that fails *silently* — stores
    /// corrupt at `intensity` and writebacks tear at half that — with every
    /// detected hazard quiet, so the chaos sweep attributes all damage to
    /// the integrity layer's detection ladder.
    pub fn silent_corruption(intensity: f64) -> Self {
        FaultConfig {
            corruption_rate: intensity,
            torn_writeback_rate: intensity / 2.0,
            ..FaultConfig::default()
        }
    }
}

/// What an injected read fault looks like to the memory manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The read failed but a retry may succeed.
    Transient,
    /// The read failed for good (media error).
    Permanent,
    /// The read succeeded after a device-internal stall of the given extra
    /// duration.
    Spike(SimDuration),
}

/// `splitmix64` — the same finaliser the experiment harness uses for seed
/// derivation, so fault schedules compose with harness seeds without
/// correlation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Converts a probability into a `u64` threshold for `draw < threshold`
/// comparisons (deterministic across platforms; no floating point on the
/// hot path).
fn threshold(rate: f64) -> u64 {
    let clamped = rate.clamp(0.0, 1.0);
    if clamped >= 1.0 {
        u64::MAX
    } else {
        (clamped * u64::MAX as f64) as u64
    }
}

/// A seeded, schedule-driven fault plan.
///
/// One plan is installed per [`SwapDevice`](crate::SwapDevice); every
/// fallible operation draws from it. Cloning a plan clones its position in
/// the stream, so cloned devices replay identical schedules.
///
/// # Examples
///
/// ```
/// use fleet_kernel::{FaultConfig, FaultPlan};
///
/// let quiet = FaultPlan::new(7, FaultConfig::default());
/// assert!(quiet.is_quiet());
///
/// let mut flaky = FaultPlan::new(7, FaultConfig { read_transient_rate: 1.0, ..FaultConfig::default() });
/// assert!(flaky.read_fault().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    state: u64,
    draws: u64,
    // Precomputed per-draw thresholds (cumulative for the read ladder).
    t_read_permanent: u64,
    t_read_transient: u64,
    t_read_spike: u64,
    t_write: u64,
    t_exhaust: u64,
    t_compress: u64,
    t_corrupt: u64,
    t_torn: u64,
}

impl FaultPlan {
    /// Builds a plan from a seed and a configuration. The seed is mixed
    /// through `splitmix64` once so consecutive seeds give uncorrelated
    /// streams.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        let mut state = seed ^ 0xFA17_1A7E_D00D_F00Du64;
        let _ = splitmix64(&mut state);
        let p = threshold(config.read_permanent_rate);
        let t = p.saturating_add(threshold(config.read_transient_rate));
        let s = t.saturating_add(threshold(config.latency_spike_rate));
        FaultPlan {
            config,
            state,
            draws: 0,
            t_read_permanent: p,
            t_read_transient: t,
            t_read_spike: s,
            t_write: threshold(config.write_error_rate),
            t_exhaust: threshold(config.slot_exhaustion_rate),
            t_compress: threshold(config.compress_fail_rate),
            t_corrupt: threshold(config.corruption_rate),
            t_torn: threshold(config.torn_writeback_rate),
        }
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Derives an independent plan with the same rates for another device
    /// in a tier stack. The child stream is seeded from this plan's current
    /// state xor `salt`, so two tiers never replay correlated schedules; a
    /// quiet parent forks a quiet child (no draws either way).
    pub fn fork(&self, salt: u64) -> FaultPlan {
        FaultPlan::new(self.state ^ salt, self.config)
    }

    /// True when the plan can never inject anything. The quiet fast path in
    /// every decision method returns before touching the stream, so a quiet
    /// plan is behaviourally identical to no plan at all.
    pub fn is_quiet(&self) -> bool {
        self.config.is_quiet()
    }

    /// Total decisions drawn so far (diagnostics).
    pub fn draws(&self) -> u64 {
        self.draws
    }

    fn draw(&mut self) -> u64 {
        self.draws += 1;
        splitmix64(&mut self.state)
    }

    /// Decides the fate of one swap read operation. Priorities: permanent
    /// error, then transient error, then latency spike, then clean.
    pub fn read_fault(&mut self) -> Option<ReadFault> {
        if self.is_quiet() {
            return None;
        }
        let r = self.draw();
        if r < self.t_read_permanent {
            Some(ReadFault::Permanent)
        } else if r < self.t_read_transient {
            Some(ReadFault::Transient)
        } else if r < self.t_read_spike {
            Some(ReadFault::Spike(self.config.latency_spike))
        } else {
            None
        }
    }

    /// Decides whether one swap write-back fails.
    pub fn write_fault(&mut self) -> bool {
        if self.is_quiet() {
            return false;
        }
        let r = self.draw();
        r < self.t_write
    }

    /// Decides whether one slot reservation is refused despite free
    /// capacity (injected exhaustion window).
    pub fn reserve_fault(&mut self) -> bool {
        if self.is_quiet() {
            return false;
        }
        let r = self.draw();
        r < self.t_exhaust
    }

    /// Decides whether one stored page is incompressible (zram only).
    pub fn compress_fault(&mut self) -> bool {
        if self.is_quiet() {
            return false;
        }
        let r = self.draw();
        r < self.t_compress
    }

    /// Decides whether one stored slot is silently corrupted. Gated on its
    /// *own* rate (not the whole-plan quiet check) so armed plans with a
    /// zero corruption rate — every pre-integrity preset — consume exactly
    /// the draws they always did.
    pub fn store_corrupt_fault(&mut self) -> bool {
        if self.config.corruption_rate == 0.0 {
            return false;
        }
        let r = self.draw();
        r < self.t_corrupt
    }

    /// Decides whether one zram→flash writeback is torn. Gated on its own
    /// rate for the same schedule-stability reason as
    /// [`Self::store_corrupt_fault`].
    pub fn torn_writeback_fault(&mut self) -> bool {
        if self.config.torn_writeback_rate == 0.0 {
            return false;
        }
        let r = self.draw();
        r < self.t_torn
    }
}

impl Default for FaultPlan {
    /// A quiet plan: all rates zero, injects nothing.
    fn default() -> Self {
        FaultPlan::new(0, FaultConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_quiet_and_injects_nothing() {
        let mut plan = FaultPlan::default();
        for _ in 0..1000 {
            assert_eq!(plan.read_fault(), None);
            assert!(!plan.write_fault());
            assert!(!plan.reserve_fault());
            assert!(!plan.compress_fault());
            assert!(!plan.store_corrupt_fault());
            assert!(!plan.torn_writeback_fault());
        }
        // The quiet fast path never advances the stream.
        assert_eq!(plan.draws(), 0);
    }

    #[test]
    fn rates_enumerates_every_field() {
        // `rates()` is the one list validate/is_quiet iterate; it must name
        // every probability knob the struct carries (all fields except the
        // spike duration).
        let config = FaultConfig::default();
        let names: Vec<&str> = config.rates().iter().map(|&(n, _)| n).collect();
        assert_eq!(
            names,
            [
                "read_transient_rate",
                "read_permanent_rate",
                "write_error_rate",
                "latency_spike_rate",
                "slot_exhaustion_rate",
                "compress_fail_rate",
                "corruption_rate",
                "torn_writeback_rate",
            ]
        );
        // A nonzero value in *any* listed field arms the plan and is range
        // checked — the new silent-fault knobs cannot be silently ignored.
        let armed = FaultConfig { corruption_rate: 0.1, ..FaultConfig::default() };
        assert!(!armed.is_quiet());
        let bad = FaultConfig { corruption_rate: 7.0, ..FaultConfig::default() };
        assert!(bad.validate().unwrap_err().contains("corruption_rate"));
        let torn = FaultConfig { torn_writeback_rate: f64::NAN, ..FaultConfig::default() };
        assert!(torn.validate().unwrap_err().contains("torn_writeback_rate"));
    }

    #[test]
    fn flaky_flash_leaves_silent_hazards_quiet() {
        // The zero-default contract: pre-integrity armed sweeps draw the
        // exact schedules they always did.
        let config = FaultConfig::flaky_flash(0.3);
        assert_eq!(config.corruption_rate, 0.0);
        assert_eq!(config.torn_writeback_rate, 0.0);
        let mut plan = FaultPlan::new(5, config);
        let before = plan.draws();
        for _ in 0..256 {
            assert!(!plan.store_corrupt_fault());
            assert!(!plan.torn_writeback_fault());
        }
        assert_eq!(plan.draws(), before, "zero-rate silent hazards must not draw");
    }

    #[test]
    fn silent_corruption_preset_arms_only_silent_hazards() {
        let config = FaultConfig::silent_corruption(0.4);
        assert!(!config.is_quiet());
        assert_eq!(config.read_transient_rate, 0.0);
        assert_eq!(config.write_error_rate, 0.0);
        assert_eq!(config.corruption_rate, 0.4);
        assert_eq!(config.torn_writeback_rate, 0.2);
        assert!(config.validate().is_ok());
        let mut plan = FaultPlan::new(9, config);
        let n = 20_000;
        let hits = (0..n).filter(|_| plan.store_corrupt_fault()).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.4).abs() < 0.02, "observed corruption rate {rate}");
        // Detected hazards stay quiet — but note the plan is armed, so the
        // whole-plan fast path does not short-circuit reads.
        let mut certain =
            FaultPlan::new(9, FaultConfig { corruption_rate: 1.0, ..FaultConfig::default() });
        for _ in 0..64 {
            assert!(certain.store_corrupt_fault());
        }
    }

    #[test]
    fn silent_fault_schedules_are_seed_deterministic() {
        let config =
            FaultConfig { corruption_rate: 0.3, torn_writeback_rate: 0.3, ..Default::default() };
        let mut a = FaultPlan::new(77, config);
        let mut b = FaultPlan::new(77, config);
        for _ in 0..4096 {
            assert_eq!(a.store_corrupt_fault(), b.store_corrupt_fault());
            assert_eq!(a.torn_writeback_fault(), b.torn_writeback_fault());
        }
        assert_eq!(a.draws(), b.draws());
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = FaultConfig::flaky_flash(0.3);
        let mut a = FaultPlan::new(99, config);
        let mut b = FaultPlan::new(99, config);
        for _ in 0..4096 {
            assert_eq!(a.read_fault(), b.read_fault());
            assert_eq!(a.write_fault(), b.write_fault());
            assert_eq!(a.reserve_fault(), b.reserve_fault());
            assert_eq!(a.compress_fault(), b.compress_fault());
        }
        assert_eq!(a.draws(), b.draws());
    }

    #[test]
    fn different_seeds_diverge() {
        let config = FaultConfig::flaky_flash(0.5);
        let mut a = FaultPlan::new(1, config);
        let mut b = FaultPlan::new(2, config);
        let mut same = 0;
        for _ in 0..256 {
            if a.read_fault() == b.read_fault() {
                same += 1;
            }
        }
        assert!(same < 256, "independent seeds must not replay the same schedule");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let config = FaultConfig { read_transient_rate: 0.25, ..FaultConfig::default() };
        let mut plan = FaultPlan::new(7, config);
        let n = 20_000;
        let hits = (0..n).filter(|_| plan.read_fault() == Some(ReadFault::Transient)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed transient rate {rate}");
    }

    #[test]
    fn certain_rates_always_fire() {
        let mut plan =
            FaultPlan::new(3, FaultConfig { write_error_rate: 1.0, ..FaultConfig::default() });
        for _ in 0..64 {
            assert!(plan.write_fault());
        }
    }

    #[test]
    fn read_ladder_orders_permanent_over_transient() {
        // With both rates at 1.0 the ladder always reports the permanent
        // error (it is the one the caller cannot retry away).
        let config = FaultConfig {
            read_transient_rate: 1.0,
            read_permanent_rate: 1.0,
            ..FaultConfig::default()
        };
        let mut plan = FaultPlan::new(11, config);
        for _ in 0..16 {
            assert_eq!(plan.read_fault(), Some(ReadFault::Permanent));
        }
    }

    #[test]
    fn config_validation_rejects_bad_rates() {
        let mut config = FaultConfig::default();
        assert!(config.validate().is_ok());
        config.read_transient_rate = 1.5;
        assert!(config.validate().is_err());
        config.read_transient_rate = f64::NAN;
        assert!(config.validate().is_err());
        assert!(FaultConfig::flaky_flash(0.2).validate().is_ok());
    }

    #[test]
    fn forked_plans_are_uncorrelated_but_deterministic() {
        let config = FaultConfig::flaky_flash(0.5);
        let parent = FaultPlan::new(42, config);
        let mut a = parent.fork(1);
        let mut b = parent.fork(1);
        let mut c = parent.fork(2);
        let mut same = 0;
        for _ in 0..256 {
            let fa = a.read_fault();
            assert_eq!(fa, b.read_fault(), "same salt must replay the same schedule");
            if fa == c.read_fault() {
                same += 1;
            }
        }
        assert!(same < 256, "different salts must diverge");
        // A quiet parent forks a quiet child.
        let quiet = FaultPlan::default().fork(7);
        assert!(quiet.is_quiet());
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        assert_eq!(retry_backoff(1), SimDuration::from_micros(500));
        assert_eq!(retry_backoff(2), SimDuration::from_millis(1));
        assert_eq!(retry_backoff(3), SimDuration::from_millis(2));
        assert_eq!(retry_backoff(100), SimDuration::from_millis(32));
    }
}
