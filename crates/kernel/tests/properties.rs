//! Property tests on the kernel model's invariants.

use fleet_kernel::{
    AccessKind, Advice, MemoryManager, MmConfig, PageKind, Pid, SwapConfig, SwapMedium, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn small_mm(frames: u64, swap_pages: u64, medium: SwapMedium) -> MemoryManager {
    let swap = match medium {
        SwapMedium::Flash => {
            SwapConfig { capacity_bytes: swap_pages * PAGE_SIZE, ..SwapConfig::default() }
        }
        SwapMedium::Zram { compression_ratio } => {
            SwapConfig::try_zram(swap_pages * PAGE_SIZE, compression_ratio)
                .expect("valid zram config")
        }
    };
    MemoryManager::new(MmConfig {
        dram_bytes: frames * PAGE_SIZE,
        swap,
        low_watermark_frames: 2,
        high_watermark_frames: 4,
        ..MmConfig::default()
    })
}

/// A hybrid tier stack: a small zram front tier ahead of a flash back tier.
fn hybrid_mm(frames: u64, zram_pages: u64, flash_pages: u64) -> MemoryManager {
    MemoryManager::new(MmConfig {
        dram_bytes: frames * PAGE_SIZE,
        swap: SwapConfig { capacity_bytes: flash_pages * PAGE_SIZE, ..SwapConfig::default() },
        zram: Some(SwapConfig::try_zram(zram_pages * PAGE_SIZE, 2.5).expect("valid front tier")),
        low_watermark_frames: 2,
        high_watermark_frames: 4,
        ..MmConfig::default()
    })
}

#[derive(Debug, Clone, Copy)]
enum MmOp {
    Map { pid: u8, page: u16, file: bool },
    Unmap { pid: u8, page: u16 },
    Access { pid: u8, page: u16, gc: bool },
    Cold { pid: u8, page: u16 },
    Hot { pid: u8, page: u16 },
    Pin { pid: u8, page: u16 },
    Unpin { pid: u8, page: u16 },
    Prefetch { pid: u8, page: u16 },
    Kswapd,
    Writeback,
    KillProcess { pid: u8 },
}

fn op_strategy() -> impl Strategy<Value = MmOp> {
    prop_oneof![
        (0u8..4, 0u16..96, any::<bool>()).prop_map(|(pid, page, file)| MmOp::Map {
            pid,
            page,
            file
        }),
        (0u8..4, 0u16..96).prop_map(|(pid, page)| MmOp::Unmap { pid, page }),
        (0u8..4, 0u16..96, any::<bool>()).prop_map(|(pid, page, gc)| MmOp::Access {
            pid,
            page,
            gc
        }),
        (0u8..4, 0u16..96).prop_map(|(pid, page)| MmOp::Cold { pid, page }),
        (0u8..4, 0u16..96).prop_map(|(pid, page)| MmOp::Hot { pid, page }),
        (0u8..4, 0u16..96).prop_map(|(pid, page)| MmOp::Pin { pid, page }),
        (0u8..4, 0u16..96).prop_map(|(pid, page)| MmOp::Unpin { pid, page }),
        (0u8..4, 0u16..96).prop_map(|(pid, page)| MmOp::Prefetch { pid, page }),
        Just(MmOp::Kswapd),
        Just(MmOp::Writeback),
        (0u8..4).prop_map(|pid| MmOp::KillProcess { pid }),
    ]
}

fn run_script(mut mm: MemoryManager, ops: Vec<MmOp>) -> Result<(), TestCaseError> {
    // With the `audit` feature every kernel transition is replayed through
    // the event-sourced shadow auditor as well, so the same random scripts
    // exercise page conservation and residency membership from the outside.
    #[cfg(feature = "audit")]
    let mut pipe = fleet_audit::AuditPipeline::new();
    #[cfg(feature = "audit")]
    let dev = pipe.attach();
    #[cfg(feature = "audit")]
    mm.audit_log_mut().enable(0);

    let mut mapped: HashMap<(u8, u16), ()> = HashMap::new();
    for op in ops {
        match op {
            MmOp::Map { pid, page, file } => {
                let kind = if file { PageKind::File } else { PageKind::Anon };
                if mm
                    .map_range_kind(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE, kind)
                    .is_ok()
                {
                    mapped.insert((pid, page), ());
                }
            }
            MmOp::Unmap { pid, page } => {
                mm.unmap_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
                mapped.remove(&(pid, page));
            }
            MmOp::Access { pid, page, gc } => {
                let kind = if gc { AccessKind::Gc } else { AccessKind::Mutator };
                let _ = mm.access(Pid(pid as u32), page as u64 * PAGE_SIZE, 64, kind);
            }
            MmOp::Cold { pid, page } => {
                mm.madvise(
                    Pid(pid as u32),
                    page as u64 * PAGE_SIZE,
                    PAGE_SIZE,
                    Advice::ColdRuntime,
                );
            }
            MmOp::Hot { pid, page } => {
                mm.madvise(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE, Advice::HotRuntime);
            }
            MmOp::Pin { pid, page } => {
                mm.pin_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            MmOp::Unpin { pid, page } => {
                mm.unpin_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            MmOp::Prefetch { pid, page } => {
                let _ = mm.prefetch(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            MmOp::Kswapd => {
                mm.kswapd();
            }
            MmOp::Writeback => {
                mm.zram_writeback();
            }
            MmOp::KillProcess { pid } => {
                mm.unmap_process(Pid(pid as u32));
                mapped.retain(|&(p, _), _| p != pid);
            }
        }
        // Invariants after every operation: the kernel's own structural
        // self-check (residency counts, swap slots, exact LRU membership)…
        mm.validate();
        // …the event-derived shadow state…
        #[cfg(feature = "audit")]
        {
            for ev in mm.audit_log_mut().drain() {
                pipe.feed(dev, ev);
            }
            pipe.feed(
                dev,
                fleet_audit::AuditEvent::Counters {
                    used_frames: mm.used_frames(),
                    swap_used: mm.swap().used_pages(),
                },
            );
        }
        // …and the black-box accounting identities.
        let mut resident = 0;
        let mut swapped = 0;
        for pid in 0u8..4 {
            let mem = mm.process_mem(Pid(pid as u32));
            resident += mem.resident;
            swapped += mem.swapped;
        }
        prop_assert_eq!(resident + swapped, mapped.len() as u64, "mapped pages must be accounted");
        prop_assert!(mm.used_frames() <= mm.frames_capacity());
        prop_assert!(mm.swap().used_pages() <= mm.swap().capacity_pages());
        prop_assert!(resident <= mm.used_frames(), "process pages cannot exceed used frames");
        prop_assert!(mm.free_frames() <= mm.frames_capacity());
    }
    Ok(())
}

/// Replays a script for its event stream only (no shadow bookkeeping);
/// returns the canonical `Display` rendering of every audit event emitted.
#[cfg(feature = "audit")]
fn event_stream(mut mm: MemoryManager, ops: &[MmOp]) -> Vec<String> {
    mm.audit_log_mut().enable(0);
    for &op in ops {
        match op {
            MmOp::Map { pid, page, file } => {
                let kind = if file { PageKind::File } else { PageKind::Anon };
                let _ =
                    mm.map_range_kind(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE, kind);
            }
            MmOp::Unmap { pid, page } => {
                mm.unmap_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            MmOp::Access { pid, page, gc } => {
                let kind = if gc { AccessKind::Gc } else { AccessKind::Mutator };
                let _ = mm.access(Pid(pid as u32), page as u64 * PAGE_SIZE, 64, kind);
            }
            MmOp::Cold { pid, page } => {
                mm.madvise(
                    Pid(pid as u32),
                    page as u64 * PAGE_SIZE,
                    PAGE_SIZE,
                    Advice::ColdRuntime,
                );
            }
            MmOp::Hot { pid, page } => {
                mm.madvise(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE, Advice::HotRuntime);
            }
            MmOp::Pin { pid, page } => {
                mm.pin_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            MmOp::Unpin { pid, page } => {
                mm.unpin_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            MmOp::Prefetch { pid, page } => {
                let _ = mm.prefetch(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            MmOp::Kswapd => {
                mm.kswapd();
            }
            MmOp::Writeback => {
                mm.zram_writeback();
            }
            MmOp::KillProcess { pid } => {
                mm.unmap_process(Pid(pid as u32));
            }
        }
    }
    mm.audit_log_mut().drain().into_iter().map(|e| e.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn flash_scripts_conserve_pages(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        run_script(small_mm(48, 64, SwapMedium::Flash), ops)?;
    }

    /// Tentpole invariant: random scripts over random hybrid tier
    /// configurations uphold tier slot conservation (every swapped page in
    /// exactly one tier, the writeback FIFO exactly tracking the front
    /// tier) — `MemoryManager::validate` checks it after every op inside
    /// `run_script`.
    #[test]
    fn hybrid_scripts_conserve_tier_slots(
        ops in proptest::collection::vec(op_strategy(), 1..150),
        zram_pages in 4u64..24,
        flash_pages in 16u64..64,
    ) {
        run_script(hybrid_mm(48, zram_pages, flash_pages), ops)?;
    }

    /// Replaying the same script on the same hybrid tier config yields a
    /// byte-identical audit event stream: tier placement and writeback are
    /// fully deterministic.
    #[cfg(feature = "audit")]
    #[test]
    fn hybrid_event_streams_are_byte_identical(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        zram_pages in 4u64..24,
        flash_pages in 16u64..64,
    ) {
        let a = event_stream(hybrid_mm(48, zram_pages, flash_pages), &ops);
        let b = event_stream(hybrid_mm(48, zram_pages, flash_pages), &ops);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn zram_scripts_conserve_pages(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        run_script(small_mm(48, 64, SwapMedium::Zram { compression_ratio: 2.5 }), ops)?;
    }

    #[test]
    fn no_swap_scripts_conserve_pages(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        run_script(small_mm(48, 0, SwapMedium::Flash), ops)?;
    }

    #[test]
    fn pinned_pages_survive_reclaim(pages in 1u64..24, pressure in 24u64..40) {
        let mut mm = small_mm(32, 64, SwapMedium::Flash);
        // Pin a few pages of pid 1.
        mm.map_range(Pid(1), 0, pages * PAGE_SIZE).unwrap();
        mm.pin_range(Pid(1), 0, pages * PAGE_SIZE);
        // Create pressure from pid 2.
        let _ = mm.map_range(Pid(2), 0, pressure * PAGE_SIZE);
        mm.kswapd();
        // Every pinned page is still resident.
        for page in 0..pages {
            prop_assert!(mm.is_resident(Pid(1), page * PAGE_SIZE), "pinned page {page} evicted");
        }
    }

    #[test]
    fn faults_always_restore_residency(pages in 2u64..24) {
        let mut mm = small_mm(64, 64, SwapMedium::Flash);
        mm.map_range(Pid(1), 0, pages * PAGE_SIZE).unwrap();
        mm.madvise(Pid(1), 0, pages * PAGE_SIZE, Advice::ColdRuntime);
        prop_assert_eq!(mm.process_mem(Pid(1)).swapped, pages);
        let out = mm.access(Pid(1), 0, pages * PAGE_SIZE, AccessKind::Launch);
        prop_assert!(!out.oom);
        prop_assert_eq!(out.faulted_pages, pages);
        prop_assert_eq!(mm.process_mem(Pid(1)).swapped, 0);
        prop_assert!(out.latency > fleet_sim::SimDuration::ZERO);
    }

    /// Full swap round-trips: cold → fault-in cycles always restore exact
    /// residency, release every swap slot they took, and keep the LRU
    /// membership structurally valid at every step.
    #[test]
    fn swap_round_trips_are_lossless(
        pages in 1u64..24,
        cycles in 1usize..4,
        use_prefetch in any::<bool>(),
    ) {
        let mut mm = small_mm(32, 64, SwapMedium::Flash);
        mm.map_range(Pid(1), 0, pages * PAGE_SIZE).unwrap();
        let swap_before = mm.swap().used_pages();
        for _ in 0..cycles {
            mm.madvise(Pid(1), 0, pages * PAGE_SIZE, Advice::ColdRuntime);
            mm.validate();
            prop_assert_eq!(mm.process_mem(Pid(1)).swapped, pages);
            if use_prefetch {
                let (got, _) = mm.prefetch(Pid(1), 0, pages * PAGE_SIZE).unwrap();
                prop_assert_eq!(got, pages);
            } else {
                let out = mm.access(Pid(1), 0, pages * PAGE_SIZE, AccessKind::Mutator);
                prop_assert!(!out.oom);
            }
            mm.validate();
            // Residency fully restored, no swap slots leaked.
            prop_assert_eq!(mm.process_mem(Pid(1)).swapped, 0);
            prop_assert_eq!(mm.process_mem(Pid(1)).resident, pages);
            prop_assert_eq!(mm.swap().used_pages(), swap_before);
            for page in 0..pages {
                prop_assert!(mm.is_resident(Pid(1), page * PAGE_SIZE));
            }
        }
    }
}
