//! Property tests for the fault-injection module (DESIGN.md §9).
//!
//! Random `FaultConfig`s drive random kernel scripts; after every operation
//! the kernel's structural self-check runs and, under `--features audit`,
//! every emitted event is replayed through the event-sourced shadow auditor
//! — so any fault plan that breaks page conservation, residency membership,
//! or the fifth (fault/degradation) invariant family fails here. A second
//! property pins determinism: the same `(seed, config, script)` triple must
//! produce byte-identical event streams.

use fleet_kernel::{
    AccessKind, Advice, FaultConfig, FaultPlan, MemoryManager, MmConfig, PageKind, Pid, SwapConfig,
    SwapMedium, PAGE_SIZE,
};
use proptest::prelude::*;

fn fault_mm(frames: u64, swap_pages: u64, medium: SwapMedium, plan: FaultPlan) -> MemoryManager {
    let swap = match medium {
        SwapMedium::Flash => {
            SwapConfig { capacity_bytes: swap_pages * PAGE_SIZE, ..SwapConfig::default() }
        }
        SwapMedium::Zram { compression_ratio } => {
            SwapConfig::try_zram(swap_pages * PAGE_SIZE, compression_ratio)
                .expect("valid zram config")
        }
    };
    let mut mm = MemoryManager::new(MmConfig {
        dram_bytes: frames * PAGE_SIZE,
        swap,
        low_watermark_frames: 2,
        high_watermark_frames: 4,
        ..MmConfig::default()
    });
    mm.install_fault_plan(plan);
    mm
}

/// Any valid rate mix, biased toward the interesting low-probability corner
/// but also covering always-fails extremes.
fn fault_config_strategy() -> impl Strategy<Value = FaultConfig> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(
        |(t, p, w, s, x, c)| FaultConfig {
            read_transient_rate: t,
            read_permanent_rate: p,
            write_error_rate: w,
            latency_spike_rate: s,
            slot_exhaustion_rate: x,
            compress_fail_rate: c,
            ..FaultConfig::default()
        },
    )
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Map { pid: u8, page: u16, file: bool },
    Unmap { pid: u8, page: u16 },
    Access { pid: u8, page: u16 },
    Cold { pid: u8, page: u16 },
    Prefetch { pid: u8, page: u16 },
    Kswapd,
    KillProcess { pid: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u16..64, any::<bool>()).prop_map(|(pid, page, file)| Op::Map { pid, page, file }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Unmap { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Access { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Access { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Cold { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Cold { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Prefetch { pid, page }),
        Just(Op::Kswapd),
        (0u8..3).prop_map(|pid| Op::KillProcess { pid }),
    ]
}

/// Runs `ops` against a faulty kernel. Processes whose access reports
/// `killed` are torn down like the device would (full unmap), so no
/// partially-mapped corpse survives. Returns the canonical (Display)
/// serialisation of every event the run emitted; without the audit feature
/// the stream is empty but the invariant checks still run.
fn run_faulty_script(
    seed: u64,
    config: FaultConfig,
    medium: SwapMedium,
    ops: &[Op],
) -> Result<Vec<String>, TestCaseError> {
    let mut mm = fault_mm(24, 32, medium, FaultPlan::new(seed, config));
    #[cfg(feature = "audit")]
    let mut pipe = fleet_audit::AuditPipeline::new();
    #[cfg(feature = "audit")]
    let dev = pipe.attach();
    #[cfg(feature = "audit")]
    mm.audit_log_mut().enable(0);

    #[allow(unused_mut)] // mutated only under the audit feature
    let mut stream: Vec<String> = Vec::new();
    let mut mapped: std::collections::HashMap<(u8, u16), ()> = std::collections::HashMap::new();
    for &op in ops {
        match op {
            Op::Map { pid, page, file } => {
                let kind = if file { PageKind::File } else { PageKind::Anon };
                if mm
                    .map_range_kind(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE, kind)
                    .is_ok()
                {
                    mapped.insert((pid, page), ());
                }
            }
            Op::Unmap { pid, page } => {
                mm.unmap_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
                mapped.remove(&(pid, page));
            }
            Op::Access { pid, page } => {
                let out =
                    mm.access(Pid(pid as u32), page as u64 * PAGE_SIZE, 64, AccessKind::Mutator);
                prop_assert!(out.retries <= 64 * 3, "retry budget exceeded: {}", out.retries);
                if out.killed {
                    // SIGBUS analog: the device kills the owner, releasing
                    // the poisoned slot. Mirror that here.
                    mm.unmap_process(Pid(pid as u32));
                    mapped.retain(|&(p, _), _| p != pid);
                }
            }
            Op::Cold { pid, page } => {
                mm.madvise(
                    Pid(pid as u32),
                    page as u64 * PAGE_SIZE,
                    PAGE_SIZE,
                    Advice::ColdRuntime,
                );
            }
            Op::Prefetch { pid, page } => {
                let _ = mm.prefetch(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            Op::Kswapd => {
                mm.kswapd();
            }
            Op::KillProcess { pid } => {
                mm.unmap_process(Pid(pid as u32));
                mapped.retain(|&(p, _), _| p != pid);
            }
        }
        // Structural self-check after every op, faults armed or not.
        mm.validate();
        // Replay events through the shadow auditor (all five invariant
        // families, including SwapIoError/FaultRetry residency rules).
        #[cfg(feature = "audit")]
        for ev in mm.audit_log_mut().drain() {
            stream.push(ev.to_string());
            pipe.feed(dev, ev);
        }
        // Black-box accounting: injected faults must never lose or invent
        // pages — a lost anon page stays (swapped) until its owner dies.
        let mut resident = 0;
        let mut swapped = 0;
        for pid in 0u8..3 {
            let mem = mm.process_mem(Pid(pid as u32));
            resident += mem.resident;
            swapped += mem.swapped;
        }
        prop_assert_eq!(resident + swapped, mapped.len() as u64, "fault plan broke conservation");
        prop_assert!(mm.used_frames() <= mm.frames_capacity());
        prop_assert!(mm.swap().used_pages() <= mm.swap().capacity_pages());
    }
    Ok(stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any fault plan, any script: every auditor invariant holds and pages
    /// are conserved on flash-backed swap.
    #[test]
    fn faulty_flash_scripts_uphold_invariants(
        seed in any::<u64>(),
        config in fault_config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        run_faulty_script(seed, config, SwapMedium::Flash, &ops)?;
    }

    /// Same, on zram (compression-failure faults become reachable).
    #[test]
    fn faulty_zram_scripts_uphold_invariants(
        seed in any::<u64>(),
        config in fault_config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        run_faulty_script(seed, config, SwapMedium::Zram { compression_ratio: 2.5 }, &ops)?;
    }

    /// Determinism: the same `(seed, config, script)` produces the same
    /// event stream byte for byte; a different fault seed (on a non-quiet
    /// plan, given enough swap traffic) is allowed to differ but must still
    /// pass all invariants — which the runs above already guarantee.
    #[test]
    fn same_seed_means_byte_identical_event_streams(
        seed in any::<u64>(),
        config in fault_config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let a = run_faulty_script(seed, config, SwapMedium::Flash, &ops)?;
        let b = run_faulty_script(seed, config, SwapMedium::Flash, &ops)?;
        prop_assert_eq!(a, b, "fault schedule not deterministic");
    }

    /// A quiet plan must behave bit-identically to no plan at all — the
    /// property behind the golden-trace gate.
    #[test]
    fn quiet_plan_is_invisible(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let quiet = run_faulty_script(seed, FaultConfig::default(), SwapMedium::Flash, &ops)?;
        // Re-run without installing any plan.
        let mut mm = MemoryManager::new(MmConfig {
            dram_bytes: 24 * PAGE_SIZE,
            swap: SwapConfig { capacity_bytes: 32 * PAGE_SIZE, ..SwapConfig::default() },
            low_watermark_frames: 2,
            high_watermark_frames: 4,
            ..MmConfig::default()
        });
        #[cfg(feature = "audit")]
        mm.audit_log_mut().enable(0);
        #[allow(unused_mut)] // mutated only under the audit feature
        let mut bare: Vec<String> = Vec::new();
        for &op in &ops {
            match op {
                Op::Map { pid, page, file } => {
                    let kind = if file { PageKind::File } else { PageKind::Anon };
                    let _ = mm.map_range_kind(
                        Pid(pid as u32),
                        page as u64 * PAGE_SIZE,
                        PAGE_SIZE,
                        kind,
                    );
                }
                Op::Unmap { pid, page } => {
                    mm.unmap_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
                }
                Op::Access { pid, page } => {
                    let out =
                        mm.access(Pid(pid as u32), page as u64 * PAGE_SIZE, 64, AccessKind::Mutator);
                    prop_assert!(!out.killed, "quiet plan injected a kill");
                }
                Op::Cold { pid, page } => {
                    mm.madvise(
                        Pid(pid as u32),
                        page as u64 * PAGE_SIZE,
                        PAGE_SIZE,
                        Advice::ColdRuntime,
                    );
                }
                Op::Prefetch { pid, page } => {
                    let _ = mm.prefetch(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
                }
                Op::Kswapd => {
                    mm.kswapd();
                }
                Op::KillProcess { pid } => {
                    mm.unmap_process(Pid(pid as u32));
                }
            }
            #[cfg(feature = "audit")]
            for ev in mm.audit_log_mut().drain() {
                bare.push(ev.to_string());
            }
        }
        prop_assert_eq!(quiet, bare, "quiet plan diverged from a plan-free kernel");
    }
}

/// fleet-audit's `FaultRetry` invariant pins attempts to `[1, 3]`; the
/// kernel's retry budget must stay in lockstep with that bound.
#[test]
fn retry_budget_matches_auditor_bound() {
    assert_eq!(fleet_kernel::FAULT_RETRY_MAX, 3);
}
