//! Property tests for the swap data-integrity layer (DESIGN.md §14).
//!
//! Random corruption plans (silent store corruption + torn writeback) drive
//! random kernel scripts over a hybrid zram/flash stack with the checksum
//! layer armed; after every operation the kernel's structural self-check
//! runs and, under `--features audit`, every emitted event replays through
//! the shadow auditor — so a corruption that is served, detected twice, or
//! quarantined without detection fails here. Accounting properties pin the
//! layer end to end: every injected corruption is detected exactly once by
//! teardown, quiet plans are provably invisible (the golden-gate property),
//! and the same seed yields byte-identical event streams.

use fleet_kernel::{
    AccessKind, Advice, FaultConfig, FaultPlan, IntegrityConfig, MemoryManager, MmConfig, PageKind,
    Pid, SwapConfig, PAGE_SIZE,
};
use proptest::prelude::*;

/// A small hybrid stack: zram front over flash back, tight quarantine
/// threshold so scripts can actually climb the retirement ladder.
fn integrity_mm(plan: Option<FaultPlan>, integrity: IntegrityConfig) -> MemoryManager {
    let mut mm = MemoryManager::new(MmConfig {
        dram_bytes: 24 * PAGE_SIZE,
        swap: SwapConfig { capacity_bytes: 32 * PAGE_SIZE, ..SwapConfig::default() },
        zram: Some(SwapConfig::try_zram(16 * PAGE_SIZE, 2.5).expect("valid zram config")),
        low_watermark_frames: 2,
        high_watermark_frames: 4,
        integrity,
        ..MmConfig::default()
    });
    if let Some(plan) = plan {
        mm.install_fault_plan(plan);
    }
    mm
}

fn checked_integrity() -> IntegrityConfig {
    IntegrityConfig {
        quarantine_threshold: 2,
        scrub_batch_pages: 8,
        scrub_interval_ticks: 1,
        ..IntegrityConfig::checked()
    }
}

/// Corruption-only fault mixes: silent store corruption and torn writeback,
/// every other fault kind quiet so the integrity ladder is isolated.
fn corruption_config_strategy() -> impl Strategy<Value = FaultConfig> {
    (0.0f64..1.0, 0.0f64..1.0).prop_map(|(c, t)| FaultConfig {
        corruption_rate: c,
        torn_writeback_rate: t,
        ..FaultConfig::default()
    })
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Map { pid: u8, page: u16, file: bool },
    Unmap { pid: u8, page: u16 },
    Access { pid: u8, page: u16 },
    Cold { pid: u8, page: u16 },
    Kswapd,
    Writeback,
    Scrub,
    KillProcess { pid: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u16..64, any::<bool>()).prop_map(|(pid, page, file)| Op::Map { pid, page, file }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Unmap { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Access { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Access { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Cold { pid, page }),
        (0u8..3, 0u16..64).prop_map(|(pid, page)| Op::Cold { pid, page }),
        Just(Op::Kswapd),
        Just(Op::Writeback),
        Just(Op::Scrub),
        (0u8..3).prop_map(|pid| Op::KillProcess { pid }),
    ]
}

/// Runs `ops` with the integrity layer in `integrity` state over `plan`,
/// then tears every process down. Returns the canonical serialisation of
/// the full event stream (empty without the audit feature; the invariant
/// checks still run).
fn run_integrity_script(
    plan: Option<FaultPlan>,
    integrity: IntegrityConfig,
    ops: &[Op],
) -> Result<Vec<String>, TestCaseError> {
    let mut mm = integrity_mm(plan, integrity);
    #[cfg(feature = "audit")]
    let mut pipe = fleet_audit::AuditPipeline::new();
    #[cfg(feature = "audit")]
    let dev = pipe.attach();
    #[cfg(feature = "audit")]
    mm.audit_log_mut().enable(0);

    #[allow(unused_mut)] // mutated only under the audit feature
    let mut stream: Vec<String> = Vec::new();
    #[allow(unused_mut, unused_variables)]
    let mut drain = |mm: &mut MemoryManager, stream: &mut Vec<String>| {
        #[cfg(feature = "audit")]
        for ev in mm.audit_log_mut().drain() {
            stream.push(ev.to_string());
            pipe.feed(dev, ev);
        }
    };
    for &op in ops {
        match op {
            Op::Map { pid, page, file } => {
                let kind = if file { PageKind::File } else { PageKind::Anon };
                let _ =
                    mm.map_range_kind(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE, kind);
            }
            Op::Unmap { pid, page } => {
                mm.unmap_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            Op::Access { pid, page } => {
                let out =
                    mm.access(Pid(pid as u32), page as u64 * PAGE_SIZE, 64, AccessKind::Mutator);
                if out.killed {
                    // SIGBUS analog: the device kills the owner; the corrupt
                    // slot is quarantined on the way out.
                    mm.unmap_process(Pid(pid as u32));
                }
            }
            Op::Cold { pid, page } => {
                mm.madvise(
                    Pid(pid as u32),
                    page as u64 * PAGE_SIZE,
                    PAGE_SIZE,
                    Advice::ColdRuntime,
                );
            }
            Op::Kswapd => {
                mm.kswapd();
            }
            Op::Writeback => {
                mm.zram_writeback();
            }
            Op::Scrub => {
                mm.scrub_tick();
            }
            Op::KillProcess { pid } => {
                mm.unmap_process(Pid(pid as u32));
            }
        }
        mm.validate();
        drain(&mut mm, &mut stream);
        let stats = mm.stats();
        prop_assert!(
            stats.corruptions_detected <= stats.corruptions_injected,
            "detected {} > injected {}",
            stats.corruptions_detected,
            stats.corruptions_injected
        );
    }
    // Teardown detects every still-latent corruption on the unmap path.
    for pid in 0u8..3 {
        mm.unmap_process(Pid(pid as u32));
        mm.validate();
        drain(&mut mm, &mut stream);
    }
    let stats = mm.stats();
    prop_assert_eq!(
        stats.corruptions_detected,
        stats.corruptions_injected,
        "a corruption slipped through teardown undetected"
    );
    Ok(stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any corruption plan, any script: all auditor invariant families
    /// (including the eighth, data integrity) hold, and by teardown every
    /// injected corruption has been detected exactly once.
    #[test]
    fn every_injected_corruption_is_detected_exactly_once(
        seed in any::<u64>(),
        config in corruption_config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        run_integrity_script(
            Some(FaultPlan::new(seed, config)),
            checked_integrity(),
            &ops,
        )?;
    }

    /// A quiet plan under an armed integrity layer behaves bit-identically
    /// to no plan at all: same event stream (scrub passes included), zero
    /// injections, zero detections.
    #[test]
    fn quiet_plan_is_invisible_to_the_armed_layer(
        seed in any::<u64>(),
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let quiet = run_integrity_script(
            Some(FaultPlan::new(seed, FaultConfig::default())),
            checked_integrity(),
            &ops,
        )?;
        let bare = run_integrity_script(None, checked_integrity(), &ops)?;
        prop_assert_eq!(quiet, bare, "quiet plan diverged from a plan-free kernel");
        prop_assert!(!quiet_stats_leak(seed, &ops));
    }

    /// With the layer disabled, an armed corruption plan must not even draw
    /// from the fault stream — the property behind the golden-trace gate.
    #[test]
    fn disabled_layer_never_draws_from_an_armed_plan(
        seed in any::<u64>(),
        config in corruption_config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let armed = run_integrity_script(
            Some(FaultPlan::new(seed, config)),
            IntegrityConfig::default(),
            &ops,
        )?;
        let quiet = run_integrity_script(
            Some(FaultPlan::new(seed, FaultConfig::default())),
            IntegrityConfig::default(),
            &ops,
        )?;
        prop_assert_eq!(armed, quiet, "disabled integrity layer drew a corruption fate");
    }

    /// Same `(seed, config, script)` under armed corruption: byte-identical
    /// event streams.
    #[test]
    fn same_seed_means_byte_identical_event_streams(
        seed in any::<u64>(),
        config in corruption_config_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..100),
    ) {
        let a = run_integrity_script(
            Some(FaultPlan::new(seed, config)),
            checked_integrity(),
            &ops,
        )?;
        let b = run_integrity_script(
            Some(FaultPlan::new(seed, config)),
            checked_integrity(),
            &ops,
        )?;
        prop_assert_eq!(a, b, "corruption schedule not deterministic");
    }
}

/// Re-runs a quiet-plan script and reports whether any integrity counter
/// moved (they must all stay zero — detection is a checksum comparison and
/// a quiet plan never corrupts a store).
fn quiet_stats_leak(seed: u64, ops: &[Op]) -> bool {
    let mut mm =
        integrity_mm(Some(FaultPlan::new(seed, FaultConfig::default())), checked_integrity());
    for &op in ops {
        match op {
            Op::Map { pid, page, file } => {
                let kind = if file { PageKind::File } else { PageKind::Anon };
                let _ =
                    mm.map_range_kind(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE, kind);
            }
            Op::Unmap { pid, page } => {
                mm.unmap_range(Pid(pid as u32), page as u64 * PAGE_SIZE, PAGE_SIZE);
            }
            Op::Access { pid, page } => {
                let out =
                    mm.access(Pid(pid as u32), page as u64 * PAGE_SIZE, 64, AccessKind::Mutator);
                if out.killed {
                    mm.unmap_process(Pid(pid as u32));
                }
            }
            Op::Cold { pid, page } => {
                mm.madvise(
                    Pid(pid as u32),
                    page as u64 * PAGE_SIZE,
                    PAGE_SIZE,
                    Advice::ColdRuntime,
                );
            }
            Op::Kswapd => {
                mm.kswapd();
            }
            Op::Writeback => {
                mm.zram_writeback();
            }
            Op::Scrub => {
                mm.scrub_tick();
            }
            Op::KillProcess { pid } => {
                mm.unmap_process(Pid(pid as u32));
            }
        }
    }
    let stats = mm.stats();
    stats.corruptions_injected != 0
        || stats.corruptions_detected != 0
        || stats.slots_quarantined != 0
        || stats.tiers_retired != 0
}
