//! Differential tests: the intrusive-list [`LruQueue`] against the
//! pre-rewrite map-based reference model.
//!
//! Both queues are driven through identical random op scripts — insert,
//! touch, promote, reinsert_cold (demote), remove, pop — and must agree on
//! every observable at every step: length, membership, peeked victim, and
//! (the acceptance bar for the rewrite) the exact pop order.

use fleet_kernel::lru::reference::MapLruQueue;
use fleet_kernel::{LruQueue, PageKey, Pid};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum LruOp {
    Insert(u8),
    ReinsertCold(u8),
    Touch(u8),
    Promote(u8),
    Remove(u8),
    Pop,
    Peek,
}

fn op_strategy() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (0u8..24).prop_map(LruOp::Insert),
        (0u8..24).prop_map(LruOp::ReinsertCold),
        (0u8..24).prop_map(LruOp::Touch),
        (0u8..24).prop_map(LruOp::Promote),
        (0u8..24).prop_map(LruOp::Remove),
        Just(LruOp::Pop),
        Just(LruOp::Peek),
    ]
}

fn key(i: u8) -> PageKey {
    // Spread keys over two pids so remove/pop mix processes.
    PageKey { pid: Pid(u32::from(i) % 2), index: u64::from(i) }
}

fn run_script(ops: Vec<LruOp>) -> Result<(), TestCaseError> {
    let mut new = LruQueue::new();
    let mut old = MapLruQueue::new();
    for op in ops {
        match op {
            LruOp::Insert(i) => {
                new.insert(key(i));
                old.insert(key(i));
            }
            LruOp::ReinsertCold(i) => {
                new.reinsert_cold(key(i));
                old.reinsert_cold(key(i));
            }
            LruOp::Touch(i) => {
                new.touch(key(i));
                old.touch(key(i));
            }
            LruOp::Promote(i) => {
                new.promote(key(i));
                old.promote(key(i));
            }
            LruOp::Remove(i) => {
                new.remove(key(i));
                old.remove(key(i));
            }
            LruOp::Pop => {
                prop_assert_eq!(new.pop_coldest(), old.pop_coldest());
            }
            LruOp::Peek => {
                prop_assert_eq!(new.peek_coldest(), old.peek_coldest());
            }
        }
        prop_assert_eq!(new.len(), old.len());
        prop_assert_eq!(new.is_empty(), old.is_empty());
        for i in 0u8..24 {
            prop_assert_eq!(new.contains(key(i)), old.contains(key(i)));
        }
    }
    // Drain both: the full eviction order must match, not just prefixes.
    loop {
        let (a, b) = (new.pop_coldest(), old.pop_coldest());
        prop_assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn list_lru_matches_map_reference(
        ops in proptest::collection::vec(op_strategy(), 1..300),
    ) {
        run_script(ops)?;
    }

    /// All-active drains: every entry holds a referenced bit, forcing the
    /// maximum number of second-chance rotations before each pop.
    #[test]
    fn drain_order_matches_when_everything_is_referenced(n in 1u8..24) {
        let mut new = LruQueue::new();
        let mut old = MapLruQueue::new();
        for i in 0..n {
            new.insert(key(i));
            old.insert(key(i));
        }
        for i in 0..n {
            new.touch(key(i));
            old.touch(key(i));
        }
        loop {
            let (a, b) = (new.pop_coldest(), old.pop_coldest());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
