//! App profiles and workload generators for the Fleet evaluation.
//!
//! The paper evaluates on 18 commercial apps (Table 3) plus the synthetic
//! apps from the Marvin artifact (§6 "Workloads"). We cannot run APKs in a
//! simulator, so each app is modelled by a [`profile::AppProfile`] capturing
//! the *memory shape* the experiments depend on:
//!
//! * object-size distribution (Figure 7),
//! * total footprint and Java-heap share (Figures 5c and 13n),
//! * launch costs (Figure 2) and launch re-access behaviour (Figure 6),
//! * fore/background allocation behaviour (§4.1's lifetime asymmetry).
//!
//! [`behavior::AppBehavior`] turns a profile into a live object graph and an
//! event stream: foreground use, background residence, and hot-launch access
//! sets. [`interact::InteractionScript`] generates the scripted-swipe frame
//! workload of §7.3.
//!
//! # Examples
//!
//! ```
//! use fleet_apps::catalog;
//!
//! let apps = catalog();
//! assert_eq!(apps.len(), 18);
//! assert!(apps.iter().any(|a| a.name == "Twitter"));
//! ```

#![warn(missing_docs)]

pub mod behavior;
pub mod interact;
pub mod profile;

pub use behavior::{AppBehavior, LaunchAccess};
pub use interact::InteractionScript;
pub use profile::{
    catalog, profile_by_name, profiles_from_json, profiles_to_json, synthetic_app, AppCategory,
    AppProfile, LaunchModel,
};
