//! The scripted-swipe interaction workload of §7.3.
//!
//! The paper measures frame rendering (jank ratio, FPS) while "continuously
//! swiping the screen using the ADB tool, following a predefined script".
//! [`InteractionScript`] generates the same shape of workload: a stream of
//! frames, each with a CPU render cost and a small set of objects the render
//! pass touches. The embedding layer adds GC pauses and page-fault stalls on
//! top and feeds completion times to the jank detector.

use crate::profile::AppProfile;
use fleet_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// One frame's worth of work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameWork {
    /// CPU time to build and render the frame.
    pub render_cost: SimDuration,
    /// Bytes allocated while building the frame (view inflation etc.).
    pub alloc_bytes: u64,
    /// Number of existing objects the frame touches.
    pub touches: u32,
}

/// A deterministic swipe script for one app.
///
/// # Examples
///
/// ```
/// use fleet_apps::{profile_by_name, InteractionScript};
/// use fleet_sim::SimRng;
///
/// let profile = profile_by_name("Tiktok").unwrap();
/// let mut script = InteractionScript::new(&profile, SimRng::seed_from(3));
/// let frame = script.next_frame();
/// assert!(frame.render_cost.as_millis_f64() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct InteractionScript {
    mean_cost_ms: f64,
    jitter_ms: f64,
    alloc_per_frame: u64,
    rng: SimRng,
    frame_index: u64,
}

impl InteractionScript {
    /// Builds a script for `profile` with its own RNG stream.
    pub fn new(profile: &AppProfile, rng: SimRng) -> Self {
        InteractionScript {
            mean_cost_ms: profile.frame_cost_ms,
            jitter_ms: profile.frame_cost_ms * 0.25,
            // Fling-style scrolling inflates fresh views continuously.
            alloc_per_frame: (profile.fg_alloc_mib_per_sec * 1024.0 * 1024.0 / 60.0) as u64,
            rng,
            frame_index: 0,
        }
    }

    /// Produces the next frame's workload. Every ~90 frames a heavier frame
    /// models content loading at a fling boundary.
    pub fn next_frame(&mut self) -> FrameWork {
        self.frame_index += 1;
        let heavy = self.frame_index.is_multiple_of(90);
        let base = if heavy { self.mean_cost_ms * 2.2 } else { self.mean_cost_ms };
        let cost_ms = self.rng.normal(base, self.jitter_ms).max(0.5);
        FrameWork {
            render_cost: SimDuration::from_millis_f64(cost_ms),
            alloc_bytes: if heavy { self.alloc_per_frame * 4 } else { self.alloc_per_frame },
            touches: if heavy { 48 } else { 12 },
        }
    }

    /// Number of frames generated so far.
    pub fn frames_generated(&self) -> u64 {
        self.frame_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_by_name;

    fn script() -> InteractionScript {
        InteractionScript::new(&profile_by_name("Twitter").unwrap(), SimRng::seed_from(5))
    }

    #[test]
    fn frame_costs_center_on_profile_mean() {
        let mut s = script();
        let n = 2000;
        let mean: f64 =
            (0..n).map(|_| s.next_frame().render_cost.as_millis_f64()).sum::<f64>() / n as f64;
        // Slightly above the base mean because of the heavy frames.
        assert!((5.5..7.5).contains(&mean), "mean frame cost {mean}");
        assert_eq!(s.frames_generated(), n as u64);
    }

    #[test]
    fn heavy_frames_appear_periodically() {
        let mut s = script();
        let costs: Vec<f64> =
            (0..180).map(|_| s.next_frame().render_cost.as_millis_f64()).collect();
        let heavy_count = costs.iter().filter(|&&c| c > 10.0).count();
        assert!(heavy_count >= 1, "expected at least one heavy frame");
    }

    #[test]
    fn frames_always_make_progress() {
        let mut s = script();
        for _ in 0..1000 {
            let f = s.next_frame();
            assert!(f.render_cost > SimDuration::ZERO);
            assert!(f.touches > 0);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = script();
        let mut b = script();
        for _ in 0..100 {
            assert_eq!(a.next_frame(), b.next_frame());
        }
    }
}
