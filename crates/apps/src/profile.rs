//! Static app profiles: Table 3's 18 commercial apps plus the Marvin
//! synthetic apps.
//!
//! Every number here is anchored to a published figure: footprints and
//! Java-heap shares follow Figures 5c/13n (Candy Crush's 4% heap share is
//! called out explicitly in Appendix A), launch times follow Figure 2, and
//! the size distributions follow Figure 7's "most objects are far smaller
//! than a page" CDFs.

use fleet_sim::SizeDistribution;
use serde::{Deserialize, Serialize};

/// Table 3's app categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppCategory {
    /// Twitter, Facebook, Instagram, Telegram, Line.
    Communication,
    /// Youtube, Tiktok, Spotify, Twitch, Rave, BigoLive.
    Multimedia,
    /// AmazonShop, GoogleMaps, Chrome, Firefox, LinkedIn.
    Tools,
    /// Angry Birds Classic, Candy Crush Saga.
    Games,
    /// Marvin-artifact synthetic apps (fixed object size).
    Synthetic,
}

impl std::fmt::Display for AppCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AppCategory::Communication => "communication",
            AppCategory::Multimedia => "multi-media",
            AppCategory::Tools => "tools & utilities",
            AppCategory::Games => "games",
            AppCategory::Synthetic => "synthetic",
        };
        write!(f, "{s}")
    }
}

/// Launch-behaviour constants: how likely each object class is to be
/// re-accessed during the next hot-launch. Calibrated so that NRO cover
/// ≈50% of re-accesses, FYO ≈40% and both ≈68% (Figure 6a), while NRO and
/// FYO each occupy ≈10% of heap memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchModel {
    /// Re-access probability for objects within NRO depth of the roots.
    pub near_root_reaccess: f64,
    /// Re-access probability for recently allocated foreground objects.
    pub young_reaccess: f64,
    /// Re-access probability for background working-set objects.
    pub ws_reaccess: f64,
    /// Re-access probability for everything else.
    pub cold_reaccess: f64,
    /// Fraction of the native *anonymous* footprint touched at launch
    /// (slow path when swapped out).
    pub native_touch_frac: f64,
    /// Fraction of the *file-backed* footprint touched at launch (fast
    /// readahead path when dropped).
    pub file_touch_frac: f64,
    /// Bytes allocated during the launch itself, as a fraction of the Java
    /// heap (these fresh allocations are what trigger the §4.2 launch GC).
    pub launch_alloc_frac: f64,
}

impl Default for LaunchModel {
    fn default() -> Self {
        LaunchModel {
            near_root_reaccess: 0.85,
            young_reaccess: 0.72,
            ws_reaccess: 0.50,
            // Cold re-accesses are rare *seeds*; each seed drags in its data
            // chain (see `AppBehavior::launch_access`), so the absolute cold
            // page-fault count stays small, as the paper's Fleet launch
            // times imply.
            cold_reaccess: 0.00005,
            native_touch_frac: 0.02,
            file_touch_frac: 0.10,
            launch_alloc_frac: 0.06,
        }
    }
}

/// A modelled app: the memory shape and rates the experiments exercise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Display name (Table 3).
    pub name: String,
    /// Table 3 category.
    pub category: AppCategory,
    /// Total process footprint in MiB once warmed up (Java heap + native).
    pub footprint_mib: u32,
    /// Java-heap share of the footprint in percent (Figure 13n).
    pub java_heap_percent: f64,
    /// File-backed share of the footprint in percent (code, resources,
    /// mmapped assets). The remainder after Java heap and file is native
    /// *anonymous* memory (malloc, graphics buffers).
    pub file_backed_percent: f64,
    /// Object-size distribution (Figure 7).
    pub size_dist: SizeDistribution,
    /// Cold-launch CPU/init cost in ms on an unloaded device (Figure 2).
    pub cold_launch_ms: f64,
    /// Hot-launch render cost in ms when every needed page is resident
    /// (Figure 2's no-pressure hot-launch time).
    pub hot_launch_ms: f64,
    /// Launch re-access behaviour.
    pub launch: LaunchModel,
    /// Foreground allocation rate, MiB/s of fresh objects.
    pub fg_alloc_mib_per_sec: f64,
    /// Fraction of foreground allocations that become garbage quickly.
    pub fg_garbage_ratio: f64,
    /// Background allocation rate, MiB/s (push handling etc.; tiny).
    pub bg_alloc_mib_per_sec: f64,
    /// Fraction of background allocations that die young (§4.1: "most BGO
    /// are reclaimed within the first several GCs").
    pub bg_garbage_ratio: f64,
    /// Mean frame-render CPU cost in ms for the §7.3 swipe workload.
    pub frame_cost_ms: f64,
    /// Transient page demand while foreground (decoded media, page cache,
    /// graphics buffers) in MiB/s at real scale. This is what forces the
    /// kernel to evict idle apps' pages on a busy phone.
    pub fg_page_churn_mib_per_sec: f64,
}

impl AppProfile {
    /// Java-heap bytes at full warm-up, scaled by `scale` (the workspace
    /// runs the device at 1/16 scale; see DESIGN.md "Fidelity notes").
    pub fn java_heap_bytes_scaled(&self, scale: u32) -> u64 {
        let total = self.footprint_mib as u64 * 1024 * 1024 / scale as u64;
        (total as f64 * self.java_heap_percent / 100.0) as u64
    }

    /// Native (non-Java) bytes at full warm-up, scaled by `scale`.
    pub fn native_bytes_scaled(&self, scale: u32) -> u64 {
        let total = self.footprint_mib as u64 * 1024 * 1024 / scale as u64;
        total - self.java_heap_bytes_scaled(scale)
    }

    /// File-backed bytes at full warm-up, scaled by `scale`.
    pub fn file_bytes_scaled(&self, scale: u32) -> u64 {
        let total = self.footprint_mib as u64 * 1024 * 1024 / scale as u64;
        (total as f64 * self.file_backed_percent / 100.0) as u64
    }

    /// Native *anonymous* bytes (native minus file-backed), scaled.
    pub fn native_anon_bytes_scaled(&self, scale: u32) -> u64 {
        self.native_bytes_scaled(scale).saturating_sub(self.file_bytes_scaled(scale))
    }
}

/// Figure 7 object-size CDF shapes. `variant` rotates the weights slightly
/// so the eight plotted apps do not coincide, while all keep the paper's
/// property that the vast majority of objects are ≪ 4 KiB.
fn commercial_sizes(variant: u32) -> SizeDistribution {
    // Base weights over sizes 16..8192; heavily concentrated at 16–128 B.
    let mut buckets = vec![
        (16u32, 24.0f64),
        (24, 18.0),
        (32, 16.0),
        (48, 10.0),
        (64, 9.0),
        (96, 6.0),
        (128, 5.0),
        (256, 4.5),
        (512, 3.0),
        (1024, 2.0),
        (2048, 1.5),
        (4096, 0.7),
        (8192, 0.3),
    ];
    // Deterministic per-app skew: rotate some weight between small/large.
    let shift = (variant % 5) as f64;
    buckets[0].1 += shift;
    buckets[7].1 += 0.3 * shift;
    buckets[10].1 = (buckets[10].1 - 0.2 * shift).max(0.2);
    SizeDistribution::new(buckets).expect("static buckets are valid")
}

#[allow(clippy::too_many_arguments)] // a flat catalog row reads best as one call
fn app(
    name: &str,
    category: AppCategory,
    footprint_mib: u32,
    java_heap_percent: f64,
    cold_launch_ms: f64,
    hot_launch_ms: f64,
    frame_cost_ms: f64,
    variant: u32,
) -> AppProfile {
    AppProfile {
        name: name.to_string(),
        category,
        footprint_mib,
        java_heap_percent,
        file_backed_percent: 40.0,
        size_dist: commercial_sizes(variant),
        cold_launch_ms,
        hot_launch_ms,
        launch: LaunchModel::default(),
        fg_alloc_mib_per_sec: 1.2,
        fg_garbage_ratio: 0.55,
        bg_alloc_mib_per_sec: 0.12,
        bg_garbage_ratio: 0.92,
        frame_cost_ms,
        fg_page_churn_mib_per_sec: 56.0,
    }
}

/// The 18 commercial apps of Table 3.
///
/// Footprints, heap shares and launch times are anchored to Figures 2, 5c
/// and 13n (e.g. Twitter hot ≈ 273 ms vs cold ≈ 2390 ms; Candy Crush has
/// only 4% Java heap).
pub fn catalog() -> Vec<AppProfile> {
    use AppCategory::*;
    vec![
        app("Twitter", Communication, 320, 30.0, 2390.0, 273.0, 6.0, 0),
        app("Facebook", Communication, 350, 28.0, 1800.0, 209.0, 6.5, 1),
        app("Instagram", Communication, 340, 26.0, 1900.0, 147.0, 6.5, 2),
        app("Telegram", Communication, 220, 22.0, 1200.0, 130.0, 5.0, 3),
        app("Line", Communication, 240, 20.0, 1400.0, 160.0, 5.5, 4),
        app("Youtube", Multimedia, 300, 18.0, 2000.0, 250.0, 7.0, 0),
        app("Tiktok", Multimedia, 380, 24.0, 2200.0, 260.0, 7.5, 1),
        app("Spotify", Multimedia, 260, 16.0, 1500.0, 180.0, 5.0, 2),
        app("Twitch", Multimedia, 330, 22.0, 2100.0, 240.0, 7.0, 3),
        app("Rave", Multimedia, 310, 25.0, 2600.0, 300.0, 7.5, 4),
        app("BigoLive", Multimedia, 350, 24.0, 2500.0, 280.0, 7.5, 0),
        app("AmazonShop", Tools, 330, 27.0, 2300.0, 230.0, 6.0, 1),
        app("GoogleMaps", Tools, 360, 21.0, 2000.0, 250.0, 7.0, 2),
        app("Chrome", Tools, 400, 33.0, 1700.0, 200.0, 6.0, 3),
        app("Firefox", Tools, 380, 31.0, 1800.0, 210.0, 6.0, 4),
        app("LinkedIn", Tools, 280, 23.0, 1600.0, 190.0, 5.5, 0),
        app("AngryBirds", Games, 420, 9.0, 2800.0, 320.0, 8.0, 1),
        app("CandyCrush", Games, 450, 4.0, 3000.0, 350.0, 8.0, 2),
    ]
}

/// Serialises a set of profiles to pretty JSON (for editing custom app
/// mixes outside the built-in catalog).
///
/// # Errors
///
/// Returns the underlying `serde_json` error (which for these plain data
/// types would indicate a bug).
pub fn profiles_to_json(profiles: &[AppProfile]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(profiles)
}

/// Parses profiles from JSON produced by [`profiles_to_json`] (or written
/// by hand).
///
/// # Errors
///
/// Returns a `serde_json` error describing the first malformed field.
pub fn profiles_from_json(json: &str) -> Result<Vec<AppProfile>, serde_json::Error> {
    serde_json::from_str(json)
}

/// Looks an app up by name in [`catalog`].
pub fn profile_by_name(name: &str) -> Option<AppProfile> {
    catalog().into_iter().find(|a| a.name == name)
}

/// A Marvin-artifact synthetic app: allocates `object_size`-byte objects
/// until it occupies `footprint_mib` (§6: 512 B or 2048 B objects, 180 MB).
///
/// # Panics
///
/// Panics if `object_size` is zero.
pub fn synthetic_app(object_size: u32, footprint_mib: u32) -> AppProfile {
    assert!(object_size > 0, "synthetic object size must be positive");
    AppProfile {
        name: format!("synthetic-{object_size}B"),
        category: AppCategory::Synthetic,
        footprint_mib,
        // Synthetic apps are almost pure Java heap.
        java_heap_percent: 90.0,
        file_backed_percent: 5.0,
        size_dist: SizeDistribution::constant(object_size),
        cold_launch_ms: 600.0,
        hot_launch_ms: 90.0,
        launch: LaunchModel::default(),
        fg_alloc_mib_per_sec: 2.0,
        fg_garbage_ratio: 0.3,
        bg_alloc_mib_per_sec: 0.06,
        bg_garbage_ratio: 0.9,
        frame_cost_ms: 4.0,
        fg_page_churn_mib_per_sec: 16.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table3() {
        let apps = catalog();
        assert_eq!(apps.len(), 18);
        let by_cat = |c: AppCategory| apps.iter().filter(|a| a.category == c).count();
        assert_eq!(by_cat(AppCategory::Communication), 5);
        assert_eq!(by_cat(AppCategory::Multimedia), 6);
        assert_eq!(by_cat(AppCategory::Tools), 5);
        assert_eq!(by_cat(AppCategory::Games), 2);
    }

    #[test]
    fn hot_launch_is_much_faster_than_cold() {
        // Figure 2's headline: e.g. Twitter 273 ms hot vs 2390 ms cold.
        for app in catalog() {
            let ratio = app.cold_launch_ms / app.hot_launch_ms;
            assert!(ratio > 4.0, "{}: cold/hot ratio {ratio}", app.name);
        }
    }

    #[test]
    fn candy_crush_has_tiny_java_heap() {
        let cc = profile_by_name("CandyCrush").unwrap();
        assert_eq!(cc.java_heap_percent, 4.0);
        let tw = profile_by_name("Twitter").unwrap();
        assert!(tw.java_heap_percent > 25.0);
    }

    #[test]
    fn sizes_are_mostly_sub_page() {
        // Figure 7: the overwhelming majority of objects are below 4 KiB.
        for app in catalog() {
            assert!(app.size_dist.cdf_at(4096) > 0.95, "{}", app.name);
            assert!(app.size_dist.cdf_at(128) > 0.75, "{}", app.name);
        }
    }

    #[test]
    fn scaled_heap_split_adds_up() {
        let app = profile_by_name("Twitter").unwrap();
        let scale = 16;
        let total = app.footprint_mib as u64 * 1024 * 1024 / scale as u64;
        assert_eq!(app.java_heap_bytes_scaled(scale) + app.native_bytes_scaled(scale), total);
        // 30% of 20 MiB = 6 MiB.
        assert_eq!(app.java_heap_bytes_scaled(scale), (total as f64 * 0.30) as u64);
    }

    #[test]
    fn synthetic_apps_have_fixed_sizes() {
        let small = synthetic_app(512, 180);
        assert_eq!(small.size_dist.buckets(), &[(512, 1.0)]);
        assert_eq!(small.name, "synthetic-512B");
        let large = synthetic_app(2048, 180);
        assert_eq!(large.size_dist.buckets(), &[(2048, 1.0)]);
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_by_name("Twitch").is_some());
        assert!(profile_by_name("NotAnApp").is_none());
    }

    #[test]
    fn profiles_round_trip_through_json() {
        let original = catalog();
        let json = profiles_to_json(&original).unwrap();
        let parsed = profiles_from_json(&json).unwrap();
        assert_eq!(parsed, original);
        // Hand-written JSON with a tweaked field parses too.
        let tweaked = json.replace("\"footprint_mib\": 320", "\"footprint_mib\": 999");
        let parsed = profiles_from_json(&tweaked).unwrap();
        assert!(parsed.iter().any(|a| a.footprint_mib == 999));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn synthetic_zero_size_panics() {
        synthetic_app(0, 180);
    }
}
