//! The live behaviour of a modelled app: graph construction, foreground
//! use, background residence and hot-launch access sets.
//!
//! The model encodes the empirical regularities of §4 of the paper
//! *generatively*, so that Fleet's mechanisms are predictive rather than
//! circular:
//!
//! * the object graph has a shallow framework tier (≈10% of bytes within
//!   BFS depth 2 of the roots — the eventual NRO) and deep data structures
//!   hanging off it (Figure 6b's depth analysis),
//! * foreground use allocates at a realistic rate; a configurable fraction
//!   of allocations is dropped immediately (dies at the next GC), the rest
//!   attaches to the graph,
//! * background residence allocates almost nothing and touches only a small
//!   working set (Figure 4's quiet middle period; §4.1's BGO die young),
//! * the hot-launch access set is sampled from *ground-truth graph
//!   properties at launch time* — depth from roots, allocation recency,
//!   working-set membership — with the probabilities in
//!   [`LaunchModel`](crate::profile::LaunchModel). Fleet's grouping decision
//!   was taken earlier, at background time, so its launch regions are a
//!   *prediction* of this set, exactly as on a real device.

use crate::profile::AppProfile;
use fleet_heap::{depth_map, AllocContext, Heap, ObjectId};
use fleet_sim::SimRng;
use std::collections::{HashSet, VecDeque};

/// How many objects the young-allocation window remembers.
const RECENT_WINDOW: usize = 4096;

/// BFS depth of the framework tier (matches the paper's D = 2 default, but
/// the graph is built independently of Fleet's parameter — see Figure 6b's
/// depth sweep, which only works if the graph has structure past depth 2).
const FRAMEWORK_DEPTH_BYTES_FRACTION: f64 = 0.095;

/// The sampled hot-launch working set.
#[derive(Debug, Clone, Default)]
pub struct LaunchAccess {
    /// Live objects the launch will touch, in a deterministic order.
    pub objects: Vec<ObjectId>,
    /// Bytes of fresh allocations performed during the launch.
    pub alloc_bytes: u64,
}

/// One step's worth of mutator activity.
#[derive(Debug, Clone, Default)]
pub struct StepOutcome {
    /// Objects the mutator accessed this step.
    pub accessed: Vec<ObjectId>,
    /// Bytes allocated this step.
    pub allocated_bytes: u64,
}

/// The behaviour engine for one app instance.
///
/// # Examples
///
/// ```
/// use fleet_apps::{profile_by_name, AppBehavior};
/// use fleet_heap::{Heap, HeapConfig};
/// use fleet_sim::SimRng;
///
/// let profile = profile_by_name("Twitter").unwrap();
/// let mut heap = Heap::new(HeapConfig::default());
/// let mut app = AppBehavior::new(profile, SimRng::seed_from(7));
/// app.build_initial_graph(&mut heap, 2 * 1024 * 1024);
/// assert!(heap.live_bytes() >= 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone)]
pub struct AppBehavior {
    profile: AppProfile,
    rng: SimRng,
    /// Framework-tier nodes new data structures attach to.
    attach_points: Vec<ObjectId>,
    /// Recently allocated, graph-attached foreground objects.
    recent: VecDeque<ObjectId>,
    /// Background working set, chosen when the app is backgrounded.
    ws: HashSet<ObjectId>,
    /// Snapshot of `recent` at the moment of backgrounding (the ground truth
    /// behind FYO).
    young_at_switch: HashSet<ObjectId>,
}

impl AppBehavior {
    /// Creates a behaviour engine from a profile and a dedicated RNG stream.
    pub fn new(profile: AppProfile, rng: SimRng) -> Self {
        AppBehavior {
            profile,
            rng,
            attach_points: Vec::new(),
            recent: VecDeque::new(),
            ws: HashSet::new(),
            young_at_switch: HashSet::new(),
        }
    }

    /// The app profile.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// The current background working set (empty while foreground).
    pub fn working_set(&self) -> &HashSet<ObjectId> {
        &self.ws
    }

    // -------------------------------------------------------------- building

    /// Builds the warmed-up foreground object graph: roots, a shallow
    /// framework tier, and deep data structures, totalling at least
    /// `target_bytes` of live objects.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-empty heap.
    pub fn build_initial_graph(&mut self, heap: &mut Heap, target_bytes: u64) {
        assert_eq!(heap.live_objects(), 0, "graph must be built on a fresh heap");
        let framework_budget = (target_bytes as f64 * FRAMEWORK_DEPTH_BYTES_FRACTION) as u64;

        // Roots: thread stacks, class loaders, statics.
        let mut roots = Vec::new();
        for _ in 0..16 {
            let r = heap.alloc(self.sample_size());
            heap.add_root(r);
            roots.push(r);
        }

        // Framework tier: depth-1 and depth-2 nodes under the roots.
        while heap.live_bytes() < framework_budget {
            let &root = self.rng.choose(&roots).expect("roots are non-empty");
            let mid = heap.alloc(self.sample_size());
            heap.add_ref(root, mid);
            self.attach_points.push(mid);
            let fanout = self.rng.range(2, 5);
            for _ in 0..fanout {
                if heap.live_bytes() >= framework_budget {
                    break;
                }
                let leaf = heap.alloc(self.sample_size());
                heap.add_ref(mid, leaf);
                self.attach_points.push(leaf);
            }
        }

        // Degenerate case (large objects or tiny targets): the roots alone
        // can exceed the framework budget, leaving no attach points. Fall
        // back to attaching data directly under the roots.
        if self.attach_points.is_empty() {
            self.attach_points.extend(roots.iter().copied());
        }

        // Data tier: chains hanging off framework nodes, depths 3 and past.
        while heap.live_bytes() < target_bytes {
            let &attach = self.rng.choose(&self.attach_points).expect("framework built above");
            let mut prev = attach;
            let chain = self.rng.range(6, 14);
            for _ in 0..chain {
                let node = heap.alloc(self.sample_size());
                heap.add_ref(prev, node);
                prev = node;
            }
        }
    }

    fn sample_size(&mut self) -> u32 {
        self.profile.size_dist.sample(&mut self.rng).max(16)
    }

    // ------------------------------------------------------------ mutator use

    /// One slice of foreground mutator activity covering `dt_secs`.
    ///
    /// Allocates at the profile's foreground rate (a `fg_garbage_ratio`
    /// share is dropped immediately), occasionally discards an old data
    /// chain ("timeline refresh"), and reports the objects it accessed.
    pub fn foreground_step(&mut self, heap: &mut Heap, dt_secs: f64) -> StepOutcome {
        let mut out = StepOutcome::default();
        let budget = (self.profile.fg_alloc_mib_per_sec * dt_secs * 1024.0 * 1024.0) as u64;
        while out.allocated_bytes < budget {
            let size = self.sample_size();
            let obj = heap.alloc(size);
            out.allocated_bytes += size as u64;
            if self.rng.chance(self.profile.fg_garbage_ratio) {
                // Never attached: garbage at the next collection.
                continue;
            }
            let target = self.pick_attach_target(heap);
            heap.add_ref(target, obj);
            self.push_recent(obj);
        }

        // Occasionally drop an old data structure: long-lived garbage.
        if self.rng.chance(0.2 * dt_secs.min(1.0)) {
            self.drop_random_subtree(heap);
        }

        out.accessed = self.sample_accesses(heap, (dt_secs * 400.0) as usize);
        out
    }

    /// One slice of background residence: near-zero allocation, working-set
    /// accesses only (Figure 4's quiet background period).
    pub fn background_step(&mut self, heap: &mut Heap, dt_secs: f64) -> StepOutcome {
        let mut out = StepOutcome::default();
        let budget = (self.profile.bg_alloc_mib_per_sec * dt_secs * 1024.0 * 1024.0) as u64;
        while out.allocated_bytes < budget {
            let size = self.sample_size();
            let obj = heap.alloc(size);
            out.allocated_bytes += size as u64;
            // §4.1: BGO die young — most are never attached.
            if !self.rng.chance(self.profile.bg_garbage_ratio) {
                let target = self.pick_attach_target(heap);
                heap.add_ref(target, obj);
            }
        }
        // Occasionally a cached app drops foreground state too (expired
        // caches, finished tasks) — the slow FGO death tail of Figure 5a.
        if self.rng.chance(0.05 * dt_secs.min(1.0)) {
            self.drop_random_subtree(heap);
        }
        let mut ws: Vec<ObjectId> = self.ws.iter().copied().filter(|&o| heap.contains(o)).collect();
        ws.sort_unstable(); // HashSet order is not deterministic; sampling must be
        let n = ((dt_secs * 8.0) as usize).min(ws.len());
        for _ in 0..n {
            if let Some(&obj) = self.rng.choose(&ws) {
                out.accessed.push(obj);
            }
        }
        out
    }

    fn pick_attach_target(&mut self, heap: &Heap) -> ObjectId {
        // Prefer attaching under recent structures, falling back to the
        // framework tier; both are pruned of dead ids lazily.
        for _ in 0..8 {
            let from_recent = !self.recent.is_empty() && self.rng.chance(0.6);
            let candidate = if from_recent {
                let idx = self.rng.index(self.recent.len());
                self.recent[idx]
            } else {
                let idx = self.rng.index(self.attach_points.len());
                self.attach_points[idx]
            };
            if heap.contains(candidate) {
                return candidate;
            }
        }
        // Last resort: a root (roots are always live).
        *self.rng.choose(heap.roots()).expect("heap has roots")
    }

    fn push_recent(&mut self, obj: ObjectId) {
        self.recent.push_back(obj);
        while self.recent.len() > RECENT_WINDOW {
            self.recent.pop_front();
        }
    }

    fn drop_random_subtree(&mut self, heap: &mut Heap) {
        if self.attach_points.is_empty() {
            return;
        }
        let idx = self.rng.index(self.attach_points.len());
        let attach = self.attach_points[idx];
        if heap.contains(attach) {
            let refs = heap.object(attach).refs().to_vec();
            if let Some(&victim) = self.rng.choose(&refs) {
                heap.remove_ref(attach, victim);
            }
        }
    }

    fn sample_accesses(&mut self, heap: &Heap, n: usize) -> Vec<ObjectId> {
        let mut accessed = Vec::with_capacity(n);
        for _ in 0..n {
            let obj = if !self.recent.is_empty() && self.rng.chance(0.6) {
                self.recent[self.rng.index(self.recent.len())]
            } else if self.rng.chance(0.7) && !self.attach_points.is_empty() {
                self.attach_points[self.rng.index(self.attach_points.len())]
            } else {
                // A short random walk into the data tier.
                let mut cur = *self.rng.choose(heap.roots()).expect("heap has roots");
                for _ in 0..self.rng.range(2, 8) {
                    let Some(o) = heap.try_object(cur) else { break };
                    match self.rng.choose(o.refs()) {
                        Some(&next) if heap.contains(next) => cur = next,
                        _ => break,
                    }
                }
                cur
            };
            if heap.contains(obj) {
                accessed.push(obj);
            }
        }
        accessed
    }

    // ----------------------------------------------------- state transitions

    /// Called when the app is switched to the background: snapshots the
    /// young-allocation window (the ground truth behind FYO) and picks the
    /// background working set.
    pub fn enter_background(&mut self, heap: &Heap) {
        self.young_at_switch = self.recent.iter().copied().filter(|&o| heap.contains(o)).collect();
        // Working set: a small slice of framework plus the most recent data.
        self.ws.clear();
        let live_attach: Vec<ObjectId> =
            self.attach_points.iter().copied().filter(|&o| heap.contains(o)).collect();
        let ws_target = (live_attach.len() / 8).clamp(4, 2000);
        for _ in 0..ws_target {
            if let Some(&o) = self.rng.choose(&live_attach) {
                self.ws.insert(o);
            }
        }
        for &o in self.recent.iter().rev().take(64) {
            if heap.contains(o) {
                self.ws.insert(o);
            }
        }
    }

    /// Called when the app returns to the foreground. The young-allocation
    /// window resets: "young" means *this* foreground session, matching the
    /// FYO definition (allocated since the last GC before backgrounding).
    pub fn enter_foreground(&mut self) {
        self.ws.clear();
        self.young_at_switch.clear();
        self.recent.clear();
    }

    /// Drops dead ids from the internal caches. Call after every GC.
    pub fn prune(&mut self, heap: &Heap) {
        self.attach_points.retain(|&o| heap.contains(o));
        self.recent.retain(|&o| heap.contains(o));
        self.ws.retain(|&o| heap.contains(o));
        self.young_at_switch.retain(|&o| heap.contains(o));
    }

    // ------------------------------------------------------------ hot launch

    /// Samples the set of live objects the next hot-launch will touch, from
    /// ground-truth graph properties (§4.2's analysis): objects near the
    /// roots, objects allocated just before backgrounding, working-set
    /// objects, and a thin scattering of everything else.
    pub fn launch_access(&mut self, heap: &Heap) -> LaunchAccess {
        let model = self.profile.launch;
        let depths = depth_map(heap, None);
        let mut objects = Vec::new();
        let mut included: HashSet<ObjectId> = HashSet::new();
        let mut ids: Vec<ObjectId> = heap.object_ids().collect();
        ids.sort_unstable(); // deterministic iteration
        for obj in ids {
            let o = heap.object(obj);
            if o.context() == AllocContext::Background && !self.ws.contains(&obj) {
                continue; // background bookkeeping is not launch state
            }
            enum Class {
                Warm(f64),
                ColdSeed,
            }
            let class = match depths.get(&obj) {
                Some(&d) if d <= 2 => Class::Warm(model.near_root_reaccess),
                _ if self.young_at_switch.contains(&obj) => Class::Warm(model.young_reaccess),
                _ if self.ws.contains(&obj) => Class::Warm(model.ws_reaccess),
                Some(_) => Class::ColdSeed,
                None => Class::Warm(0.0), // unreachable garbage cannot be accessed
            };
            match class {
                Class::Warm(p) => {
                    if self.rng.chance(p) && included.insert(obj) {
                        objects.push(obj);
                    }
                }
                Class::ColdSeed => {
                    // Cold re-access is seed + data chain: re-opening one
                    // screen reloads a whole structure, not one random
                    // object. This keeps cold faults few and clustered.
                    if self.rng.chance(model.cold_reaccess) {
                        let mut cur = obj;
                        for _ in 0..6 {
                            if included.insert(cur) {
                                objects.push(cur);
                            }
                            match heap.object(cur).refs().first() {
                                Some(&next) if heap.contains(next) => cur = next,
                                _ => break,
                            }
                        }
                    }
                }
            }
        }
        let alloc_bytes = (heap.live_bytes() as f64 * model.launch_alloc_frac) as u64;
        LaunchAccess { objects, alloc_bytes }
    }

    /// Performs the fresh allocations of a launch burst (§4.2: "during a
    /// hot-launch, many new objects are created quickly").
    pub fn launch_allocate(&mut self, heap: &mut Heap, bytes: u64) -> u64 {
        let mut allocated = 0;
        while allocated < bytes {
            let size = self.sample_size();
            let obj = heap.alloc(size);
            allocated += size as u64;
            if !self.rng.chance(0.5) {
                let target = self.pick_attach_target(heap);
                heap.add_ref(target, obj);
                self.push_recent(obj);
            }
        }
        allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_by_name, synthetic_app};
    use fleet_heap::HeapConfig;

    fn build(name: &str, bytes: u64) -> (Heap, AppBehavior) {
        let mut heap = Heap::new(HeapConfig::default());
        let mut app = AppBehavior::new(profile_by_name(name).unwrap(), SimRng::seed_from(42));
        app.build_initial_graph(&mut heap, bytes);
        (heap, app)
    }

    #[test]
    fn graph_reaches_target_bytes() {
        let (heap, _) = build("Twitter", 1_000_000);
        assert!(heap.live_bytes() >= 1_000_000);
        assert!(heap.live_bytes() < 1_100_000, "overshoot should be one chain at most");
    }

    #[test]
    fn framework_tier_is_about_ten_percent() {
        let (heap, _) = build("Twitter", 2_000_000);
        let depths = depth_map(&heap, Some(2));
        let shallow_bytes: u64 = depths.keys().map(|&o| heap.object(o).size() as u64).sum();
        let frac = shallow_bytes as f64 / heap.live_bytes() as f64;
        // Figure 6a: NRO at D=2 occupy ≈10.4% of memory.
        assert!((0.05..0.18).contains(&frac), "shallow fraction {frac}");
    }

    #[test]
    fn graph_has_structure_past_depth_two() {
        let (heap, _) = build("Facebook", 1_000_000);
        let all = depth_map(&heap, None);
        let max_depth = all.values().copied().max().unwrap();
        assert!(max_depth >= 6, "data tier should be deep, got {max_depth}");
    }

    #[test]
    fn foreground_step_allocates_and_accesses() {
        let (mut heap, mut app) = build("Twitter", 500_000);
        let before = heap.live_bytes();
        let out = app.foreground_step(&mut heap, 1.0);
        assert!(out.allocated_bytes >= 1024 * 1024, "1.2 MiB/s rate");
        assert!(!out.accessed.is_empty());
        assert!(heap.live_bytes() > before);
        // Some of the allocation is garbage (unattached → unreachable).
        let reachable = fleet_heap::reachable_set(&heap);
        assert!(
            (reachable.len() as u64) < heap.live_objects(),
            "unattached garbage should be unreachable"
        );
    }

    #[test]
    fn background_step_is_quiet() {
        let (mut heap, mut app) = build("Twitter", 500_000);
        app.enter_background(&heap);
        heap.set_context(fleet_heap::AllocContext::Background);
        let fg = app.foreground_step(&mut heap, 1.0).allocated_bytes;
        let bg = app.background_step(&mut heap, 1.0).allocated_bytes;
        assert!(bg * 5 < fg, "background allocation must be much smaller: {bg} vs {fg}");
    }

    #[test]
    fn launch_access_prefers_near_roots_and_young() {
        let (mut heap, mut app) = build("Twitter", 1_000_000);
        app.foreground_step(&mut heap, 2.0);
        app.enter_background(&heap);
        let access = app.launch_access(&heap);
        assert!(!access.objects.is_empty());
        let depths = depth_map(&heap, None);
        let near: Vec<ObjectId> =
            depths.iter().filter(|&(_, &d)| d <= 2).map(|(&o, _)| o).collect();
        let near_set: HashSet<ObjectId> = near.iter().copied().collect();
        let accessed_near = access.objects.iter().filter(|o| near_set.contains(o)).count();
        let near_rate = accessed_near as f64 / near.len() as f64;
        // Most near-root objects are re-accessed…
        assert!(near_rate > 0.7, "near-root re-access rate {near_rate}");
        // …while the overall set is a small fraction of the heap.
        let total_rate = access.objects.len() as f64 / heap.live_objects() as f64;
        assert!(total_rate < 0.4, "total re-access fraction {total_rate}");
    }

    #[test]
    fn launch_alloc_burst_matches_fraction() {
        let (mut heap, mut app) = build("Twitter", 500_000);
        app.enter_background(&heap);
        let access = app.launch_access(&heap);
        let expect = (heap.live_bytes() as f64 * app.profile().launch.launch_alloc_frac) as u64;
        assert_eq!(access.alloc_bytes, expect);
        let done = app.launch_allocate(&mut heap, access.alloc_bytes);
        assert!(done >= access.alloc_bytes);
    }

    #[test]
    fn prune_drops_dead_ids() {
        let (mut heap, mut app) = build("Twitter", 300_000);
        app.foreground_step(&mut heap, 0.5);
        app.enter_background(&heap);
        // Free all unattached garbage via a full trace by hand: simply prune
        // against a heap where we free one recent object.
        let victim = *app.recent.back().unwrap();
        // Detach from wherever it hangs, then free.
        let ids: Vec<ObjectId> = heap.object_ids().collect();
        for id in ids {
            if heap.object(id).refs().contains(&victim) {
                heap.remove_ref(id, victim);
            }
        }
        heap.free_object(victim);
        app.prune(&heap);
        assert!(!app.recent.contains(&victim));
        assert!(!app.ws.contains(&victim));
    }

    #[test]
    fn synthetic_app_builds_constant_objects() {
        let mut heap = Heap::new(HeapConfig::default());
        let mut app = AppBehavior::new(synthetic_app(512, 180), SimRng::seed_from(1));
        app.build_initial_graph(&mut heap, 512 * 1000);
        let ids: Vec<ObjectId> = heap.object_ids().collect();
        assert!(ids.iter().all(|&o| heap.object(o).size() == 512));
    }

    #[test]
    fn deterministic_across_same_seed() {
        let (heap_a, _) = build("Twitter", 400_000);
        let (heap_b, _) = build("Twitter", 400_000);
        assert_eq!(heap_a.live_bytes(), heap_b.live_bytes());
        assert_eq!(heap_a.live_objects(), heap_b.live_objects());
    }
}
