//! Property tests on the workload models.

use fleet_apps::{catalog, synthetic_app, AppBehavior};
use fleet_heap::{depth_map, reachable_set, AllocContext, Heap, HeapConfig};
use fleet_sim::SimRng;
use proptest::prelude::*;

fn build(app_index: usize, target_kib: u64, seed: u64) -> (Heap, AppBehavior) {
    let apps = catalog();
    let profile = apps[app_index % apps.len()].clone();
    let mut heap = Heap::new(HeapConfig::default());
    let mut behavior = AppBehavior::new(profile, SimRng::seed_from(seed));
    behavior.build_initial_graph(&mut heap, target_kib * 1024);
    (heap, behavior)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn initial_graphs_are_fully_reachable(
        app in 0usize..18,
        target_kib in 64u64..512,
        seed in any::<u64>(),
    ) {
        let (heap, _) = build(app, target_kib, seed);
        prop_assert!(heap.live_bytes() >= target_kib * 1024);
        // Everything the builder allocates hangs off the roots.
        let reachable = reachable_set(&heap);
        prop_assert_eq!(reachable.len() as u64, heap.live_objects());
        // The framework tier exists and the data tier goes deep.
        let depths = depth_map(&heap, None);
        let max_depth = depths.values().copied().max().unwrap_or(0);
        prop_assert!(max_depth >= 4, "graph too shallow: {max_depth}");
    }

    #[test]
    fn foreground_steps_never_break_the_graph(
        app in 0usize..18,
        seed in any::<u64>(),
        steps in 1usize..6,
    ) {
        let (mut heap, mut behavior) = build(app, 128, seed);
        for _ in 0..steps {
            let out = behavior.foreground_step(&mut heap, 0.5);
            prop_assert!(out.allocated_bytes > 0);
            for obj in out.accessed {
                prop_assert!(heap.contains(obj), "behaviour reported a dead access");
            }
        }
        prop_assert!(heap.validate_refs().is_ok());
    }

    #[test]
    fn launch_access_is_live_and_deduplicated(
        app in 0usize..18,
        seed in any::<u64>(),
    ) {
        let (mut heap, mut behavior) = build(app, 128, seed);
        behavior.foreground_step(&mut heap, 1.0);
        behavior.enter_background(&heap);
        heap.set_context(AllocContext::Background);
        let access = behavior.launch_access(&heap);
        let mut seen = std::collections::HashSet::new();
        for obj in &access.objects {
            prop_assert!(heap.contains(*obj));
            prop_assert!(seen.insert(*obj), "duplicate launch access {obj}");
        }
        // The launch set is a strict subset of the heap.
        prop_assert!((access.objects.len() as u64) < heap.live_objects());
        prop_assert!(access.alloc_bytes > 0);
    }

    #[test]
    fn synthetic_apps_only_allocate_their_size(
        size_pow in 6u32..12, // 64..4096 bytes
        seed in any::<u64>(),
    ) {
        let size = 1u32 << size_pow;
        let profile = synthetic_app(size, 180);
        let mut heap = Heap::new(HeapConfig::default());
        let mut behavior = AppBehavior::new(profile, SimRng::seed_from(seed));
        behavior.build_initial_graph(&mut heap, 128 * 1024);
        behavior.foreground_step(&mut heap, 0.2);
        for obj in heap.object_ids().collect::<Vec<_>>() {
            prop_assert_eq!(heap.object(obj).size(), size.max(16));
        }
    }

    #[test]
    fn working_set_is_a_small_live_subset(app in 0usize..18, seed in any::<u64>()) {
        let (mut heap, mut behavior) = build(app, 256, seed);
        behavior.foreground_step(&mut heap, 1.0);
        behavior.enter_background(&heap);
        let ws = behavior.working_set();
        prop_assert!(!ws.is_empty());
        for &obj in ws {
            prop_assert!(heap.contains(obj));
        }
        prop_assert!(
            (ws.len() as u64) * 4 < heap.live_objects(),
            "working set should be a small fraction: {} of {}",
            ws.len(),
            heap.live_objects()
        );
    }
}
